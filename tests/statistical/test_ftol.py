"""Tests for frequency-tolerance analysis."""

import numpy as np
import pytest

from repro.statistical.ber_model import CdrJitterBudget
from repro.statistical.ftol import ber_vs_frequency_offset, frequency_tolerance

GRID = 4.0e-3


class TestBerVsOffset:
    def test_ber_grows_with_offset_magnitude(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.3, sj_frequency_hz=1.0e9)
        offsets = np.array([0.0, 0.02, 0.05])
        bers = ber_vs_frequency_offset(offsets, budget=budget, grid_step_ui=GRID)
        assert bers[0] <= bers[1] <= bers[2]
        assert bers[2] > bers[0]

    def test_shape_preserved(self):
        bers = ber_vs_frequency_offset(np.array([[0.0, 0.01], [0.02, 0.03]]),
                                       grid_step_ui=GRID)
        assert bers.shape == (2, 2)


class TestFrequencyTolerance:
    @pytest.fixture(scope="class")
    def result(self):
        return frequency_tolerance(grid_step_ui=GRID, max_offset=0.1, resolution=1e-3)

    def test_meets_100ppm_specification(self, result):
        """Section 2.3: the design must tolerate the +/-100 ppm application spec."""
        assert result.meets_specification(100.0)

    def test_tolerances_are_positive(self, result):
        assert result.positive_tolerance > 0.0
        assert result.negative_tolerance < 0.0

    def test_ppm_properties(self, result):
        assert result.positive_tolerance_ppm == pytest.approx(
            result.positive_tolerance * 1e6)
        assert result.negative_tolerance_ppm >= 0.0
        assert result.symmetric_tolerance_ppm == min(result.positive_tolerance_ppm,
                                                     result.negative_tolerance_ppm)

    def test_stressed_budget_reduces_tolerance(self, result):
        stressed = frequency_tolerance(
            budget=CdrJitterBudget(sj_amplitude_ui_pp=0.4, sj_frequency_hz=1.0e9),
            grid_step_ui=GRID, max_offset=0.1, resolution=1e-3)
        assert stressed.symmetric_tolerance_ppm < result.symmetric_tolerance_ppm

    def test_hopeless_budget_gives_zero(self):
        hopeless = frequency_tolerance(
            budget=CdrJitterBudget(dj_ui_pp=1.5, rj_ui_rms=0.1),
            grid_step_ui=GRID, max_offset=0.05, resolution=1e-3)
        assert hopeless.positive_tolerance == 0.0
        assert not hopeless.meets_specification()
