"""Tests for bathtub-curve analysis."""

import numpy as np
import pytest

from repro.statistical.bathtub import BathtubCurve, bathtub_curve, eye_opening_ui, optimum_sampling_phase
from repro.statistical.ber_model import CdrJitterBudget

GRID = 4.0e-3


class TestBathtubCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.2, sj_frequency_hz=1.0e9)
        return bathtub_curve(budget=budget, grid_step_ui=GRID,
                             phases_ui=np.arange(0.05, 1.0, 0.05))

    def test_right_wall_dominates(self, curve):
        # Gated-oscillator eye: the trigger-aligned (left) side is clean while
        # the late (right) side carries the accumulated jitter, so the BER wall
        # is on the right — the asymmetry of the paper's Figure 14.
        centre = curve.ber[len(curve.ber) // 2]
        assert curve.ber[-1] > centre
        assert curve.ber[0] <= centre + 1e-15

    def test_eye_opening_positive(self, curve):
        assert curve.eye_opening_ui(1.0e-12) > 0.2

    def test_eye_edges_are_ordered(self, curve):
        left = curve.left_edge_ui(1e-12)
        right = curve.right_edge_ui(1e-12)
        assert left < right
        assert right <= 0.95

    def test_optimum_is_early_in_the_bit(self, curve):
        phase, ber = curve.optimum()
        assert 0.0 < phase <= 0.5
        assert ber == curve.ber.min()

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            BathtubCurve(np.array([0.1, 0.2]), np.array([1e-3]))

    def test_closed_eye_reports_zero(self):
        budget = CdrJitterBudget(dj_ui_pp=1.5, rj_ui_rms=0.2)
        curve = bathtub_curve(budget=budget, grid_step_ui=GRID,
                              phases_ui=np.arange(0.1, 1.0, 0.1))
        assert curve.eye_opening_ui(1e-12) == 0.0
        assert np.isnan(curve.left_edge_ui(1e-12))


class TestHelpers:
    def test_eye_opening_wrapper(self):
        opening = eye_opening_ui(1.0e-12, grid_step_ui=GRID)
        assert 0.3 < opening <= 1.0

    def test_optimum_sampling_phase_under_offset_is_early(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.3, sj_frequency_hz=1.0e9,
                                 frequency_offset=0.02)
        phase, _ = optimum_sampling_phase(budget=budget, resolution_ui=0.05,
                                          grid_step_ui=GRID)
        assert phase < 0.5
