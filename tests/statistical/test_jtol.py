"""Tests for jitter-tolerance analysis."""

import numpy as np
import pytest

from repro.specs.infiniband import infiniband_mask
from repro.statistical.ber_model import CdrJitterBudget
from repro.statistical.jtol import (
    JtolCurve,
    JtolPoint,
    ber_vs_sinusoidal_jitter,
    jitter_tolerance_at_frequency,
    jitter_tolerance_curve,
)

GRID = 4.0e-3


class TestBerSurface:
    def test_surface_shape(self):
        frequencies = np.array([1.0e6, 1.0e9])
        amplitudes = np.array([0.1, 0.5])
        surface = ber_vs_sinusoidal_jitter(frequencies, amplitudes, grid_step_ui=GRID)
        assert surface.shape == (2, 2)

    def test_ber_grows_with_amplitude(self):
        frequencies = np.array([1.0e9])
        amplitudes = np.array([0.1, 0.4, 0.8])
        surface = ber_vs_sinusoidal_jitter(frequencies, amplitudes, grid_step_ui=GRID)
        column = surface[:, 0]
        assert column[0] <= column[1] <= column[2]

    def test_low_frequency_column_is_benign(self):
        frequencies = np.array([1.0e5, 1.25e9])
        amplitudes = np.array([0.5])
        surface = ber_vs_sinusoidal_jitter(frequencies, amplitudes, grid_step_ui=GRID)
        assert surface[0, 0] < 1.0e-12
        assert surface[0, 1] > surface[0, 0]


class TestToleranceSearch:
    def test_low_frequency_tolerance_is_large(self):
        point = jitter_tolerance_at_frequency(1.0e5, grid_step_ui=GRID,
                                              max_amplitude_ui_pp=20.0)
        assert point.amplitude_ui_pp >= 5.0

    def test_high_frequency_tolerance_is_finite(self):
        point = jitter_tolerance_at_frequency(1.0e9, grid_step_ui=GRID)
        assert 0.0 < point.amplitude_ui_pp < 1.0
        assert point.ber_at_amplitude <= 1.0e-12

    def test_tolerance_decreases_with_frequency(self):
        low = jitter_tolerance_at_frequency(2.5e6, grid_step_ui=GRID,
                                            max_amplitude_ui_pp=20.0)
        high = jitter_tolerance_at_frequency(1.25e9, grid_step_ui=GRID,
                                             max_amplitude_ui_pp=20.0)
        assert high.amplitude_ui_pp < low.amplitude_ui_pp

    def test_impossible_budget_returns_zero(self):
        # If the baseline jitter alone already fails, the tolerance is zero.
        budget = CdrJitterBudget(dj_ui_pp=1.2, rj_ui_rms=0.1)
        point = jitter_tolerance_at_frequency(1.0e6, budget=budget, grid_step_ui=GRID)
        assert point.amplitude_ui_pp == 0.0


class TestCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        frequencies = np.array([1.0e5, 2.0e6, 2.5e7])
        return jitter_tolerance_curve(frequencies, grid_step_ui=GRID,
                                      max_amplitude_ui_pp=20.0)

    def test_curve_length(self, curve):
        assert len(curve.points) == 3
        assert curve.frequencies_hz.size == 3

    def test_curve_passes_infiniband_mask(self, curve):
        """Fig. 9 claim: tolerance is well above the InfiniBand mask (no offset)."""
        mask = infiniband_mask()
        required = mask.amplitude_ui_pp(curve.frequencies_hz)
        assert curve.passes_mask(np.asarray(required))

    def test_margin_computation(self, curve):
        mask_values = np.full(3, 0.15)
        margins = curve.margin_to_mask(mask_values)
        np.testing.assert_allclose(margins, curve.amplitudes_ui_pp - 0.15)

    def test_margin_requires_matching_shape(self, curve):
        with pytest.raises(ValueError):
            curve.margin_to_mask(np.array([0.1, 0.2]))
