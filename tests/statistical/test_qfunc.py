"""Tests for Gaussian tail utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.statistical import qfunc


class TestQFunction:
    def test_q_of_zero_is_half(self):
        assert qfunc.q_function(0.0) == pytest.approx(0.5)

    def test_known_value(self):
        assert qfunc.q_function(7.034) == pytest.approx(1.0e-12, rel=0.05)

    def test_array_input(self):
        values = qfunc.q_function(np.array([0.0, 1.0, 2.0]))
        assert values.shape == (3,)
        assert values[0] == pytest.approx(0.5)

    def test_far_tail_remains_finite(self):
        assert 0.0 < qfunc.q_function(30.0) < 1.0e-100

    @given(st.floats(min_value=-5, max_value=5), st.floats(min_value=0.01, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_monotonically_decreasing(self, x, dx):
        assert qfunc.q_function(x + dx) < qfunc.q_function(x)


class TestInverseQ:
    def test_round_trip(self):
        for p in (0.3, 1e-3, 1e-9, 1e-12):
            assert qfunc.q_function(qfunc.inverse_q_function(p)) == pytest.approx(p, rel=1e-6)

    def test_sigma_margin_at_1e12(self):
        assert qfunc.sigma_margin_for_ber(1.0e-12) == pytest.approx(7.03, rel=0.01)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            qfunc.inverse_q_function(0.0)
        with pytest.raises(ValueError):
            qfunc.inverse_q_function(1.0)


class TestHelpers:
    def test_ber_from_snr_margin(self):
        assert qfunc.ber_from_snr_margin(7.034e-2, 1.0e-2) == pytest.approx(1e-12, rel=0.05)

    def test_ber_from_snr_margin_rejects_zero_sigma(self):
        with pytest.raises(ValueError):
            qfunc.ber_from_snr_margin(0.1, 0.0)

    def test_log10_ber_floor(self):
        assert qfunc.log10_ber(0.0, floor=1e-30) == pytest.approx(-30.0)
        assert qfunc.log10_ber(1e-12) == pytest.approx(-12.0)

    def test_log10_ber_array(self):
        out = qfunc.log10_ber(np.array([1e-3, 1e-6]))
        np.testing.assert_allclose(out, [-3.0, -6.0])
