"""Tests for the Monte-Carlo cross-check of the analytic BER model."""

import numpy as np
import pytest

from repro.statistical.ber_model import CdrJitterBudget, GatedOscillatorBerModel
from repro.statistical.montecarlo import MonteCarloResult, simulate_ber


class TestMonteCarloResult:
    def test_ber_computation(self):
        assert MonteCarloResult(errors=5, trials=1000).ber == pytest.approx(5e-3)

    def test_empty_result_is_nan(self):
        assert np.isnan(MonteCarloResult(errors=0, trials=0).ber)

    def test_confidence_interval_contains_estimate(self):
        result = MonteCarloResult(errors=100, trials=10000)
        low, high = result.confidence_interval()
        assert low < result.ber < high

    def test_consistency_check(self):
        result = MonteCarloResult(errors=100, trials=10000)
        assert result.consistent_with(0.01)
        assert not result.consistent_with(0.10)


class TestSimulation:
    def test_no_jitter_gives_no_errors(self):
        budget = CdrJitterBudget(dj_ui_pp=0.0, rj_ui_rms=0.0, osc_sigma_ui_per_bit=0.0)
        result = simulate_ber(budget, n_bits=10000, rng=np.random.default_rng(0))
        assert result.errors == 0

    def test_agrees_with_analytic_model_at_high_stress(self):
        """The Monte-Carlo experiment and the PDF convolution model must agree."""
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.8, sj_frequency_hz=1.25e9,
                                 frequency_offset=0.02)
        analytic = GatedOscillatorBerModel(budget, grid_step_ui=2e-3).ber()
        monte_carlo = simulate_ber(budget, n_bits=200_000, rng=np.random.default_rng(1))
        assert monte_carlo.consistent_with(analytic, z=4.0)
        assert monte_carlo.ber == pytest.approx(analytic, rel=0.15)

    def test_agreement_under_pure_offset_stress(self):
        budget = CdrJitterBudget(frequency_offset=0.08)
        analytic = GatedOscillatorBerModel(budget, grid_step_ui=2e-3).ber()
        monte_carlo = simulate_ber(budget, n_bits=200_000, rng=np.random.default_rng(2))
        assert monte_carlo.ber == pytest.approx(analytic, rel=0.2)

    def test_improved_sampling_phase_reduces_errors(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.6, sj_frequency_hz=1.25e9,
                                 frequency_offset=0.02)
        nominal = simulate_ber(budget, n_bits=150_000, sampling_phase_ui=0.5,
                               rng=np.random.default_rng(3))
        improved = simulate_ber(budget, n_bits=150_000, sampling_phase_ui=0.375,
                                rng=np.random.default_rng(3))
        assert improved.errors < nominal.errors

    def test_reproducible_with_seed(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.7, sj_frequency_hz=1.25e9)
        a = simulate_ber(budget, n_bits=50_000, rng=np.random.default_rng(7))
        b = simulate_ber(budget, n_bits=50_000, rng=np.random.default_rng(7))
        assert a.errors == b.errors
