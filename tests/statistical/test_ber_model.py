"""Tests for the gated-oscillator statistical BER model."""

import numpy as np
import pytest

from repro import units
from repro.datapath.cid import geometric_run_distribution
from repro.statistical.ber_model import (
    IMPROVED_SAMPLING_PHASE_UI,
    NOMINAL_SAMPLING_PHASE_UI,
    CdrJitterBudget,
    GatedOscillatorBerModel,
)

GRID = 2.0e-3


class TestCdrJitterBudget:
    def test_table1_defaults(self):
        budget = CdrJitterBudget()
        assert budget.dj_ui_pp == pytest.approx(0.4)
        assert budget.rj_ui_rms == pytest.approx(0.021)
        assert budget.osc_sigma_ui_per_bit == pytest.approx(0.01 / np.sqrt(5.0))

    def test_with_sinusoidal_returns_copy(self):
        budget = CdrJitterBudget()
        stressed = budget.with_sinusoidal(0.2, 1.0e6)
        assert stressed.sj_amplitude_ui_pp == pytest.approx(0.2)
        assert budget.sj_amplitude_ui_pp == 0.0

    def test_with_frequency_offset(self):
        assert CdrJitterBudget().with_frequency_offset(0.01).frequency_offset == 0.01

    def test_frequency_offset_bounds(self):
        with pytest.raises(ValueError):
            CdrJitterBudget(frequency_offset=0.6)

    def test_relative_sj_low_frequency_is_tracked(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=1.0, sj_frequency_hz=1.0e3)
        assert budget.relative_sj_pp_over_gap(5.0) < 1e-4

    def test_relative_sj_worst_case_is_twice_amplitude(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.3,
                                 sj_frequency_hz=units.DEFAULT_BIT_RATE / 2.0)
        assert budget.relative_sj_pp_over_gap(1.0) == pytest.approx(0.6)

    def test_paper_table1_factory(self):
        budget = CdrJitterBudget.paper_table1(0.1, 250.0e6, 0.01)
        assert budget.sj_amplitude_ui_pp == pytest.approx(0.1)
        assert budget.frequency_offset == pytest.approx(0.01)


class TestNominalBer:
    def test_table1_ber_is_far_below_target(self):
        """Fig. 9 claim: with Table 1 jitter alone the CDR is far below 1e-12."""
        model = GatedOscillatorBerModel(CdrJitterBudget(), grid_step_ui=GRID)
        assert model.ber() < 1.0e-15

    def test_no_jitter_gives_zero_errors(self):
        budget = CdrJitterBudget(dj_ui_pp=0.0, rj_ui_rms=0.0, osc_sigma_ui_per_bit=0.0)
        assert GatedOscillatorBerModel(budget, grid_step_ui=GRID).ber() == 0.0

    def test_breakdown_sums_to_total(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.4, sj_frequency_hz=1.0e9,
                                 frequency_offset=0.01)
        breakdown = GatedOscillatorBerModel(budget, grid_step_ui=GRID).ber_breakdown()
        assert sum(breakdown.per_run_length.values()) == pytest.approx(breakdown.ber, rel=1e-9)
        assert breakdown.ber <= breakdown.ber_left + breakdown.ber_right + 1e-15

    def test_long_runs_dominate_errors_under_offset(self):
        # Pure frequency offset: the accumulated error is largest at the end of
        # the longest run, so runs of length 5 dominate the error budget.
        budget = CdrJitterBudget(frequency_offset=0.09)
        breakdown = GatedOscillatorBerModel(budget, grid_step_ui=GRID).ber_breakdown()
        assert breakdown.dominant_run_length() == 5

    def test_ber_bounded_by_one(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=5.0, sj_frequency_hz=1.0e9,
                                 frequency_offset=0.2)
        assert GatedOscillatorBerModel(budget, grid_step_ui=GRID).ber() <= 1.0


class TestSinusoidalJitterBehaviour:
    def test_high_frequency_sj_is_worse_than_low_frequency(self):
        """The gated oscillator tracks slow jitter but not jitter near the bit rate."""
        low = CdrJitterBudget(sj_amplitude_ui_pp=0.5, sj_frequency_hz=1.0e5)
        high = CdrJitterBudget(sj_amplitude_ui_pp=0.5, sj_frequency_hz=1.0e9)
        ber_low = GatedOscillatorBerModel(low, grid_step_ui=GRID).ber()
        ber_high = GatedOscillatorBerModel(high, grid_step_ui=GRID).ber()
        assert ber_high > ber_low
        assert ber_low < 1.0e-12

    def test_ber_increases_with_sj_amplitude(self):
        bers = []
        for amplitude in (0.1, 0.3, 0.6):
            budget = CdrJitterBudget(sj_amplitude_ui_pp=amplitude, sj_frequency_hz=1.0e9)
            bers.append(GatedOscillatorBerModel(budget, grid_step_ui=GRID).ber())
        assert bers[0] <= bers[1] <= bers[2]
        assert bers[2] > bers[0]


class TestFrequencyOffsetBehaviour:
    def test_offset_degrades_ber(self):
        """Fig. 10: a 1 % frequency offset visibly degrades the BER."""
        stress = dict(sj_amplitude_ui_pp=0.35, sj_frequency_hz=1.0e9)
        without = GatedOscillatorBerModel(CdrJitterBudget(**stress), grid_step_ui=GRID).ber()
        with_offset = GatedOscillatorBerModel(
            CdrJitterBudget(**stress, frequency_offset=0.01), grid_step_ui=GRID).ber()
        assert with_offset > without

    def test_offset_sign_symmetry_is_broken_by_sampling_phase(self):
        # A slow oscillator (positive offset) drifts towards the late eye edge,
        # which is the vulnerable one; a fast oscillator is less harmful.
        stress = dict(sj_amplitude_ui_pp=0.35, sj_frequency_hz=1.0e9)
        slow = GatedOscillatorBerModel(
            CdrJitterBudget(**stress, frequency_offset=0.02), grid_step_ui=GRID).ber()
        fast = GatedOscillatorBerModel(
            CdrJitterBudget(**stress, frequency_offset=-0.02), grid_step_ui=GRID).ber()
        assert slow > fast


class TestImprovedSamplingPoint:
    def test_improved_tap_helps_under_frequency_offset(self):
        """Fig. 17: the T/8-earlier tap improves BER when the oscillator is slow."""
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.3, sj_frequency_hz=1.0e9,
                                 frequency_offset=0.01)
        nominal = GatedOscillatorBerModel(
            budget, sampling_phase_ui=NOMINAL_SAMPLING_PHASE_UI, grid_step_ui=GRID).ber()
        improved = GatedOscillatorBerModel(
            budget, sampling_phase_ui=IMPROVED_SAMPLING_PHASE_UI, grid_step_ui=GRID).ber()
        assert improved < nominal

    def test_sampling_phase_must_be_inside_bit(self):
        with pytest.raises(ValueError):
            GatedOscillatorBerModel(CdrJitterBudget(), sampling_phase_ui=0.0)
        with pytest.raises(ValueError):
            GatedOscillatorBerModel(CdrJitterBudget(), sampling_phase_ui=1.0)


class TestRunLengthSensitivity:
    def test_longer_cid_is_worse(self):
        """8b/10b (CID 5) versus PRBS7-like (CID 7) under frequency offset."""
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.3, sj_frequency_hz=1.0e9,
                                 frequency_offset=0.02)
        cid5 = GatedOscillatorBerModel(
            budget, run_lengths=geometric_run_distribution(5), grid_step_ui=GRID).ber()
        cid7 = GatedOscillatorBerModel(
            budget, run_lengths=geometric_run_distribution(7), grid_step_ui=GRID).ber()
        assert cid7 > cid5


class TestPhaseScan:
    def test_optimum_phase_is_earlier_than_centre_under_offset(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.3, sj_frequency_hz=1.0e9,
                                 frequency_offset=0.02)
        model = GatedOscillatorBerModel(budget, grid_step_ui=4.0e-3)
        best_phase, best_ber = model.optimum_sampling_phase(resolution_ui=0.05)
        assert best_phase < 0.5
        assert best_ber <= model.ber()

    def test_sweep_shape_reflects_asymmetric_eye(self):
        # The trigger (left) edge is clean by construction, so the BER wall is
        # on the late (right) side only — the asymmetry the paper's Figure 14
        # eye diagram shows.
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.2, sj_frequency_hz=1.0e9)
        model = GatedOscillatorBerModel(budget, grid_step_ui=4.0e-3)
        phases = np.array([0.1, 0.4, 0.9])
        bers = model.sweep_sampling_phase(phases)
        assert bers[2] > bers[1]
        assert bers[0] <= bers[1] + 1e-15

    def test_static_phase_error_shifts_operating_point(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.35, sj_frequency_hz=1.0e9,
                                 frequency_offset=0.01)
        clean = GatedOscillatorBerModel(budget, grid_step_ui=GRID).ber()
        skewed = GatedOscillatorBerModel(budget, grid_step_ui=GRID,
                                         static_phase_error_ui=0.15).ber()
        assert skewed > clean

    def test_vectorised_scan_matches_per_phase_models(self):
        """Hoisted phase scan must reproduce a model rebuilt at every phase."""
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.25, sj_frequency_hz=1.0e9,
                                 frequency_offset=0.015)
        model = GatedOscillatorBerModel(budget, grid_step_ui=GRID)
        phases = np.array([0.1, 0.3, 0.45, 0.6, 0.85])
        swept = model.sweep_sampling_phase(phases)
        rebuilt = np.array([
            GatedOscillatorBerModel(budget, sampling_phase_ui=float(phase),
                                    grid_step_ui=GRID).ber()
            for phase in phases
        ])
        assert swept == pytest.approx(rebuilt, rel=1e-9, abs=1e-300)

    def test_scan_allows_closed_interval_endpoints(self):
        # The constructor requires an interior operating phase, but scans and
        # margin bisection may probe the 0 / 1 UI boundaries themselves.
        model = GatedOscillatorBerModel(CdrJitterBudget(), grid_step_ui=GRID)
        bers = model.sweep_sampling_phase(np.array([0.0, 1.0]))
        assert np.all(np.isfinite(bers))


class TestEyeMargin:
    def test_failing_operating_point_has_zero_margin(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.35, sj_frequency_hz=1.0e9,
                                 frequency_offset=0.005)
        model = GatedOscillatorBerModel(budget, grid_step_ui=GRID)
        assert model.ber() > 1.0e-12
        assert model.eye_margin_ui(1.0e-12) == 0.0

    def test_margin_changes_smoothly_with_target_ber(self):
        """Regression: bisection must not quantise margins to a fixed step."""
        budget = CdrJitterBudget(dj_ui_pp=0.1, rj_ui_rms=0.035)
        model = GatedOscillatorBerModel(budget, grid_step_ui=GRID)
        targets = np.logspace(-14, -6, 9)
        margins = np.array([model.eye_margin_ui(float(t)) for t in targets])
        steps = np.diff(margins)
        # Strictly increasing with the target, in small smooth increments —
        # the old 0.005-UI walk produced identical or 0.005-quantised values.
        assert np.all(steps > 1.0e-3)
        assert np.all(steps < 0.05)
        assert steps.max() < 2.0 * steps.min()
        assert np.unique(np.round(margins, 6)).size == margins.size

    def test_margin_resolves_finer_than_legacy_step(self):
        budget = CdrJitterBudget(dj_ui_pp=0.1, rj_ui_rms=0.035)
        model = GatedOscillatorBerModel(budget, grid_step_ui=GRID)
        margin = model.eye_margin_ui(1.0e-12, tolerance_ui=1.0e-5)
        lattice = margin / 0.005
        assert abs(lattice - round(lattice)) > 1.0e-2

    def test_margin_credits_the_trigger_boundary(self):
        # Without oscillator jitter the trigger-side (left) eye wall sits at
        # exactly phase 0; the bisection credits it instead of stalling one
        # 0.005-UI step short.
        budget = CdrJitterBudget(dj_ui_pp=0.0, rj_ui_rms=0.005,
                                 osc_sigma_ui_per_bit=0.0)
        model = GatedOscillatorBerModel(budget, grid_step_ui=GRID)
        assert model.ber_at_phase(0.0) <= 1.0e-12
        assert model.eye_margin_ui(1.0e-12) > 0.94

    def test_jitter_free_margin_is_the_full_ui(self):
        budget = CdrJitterBudget(dj_ui_pp=0.0, rj_ui_rms=0.0,
                                 osc_sigma_ui_per_bit=0.0)
        model = GatedOscillatorBerModel(budget, grid_step_ui=GRID)
        assert model.eye_margin_ui(1.0e-12) == 1.0

    def test_margin_agrees_with_dense_bathtub(self):
        budget = CdrJitterBudget(dj_ui_pp=0.1, rj_ui_rms=0.035)
        model = GatedOscillatorBerModel(budget, grid_step_ui=GRID)
        margin = model.eye_margin_ui(1.0e-12, tolerance_ui=1.0e-5)
        phases = np.linspace(0.0, 1.0, 2001)
        passing = phases[model.sweep_sampling_phase(phases) <= 1.0e-12]
        assert margin == pytest.approx(passing.max() - passing.min(), abs=2e-3)
