"""Tests for the ISI superposition core (circular vs direct convolution)."""

import numpy as np
import pytest

from repro.link import (
    LinkTimebase,
    LossyLineChannel,
    nrz_symbol_levels,
    superpose_circular,
    superpose_linear,
    upsample_symbols,
)


class TestUpsample:
    def test_impulse_train_placement(self):
        train = upsample_symbols(np.array([1.0, -1.0, 1.0]), 4)
        assert train.size == 12
        assert train[0] == 1.0 and train[4] == -1.0 and train[8] == 1.0
        assert np.count_nonzero(train) == 3


class TestCircularVsDirect:
    """The satellite requirement: vectorized circular superposition must
    reproduce direct ``np.convolve`` wherever the comparison is fair."""

    def test_matches_convolve_in_steady_state(self):
        # One period of a pattern, pulse shorter than the period: after the
        # pulse has settled, circular and linear superposition agree.
        rng = np.random.default_rng(11)
        timebase = LinkTimebase(samples_per_ui=16)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 64))
        pulse = LossyLineChannel.for_loss_at_nyquist(8.0, 2.5e9).pulse_response(
            timebase, n_ui=64)
        spu = timebase.samples_per_ui
        # Use the pulse's leading span only so the linear reference is exact.
        span = 32 * spu
        circular = superpose_circular(symbols, pulse[:span], spu)
        linear = superpose_linear(symbols, pulse[:span], spu)
        # Steady state of the linear result: once every pulse that matters
        # has launched (after `span` samples) and before the tail runs out.
        interior = slice(span, symbols.size * spu)
        assert circular[interior] == pytest.approx(linear[interior], abs=1e-9)

    def test_two_period_tiling_consistency(self):
        # Doubling the pattern must reproduce the single-period waveform in
        # both halves — the property the displacement-table reuse relies on.
        rng = np.random.default_rng(12)
        timebase = LinkTimebase(samples_per_ui=8)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 48))
        pulse = LossyLineChannel.for_loss_at_nyquist(6.0, 2.5e9).pulse_response(
            timebase, n_ui=48)
        spu = timebase.samples_per_ui
        one = superpose_circular(symbols, pulse, spu)
        two = superpose_circular(np.tile(symbols, 2), np.concatenate(
            (pulse, np.zeros(pulse.size))), spu)
        assert two[:one.size] == pytest.approx(one, abs=1e-9)
        assert two[one.size:] == pytest.approx(one, abs=1e-9)

    def test_pulse_longer_than_period_folds(self):
        # A pulse tail longer than the pattern period wraps onto it; the
        # result equals convolving the infinitely repeated pattern.
        spu = 4
        symbols = np.array([1.0, -1.0, 1.0, 1.0])
        pulse = np.exp(-np.arange(3 * symbols.size * spu) / 7.0)
        circular = superpose_circular(symbols, pulse, spu)
        # Reference: linear convolution of four pattern repetitions.  The
        # pulse spans three periods, so the fourth period of the linear
        # result has seen every contribution and matches the steady state.
        linear = superpose_linear(np.tile(symbols, 4), pulse, spu)
        period = symbols.size * spu
        assert circular == pytest.approx(linear[3 * period:4 * period], abs=1e-9)


class TestFoldedPulse:
    """Regression for the vectorized pad-reshape-sum fold (was a Python loop)."""

    @staticmethod
    def _loop_fold(pulse, length):
        folded = np.zeros(length)
        for start in range(0, pulse.size, length):
            chunk = pulse[start:start + length]
            folded[:chunk.size] += chunk
        return folded

    @pytest.mark.parametrize("size", [16, 17, 31, 33, 95, 97, 160])
    def test_matches_loop_fold_for_any_length(self, size):
        # Sizes straddle multiples of the period (32): the ragged final
        # chunk must land on the leading bins only.
        from repro.link.isi import _folded_pulse

        rng = np.random.default_rng(size)
        pulse = rng.normal(size=size)
        assert _folded_pulse(pulse, 32) == pytest.approx(
            self._loop_fold(pulse, 32), abs=1e-12)

    def test_short_pulse_is_zero_padded(self):
        from repro.link.isi import _folded_pulse

        folded = _folded_pulse(np.array([1.0, 2.0]), 5)
        assert folded == pytest.approx([1.0, 2.0, 0.0, 0.0, 0.0])

    def test_fold_preserves_total_mass(self):
        from repro.link.isi import _folded_pulse

        pulse = np.exp(-np.arange(101) / 11.0)
        assert _folded_pulse(pulse, 8).sum() == pytest.approx(pulse.sum())


class TestIdealReconstruction:
    def test_ideal_channel_reproduces_nrz_waveform(self):
        from repro.link import IdealChannel

        timebase = LinkTimebase(samples_per_ui=8)
        bits = np.array([0, 1, 1, 0, 1, 0, 0, 1], dtype=np.uint8)
        levels = nrz_symbol_levels(bits)
        pulse = IdealChannel().pulse_response(timebase, n_ui=bits.size)
        waveform = superpose_circular(levels, pulse, timebase.samples_per_ui)
        expected = np.repeat(levels, timebase.samples_per_ui)
        assert waveform == pytest.approx(expected, abs=1e-9)
