"""Crosstalk aggressors: coupling pulses, waveform superposition, PDF effects."""

import numpy as np
import pytest

from repro.link import (
    CrosstalkAggressor,
    CrosstalkSpec,
    IdealChannel,
    LinkConfig,
    LinkPath,
    LinkTimebase,
    LossyLineChannel,
    RxCtle,
    StatisticalEyeSolver,
    TxFfe,
    statistical_eye,
)
from repro.datapath.prbs import prbs_sequence


def _equalized_link(**overrides) -> LinkConfig:
    values = dict(
        channel=LossyLineChannel.for_loss_at_nyquist(10.0),
        tx_ffe=TxFfe.de_emphasis(post_db=3.5),
        rx_ctle=RxCtle(peaking_db=6.0),
    )
    values.update(overrides)
    return LinkConfig(**values)


class TestAggressorPulse:
    def test_peak_equals_amplitude(self):
        timebase = LinkTimebase()
        channel = LossyLineChannel.for_loss_at_nyquist(8.0)
        for kind in ("fext", "next"):
            pulse = CrosstalkAggressor(0.15, kind=kind).pulse_response(
                timebase, 64, victim_channel=channel)
            assert np.max(np.abs(pulse)) == pytest.approx(0.15)

    def test_zero_amplitude_pulse_is_exactly_zero(self):
        pulse = CrosstalkAggressor(0.0).pulse_response(LinkTimebase(), 32)
        assert pulse.shape == (32 * 32,)
        assert np.all(pulse == 0.0)

    def test_fext_is_dispersed_by_the_victim_channel(self):
        # The FEXT pulse rides the lossy line to the far end, so at equal
        # peak it carries more spread-out energy than the NEXT pulse.
        timebase = LinkTimebase()
        channel = LossyLineChannel.for_loss_at_nyquist(14.0)
        fext = CrosstalkAggressor(0.1, kind="fext").pulse_response(
            timebase, 64, victim_channel=channel)
        next_ = CrosstalkAggressor(0.1, kind="next").pulse_response(
            timebase, 64, victim_channel=channel)
        assert np.sum(np.abs(fext)) > np.sum(np.abs(next_))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            CrosstalkAggressor(0.1, kind="alien")

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            CrosstalkAggressor(-0.1)


class TestCrosstalkSpec:
    def test_uniform_population_has_decorrelated_seeds(self):
        spec = CrosstalkSpec.uniform(3, 0.05)
        assert len(spec) == 3
        assert len({a.seed for a in spec.aggressors}) == 3

    def test_with_amplitude_rescales_every_aggressor(self):
        spec = CrosstalkSpec.uniform(2, 0.05).with_amplitude(0.2)
        assert all(a.amplitude == 0.2 for a in spec.aggressors)

    def test_silence(self):
        assert CrosstalkSpec.single_fext(0.0).is_silent
        assert not CrosstalkSpec.single_next(0.1).is_silent
        assert CrosstalkSpec().is_silent


class TestBitTrueSuperposition:
    def test_zero_amplitude_is_bit_identical_to_no_crosstalk(self):
        bits = prbs_sequence(7, 127)
        clean = LinkPath(_equalized_link()).pattern_displacements(bits)
        silent = LinkPath(_equalized_link(
            crosstalk=CrosstalkSpec.single_fext(0.0))).pattern_displacements(bits)
        assert np.array_equal(clean, silent)

    def test_crosstalk_adds_edge_displacement(self):
        bits = prbs_sequence(7, 127)
        clean = LinkPath(_equalized_link())
        noisy = LinkPath(_equalized_link(
            crosstalk=CrosstalkSpec.single_fext(0.2)))
        spread_clean = np.ptp(clean.ddj_population_ui(bits))
        spread_noisy = np.ptp(noisy.ddj_population_ui(bits))
        assert spread_noisy > spread_clean

    def test_waveform_cache_reused(self):
        path = LinkPath(_equalized_link(
            crosstalk=CrosstalkSpec.single_fext(0.1)))
        first = path.crosstalk_waveform(64)
        assert path.crosstalk_waveform(64) is first

    def test_aggressor_count_scales_coupled_power(self):
        one = LinkPath(_equalized_link(
            crosstalk=CrosstalkSpec.uniform(1, 0.1)))
        three = LinkPath(_equalized_link(
            crosstalk=CrosstalkSpec.uniform(3, 0.1)))
        assert np.std(three.crosstalk_waveform(64)) \
            > np.std(one.crosstalk_waveform(64))


class TestStatisticalSuperposition:
    """Satellite requirement: PDF superposition must be exact and monotone."""

    def test_zero_amplitude_eye_is_bit_identical(self):
        clean = statistical_eye(_equalized_link())
        silent = statistical_eye(_equalized_link(
            crosstalk=CrosstalkSpec.single_fext(0.0)))
        assert np.array_equal(clean.ber, silent.ber)
        assert np.array_equal(clean.noise_pmf, silent.noise_pmf)
        assert np.array_equal(clean.thresholds, silent.thresholds)

    @pytest.mark.parametrize("target_ber", [1.0e-12, 1.0e-9])
    def test_opening_monotone_non_increasing_in_amplitude(self, target_ber):
        amplitudes = (0.0, 0.05, 0.1, 0.2, 0.4)
        horizontal = []
        vertical = []
        for amplitude in amplitudes:
            eye = statistical_eye(_equalized_link(
                crosstalk=CrosstalkSpec.single_fext(amplitude)))
            horizontal.append(eye.horizontal_opening_ui(target_ber))
            vertical.append(eye.vertical_opening(target_ber))
        assert all(a >= b for a, b in zip(horizontal, horizontal[1:]))
        assert all(a >= b for a, b in zip(vertical, vertical[1:]))
        # The stress is real: the strongest aggressor visibly closes the eye.
        assert vertical[-1] < vertical[0]

    def test_large_aggressor_closes_the_eye(self):
        eye = statistical_eye(_equalized_link(
            crosstalk=CrosstalkSpec.single_fext(0.4)))
        assert eye.vertical_opening(1.0e-12) == 0.0
        lower, upper = eye.contour(1.0e-12)
        assert np.all(np.isnan(lower)) and np.all(np.isnan(upper))

    def test_two_aggressors_close_more_than_one(self):
        one = statistical_eye(_equalized_link(
            crosstalk=CrosstalkSpec.uniform(1, 0.08)))
        two = statistical_eye(_equalized_link(
            crosstalk=CrosstalkSpec.uniform(2, 0.08)))
        assert two.vertical_opening(1.0e-12) <= one.vertical_opening(1.0e-12)


class TestAggressorPhaseStatistics:
    """Satellite: asynchronous aggressors average over a uniform UI offset."""

    def test_asynchronous_is_the_default(self):
        solver = StatisticalEyeSolver(_equalized_link())
        assert solver.aggressor_phase == "asynchronous"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="aggressor_phase"):
            StatisticalEyeSolver(_equalized_link(), aggressor_phase="psychic")

    def test_modes_differ_for_a_live_aggressor(self):
        link = _equalized_link(crosstalk=CrosstalkSpec.single_fext(0.2))
        asynchronous = statistical_eye(link)
        synchronous = statistical_eye(link, aggressor_phase="synchronous")
        assert not np.array_equal(asynchronous.noise_pmf,
                                  synchronous.noise_pmf)

    def test_zero_amplitude_bit_identical_in_both_modes(self):
        # Regression pin: a silent aggressor population must leave the
        # solved eye bit-identical to the crosstalk-free link, whichever
        # phase statistics are selected.
        clean = statistical_eye(_equalized_link())
        for mode in ("asynchronous", "synchronous"):
            silent = statistical_eye(
                _equalized_link(crosstalk=CrosstalkSpec.single_fext(0.0)),
                aggressor_phase=mode)
            assert np.array_equal(clean.ber, silent.ber)
            assert np.array_equal(clean.noise_pmf, silent.noise_pmf)
            assert np.array_equal(clean.thresholds, silent.thresholds)

    def test_asynchronous_contribution_is_phase_uniform(self):
        # On an ideal channel the victim has no ISI, so the entire noise
        # PDF is the aggressor's.  Its own clock phase is uniform over the
        # UI, so the averaged PDF must be identical at every victim phase;
        # sampling at the victim phase (synchronous) varies with it.
        link = LinkConfig(channel=IdealChannel(),
                          crosstalk=CrosstalkSpec.single_next(0.3))
        asynchronous = statistical_eye(link)
        synchronous = statistical_eye(link, aggressor_phase="synchronous")
        assert all(np.array_equal(asynchronous.noise_pmf[0], row)
                   for row in asynchronous.noise_pmf)
        assert not all(np.array_equal(synchronous.noise_pmf[0], row)
                       for row in synchronous.noise_pmf)

    def test_asynchronous_variance_is_the_offset_average(self):
        # Mixture over offsets: every column PDF is symmetric around zero,
        # so the averaged variance must equal the column-mean cursor power
        # (plus the victim's own ISI power) exactly.
        link = _equalized_link(crosstalk=CrosstalkSpec.single_fext(0.25))
        solver = StatisticalEyeSolver(link)
        cursors = solver.cursor_matrix()
        main_row = int(np.argmax(np.max(np.abs(cursors), axis=1)))
        isi = np.delete(cursors, main_row, axis=0)
        aggressor = solver.aggressor_cursor_matrices()[0]
        aggressor_power = float(np.mean(np.sum(aggressor ** 2, axis=0)))
        eye = solver.solve()
        for phase_index in (0, 16, 31):
            expected = float(np.sum(isi[:, phase_index] ** 2)) \
                + aggressor_power
            pdf = eye.noise_pdf(eye.phases_ui[phase_index])
            assert pdf.variance() == pytest.approx(expected, rel=1e-6)

    def test_monotone_in_amplitude_under_asynchronous_statistics(self):
        verticals = []
        for amplitude in (0.0, 0.1, 0.3):
            eye = statistical_eye(_equalized_link(
                crosstalk=CrosstalkSpec.single_fext(amplitude)))
            verticals.append(eye.vertical_opening(1.0e-9))
        assert verticals[0] >= verticals[1] >= verticals[2]
        assert verticals[2] < verticals[0]
