"""Crosstalk aggressors: coupling pulses, waveform superposition, PDF effects."""

import numpy as np
import pytest

from repro.link import (
    CrosstalkAggressor,
    CrosstalkSpec,
    LinkConfig,
    LinkPath,
    LinkTimebase,
    LossyLineChannel,
    RxCtle,
    TxFfe,
    statistical_eye,
)
from repro.datapath.prbs import prbs_sequence


def _equalized_link(**overrides) -> LinkConfig:
    values = dict(
        channel=LossyLineChannel.for_loss_at_nyquist(10.0),
        tx_ffe=TxFfe.de_emphasis(post_db=3.5),
        rx_ctle=RxCtle(peaking_db=6.0),
    )
    values.update(overrides)
    return LinkConfig(**values)


class TestAggressorPulse:
    def test_peak_equals_amplitude(self):
        timebase = LinkTimebase()
        channel = LossyLineChannel.for_loss_at_nyquist(8.0)
        for kind in ("fext", "next"):
            pulse = CrosstalkAggressor(0.15, kind=kind).pulse_response(
                timebase, 64, victim_channel=channel)
            assert np.max(np.abs(pulse)) == pytest.approx(0.15)

    def test_zero_amplitude_pulse_is_exactly_zero(self):
        pulse = CrosstalkAggressor(0.0).pulse_response(LinkTimebase(), 32)
        assert pulse.shape == (32 * 32,)
        assert np.all(pulse == 0.0)

    def test_fext_is_dispersed_by_the_victim_channel(self):
        # The FEXT pulse rides the lossy line to the far end, so at equal
        # peak it carries more spread-out energy than the NEXT pulse.
        timebase = LinkTimebase()
        channel = LossyLineChannel.for_loss_at_nyquist(14.0)
        fext = CrosstalkAggressor(0.1, kind="fext").pulse_response(
            timebase, 64, victim_channel=channel)
        next_ = CrosstalkAggressor(0.1, kind="next").pulse_response(
            timebase, 64, victim_channel=channel)
        assert np.sum(np.abs(fext)) > np.sum(np.abs(next_))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            CrosstalkAggressor(0.1, kind="alien")

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            CrosstalkAggressor(-0.1)


class TestCrosstalkSpec:
    def test_uniform_population_has_decorrelated_seeds(self):
        spec = CrosstalkSpec.uniform(3, 0.05)
        assert len(spec) == 3
        assert len({a.seed for a in spec.aggressors}) == 3

    def test_with_amplitude_rescales_every_aggressor(self):
        spec = CrosstalkSpec.uniform(2, 0.05).with_amplitude(0.2)
        assert all(a.amplitude == 0.2 for a in spec.aggressors)

    def test_silence(self):
        assert CrosstalkSpec.single_fext(0.0).is_silent
        assert not CrosstalkSpec.single_next(0.1).is_silent
        assert CrosstalkSpec().is_silent


class TestBitTrueSuperposition:
    def test_zero_amplitude_is_bit_identical_to_no_crosstalk(self):
        bits = prbs_sequence(7, 127)
        clean = LinkPath(_equalized_link()).pattern_displacements(bits)
        silent = LinkPath(_equalized_link(
            crosstalk=CrosstalkSpec.single_fext(0.0))).pattern_displacements(bits)
        assert np.array_equal(clean, silent)

    def test_crosstalk_adds_edge_displacement(self):
        bits = prbs_sequence(7, 127)
        clean = LinkPath(_equalized_link())
        noisy = LinkPath(_equalized_link(
            crosstalk=CrosstalkSpec.single_fext(0.2)))
        spread_clean = np.ptp(clean.ddj_population_ui(bits))
        spread_noisy = np.ptp(noisy.ddj_population_ui(bits))
        assert spread_noisy > spread_clean

    def test_waveform_cache_reused(self):
        path = LinkPath(_equalized_link(
            crosstalk=CrosstalkSpec.single_fext(0.1)))
        first = path.crosstalk_waveform(64)
        assert path.crosstalk_waveform(64) is first

    def test_aggressor_count_scales_coupled_power(self):
        one = LinkPath(_equalized_link(
            crosstalk=CrosstalkSpec.uniform(1, 0.1)))
        three = LinkPath(_equalized_link(
            crosstalk=CrosstalkSpec.uniform(3, 0.1)))
        assert np.std(three.crosstalk_waveform(64)) \
            > np.std(one.crosstalk_waveform(64))


class TestStatisticalSuperposition:
    """Satellite requirement: PDF superposition must be exact and monotone."""

    def test_zero_amplitude_eye_is_bit_identical(self):
        clean = statistical_eye(_equalized_link())
        silent = statistical_eye(_equalized_link(
            crosstalk=CrosstalkSpec.single_fext(0.0)))
        assert np.array_equal(clean.ber, silent.ber)
        assert np.array_equal(clean.noise_pmf, silent.noise_pmf)
        assert np.array_equal(clean.thresholds, silent.thresholds)

    @pytest.mark.parametrize("target_ber", [1.0e-12, 1.0e-9])
    def test_opening_monotone_non_increasing_in_amplitude(self, target_ber):
        amplitudes = (0.0, 0.05, 0.1, 0.2, 0.4)
        horizontal = []
        vertical = []
        for amplitude in amplitudes:
            eye = statistical_eye(_equalized_link(
                crosstalk=CrosstalkSpec.single_fext(amplitude)))
            horizontal.append(eye.horizontal_opening_ui(target_ber))
            vertical.append(eye.vertical_opening(target_ber))
        assert all(a >= b for a, b in zip(horizontal, horizontal[1:]))
        assert all(a >= b for a, b in zip(vertical, vertical[1:]))
        # The stress is real: the strongest aggressor visibly closes the eye.
        assert vertical[-1] < vertical[0]

    def test_large_aggressor_closes_the_eye(self):
        eye = statistical_eye(_equalized_link(
            crosstalk=CrosstalkSpec.single_fext(0.4)))
        assert eye.vertical_opening(1.0e-12) == 0.0
        lower, upper = eye.contour(1.0e-12)
        assert np.all(np.isnan(lower)) and np.all(np.isnan(upper))

    def test_two_aggressors_close_more_than_one(self):
        one = statistical_eye(_equalized_link(
            crosstalk=CrosstalkSpec.uniform(1, 0.08)))
        two = statistical_eye(_equalized_link(
            crosstalk=CrosstalkSpec.uniform(2, 0.08)))
        assert two.vertical_opening(1.0e-12) <= one.vertical_opening(1.0e-12)
