"""Tests for the lossy-channel models (frequency and time domain)."""

import numpy as np
import pytest

from repro.link import (
    ButterworthChannel,
    IdealChannel,
    LinkTimebase,
    LossyLineChannel,
    SinglePoleChannel,
)


class TestIdealChannel:
    def test_unity_response(self):
        channel = IdealChannel()
        f = np.linspace(0.0, 5e9, 11)
        assert np.allclose(channel.frequency_response(f), 1.0)

    def test_pulse_response_is_rectangle(self):
        timebase = LinkTimebase()
        pulse = IdealChannel().pulse_response(timebase, n_ui=16)
        spu = timebase.samples_per_ui
        assert pulse[:spu] == pytest.approx(np.ones(spu), abs=1e-9)
        assert pulse[spu:] == pytest.approx(np.zeros(pulse.size - spu), abs=1e-9)


class TestSinglePole:
    def test_half_power_at_cutoff(self):
        channel = SinglePoleChannel(cutoff_hz=1.0e9)
        assert channel.loss_db(1.0e9) == pytest.approx(3.0103, rel=1e-3)

    def test_loss_monotone_in_frequency(self):
        channel = SinglePoleChannel(cutoff_hz=1.0e9)
        losses = channel.loss_db(np.array([0.5e9, 1.0e9, 2.0e9, 4.0e9]))
        assert np.all(np.diff(losses) > 0.0)


class TestButterworth:
    def test_unity_dc_gain(self):
        for order in (1, 2, 3, 4):
            channel = ButterworthChannel(cutoff_hz=2.0e9, order=order)
            response = channel.frequency_response(np.array([0.0]))
            assert abs(response[0]) == pytest.approx(1.0, rel=1e-9)

    def test_3db_at_cutoff_any_order(self):
        for order in (1, 2, 3):
            channel = ButterworthChannel(cutoff_hz=2.0e9, order=order)
            assert channel.loss_db(2.0e9) == pytest.approx(3.0103, rel=1e-3)

    def test_higher_order_rolls_off_faster(self):
        f = 8.0e9
        losses = [ButterworthChannel(cutoff_hz=2.0e9, order=n).loss_db(f)
                  for n in (1, 2, 3)]
        assert losses[0] < losses[1] < losses[2]


class TestLossyLine:
    def test_loss_increases_with_frequency_and_length(self):
        line = LossyLineChannel(length_m=1.0)
        losses = line.loss_db(np.array([0.1e9, 0.5e9, 1.25e9, 2.5e9]))
        assert np.all(np.diff(losses) > 0.0)
        longer = line.with_length(2.0)
        assert longer.loss_db(1.25e9) == pytest.approx(2.0 * line.loss_db(1.25e9),
                                                       rel=1e-6)

    def test_for_loss_at_nyquist_hits_target(self):
        for target in (3.0, 8.0, 15.0):
            line = LossyLineChannel.for_loss_at_nyquist(target, 2.5e9)
            assert line.loss_db(1.25e9) == pytest.approx(target, rel=1e-6)

    def test_bulk_delay_stripped(self):
        # The pulse response must peak within a few UI of the launch, not
        # after the multi-UI flight time of the physical line.
        timebase = LinkTimebase()
        line = LossyLineChannel.for_loss_at_nyquist(10.0, 2.5e9)
        pulse = line.pulse_response(timebase, n_ui=64)
        peak_ui = np.argmax(pulse) / timebase.samples_per_ui
        assert peak_ui < 4.0

    def test_propagation_constant_positive_attenuation(self):
        line = LossyLineChannel()
        gamma, impedance = line.propagation_constant(np.array([1.0e9]))
        assert gamma.real[0] > 0.0
        assert impedance.real[0] > 0.0

    def test_pulse_energy_decreases_with_loss(self):
        timebase = LinkTimebase()
        peaks = [np.max(LossyLineChannel.for_loss_at_nyquist(loss, 2.5e9)
                        .pulse_response(timebase, n_ui=64))
                 for loss in (2.0, 8.0, 14.0)]
        assert peaks[0] > peaks[1] > peaks[2]
