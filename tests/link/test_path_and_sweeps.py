"""Link-driven CDR runs: backend equivalence, sweeps, statistics, specs."""

import numpy as np
import pytest

from repro.datapath import JitterSpec, prbs_sequence
from repro.link import (
    LinkCdrChannel,
    LinkConfig,
    LmsDfe,
    LossyLineChannel,
    RxCtle,
    TxFfe,
    stream_eye_diagram,
)
from repro.specs import infiniband_rx_eye_mask
from repro.statistical.ber_model import GatedOscillatorBerModel
from repro.sweep import (
    ber_vs_channel_loss_sweep,
    ber_vs_ctle_peaking_sweep,
    equalization_ablation_sweep,
)

RESIDUAL = JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.01)


def _equalized(channel) -> LinkConfig:
    return LinkConfig(channel=channel,
                      tx_ffe=TxFfe.de_emphasis(post_db=3.5),
                      rx_ctle=RxCtle(peaking_db=6.0))


class TestLinkCdrChannel:
    def test_backends_identical_behind_link(self):
        bits = prbs_sequence(7, 1200)
        link = _equalized(LossyLineChannel.for_loss_at_nyquist(12.0))
        results = {}
        for backend in ("fast", "event"):
            result = LinkCdrChannel(link, backend=backend).run(
                bits, jitter=RESIDUAL, rng=np.random.default_rng(2),
                pattern_period=127)
            results[backend] = result
        fast, event = results["fast"], results["event"]
        assert np.array_equal(fast.sample_times_s, event.sample_times_s)
        assert np.array_equal(fast.sampled_bits, event.sampled_bits)
        assert fast.ber().errors == event.ber().errors

    def test_equalization_reopens_closed_eye(self):
        bits = prbs_sequence(7, 1500)
        channel = LossyLineChannel.for_loss_at_nyquist(16.0)
        raw = LinkCdrChannel(LinkConfig(channel=channel)).run(
            bits, jitter=RESIDUAL, rng=np.random.default_rng(3),
            pattern_period=127)
        equalized = LinkCdrChannel(_equalized(channel)).run(
            bits, jitter=RESIDUAL, rng=np.random.default_rng(3),
            pattern_period=127)
        assert raw.ber().errors > 0
        assert equalized.ber().errors < raw.ber().errors

    def test_ideal_link_matches_direct_stimulus(self):
        from repro.fastpath import FastCdrChannel

        bits = prbs_sequence(7, 800)
        jitter = JitterSpec(dj_ui_pp=0.2, rj_ui_rms=0.01)
        via_link = LinkCdrChannel(LinkConfig(), backend="fast").run(
            bits, jitter=jitter, rng=np.random.default_rng(9))
        direct = FastCdrChannel().run(
            bits, jitter=jitter, rng=np.random.default_rng(9))
        assert np.array_equal(via_link.sampled_bits, direct.sampled_bits)
        assert np.array_equal(via_link.sample_times_s, direct.sample_times_s)


class TestLinkSweeps:
    def test_loss_sweep_deterministic_across_workers(self):
        losses = np.array([6.0, 12.0, 16.0])
        serial = ber_vs_channel_loss_sweep(losses, n_bits=600, seed=4, workers=1)
        parallel = ber_vs_channel_loss_sweep(losses, n_bits=600, seed=4, workers=3)
        assert np.array_equal(serial.errors, parallel.errors)
        assert np.array_equal(serial.compared, parallel.compared)

    def test_loss_sweep_backend_equivalence(self):
        losses = np.array([8.0, 16.0])
        fast = ber_vs_channel_loss_sweep(losses, n_bits=600, seed=4,
                                         workers=1, backend="fast")
        event = ber_vs_channel_loss_sweep(losses, n_bits=600, seed=4,
                                          workers=1, backend="event")
        assert np.array_equal(fast.errors, event.errors)

    def test_loss_sweep_degrades_monotonically(self):
        losses = np.array([6.0, 14.0, 18.0])
        result = ber_vs_channel_loss_sweep(losses, n_bits=1500, seed=0, workers=1)
        errors = result.errors.ravel()
        assert errors[0] == 0
        assert errors[1] < errors[2]
        assert errors[2] > 0

    def test_equalized_sweep_beats_raw(self):
        losses = np.array([14.0, 17.0])
        raw = ber_vs_channel_loss_sweep(losses, n_bits=1200, seed=1, workers=1)
        equalized = ber_vs_channel_loss_sweep(
            losses, link=_equalized(LossyLineChannel()), n_bits=1200,
            seed=1, workers=1)
        assert equalized.total_errors < raw.total_errors

    def test_ctle_peaking_sweep_improves_from_zero(self):
        result = ber_vs_ctle_peaking_sweep(
            np.array([0.0, 6.0]), loss_db=15.0, n_bits=1200, seed=2, workers=1)
        errors = result.errors.ravel()
        assert errors[0] > errors[1]

    def test_ablation_orders_lineups(self):
        result = equalization_ablation_sweep(
            15.0, n_bits=1200, seed=2, workers=1, dfe=LmsDfe())
        table = result.as_dict()
        assert set(table) == {"unequalized", "ffe", "ctle", "ffe+ctle",
                              "ffe+ctle+dfe"}
        assert result.errors[0] == result.errors.max()
        assert result.errors[3] <= result.errors[0]


class TestStatisticalHandoff:
    def test_ddj_decomposition_tracks_loss(self):
        bits = prbs_sequence(9)
        from repro.link import LinkPath

        mild = LinkPath(LinkConfig(
            channel=LossyLineChannel.for_loss_at_nyquist(4.0)))
        harsh = LinkPath(LinkConfig(
            channel=LossyLineChannel.for_loss_at_nyquist(12.0)))
        fit_mild = mild.ddj_decomposition(bits)
        fit_harsh = harsh.ddj_decomposition(bits)
        assert fit_harsh.dj_pp_ui > fit_mild.dj_pp_ui
        assert fit_mild.dj_pp_ui >= 0.0

    def test_jitter_budget_feeds_analytic_model(self):
        bits = prbs_sequence(9)
        from repro.link import LinkPath

        mild = LinkPath(LinkConfig(
            channel=LossyLineChannel.for_loss_at_nyquist(4.0)))
        harsh = LinkPath(LinkConfig(
            channel=LossyLineChannel.for_loss_at_nyquist(12.0)))
        ber_mild = GatedOscillatorBerModel(mild.jitter_budget(bits)).ber()
        ber_harsh = GatedOscillatorBerModel(harsh.jitter_budget(bits)).ber()
        assert ber_harsh >= ber_mild


class TestEyeMaskCompliance:
    def test_equalization_restores_mask_compliance(self):
        bits = prbs_sequence(7, 1000)
        channel = LossyLineChannel.for_loss_at_nyquist(16.0)
        mask = infiniband_rx_eye_mask()

        raw_stream = LinkCdrChannel(LinkConfig(channel=channel)).run(
            bits, jitter=RESIDUAL, rng=np.random.default_rng(6),
            pattern_period=127).stream
        eq_stream = LinkCdrChannel(_equalized(channel)).run(
            bits, jitter=RESIDUAL, rng=np.random.default_rng(6),
            pattern_period=127).stream

        raw_opening = stream_eye_diagram(raw_stream).eye_opening_ui()
        eq_opening = stream_eye_diagram(eq_stream).eye_opening_ui()
        assert eq_opening > raw_opening
        assert not mask.passes(raw_opening)
        assert mask.passes(eq_opening)

    def test_mask_geometry(self):
        mask = infiniband_rx_eye_mask()
        assert mask.minimum_opening_ui == pytest.approx(0.30)
        assert mask.margin_ui(0.5) == pytest.approx(0.20)
        with pytest.raises(ValueError):
            type(mask)(x1_ui=0.6)
