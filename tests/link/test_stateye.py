"""Statistical eye solver: surface shape, metrics, and bit-true cross-validation."""

import numpy as np
import pytest

from repro.core.config import CdrChannelConfig
from repro.datapath.cid import measured_run_distribution
from repro.datapath.prbs import prbs_sequence
from repro.gates.ring import GccoParameters
from repro.link import (
    IdealChannel,
    LinkCdrChannel,
    LinkConfig,
    LinkPath,
    LmsDfe,
    LossyLineChannel,
    RxCtle,
    StatisticalEyeSolver,
    TxFfe,
    statistical_eye,
)
from repro.statistical.ber_model import CdrJitterBudget


def _equalized_link(loss_db: float = 10.0, **overrides) -> LinkConfig:
    values = dict(
        channel=LossyLineChannel.for_loss_at_nyquist(loss_db),
        tx_ffe=TxFfe.de_emphasis(post_db=3.5),
        rx_ctle=RxCtle(peaking_db=6.0),
    )
    values.update(overrides)
    return LinkConfig(**values)


class TestSurfaceShape:
    def test_grid_dimensions(self):
        eye = statistical_eye(_equalized_link())
        spu = LinkConfig().timebase.samples_per_ui
        assert eye.phases_ui.shape == (spu,)
        assert eye.ber.shape == (spu, eye.thresholds.size)
        assert np.all((eye.ber >= 0.0) & (eye.ber <= 1.0))

    def test_ideal_channel_has_full_rails(self):
        # No ISI: the noise PDF is a delta, the rails sit at ±1, and every
        # threshold strictly inside them is error-free in amplitude.
        eye = statistical_eye(LinkConfig(channel=IdealChannel()))
        assert eye.main_cursor == pytest.approx(np.ones_like(eye.main_cursor))
        assert eye.vertical_opening(1.0e-12) > 1.8
        centre = np.argmin(np.abs(eye.thresholds))
        assert np.all(eye.amplitude_ber[:, centre] == 0.0)

    def test_isi_shrinks_vertical_opening(self):
        mild = statistical_eye(_equalized_link(6.0))
        harsh = statistical_eye(_equalized_link(16.0))
        assert harsh.vertical_opening(1.0e-12) < mild.vertical_opening(1.0e-12)

    def test_noise_pdf_is_normalised(self):
        eye = statistical_eye(_equalized_link())
        pdf = eye.noise_pdf(0.5)
        assert pdf.total_probability == pytest.approx(1.0, abs=1e-9)
        assert pdf.std() > 0.0

    def test_timing_walls_come_from_the_analytic_model(self):
        # With a frequency offset the timing term dominates near the late
        # eye edge — exactly the asymmetry the gated-oscillator model shows.
        budget = CdrJitterBudget(dj_ui_pp=0.0, rj_ui_rms=0.0,
                                 osc_sigma_ui_per_bit=0.0,
                                 frequency_offset=0.1)
        eye = statistical_eye(_equalized_link(), budget=budget)
        assert eye.timing_ber[-1] > eye.timing_ber[len(eye.timing_ber) // 2]

    def test_best_operating_point_is_inside_the_eye(self):
        eye = statistical_eye(_equalized_link())
        phase, ber = eye.best_operating_point()
        assert 0.0 < phase < 1.0
        assert ber <= eye.ber_at(0.9, 0.0)

    def test_best_operating_point_centres_an_open_plateau(self):
        # A wide-open eye floors at the same minimal BER over a span of
        # phases; the reported operating point must sit strictly inside
        # that plateau (margin both sides), not at its first phase.
        eye = statistical_eye(_equalized_link(6.0))
        phase, ber = eye.best_operating_point()
        column = int(np.argmin(np.abs(eye.thresholds)))
        plateau = eye.phases_ui[eye.ber[:, column] == ber]
        assert plateau.size > 2  # the scenario really is a plateau
        assert plateau.min() < phase < plateau.max()

    def test_contour_band_is_symmetricish_at_centre(self):
        eye = statistical_eye(_equalized_link())
        lower, upper = eye.contour(1.0e-12)
        centre = len(eye.phases_ui) // 2
        assert np.isfinite(lower[centre]) and np.isfinite(upper[centre])
        assert lower[centre] < 0.0 < upper[centre]

    def test_amplitude_noise_shrinks_opening(self):
        clean = statistical_eye(_equalized_link())
        noisy = statistical_eye(_equalized_link(), amplitude_noise_rms=0.05)
        assert noisy.vertical_opening(1.0e-12) < clean.vertical_opening(1.0e-12)


class TestEqualizationInteraction:
    def test_dfe_improves_heavily_lossy_eye(self):
        without = statistical_eye(_equalized_link(18.0))
        with_dfe = statistical_eye(_equalized_link(18.0, dfe=LmsDfe(n_taps=2)))
        assert with_dfe.vertical_opening(1.0e-9) \
            >= without.vertical_opening(1.0e-9)

    def test_unequalized_heavy_loss_closes_the_eye(self):
        eye = statistical_eye(LinkConfig(
            channel=LossyLineChannel.for_loss_at_nyquist(20.0)))
        assert eye.vertical_opening(1.0e-12) == 0.0


class TestCrossValidation:
    """Pin the statistical eye against the bit-true backends.

    The configuration drives timing errors with a deterministic oscillator
    frequency offset over a short PRBS7 pattern, where the bit-true
    backends count errors reliably in 20k bits.  The analytic model counts
    one error per sampling-overshoot event while the bit-true counter
    books the resulting dropped-bit slip as roughly two mismatches, so the
    agreement criterion is the acceptance band of a factor of two.
    """

    LOSS_DB = 10.0
    OFFSET = 0.12
    N_BITS = 20000
    SEED = 3

    def _measured_ber(self, backend: str) -> tuple[int, float]:
        link = _equalized_link(self.LOSS_DB)
        config = CdrChannelConfig(
            oscillator=GccoParameters(jitter_sigma_fraction=0.0),
            frequency_offset=self.OFFSET)
        channel = LinkCdrChannel(link, config=config, backend=backend)
        result = channel.run(prbs_sequence(7, self.N_BITS),
                             rng=np.random.default_rng(self.SEED),
                             pattern_period=127)
        measurement = result.ber()
        return measurement.errors, measurement.errors / measurement.compared_bits

    def _stateye_ber(self) -> float:
        pattern = prbs_sequence(7, 127)
        budget = CdrJitterBudget(dj_ui_pp=0.0, rj_ui_rms=0.0,
                                 osc_sigma_ui_per_bit=0.0,
                                 frequency_offset=self.OFFSET)
        eye = statistical_eye(
            _equalized_link(self.LOSS_DB), budget=budget,
            run_lengths=measured_run_distribution(pattern, max_run=7))
        return eye.ber_at(0.5, 0.0)

    def test_statistical_eye_matches_event_backend_within_2x(self):
        errors, measured = self._measured_ber("event")
        assert errors > 100  # enough statistics for a meaningful ratio
        predicted = self._stateye_ber()
        assert 0.5 * measured <= predicted <= 2.0 * measured

    def test_event_and_fast_backends_agree_behind_the_link(self):
        assert self._measured_ber("event") == self._measured_ber("fast")


class TestSolverDetails:
    def test_solver_accepts_prepared_path(self):
        path = LinkPath(_equalized_link())
        eye = StatisticalEyeSolver(path).solve()
        assert eye.ber.ndim == 2

    def test_cursor_matrix_shape(self):
        solver = StatisticalEyeSolver(_equalized_link(), span_ui=48)
        cursors = solver.cursor_matrix()
        assert cursors.shape == (48, LinkConfig().timebase.samples_per_ui)

    def test_voltage_resolution_controls_grid(self):
        coarse = StatisticalEyeSolver(_equalized_link(), voltage_step=0.02)
        fine = StatisticalEyeSolver(_equalized_link(), voltage_step=0.005)
        assert fine.solve().thresholds.size > coarse.solve().thresholds.size

    def test_default_budget_zeroes_deterministic_jitter(self):
        solver = StatisticalEyeSolver(_equalized_link())
        assert solver.budget.dj_ui_pp == 0.0
        assert solver.budget.rj_ui_rms == CdrJitterBudget().rj_ui_rms

    def test_noise_pdf_variance_matches_cursor_power(self):
        # The ISI distribution is a sum of independent ±c_k terms, so its
        # variance must equal sum(c_k^2) — fractional-shift splitting keeps
        # cursors far below the grid step contributing their exact power.
        solver = StatisticalEyeSolver(_equalized_link(14.0), voltage_step=0.01)
        cursors = solver.cursor_matrix()
        main_row = int(np.argmax(np.max(np.abs(cursors), axis=1)))
        isi = np.delete(cursors, main_row, axis=0)
        eye = solver.solve()
        for phase_index in (0, 16, 31):
            expected = float(np.sum(isi[:, phase_index] ** 2))
            pdf = eye.noise_pdf(eye.phases_ui[phase_index])
            assert pdf.variance() == pytest.approx(expected, rel=1e-6,
                                                   abs=1e-12)

    def test_sub_step_cursors_survive_a_coarse_grid(self):
        # Regression: nearest-bin rounding used to drop every cursor below
        # half a grid step, understating the noise on coarse grids.
        fine = StatisticalEyeSolver(_equalized_link(14.0),
                                    voltage_step=0.002).solve()
        coarse = StatisticalEyeSolver(_equalized_link(14.0),
                                      voltage_step=0.04).solve()
        assert coarse.noise_pdf(0.5).std() \
            == pytest.approx(fine.noise_pdf(0.5).std(), rel=0.1)
