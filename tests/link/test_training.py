"""Link-training subsystem: objective caching, search, determinism, cross-check.

The acceptance configuration is the pinned lossy PRBS7 channel of
``tests/link/test_stateye.py`` (10 dB at Nyquist); the cross-check stress
adds the deterministic oscillator frequency offset under which the
bit-true backends count errors reliably.
"""

import numpy as np
import pytest

from repro.core.config import CdrChannelConfig
from repro.datapath.cid import measured_run_distribution
from repro.datapath.prbs import prbs_sequence
from repro.gates.ring import GccoParameters
from repro.link import (
    LinkConfig,
    LinkTrainer,
    LmsDfe,
    LossyLineChannel,
    RxCtle,
    StatEyeObjective,
    TrainingBudget,
    TxFfe,
    train_link,
)
from repro.statistical.ber_model import CdrJitterBudget

PINNED_LOSS_DB = 10.0
CROSS_CHECK_OFFSET = 0.15


def pinned_link(**overrides) -> LinkConfig:
    values = dict(channel=LossyLineChannel.for_loss_at_nyquist(PINNED_LOSS_DB))
    values.update(overrides)
    return LinkConfig(**values)


def offset_budget() -> CdrJitterBudget:
    return CdrJitterBudget(
        dj_ui_pp=0.0,
        rj_ui_rms=0.0,
        osc_sigma_ui_per_bit=0.0,
        frequency_offset=CROSS_CHECK_OFFSET,
    )


class TestObjective:
    def test_cache_makes_repeat_evaluations_free(self):
        objective = StatEyeObjective(pinned_link())
        stages = (TxFfe.de_emphasis(post_db=3.5), RxCtle(peaking_db=6.0), None)
        first = objective.evaluate(*stages)
        assert objective.evaluations == 1
        assert objective.evaluate(*stages) == first
        assert objective.evaluations == 1

    def test_equalization_scores_above_no_equalization(self):
        objective = StatEyeObjective(pinned_link())
        bare = objective.evaluate(None, None, None)
        equalized = objective.evaluate(
            TxFfe.de_emphasis(post_db=3.5), RxCtle(peaking_db=6.0), None)
        assert equalized.score > bare.score

    def test_score_is_phase_aware(self):
        objective = StatEyeObjective(pinned_link(), budget=offset_budget())
        score = objective.evaluate(None, RxCtle(peaking_db=6.0), None)
        assert 0.0 < score.best_phase_ui < 1.0
        assert score.ber <= score.ber_nominal

    def test_fold_ddj_penalises_displaced_edges(self):
        # An under-equalized lineup leaves real data-dependent jitter on
        # its edges; folding it into the timing walls must cost score
        # *strictly* (a regression that drops the fold would tie).
        stages = (None, RxCtle(peaking_db=3.0), None)
        folded = StatEyeObjective(pinned_link(), fold_ddj=True)
        amplitude_only = StatEyeObjective(pinned_link(), fold_ddj=False)
        assert folded.evaluate(*stages).score \
            < amplitude_only.evaluate(*stages).score

    def test_validation(self):
        with pytest.raises(ValueError):
            StatEyeObjective(pinned_link(), target_ber=0.0)
        with pytest.raises(ValueError):
            StatEyeObjective(pinned_link(), horizontal_weight=-1.0)


class TestTrainingBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingBudget(tx_post_db=())
        with pytest.raises(ValueError):
            TrainingBudget(refine_shrink=1.0)
        with pytest.raises(ValueError):
            TrainingBudget(max_evaluations=0)

    def test_with_max_evaluations(self):
        budget = TrainingBudget().with_max_evaluations(7)
        assert budget.max_evaluations == 7

    def test_initial_step_is_half_mean_spacing(self):
        budget = TrainingBudget(ctle_peaking_db=(0.0, 3.0, 6.0, 9.0))
        assert budget.initial_step(budget.ctle_peaking_db) == pytest.approx(1.5)
        assert budget.initial_step((4.0,)) == 1.0


class TestTraining:
    def test_trained_lineup_beats_best_coarse_fixed_lineup(self):
        trained = train_link(pinned_link())
        assert trained.eye.score > trained.coarse_eye.score
        assert trained.eye.vertical >= trained.coarse_eye.vertical
        assert trained.eye.horizontal_ui >= trained.coarse_eye.horizontal_ui

    def test_training_is_deterministic(self):
        first = train_link(pinned_link())
        second = train_link(pinned_link())
        assert first == second

    def test_budget_caps_evaluations(self):
        # The baseline seed solve is exempt, so the total is cap + 1.
        training = TrainingBudget(max_evaluations=5)
        trained = train_link(pinned_link(), training=training)
        assert trained.n_evaluations <= 6

    def test_capped_search_still_returns_a_lineup(self):
        # Budget 1: the baseline seed plus exactly one searched candidate.
        trained = train_link(pinned_link(),
                             training=TrainingBudget(max_evaluations=1))
        assert trained.n_evaluations == 2
        assert trained.eye.score >= trained.coarse_eye.score

    def test_baseline_kept_when_search_cannot_beat_it(self):
        # A well-equalized link with a search space that only contains
        # (near-)unequalized candidates: the fixed baseline must win and
        # be returned unchanged, with out-of-plane (None) coordinates.
        link = pinned_link(tx_ffe=TxFfe.de_emphasis(post_db=3.5),
                           rx_ctle=RxCtle(peaking_db=6.0))
        training = TrainingBudget(tx_post_db=(0.0,), ctle_peaking_db=(0.0,),
                                  refine_rounds=0, max_evaluations=1)
        trained = train_link(link, training=training)
        assert trained.label == "trained(baseline kept)"
        assert trained.tx_post_db is None
        assert trained.ctle_peaking_db is None
        assert trained.tx_ffe == link.tx_ffe
        assert trained.rx_ctle == link.rx_ctle
        assert trained.eye.score > trained.coarse_eye.score
        # The kept-baseline representation keeps the determinism contract.
        assert train_link(link, training=training) == trained

    def test_refinement_can_leave_the_coarse_grid(self):
        trained = train_link(pinned_link())
        grid = set(TrainingBudget().ctle_peaking_db)
        assert trained.ctle_peaking_db not in grid

    def test_dfe_weights_recorded(self):
        trained = train_link(pinned_link(), dfe=LmsDfe(n_taps=2))
        assert len(trained.dfe_weights) == 2
        assert trained.dfe_adaptation is not None
        assert trained.dfe_adaptation.converged

    def test_decision_directed_dfe_trains_too(self):
        trained = train_link(pinned_link(),
                             dfe=LmsDfe(n_taps=2, decision_directed=True))
        assert len(trained.dfe_weights) == 2
        assert trained.dfe_adaptation.final_decision_error_rate == 0.0

    def test_trained_lineup_drops_into_a_link_config(self):
        trained = train_link(pinned_link())
        config = trained.apply(pinned_link())
        assert config.rx_ctle == trained.rx_ctle
        assert config.tx_ffe == trained.tx_ffe
        assert config.channel == pinned_link().channel

    def test_training_reopens_a_closed_eye(self):
        link = LinkConfig(channel=LossyLineChannel.for_loss_at_nyquist(18.0))
        objective = StatEyeObjective(link)
        closed = objective.evaluate(None, None, None)
        trained = train_link(link)
        assert closed.vertical == 0.0
        assert trained.eye.vertical > 0.0

    def test_score_fixed_reports_the_links_own_lineup(self):
        link = pinned_link(tx_ffe=TxFfe.de_emphasis(post_db=3.5),
                           rx_ctle=RxCtle(peaking_db=6.0))
        trainer = LinkTrainer(link)
        fixed = trainer.score_fixed()
        direct = trainer.objective.evaluate(link.tx_ffe, link.rx_ctle, None)
        assert fixed == direct


class TestCrossCheck:
    """Bit-true validation on the pinned channel under a 15 % offset."""

    def _trainer(self) -> LinkTrainer:
        return LinkTrainer(
            pinned_link(),
            budget=offset_budget(),
            run_lengths=measured_run_distribution(prbs_sequence(7, 127),
                                                  max_run=7),
        )

    def _config(self) -> CdrChannelConfig:
        return CdrChannelConfig(
            oscillator=GccoParameters(jitter_sigma_fraction=0.0),
            frequency_offset=CROSS_CHECK_OFFSET)

    def test_cross_check_within_established_2x_band(self):
        trainer = self._trainer()
        trained = trainer.train()
        check = trainer.cross_check(trained, config=self._config(),
                                    n_bits=20000, seed=3)
        assert check.errors > 100  # enough statistics for a meaningful ratio
        assert check.within(2.0)

    def test_backends_agree_behind_the_trained_link(self):
        trainer = self._trainer()
        trained = trainer.train()
        checks = [
            trainer.cross_check(trained, config=self._config(),
                                n_bits=6000, seed=3, backend=backend)
            for backend in ("event", "fast")
        ]
        assert checks[0].errors == checks[1].errors
        assert checks[0].error_events == checks[1].error_events

    def test_zero_error_run_bounds_the_prediction(self):
        # A clean configuration makes no errors; the check then passes
        # exactly when the prediction sits below the resolution limit.
        trainer = LinkTrainer(pinned_link())
        trained = trainer.train()
        check = trainer.cross_check(trained, n_bits=4000, seed=3)
        assert check.errors == 0
        assert check.within(2.0)
        assert check.ratio == float("inf")
