"""Round-trip and edge-extraction tests (waveform -> NrzEdgeStream)."""

import numpy as np
import pytest

from repro.datapath import JitterSpec, generate_edge_times, prbs_sequence, waveform_from_edges
from repro.link import (
    IdealChannel,
    LinkConfig,
    LinkPath,
    LinkTimebase,
    LossyLineChannel,
    circular_transition_positions,
    edge_stream_from_waveform,
    match_crossings_ui,
)
from repro.link.edges import MISSING_EDGE_DISPLACEMENT_UI


class TestTransitionPositions:
    def test_circular_wrap(self):
        positions = circular_transition_positions([1, 1, 0, 0])
        # Position 0 is a transition because the pattern repeats 0 -> 1.
        assert positions.tolist() == [0, 2]

    def test_constant_pattern_has_none(self):
        assert circular_transition_positions([1, 1, 1]).size == 0


class TestMatchCrossings:
    def test_exact_match_snaps_to_zero(self):
        ideal = np.array([1.0e-9, 3.0e-9])
        displacements = match_crossings_ui(ideal.copy(), ideal, 4.0e-10)
        assert displacements.tolist() == [0.0, 0.0]

    def test_constant_delay_is_centred_away(self):
        ideal = np.arange(10) * 1.2e-9
        crossings = ideal + 0.15e-9
        displacements = match_crossings_ui(crossings, ideal, 4.0e-10)
        assert displacements == pytest.approx(np.zeros(10), abs=1e-9)

    def test_missing_crossing_marked(self):
        ideal = np.array([0.0, 1.0e-9, 2.0e-9])
        crossings = np.array([0.0, 2.0e-9])  # middle transition lost
        displacements = match_crossings_ui(crossings, ideal, 4.0e-10)
        assert displacements[1] == MISSING_EDGE_DISPLACEMENT_UI
        assert displacements[0] == 0.0 and displacements[2] == 0.0


class TestWaveformRoundTrip:
    """Satellite requirement: ``waveform_from_edges`` <-> edge extraction."""

    def _render_midpoint(self, stream, samples_per_ui):
        """Render a stream with waveform_from_edges on the midpoint grid."""
        step = stream.bit_period_s / samples_per_ui
        time_axis, levels = waveform_from_edges(stream, step)
        # waveform_from_edges samples the level that holds over
        # [t, t + step); shift to midpoints and map 0/1 -> -1/+1.
        return time_axis + 0.5 * step, 2.0 * levels.astype(float) - 1.0

    def test_ideal_round_trip_bit_exact(self):
        bits = prbs_sequence(7, 500)
        stream = generate_edge_times(
            bits, jitter=JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0),
            start_time_s=1.6e-9)
        time_axis, waveform = self._render_midpoint(stream, 32)
        recovered = edge_stream_from_waveform(
            time_axis, waveform, bits, start_time_s=1.6e-9)
        assert np.array_equal(recovered.edge_times_s, stream.edge_times_s)
        assert np.array_equal(recovered.edge_bit_index, stream.edge_bit_index)
        assert np.array_equal(recovered.bits, stream.bits)

    def test_jittered_round_trip_within_half_sample(self):
        rng = np.random.default_rng(21)
        bits = prbs_sequence(9, 400)
        jitter = JitterSpec(dj_ui_pp=0.1, rj_ui_rms=0.01)
        stream = generate_edge_times(bits, jitter=jitter, rng=rng,
                                     start_time_s=1.6e-9)
        samples_per_ui = 32
        time_axis, waveform = self._render_midpoint(stream, samples_per_ui)
        recovered = edge_stream_from_waveform(
            time_axis, waveform, bits, start_time_s=1.6e-9)
        step = stream.bit_period_s / samples_per_ui
        # Each edge is quantised inside its sample cell (half a step) and
        # the whole population carries the median-centring shift (bounded
        # by another half step), so no edge moves by more than one step.
        offsets = recovered.edge_times_s - stream.edge_times_s
        assert np.max(np.abs(offsets)) <= step + 1e-15

    def test_residual_jitter_draws_match_direct_path(self):
        # Link extraction + JitterSpec composition must be bit-for-bit the
        # direct generate_edge_times stream for an ideal channel.
        bits = prbs_sequence(7, 300)
        jitter = JitterSpec(dj_ui_pp=0.2, rj_ui_rms=0.02,
                            sj_amplitude_ui_pp=0.1, sj_frequency_hz=100e6)
        reference = generate_edge_times(
            bits, jitter=jitter, rng=np.random.default_rng(5),
            start_time_s=1.6e-9)
        ideal = generate_edge_times(
            bits, jitter=JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0),
            start_time_s=1.6e-9)
        time_axis, waveform = self._render_midpoint(ideal, 32)
        recovered = edge_stream_from_waveform(
            time_axis, waveform, bits, start_time_s=1.6e-9,
            jitter=jitter, rng=np.random.default_rng(5))
        assert np.array_equal(recovered.edge_times_s, reference.edge_times_s)


class TestLinkPathTransmit:
    def test_ideal_path_bit_exact(self):
        bits = prbs_sequence(7, 400)
        path = LinkPath(LinkConfig())
        start = 4 * path.config.timebase.unit_interval_s
        stream = path.transmit(bits, start_time_s=start, pattern_period=127)
        reference = generate_edge_times(
            bits, jitter=JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0),
            start_time_s=start)
        assert np.array_equal(stream.edge_times_s, reference.edge_times_s)

    def test_pattern_table_reused_across_calls(self):
        path = LinkPath(LinkConfig(channel=LossyLineChannel.for_loss_at_nyquist(8.0)))
        bits = prbs_sequence(7, 254)
        path.transmit(bits, pattern_period=127)
        assert len(path._pattern_cache) == 1
        path.transmit(prbs_sequence(7, 508), pattern_period=127)
        assert len(path._pattern_cache) == 1  # same pattern, no recompute

    def test_pattern_period_must_tile(self):
        path = LinkPath(LinkConfig())
        bits = np.array([0, 1, 1, 0, 1, 1, 1, 0], dtype=np.uint8)
        with pytest.raises(ValueError):
            path.transmit(bits, pattern_period=3)

    def test_lossy_channel_produces_ddj(self):
        bits = prbs_sequence(7)
        lossy = LinkPath(LinkConfig(
            channel=LossyLineChannel.for_loss_at_nyquist(10.0)))
        population = lossy.ddj_population_ui(bits)
        assert population.size == circular_transition_positions(bits).size
        assert population.max() - population.min() > 0.05
        ideal = LinkPath(LinkConfig(channel=IdealChannel()))
        assert np.abs(ideal.ddj_population_ui(bits)).max() == 0.0

    def test_displacements_grow_with_loss(self):
        bits = prbs_sequence(7)
        spreads = []
        for loss in (4.0, 8.0, 12.0):
            path = LinkPath(LinkConfig(
                channel=LossyLineChannel.for_loss_at_nyquist(loss)))
            population = path.ddj_population_ui(bits)
            spreads.append(population.max() - population.min())
        assert spreads[0] < spreads[1] < spreads[2]

    def test_timebase_resolution_convergence(self):
        # The displacement table must be stable against the grid density.
        bits = prbs_sequence(7)
        tables = []
        for spu in (16, 32, 64):
            path = LinkPath(LinkConfig(
                channel=LossyLineChannel.for_loss_at_nyquist(8.0),
                timebase=LinkTimebase(samples_per_ui=spu)))
            tables.append(path.pattern_displacements(bits))
        assert tables[1] == pytest.approx(tables[2], abs=2e-3)
        assert tables[0] == pytest.approx(tables[2], abs=5e-3)
