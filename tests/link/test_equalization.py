"""Tests for the TX FFE, RX CTLE and LMS DFE equalizer stages."""

import numpy as np
import pytest

from repro.link import LinkTimebase, LmsDfe, RxCtle, TxFfe
from repro.link.isi import nrz_symbol_levels


class TestTxFfe:
    def test_de_emphasis_taps_normalised(self):
        ffe = TxFfe.de_emphasis(pre_db=1.0, post_db=3.5)
        assert sum(abs(t) for t in ffe.taps) == pytest.approx(1.0)
        assert ffe.taps[ffe.main_cursor] > 0.0

    def test_post_tap_negative(self):
        ffe = TxFfe.de_emphasis(post_db=3.5)
        assert ffe.taps[-1] < 0.0

    def test_apply_matches_frequency_response(self):
        # Circular FIR in the symbol domain == multiplication in the
        # frequency domain on the pattern's discrete grid.
        rng = np.random.default_rng(7)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 64))
        ffe = TxFfe.de_emphasis(pre_db=1.0, post_db=4.0)
        direct = ffe.apply_to_symbols(symbols)
        ui = 4.0e-10
        freqs = np.fft.rfftfreq(symbols.size, d=ui)
        via_fft = np.fft.irfft(
            np.fft.rfft(symbols) * ffe.frequency_response(freqs, ui),
            symbols.size)
        assert direct == pytest.approx(via_fft, abs=1e-12)

    def test_repeated_bits_attenuated_vs_transitions(self):
        # De-emphasis lowers the steady-state swing, keeps transition swing.
        ffe = TxFfe.de_emphasis(post_db=6.0)
        steady = ffe.apply_to_symbols(np.ones(8))
        assert np.all(np.abs(steady) < 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TxFfe(taps=())
        with pytest.raises(ValueError):
            TxFfe(taps=(0.5, 0.5), main_cursor=2)


class TestRxCtle:
    def test_unity_dc_gain(self):
        ctle = RxCtle(peaking_db=9.0)
        response = ctle.frequency_response(np.array([0.0]))
        assert abs(response[0]) == pytest.approx(1.0, rel=1e-12)

    def test_peaking_boosts_near_peak_frequency(self):
        ctle = RxCtle(peaking_db=6.0, peak_frequency_hz=1.25e9)
        gain = np.abs(ctle.frequency_response(np.array([1.25e9])))[0]
        assert gain > 10.0 ** (0.5 * 6.0 / 20.0)  # well above half the boost

    def test_zero_peaking_is_plain_bandwidth_rolloff(self):
        ctle = RxCtle(peaking_db=0.0, bandwidth_hz=7.5e9)
        gains = np.abs(ctle.frequency_response(np.array([0.0, 1.25e9, 7.5e9])))
        assert np.all(np.diff(gains) < 0.0)
        assert gains[2] == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-3)

    def test_more_peaking_more_boost(self):
        f = np.array([1.25e9])
        gains = [np.abs(RxCtle(peaking_db=p).frequency_response(f))[0]
                 for p in (0.0, 3.0, 6.0, 9.0)]
        assert np.all(np.diff(gains) > 0.0)

    def test_bandwidth_must_exceed_peak(self):
        with pytest.raises(ValueError):
            RxCtle(peak_frequency_hz=2.0e9, bandwidth_hz=1.0e9)


class TestLmsDfe:
    def _isi_samples(self, symbols, post_cursors):
        """UI samples with known post-cursor ISI added."""
        samples = symbols.astype(float).copy()
        for tap_index, weight in enumerate(post_cursors, start=1):
            samples += weight * np.roll(symbols, tap_index)
        return samples

    def test_lms_recovers_post_cursor_taps(self):
        rng = np.random.default_rng(3)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 127))
        true_taps = [0.25, -0.1]
        samples = self._isi_samples(symbols, true_taps)
        dfe = LmsDfe(n_taps=2, step_size=0.02, n_epochs=60)
        adaptation = dfe.adapt(samples, symbols)
        assert adaptation.weights == pytest.approx(true_taps, abs=0.02)
        assert adaptation.error_rms_per_epoch[-1] < 0.05
        assert adaptation.converged

    def test_feedback_waveform_cancels_isi_at_centres(self):
        rng = np.random.default_rng(4)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 64))
        samples = self._isi_samples(symbols, [0.3])
        dfe = LmsDfe(n_taps=1, step_size=0.03, n_epochs=60)
        adaptation = dfe.adapt(samples, symbols)
        spu = 8
        waveform = np.repeat(samples, spu)
        corrected = waveform - dfe.feedback_waveform(symbols, adaptation.weights, spu)
        centre = corrected[spu // 2::spu]
        assert np.max(np.abs(centre - symbols)) < 0.05

    def test_needs_enough_training_symbols(self):
        dfe = LmsDfe(n_taps=4)
        with pytest.raises(ValueError):
            dfe.adapt(np.ones(3), np.ones(3))

    def test_converges_under_additive_noise(self):
        # Regression for the adaptation tests' blind spot: every earlier
        # test trained on noiseless samples.  With additive Gaussian noise
        # LMS must still land near the true taps (within a few noise
        # standard errors) and report convergence.
        rng = np.random.default_rng(11)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 255))
        true_taps = [0.3, -0.12]
        samples = self._isi_samples(symbols, true_taps) \
            + rng.normal(0.0, 0.05, symbols.size)
        dfe = LmsDfe(n_taps=2, step_size=0.01, n_epochs=80)
        adaptation = dfe.adapt(samples, symbols)
        assert adaptation.weights == pytest.approx(true_taps, abs=0.05)
        assert adaptation.converged
        # The residual error floor is the noise itself, not zero.
        assert 0.03 < adaptation.error_rms_per_epoch[-1] < 0.15

    def test_noise_floor_scales_with_noise(self):
        rng = np.random.default_rng(12)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 255))
        clean_samples = self._isi_samples(symbols, [0.25])
        dfe = LmsDfe(n_taps=1, step_size=0.01, n_epochs=60)
        floors = []
        for sigma in (0.02, 0.1):
            noisy = clean_samples + rng.normal(0.0, sigma, symbols.size)
            floors.append(dfe.adapt(noisy, symbols).error_rms_per_epoch[-1])
        assert floors[1] > floors[0]


class TestDecisionDirectedDfe:
    def _isi_samples(self, symbols, post_cursors):
        samples = symbols.astype(float).copy()
        for tap_index, weight in enumerate(post_cursors, start=1):
            samples += weight * np.roll(symbols, tap_index)
        return samples

    def test_blind_adaptation_matches_data_aided_weights(self):
        # With an open (slicer-decidable) eye the decisions are the
        # symbols, so decision-directed LMS must find the same taps.
        rng = np.random.default_rng(5)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 255))
        samples = self._isi_samples(symbols, [0.2, -0.08])
        aided = LmsDfe(n_taps=2, step_size=0.02, n_epochs=60)
        blind = LmsDfe(n_taps=2, step_size=0.02, n_epochs=60,
                       decision_directed=True)
        aided_weights = aided.adapt(samples, symbols).weights
        blind_adaptation = blind.adapt(samples, symbols)
        assert blind_adaptation.weights == pytest.approx(aided_weights,
                                                         abs=0.02)
        assert blind_adaptation.converged

    def test_decision_error_rate_recorded_and_converges_to_zero(self):
        rng = np.random.default_rng(6)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 255))
        samples = self._isi_samples(symbols, [0.25]) \
            + rng.normal(0.0, 0.05, symbols.size)
        blind = LmsDfe(n_taps=1, step_size=0.02, n_epochs=60,
                       decision_directed=True)
        adaptation = blind.adapt(samples, symbols)
        assert adaptation.decision_error_rate_per_epoch is not None
        assert adaptation.decision_error_rate_per_epoch.shape == (60,)
        assert adaptation.final_decision_error_rate == 0.0

    def test_data_aided_mode_reports_no_decision_diagnostics(self):
        rng = np.random.default_rng(7)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 127))
        adaptation = LmsDfe(n_taps=1).adapt(symbols.astype(float), symbols)
        assert adaptation.decision_error_rate_per_epoch is None
        assert np.isnan(adaptation.final_decision_error_rate)


class TestErrorPropagation:
    """Satellite requirement: a forced slicer error must decay, not ring."""

    def _adapted_weights(self, symbols, true_taps):
        samples = symbols.astype(float).copy()
        for tap_index, weight in enumerate(true_taps, start=1):
            samples += weight * np.roll(symbols, tap_index)
        dfe = LmsDfe(n_taps=len(true_taps), step_size=0.02, n_epochs=60)
        return dfe, dfe.adapt(samples, symbols).weights

    def test_forced_error_decays_for_adapted_taps(self):
        rng = np.random.default_rng(8)
        symbols = nrz_symbol_levels(rng.integers(0, 2, 127))
        dfe, weights = self._adapted_weights(symbols, [0.25, -0.1])
        propagation = dfe.error_propagation(weights, symbols)
        assert propagation.decays
        # The burst cannot outlive the feedback register here: the
        # perturbation 2*|w| stays inside the +-1 decision margin.
        assert propagation.burst_length == 0
        assert np.all(propagation.deviation_per_ui[dfe.n_taps:] == 0.0)

    def test_deviation_trace_shows_the_feedback_perturbation(self):
        symbols = nrz_symbol_levels(
            np.random.default_rng(9).integers(0, 2, 127))
        dfe, weights = self._adapted_weights(symbols, [0.3])
        propagation = dfe.error_propagation(weights, symbols, error_index=5)
        assert propagation.deviation_per_ui[0] \
            == pytest.approx(2.0 * abs(weights[0]), abs=0.05)

    def test_unstable_taps_ring_and_are_flagged(self):
        # On an alternating pattern a tap past the stability boundary
        # (2|w1| > decision margin) sustains its own error indefinitely:
        # the textbook DFE error-propagation instability must be
        # reported, not hidden.
        symbols = np.tile([1.0, -1.0], 64)
        dfe = LmsDfe(n_taps=1)
        propagation = dfe.error_propagation(np.array([1.2]), symbols,
                                            horizon=48)
        assert not propagation.decays
        assert propagation.burst_length == 48
        assert np.all(propagation.deviation_per_ui > 0.0)

    def test_error_index_and_horizon_controls(self):
        symbols = nrz_symbol_levels(
            np.random.default_rng(10).integers(0, 2, 64))
        dfe = LmsDfe(n_taps=1)
        propagation = dfe.error_propagation(np.array([0.2]), symbols,
                                            error_index=10, horizon=12)
        assert propagation.deviation_per_ui.shape == (12,)
        with pytest.raises(ValueError):
            dfe.error_propagation(np.array([0.2]), symbols, horizon=0)
        with pytest.raises(ValueError):
            dfe.error_propagation(np.array([0.2, 0.1]), np.ones(2))


class TestTimebase:
    def test_midpoint_axis(self):
        timebase = LinkTimebase(bit_rate_hz=2.5e9, samples_per_ui=4)
        axis = timebase.time_axis_s(1)
        step = timebase.sample_period_s
        assert axis == pytest.approx((np.arange(4) + 0.5) * step)

    def test_frequency_grid_reaches_half_sample_rate(self):
        timebase = LinkTimebase(samples_per_ui=32)
        freqs = timebase.frequencies_hz(timebase.n_samples(8))
        assert freqs[0] == 0.0
        assert freqs[-1] == pytest.approx(0.5 / timebase.sample_period_s)
