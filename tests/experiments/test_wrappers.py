"""The seven public sweeps are thin, bit-identical wrappers over the engine.

Two layers of protection:

* **golden pins** — error/tolerance numbers captured on ``main`` *before*
  the sweeps were rewritten; any numeric drift in the refactored pipeline
  fails these;
* **wrapper == spec** — each wrapper is re-expressed as a hand-built
  :class:`~repro.experiments.ScenarioSpec` study (property-style, over a
  couple of parameter draws) and must match the engine output exactly,
  proving the wrappers add nothing but argument marshalling.
"""


import numpy as np
import pytest

from repro import _kernels
from repro.core.config import CdrChannelConfig
from repro.datapath.nrz import JitterSpec
from repro.experiments import (
    EqualizerLineup,
    LaneSpec,
    ParameterAxis,
    ScenarioSpec,
    StimulusSpec,
    ToleranceSearch,
    run_grid,
    run_tolerance_search,
)
from repro.link import LinkConfig, LmsDfe, LossyLineChannel, RxCtle, TxFfe
from repro.sweep import (
    ber_vs_channel_loss_sweep,
    ber_vs_ctle_peaking_sweep,
    ber_vs_frequency_offset_sweep,
    ber_vs_sj_sweep,
    equalization_ablation_sweep,
    jitter_tolerance_sweep,
    multichannel_sweep,
)
from repro.core.multichannel import MultiChannelConfig, MultiChannelReceiver

MILD = JitterSpec(dj_ui_pp=0.2, rj_ui_rms=0.01, sj_phase_rad=np.pi / 2)


def _spec(n_bits, jitter, config=None, link=None, backend="fast"):
    return ScenarioSpec(
        stimulus=StimulusSpec(n_bits=n_bits, prbs_order=7),
        jitter=jitter,
        config=config or CdrChannelConfig(),
        link=link,
        backend=backend,
    )


class TestGoldenPins:
    """Numbers captured on main before the refactor — must never move."""

    def test_ber_vs_sj(self):
        result = ber_vs_sj_sweep(
            np.array([2.5e6, 7.5e8]), np.array([0.1, 1.0]),
            base_jitter=MILD, n_bits=600, backend="fast", seed=7, workers=1)
        assert result.errors.tolist() == [[0, 0], [36, 73]]
        assert result.compared.tolist() == [[598, 598], [598, 598]]

    def test_ber_vs_frequency_offset(self):
        result = ber_vs_frequency_offset_sweep(
            np.array([0.0, 0.02, 0.05]), jitter=MILD, n_bits=600,
            seed=2, workers=1)
        assert result.errors.tolist() == [[0, 1, 1]]

    def test_jitter_tolerance(self):
        result = jitter_tolerance_sweep(
            np.array([2.5e5, 7.5e8]), base_jitter=MILD, n_bits=400,
            seed=5, workers=1, max_amplitude_ui_pp=4.0, target_errors=1)
        np.testing.assert_allclose(result.amplitudes_ui_pp,
                                   [3.45, 0.35], atol=1e-12)

    def test_multichannel(self):
        result = multichannel_sweep(n_bits=400, jitter=MILD, seed=11,
                                    workers=1)
        assert result.errors.tolist() == [0, 0, 1, 1]
        np.testing.assert_allclose(
            result.frequency_offsets,
            [-0.0014625340953382492, -0.001551991370356369,
             0.003831199674245071, -0.0006884534163383483], rtol=1e-12)

    def test_ber_vs_channel_loss(self):
        result = ber_vs_channel_loss_sweep(
            np.array([6.0, 14.0]), n_bits=500, seed=3, workers=1)
        assert result.errors.tolist() == [[0, 3]]

    def test_ber_vs_ctle_peaking(self):
        result = ber_vs_ctle_peaking_sweep(
            np.array([0.0, 6.0]), loss_db=14.0, n_bits=500, seed=3,
            workers=1)
        assert result.errors.tolist() == [[7, 0]]

    def test_equalization_ablation(self):
        result = equalization_ablation_sweep(
            14.0, n_bits=500, seed=3, workers=1, dfe=LmsDfe())
        assert result.labels == ("unequalized", "ffe", "ctle", "ffe+ctle",
                                 "ffe+ctle+dfe")
        assert result.errors.tolist() == [6, 0, 0, 0, 0]


@pytest.mark.parametrize("seed,n_bits", [(7, 500), (21, 350)])
class TestWrapperEqualsSpec:
    """Each wrapper must equal its hand-built declarative study exactly."""

    def test_ber_vs_sj(self, seed, n_bits):
        frequencies = np.array([2.5e6, 7.5e8])
        amplitudes = np.array([0.1, 1.0])
        wrapper = ber_vs_sj_sweep(frequencies, amplitudes, base_jitter=MILD,
                                  n_bits=n_bits, seed=seed, workers=1)
        spec_run = run_grid(
            _spec(n_bits, MILD.with_sinusoidal(0.0, 0.0)),
            [ParameterAxis("sj_amplitude_ui_pp", amplitudes),
             ParameterAxis("sj_frequency_hz", frequencies)],
            seed=seed, workers=1)
        np.testing.assert_array_equal(
            wrapper.errors, spec_run.metric("errors"))
        np.testing.assert_array_equal(
            wrapper.compared, spec_run.metric("compared"))

    def test_ber_vs_frequency_offset(self, seed, n_bits):
        offsets = np.array([0.0, 0.03])
        wrapper = ber_vs_frequency_offset_sweep(
            offsets, jitter=MILD, n_bits=n_bits, seed=seed, workers=1)
        spec_run = run_grid(
            _spec(n_bits, MILD),
            [ParameterAxis("frequency_offset", offsets)],
            seed=seed, workers=1)
        np.testing.assert_array_equal(
            wrapper.errors.ravel(), spec_run.metric("errors"))

    def test_jitter_tolerance(self, seed, n_bits):
        frequencies = np.array([2.5e6, 7.5e8])
        wrapper = jitter_tolerance_sweep(
            frequencies, base_jitter=MILD, n_bits=n_bits, seed=seed,
            workers=1, max_amplitude_ui_pp=2.0, target_errors=1)
        spec_run = run_tolerance_search(
            _spec(n_bits, MILD.with_sinusoidal(0.0, 0.0)),
            [ParameterAxis("sj_frequency_hz", frequencies)],
            ToleranceSearch(maximum=2.0, resolution=0.05, target_errors=1),
            seed=seed, workers=1)
        np.testing.assert_array_equal(
            wrapper.amplitudes_ui_pp, spec_run.metric("sj_amplitude_ui_pp"))

    def test_multichannel(self, seed, n_bits):
        config = MultiChannelConfig()
        wrapper = multichannel_sweep(config, n_bits=n_bits, jitter=MILD,
                                     seed=seed, workers=1)
        receiver = MultiChannelReceiver(
            config, rng=np.random.default_rng(np.random.SeedSequence(seed)))
        offsets = receiver.channel_frequency_offsets()
        receiver.lane_skews_ui()  # consumed in the same order as the wrapper
        lanes = tuple(
            LaneSpec(index=i, frequency_offset=float(offsets[i]),
                     stimulus_seed=i + 1)
            for i in range(config.n_channels))
        spec_run = run_grid(
            _spec(n_bits, MILD, config=config.channel),
            [ParameterAxis("lane", lanes)],
            seed=seed, workers=1)
        np.testing.assert_array_equal(wrapper.errors,
                                      spec_run.metric("errors"))

    def test_ber_vs_channel_loss(self, seed, n_bits):
        losses = np.array([6.0, 16.0])
        link = LinkConfig(tx_ffe=TxFfe.de_emphasis(post_db=3.5))
        wrapper = ber_vs_channel_loss_sweep(
            losses, link=link, n_bits=n_bits, seed=seed, workers=1)
        jitter = JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.021,
                            sj_amplitude_ui_pp=0.0)
        spec_run = run_grid(
            _spec(n_bits, jitter, link=link),
            [ParameterAxis("channel_loss_db", losses)],
            seed=seed, workers=1)
        np.testing.assert_array_equal(
            wrapper.errors.ravel(), spec_run.metric("errors"))

    def test_ber_vs_ctle_peaking(self, seed, n_bits):
        peakings = np.array([0.0, 6.0])
        wrapper = ber_vs_ctle_peaking_sweep(
            peakings, loss_db=14.0, n_bits=n_bits, seed=seed, workers=1)
        link = LinkConfig().with_channel(
            LossyLineChannel.for_loss_at_nyquist(
                14.0, LinkConfig().timebase.bit_rate_hz))
        jitter = JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.021,
                            sj_amplitude_ui_pp=0.0)
        spec_run = run_grid(
            _spec(n_bits, jitter, link=link),
            [ParameterAxis("ctle_peaking_db", peakings)],
            seed=seed, workers=1)
        np.testing.assert_array_equal(
            wrapper.errors.ravel(), spec_run.metric("errors"))

    def test_equalization_ablation(self, seed, n_bits):
        wrapper = equalization_ablation_sweep(
            14.0, n_bits=n_bits, seed=seed, workers=1)
        template = LinkConfig(tx_ffe=TxFfe.de_emphasis(post_db=3.5),
                              rx_ctle=RxCtle(peaking_db=6.0))
        link = template.with_channel(LossyLineChannel.for_loss_at_nyquist(
            14.0, template.timebase.bit_rate_hz))
        jitter = JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.021,
                            sj_amplitude_ui_pp=0.0)
        lineups = (
            EqualizerLineup("unequalized"),
            EqualizerLineup("ffe", tx_ffe=template.tx_ffe),
            EqualizerLineup("ctle", rx_ctle=template.rx_ctle),
            EqualizerLineup("ffe+ctle", tx_ffe=template.tx_ffe,
                            rx_ctle=template.rx_ctle),
        )
        spec_run = run_grid(
            _spec(n_bits, jitter, link=link),
            [ParameterAxis("equalization", lineups)],
            seed=seed, workers=1)
        np.testing.assert_array_equal(wrapper.errors,
                                      spec_run.metric("errors"))


class TestWrapperSurface:
    """The wrappers expose the engine result without re-running anything."""

    def test_source_round_trips(self):
        result = ber_vs_frequency_offset_sweep(
            np.array([0.0, 0.02]), jitter=MILD, n_bits=300, seed=2,
            workers=1)
        from repro.experiments import SweepResult
        assert result.source is not None
        assert SweepResult.from_json(result.source.to_json()).equals(
            result.source)
        np.testing.assert_array_equal(
            result.source.metric("errors").reshape(result.errors.shape),
            result.errors)

    def test_auto_backend_through_wrapper(self):
        result = ber_vs_frequency_offset_sweep(
            np.array([0.0]), jitter=MILD, n_bits=300, seed=2, workers=1,
            backend="auto")
        assert result.backend == "auto"
        fastest = "fast+jit" if _kernels.jit_available() else "fast"
        assert result.source.point_backends == (fastest,)

    def test_forced_fast_with_gate_jitter_raises(self):
        config = CdrChannelConfig(gate_jitter_sigma_fraction=0.01)
        with pytest.raises(ValueError, match="per-gate-delay-jitter"):
            ber_vs_frequency_offset_sweep(
                np.array([0.0]), config=config, jitter=MILD, n_bits=300,
                seed=2, workers=1, backend="fast")

    def test_auto_with_gate_jitter_runs_on_event(self):
        config = CdrChannelConfig(gate_jitter_sigma_fraction=0.01)
        result = ber_vs_frequency_offset_sweep(
            np.array([0.0]), config=config, jitter=MILD, n_bits=300,
            seed=2, workers=1, backend="auto")
        assert result.source.point_backends == ("event",)
