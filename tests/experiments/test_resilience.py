"""Engine-level resilience: fault isolation, failure records, checkpoint/resume."""

import numpy as np
import pytest

from repro.datapath.nrz import JitterSpec
from repro.experiments import (
    MeasurementPlan,
    ParameterAxis,
    ScenarioSpec,
    StimulusSpec,
    SweepResult,
    ToleranceSearch,
    run_grid,
    run_tolerance_search,
)
from repro.sweep.faults import FaultyStimulus, InjectedFault  # registers the axis
from repro.sweep.resilient import CheckpointMismatchError, SweepTaskError

MILD = JitterSpec(dj_ui_pp=0.2, rj_ui_rms=0.01)
BASE = ScenarioSpec(stimulus=StimulusSpec(n_bits=300), jitter=MILD)
FAULT_AXIS = ParameterAxis("inject_fault", (False, True, False, False))


class TestFailureCollection:
    def test_collect_records_structured_failures_with_coordinates(self):
        result = run_grid(BASE, [FAULT_AXIS], seed=0, workers=1,
                          failure_policy="collect")
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.index == 1
        assert failure.coordinates == (result.axes[0].labels[1],)
        assert failure.exception_type == "InjectedFault"
        assert "injected stimulus fault" in failure.message
        assert "InjectedFault" in failure.traceback_tail
        assert failure.seed_path == (1,)

    def test_failed_points_report_nan_ber_and_surviving_points_match(self):
        collected = run_grid(BASE, [FAULT_AXIS], seed=0, workers=1,
                             failure_policy="collect")
        clean = run_grid(
            BASE, [ParameterAxis("inject_fault", (False,) * 4)],
            seed=0, workers=1)
        assert collected.metric("compared")[1] == 0
        assert np.isnan(collected.ber[1])
        for index in (0, 2, 3):
            assert collected.metric("errors")[index] \
                == clean.metric("errors")[index]
            assert collected.metric("compared")[index] \
                == clean.metric("compared")[index]

    def test_default_policy_raises_on_first_failure(self):
        with pytest.raises(SweepTaskError, match="InjectedFault"):
            run_grid(BASE, [FAULT_AXIS], seed=0, workers=1)

    def test_audit_trail_covers_every_point(self):
        result = run_grid(BASE, [FAULT_AXIS], seed=0, workers=1,
                          failure_policy="collect")
        assert [entry.index for entry in result.audit] == [0, 1, 2, 3]
        assert all(entry.duration_s >= 0.0 for entry in result.audit)

    def test_fault_axis_is_declarative(self):
        # The axis swaps the stimulus; the grid resolves before anything runs.
        from repro.experiments import resolve_grid

        points = resolve_grid(BASE, (FAULT_AXIS,))
        assert isinstance(points[1].stimulus, FaultyStimulus)
        assert points[1].stimulus.fail and not points[0].stimulus.fail
        with pytest.raises(InjectedFault):
            points[1].stimulus.bits()


class TestFailureSerialization:
    def test_failures_survive_the_json_round_trip(self):
        result = run_grid(BASE, [FAULT_AXIS], seed=0, workers=1,
                          failure_policy="collect")
        restored = SweepResult.from_json(result.to_json())
        assert restored.equals(result)
        assert restored.failures == result.failures

    def test_audit_is_inmemory_only(self):
        # Wall-clock durations are nondeterministic; serializing them would
        # break the bit-identical resume guarantee.
        result = run_grid(BASE, [FAULT_AXIS], seed=0, workers=1,
                          failure_policy="collect")
        assert result.audit is not None
        assert "audit" not in result.to_dict()
        assert SweepResult.from_json(result.to_json()).audit is None


class TestCheckpointResume:
    def test_chunk_boundary_interruption_resumes_bit_identical(self, tmp_path):
        """Kill at a chunk boundary; the merged result matches workers=1."""
        checkpoint = tmp_path / "grid.jsonl"
        uninterrupted = run_grid(BASE, [FAULT_AXIS], seed=0, workers=1,
                                 failure_policy="collect", chunk_size=2)
        # chunk 0 = points (0, 1); point 1 detonates, aborting the grid with
        # the completed chunk already on disk.
        with pytest.raises(SweepTaskError):
            run_grid(BASE, [FAULT_AXIS], seed=0, workers=1,
                     failure_policy="raise", chunk_size=2,
                     checkpoint=checkpoint)
        resumed = run_grid(BASE, [FAULT_AXIS], seed=0, workers=2,
                           failure_policy="collect", chunk_size=2,
                           checkpoint=checkpoint)
        assert resumed.to_json() == uninterrupted.to_json()
        modes = {entry.index: entry.mode for entry in resumed.audit}
        assert modes[0] == "checkpoint"  # restored, not re-run

    def test_mid_chunk_truncation_resumes_bit_identical(self, tmp_path):
        """Tear the checkpoint mid-record (crash during append) and resume."""
        checkpoint = tmp_path / "grid.jsonl"
        clean_axis = ParameterAxis("inject_fault", (False,) * 4)
        uninterrupted = run_grid(BASE, [clean_axis], seed=0, workers=1,
                                 chunk_size=2)
        run_grid(BASE, [clean_axis], seed=0, workers=1, chunk_size=2,
                 checkpoint=checkpoint)
        lines = checkpoint.read_text().splitlines()
        assert len(lines) == 5  # header + 4 points
        checkpoint.write_text("\n".join(lines[:3]) + '\n{"kind": "point", "in')
        resumed = run_grid(BASE, [clean_axis], seed=0, workers=1,
                           chunk_size=2, checkpoint=checkpoint)
        assert resumed.to_json() == uninterrupted.to_json()
        modes = {entry.index: entry.mode for entry in resumed.audit}
        assert modes[0] == "checkpoint" and modes[1] == "checkpoint"
        assert modes[2] != "checkpoint" and modes[3] != "checkpoint"

    def test_checkpoint_key_covers_the_study_definition(self, tmp_path):
        checkpoint = tmp_path / "grid.jsonl"
        clean_axis = ParameterAxis("inject_fault", (False,) * 4)
        run_grid(BASE, [clean_axis], seed=0, workers=1, checkpoint=checkpoint)
        with pytest.raises(CheckpointMismatchError):
            run_grid(BASE, [clean_axis], seed=1, workers=1,
                     checkpoint=checkpoint)
        with pytest.raises(CheckpointMismatchError):
            run_grid(BASE, [FAULT_AXIS], seed=0, workers=1,
                     failure_policy="collect", checkpoint=checkpoint)

    def test_checkpoint_requires_retain_none(self, tmp_path):
        from dataclasses import replace

        spec = replace(BASE, measurement=MeasurementPlan(retain="results"))
        with pytest.raises(ValueError, match="retain"):
            run_grid(spec, [FAULT_AXIS], seed=0, workers=1,
                     checkpoint=tmp_path / "grid.jsonl")


class TestToleranceSearchResilience:
    def test_collect_leaves_nan_in_the_tolerance_grid(self):
        result = run_tolerance_search(
            BASE, [ParameterAxis("inject_fault", (False, True))],
            ToleranceSearch(maximum=0.2, resolution=0.1, target_errors=5),
            seed=3, workers=1, failure_policy="collect")
        tolerance = result.metric("sj_amplitude_ui_pp")
        assert np.isfinite(tolerance[0])
        assert np.isnan(tolerance[1])
        assert len(result.failures) == 1
        assert result.failures[0].exception_type == "InjectedFault"

    def test_checkpointed_search_resumes_bit_identical(self, tmp_path):
        checkpoint = tmp_path / "search.jsonl"
        axis = ParameterAxis("sj_frequency_hz", (2.5e6, 7.5e8))
        search = ToleranceSearch(maximum=0.2, resolution=0.1, target_errors=5)
        uninterrupted = run_tolerance_search(BASE, [axis], search,
                                             seed=3, workers=1)
        run_tolerance_search(BASE, [axis], search, seed=3, workers=1,
                             chunk_size=1, checkpoint=checkpoint)
        resumed = run_tolerance_search(BASE, [axis], search, seed=3,
                                       workers=1, chunk_size=1,
                                       checkpoint=checkpoint)
        assert resumed.to_json() == uninterrupted.to_json()
        assert all(entry.mode == "checkpoint" for entry in resumed.audit)
