"""SweepResult serialization: JSON round-trip, CSV, reporting views."""

import numpy as np
import pytest

from repro.experiments import AxisResult, SweepResult
from repro.reporting.tables import Series, TextTable


def _result(**overrides) -> SweepResult:
    values = dict(
        name="demo",
        axes=(
            AxisResult("amplitude", labels=("0.1", "0.3"),
                       values=np.array([0.1, 0.3])),
            AxisResult("frequency", labels=("1e+06", "1e+08"),
                       values=np.array([1.0e6, 1.0e8])),
        ),
        metrics={
            "errors": np.array([[0, 2], [5, 7]], dtype=np.int64),
            "compared": np.array([[598, 598], [598, 598]], dtype=np.int64),
        },
        backend="auto",
        point_backends=("fast", "fast", "event", "fast"),
        n_bits=600,
        seed=7,
        metadata={"note": "unit-test"},
    )
    values.update(overrides)
    return SweepResult(**values)


class TestConstruction:
    def test_shape_and_points(self):
        result = _result()
        assert result.shape == (2, 2)
        assert result.n_points == 4

    def test_flat_metrics_are_reshaped(self):
        result = _result(metrics={
            "errors": np.arange(4, dtype=np.int64),
            "compared": np.full(4, 100, dtype=np.int64)})
        assert result.metric("errors").shape == (2, 2)

    def test_point_backend_count_enforced(self):
        with pytest.raises(ValueError, match="per-point backends"):
            _result(point_backends=("fast",))

    def test_unknown_metric_is_helpful(self):
        with pytest.raises(KeyError, match="available"):
            _result().metric("latency")

    def test_ber_grid(self):
        ber = _result().ber
        np.testing.assert_allclose(ber[0, 1], 2 / 598)

    def test_ber_nan_where_nothing_compared(self):
        result = _result(metrics={
            "errors": np.zeros((2, 2), dtype=np.int64),
            "compared": np.zeros((2, 2), dtype=np.int64)})
        assert np.all(np.isnan(result.ber))


class TestJsonRoundTrip:
    def test_lossless(self):
        result = _result()
        restored = SweepResult.from_json(result.to_json())
        assert restored.equals(result)
        assert restored.metric("errors").dtype == np.int64

    def test_float_metrics_survive_exactly(self):
        # repr-based JSON floats round-trip IEEE doubles losslessly.
        tolerance = np.array([[0.1 + 0.2, 3.45], [1.0 / 3.0, 0.35]])
        result = _result(metrics={"errors": np.zeros((2, 2), dtype=np.int64),
                                  "compared": np.ones((2, 2), dtype=np.int64),
                                  "amplitude_ui_pp": tolerance})
        restored = SweepResult.from_json(result.to_json())
        np.testing.assert_array_equal(
            restored.metric("amplitude_ui_pp"), tolerance)

    def test_structured_axis_round_trips(self):
        result = _result(
            axes=(AxisResult("equalization", labels=("ffe", "ctle", "both",
                                                     "none")),),
            metrics={"errors": np.zeros(4, dtype=np.int64),
                     "compared": np.ones(4, dtype=np.int64)})
        restored = SweepResult.from_json(result.to_json())
        assert restored.axes[0].values is None
        assert restored.axes[0].labels == ("ffe", "ctle", "both", "none")

    def test_save_load(self, tmp_path):
        result = _result()
        path = result.save(tmp_path / "demo.json")
        assert SweepResult.load(path).equals(result)

    def test_details_not_serialized(self):
        result = _result(details=(object(),) * 4)
        restored = SweepResult.from_json(result.to_json())
        assert restored.details is None
        assert restored.equals(result)  # equality ignores details


class TestNonFiniteSerialization:
    """Regression: ``to_json`` used to emit bare ``NaN`` tokens (non-RFC-8259)."""

    @staticmethod
    def _nonfinite_result() -> SweepResult:
        grid = np.array([[np.nan, 1.5], [np.inf, -np.inf]])
        return _result(
            metrics={"errors": np.zeros((2, 2), dtype=np.int64),
                     "compared": np.zeros((2, 2), dtype=np.int64),
                     "sj_amplitude_ui_pp": grid},
            metadata={"note": "unit-test", "threshold": float("nan"),
                      "nested": {"cap": float("inf")}},
        )

    def test_json_text_is_strict_rfc8259(self):
        def reject(token):
            raise AssertionError(f"bare non-finite token {token!r} in JSON")

        text = self._nonfinite_result().to_json()
        # json.loads only invokes parse_constant for the non-standard bare
        # tokens NaN / Infinity / -Infinity; strict output never triggers it.
        import json

        json.loads(text, parse_constant=reject)

    def test_non_finite_metrics_round_trip(self):
        result = self._nonfinite_result()
        restored = SweepResult.from_json(result.to_json())
        grid = restored.metric("sj_amplitude_ui_pp")
        assert grid.dtype == np.float64
        assert np.isnan(grid[0, 0])
        assert grid[0, 1] == 1.5
        assert grid[1, 0] == np.inf and grid[1, 1] == -np.inf
        assert restored.equals(result)

    def test_non_finite_metadata_round_trips_as_floats(self):
        restored = SweepResult.from_json(self._nonfinite_result().to_json())
        assert np.isnan(restored.metadata["threshold"])
        assert restored.metadata["nested"]["cap"] == float("inf")
        assert restored.metadata["note"] == "unit-test"

    def test_metadata_dict_that_looks_like_a_tag_survives(self):
        # A genuine metadata dict shaped exactly like the internal tag must
        # not collapse into a float on load (it is escaped on encode).
        result = _result(metadata={
            "marker": {"__nonfinite__": "NaN"},
            "escape": {"__literal__": "kept"},
        })
        restored = SweepResult.from_json(result.to_json())
        assert restored.metadata["marker"] == {"__nonfinite__": "NaN"}
        assert restored.metadata["escape"] == {"__literal__": "kept"}
        assert restored.equals(result)

    def test_metadata_string_that_looks_non_finite_survives(self):
        # A genuine "NaN" *string* must not be coerced to a float: the
        # metadata encoding tags non-finite floats instead of using bare
        # sentinel strings.
        result = _result(metadata={"status": "NaN", "label": "-Infinity",
                                   "value": float("nan")})
        restored = SweepResult.from_json(result.to_json())
        assert restored.metadata["status"] == "NaN"
        assert restored.metadata["label"] == "-Infinity"
        assert np.isnan(restored.metadata["value"])
        assert restored.equals(result)

    def test_non_finite_axis_values_round_trip(self):
        result = _result(
            axes=(AxisResult("amplitude", labels=("0.1", "open"),
                             values=np.array([0.1, np.nan])),),
            metrics={"errors": np.zeros(2, dtype=np.int64),
                     "compared": np.ones(2, dtype=np.int64)},
            point_backends=("fast", "fast"))
        restored = SweepResult.from_json(result.to_json())
        assert restored.axes[0].values[0] == 0.1
        assert np.isnan(restored.axes[0].values[1])

    def test_all_finite_payload_is_unchanged(self):
        # The sentinel path must not perturb ordinary results.
        result = _result()
        assert result.to_dict()["metrics"]["errors"]["values"] == [[0, 2], [5, 7]]
        assert SweepResult.from_json(result.to_json()).equals(result)


class TestTabularViews:
    def test_csv_long_format(self):
        csv = _result().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "amplitude,frequency,compared,errors,backend"
        assert len(lines) == 5
        assert lines[1] == "0.1,1e+06,598,0,fast"
        assert lines[3].endswith(",event")

    def test_table_view(self):
        table = _result().to_table()
        assert isinstance(table, TextTable)
        assert table.title == "demo"
        assert len(table.rows) == 4

    def test_series_squeezes_singleton_axes(self):
        result = _result(
            axes=(AxisResult("row", labels=("0",), values=np.array([0.0])),
                  AxisResult("loss_db", labels=("6", "14"),
                             values=np.array([6.0, 14.0]))),
            metrics={"errors": np.array([[0, 3]], dtype=np.int64),
                     "compared": np.array([[498, 498]], dtype=np.int64)},
            point_backends=("fast", "fast"))
        series = result.to_series("errors")
        assert isinstance(series, Series)
        assert series.points == [(6.0, 0.0), (14.0, 3.0)]

    def test_series_rejects_two_long_axes(self):
        with pytest.raises(ValueError, match="non-singleton"):
            _result().to_series("errors")

    def test_series_rejects_zero_axis_result(self):
        result = _result(
            axes=(),
            metrics={"errors": np.array(3, dtype=np.int64),
                     "compared": np.array(100, dtype=np.int64)},
            point_backends=("fast",))
        with pytest.raises(ValueError, match="no axes"):
            result.to_series("errors")

    def test_series_rejects_structured_axis(self):
        result = _result(
            axes=(AxisResult("equalization", labels=("a", "b", "c", "d")),),
            metrics={"errors": np.zeros(4, dtype=np.int64),
                     "compared": np.ones(4, dtype=np.int64)})
        with pytest.raises(ValueError, match="numeric"):
            result.to_series("errors")


class TestAxisResult:
    def test_label_value_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            AxisResult("x", labels=("a",), values=np.array([1.0, 2.0]))

    def test_round_trip(self):
        axis = AxisResult("x", labels=("1", "2"), values=np.array([1.0, 2.0]))
        restored = AxisResult.from_dict(axis.to_dict())
        assert restored.name == axis.name
        assert restored.labels == axis.labels
        np.testing.assert_array_equal(restored.values, axis.values)
