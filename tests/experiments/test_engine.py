"""Generic engine behaviour: grids, searches, backend resolution, plans."""

import numpy as np
import pytest

from repro import _kernels
from repro.core.config import CdrChannelConfig
from repro.datapath.nrz import JitterSpec
from repro.experiments import (
    MeasurementPlan,
    ParameterAxis,
    ScenarioSpec,
    StimulusSpec,
    ToleranceSearch,
    resolve_grid,
    run_grid,
    run_tolerance_search,
    simulate_scenario,
)

MILD = JitterSpec(dj_ui_pp=0.2, rj_ui_rms=0.01)
BASE = ScenarioSpec(stimulus=StimulusSpec(n_bits=400), jitter=MILD)
AMPLITUDE_AXIS = ParameterAxis("sj_amplitude_ui_pp", (0.1, 1.0))
FREQUENCY_AXIS = ParameterAxis("sj_frequency_hz", (2.5e6, 7.5e8))

#: Auto resolution on clean configs is environment-dependent: the compiled
#: kernel tier outranks the plain fast path wherever numba is installed.
FASTEST_CLEAN = "fast+jit" if _kernels.jit_available() else "fast"


class TestResolveGrid:
    def test_row_major_product(self):
        points = resolve_grid(BASE, (AMPLITUDE_AXIS, FREQUENCY_AXIS))
        assert len(points) == 4
        assert points[0].jitter.sj_amplitude_ui_pp == 0.1
        assert points[0].jitter.sj_frequency_hz == 2.5e6
        assert points[1].jitter.sj_frequency_hz == 7.5e8  # inner axis fastest
        assert points[2].jitter.sj_amplitude_ui_pp == 1.0

    def test_no_axes_is_single_point(self):
        assert resolve_grid(BASE, ()) == [BASE]


class TestRunGrid:
    def test_matches_manual_simulation(self):
        """The engine is exactly per-point simulation on spawned seeds."""
        result = run_grid(BASE, [FREQUENCY_AXIS], seed=3, workers=1)
        children = np.random.SeedSequence(3).spawn(2)
        for index, point in enumerate(resolve_grid(BASE, (FREQUENCY_AXIS,))):
            manual = simulate_scenario(
                point, np.random.default_rng(children[index])).ber()
            assert result.metric("errors")[index] == manual.errors
            assert result.metric("compared")[index] == manual.compared_bits

    def test_deterministic_across_worker_counts(self):
        serial = run_grid(BASE, [AMPLITUDE_AXIS, FREQUENCY_AXIS],
                          seed=5, workers=1)
        pooled = run_grid(BASE, [AMPLITUDE_AXIS, FREQUENCY_AXIS],
                          seed=5, workers=3)
        np.testing.assert_array_equal(serial.metric("errors"),
                                      pooled.metric("errors"))

    def test_grid_shape_follows_axes(self):
        result = run_grid(BASE, [AMPLITUDE_AXIS, FREQUENCY_AXIS],
                          seed=0, workers=1)
        assert result.shape == (2, 2)
        assert result.metric("errors").shape == (2, 2)
        assert len(result.point_backends) == 4

    def test_auto_resolves_fastest_on_clean_config(self):
        result = run_grid(BASE, [FREQUENCY_AXIS], seed=0, workers=1)
        assert result.backend == "auto"
        assert result.point_backends == (FASTEST_CLEAN, FASTEST_CLEAN)

    def test_auto_records_jit_backend_in_audit_trail(self, monkeypatch):
        """With the jit capability present, the resolved tier is auditable."""
        from repro.fastpath import backends as backends_module
        monkeypatch.setattr(
            backends_module, "environment_capabilities",
            lambda: frozenset({backends_module.CAP_JIT_KERNELS}))
        result = run_grid(BASE, [FREQUENCY_AXIS], seed=0, workers=1)
        assert result.point_backends == ("fast+jit", "fast+jit")

    def test_auto_resolves_event_under_gate_jitter(self):
        spec = ScenarioSpec(
            stimulus=StimulusSpec(n_bits=200),
            jitter=MILD,
            config=CdrChannelConfig(gate_jitter_sigma_fraction=0.01),
        )
        result = run_grid(spec, [FREQUENCY_AXIS], seed=0, workers=1)
        assert result.point_backends == ("event", "event")

    def test_simulate_scenario_enforces_capabilities(self):
        """Even a pre-resolved backend override cannot silently diverge."""
        spec = ScenarioSpec(
            stimulus=StimulusSpec(n_bits=200),
            config=CdrChannelConfig(gate_jitter_sigma_fraction=0.01),
        )
        with pytest.raises(ValueError, match="per-gate-delay-jitter"):
            simulate_scenario(spec, np.random.default_rng(0), backend="fast")

    def test_forced_fast_under_gate_jitter_fails_before_running(self):
        spec = ScenarioSpec(
            stimulus=StimulusSpec(n_bits=200),
            config=CdrChannelConfig(gate_jitter_sigma_fraction=0.01),
            backend="fast",
        )
        with pytest.raises(ValueError, match="per-gate-delay-jitter"):
            run_grid(spec, [FREQUENCY_AXIS], seed=0, workers=1)

    def test_mixed_resolution_per_point(self):
        """An axis that turns gate jitter on flips the resolved backend."""
        from dataclasses import replace

        from repro.experiments import register_axis
        from repro.experiments.spec import AXIS_APPLICATORS

        @register_axis("gate_jitter_sigma_fraction")
        def _apply(spec, value):
            return replace(spec, config=replace(
                spec.config, gate_jitter_sigma_fraction=float(value)))

        try:
            result = run_grid(
                ScenarioSpec(stimulus=StimulusSpec(n_bits=200), jitter=MILD),
                [ParameterAxis("gate_jitter_sigma_fraction", (0.0, 0.01))],
                seed=0, workers=1)
            assert result.point_backends == (FASTEST_CLEAN, "event")
        finally:
            del AXIS_APPLICATORS["gate_jitter_sigma_fraction"]

    def test_backends_agree_through_the_engine(self):
        from dataclasses import replace
        fast = run_grid(replace(BASE, backend="fast"),
                        [FREQUENCY_AXIS], seed=2, workers=1)
        event = run_grid(replace(BASE, backend="event"),
                         [FREQUENCY_AXIS], seed=2, workers=1)
        np.testing.assert_array_equal(fast.metric("errors"),
                                      event.metric("errors"))

    def test_eye_measurement_plan(self):
        from dataclasses import replace
        spec = replace(BASE, measurement=MeasurementPlan(eye=True))
        result = run_grid(spec, [FREQUENCY_AXIS], seed=0, workers=1)
        assert result.metric("eye_opening_ui").shape == (2,)
        assert np.all(result.metric("eye_opening_ui") > 0.0)
        assert np.all(result.metric("n_crossings") > 0)

    def test_retain_results_plan(self):
        from dataclasses import replace
        spec = replace(BASE, measurement=MeasurementPlan(retain="results"))
        result = run_grid(spec, [FREQUENCY_AXIS], seed=0, workers=1)
        assert result.details is not None and len(result.details) == 2
        assert result.details[0].ber().errors == result.metric("errors")[0]

    def test_result_round_trips(self):
        from repro.experiments import SweepResult
        result = run_grid(BASE, [AMPLITUDE_AXIS, FREQUENCY_AXIS],
                          seed=1, workers=1)
        assert SweepResult.from_json(result.to_json()).equals(result)


class TestStatisticalEyeMeasurement:
    @staticmethod
    def _linked_spec(**overrides) -> ScenarioSpec:
        from repro.link import LinkConfig, LossyLineChannel, RxCtle, TxFfe

        values = dict(
            stimulus=StimulusSpec(n_bits=400),
            jitter=MILD,
            link=LinkConfig(
                channel=LossyLineChannel.for_loss_at_nyquist(10.0),
                tx_ffe=TxFfe.de_emphasis(post_db=3.5),
                rx_ctle=RxCtle(peaking_db=6.0)),
            measurement=MeasurementPlan(statistical_eye=True),
        )
        values.update(overrides)
        return ScenarioSpec(**values)

    def test_metrics_recorded_per_point(self):
        result = run_grid(
            self._linked_spec(),
            [ParameterAxis("aggressor_amplitude", (0.0, 0.3))],
            seed=0, workers=1)
        assert result.metric("stateye_ber").shape == (2,)
        assert result.metric("stateye_horizontal_ui")[0] \
            >= result.metric("stateye_horizontal_ui")[1]
        assert result.metric("stateye_vertical")[0] \
            > result.metric("stateye_vertical")[1]

    def test_requires_a_link_front_end(self):
        spec = ScenarioSpec(stimulus=StimulusSpec(n_bits=200), jitter=MILD,
                            measurement=MeasurementPlan(statistical_eye=True))
        with pytest.raises(ValueError, match="link front"):
            run_grid(spec, [FREQUENCY_AXIS], seed=0, workers=1)

    def test_measurement_serializes_through_sweep_result(self):
        from repro.experiments import SweepResult
        result = run_grid(
            self._linked_spec(),
            [ParameterAxis("aggressor_amplitude", (0.0, 0.4))],
            seed=0, workers=1)
        restored = SweepResult.from_json(result.to_json())
        np.testing.assert_array_equal(restored.metric("stateye_vertical"),
                                      result.metric("stateye_vertical"))

    def test_direct_measurement_helper(self):
        from repro.experiments import statistical_eye_measurement
        metrics = statistical_eye_measurement(self._linked_spec())
        assert set(metrics) == {"stateye_ber", "stateye_horizontal_ui",
                                "stateye_vertical"}
        assert metrics["stateye_vertical"] > 0.0

    def test_zero_sj_frequency_injects_no_sinusoidal_jitter(self):
        # sin(2π·0·t) displaces nothing in the bit-true path, so the
        # statistical budget must drop the SJ amplitude with it.
        from dataclasses import replace as dc_replace

        from repro.experiments import statistical_eye_measurement

        base = self._linked_spec(jitter=None)
        degenerate = statistical_eye_measurement(dc_replace(
            base, jitter=JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0,
                                    sj_amplitude_ui_pp=0.5,
                                    sj_frequency_hz=0.0)))
        clean = statistical_eye_measurement(dc_replace(
            base, jitter=JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0)))
        assert degenerate == clean

    def test_budget_tracks_scenario_oscillator_jitter(self):
        # A noiseless scenario oscillator (the default) must not inject the
        # Table 1 oscillator jitter into the statistical-eye metrics, and a
        # jittery oscillator must narrow the timing eye.
        from dataclasses import replace as dc_replace

        from repro.experiments import statistical_eye_measurement
        from repro.gates.ring import GccoParameters

        clean_spec = self._linked_spec(jitter=None)
        clean = statistical_eye_measurement(clean_spec)
        jittery = statistical_eye_measurement(dc_replace(
            clean_spec,
            config=CdrChannelConfig(
                oscillator=GccoParameters(jitter_sigma_fraction=0.05))))
        assert clean["stateye_horizontal_ui"] \
            > jittery["stateye_horizontal_ui"] > 0.0


class TestLinkTrainingMeasurement:
    @staticmethod
    def _training_spec(**overrides) -> ScenarioSpec:
        from repro.experiments import TrainingBudget
        from repro.link import LinkConfig, LossyLineChannel, RxCtle, TxFfe

        values = dict(
            stimulus=StimulusSpec(n_bits=300),
            link=LinkConfig(
                channel=LossyLineChannel.for_loss_at_nyquist(12.0),
                tx_ffe=TxFfe.de_emphasis(post_db=3.5),
                rx_ctle=RxCtle(peaking_db=6.0)),
            measurement=MeasurementPlan(train_equalizers=True),
            training=TrainingBudget(tx_post_db=(0.0, 3.5),
                                    ctle_peaking_db=(3.0, 9.0),
                                    refine_rounds=1,
                                    max_evaluations=8),
        )
        values.update(overrides)
        return ScenarioSpec(**values)

    def test_metrics_recorded_per_point(self):
        result = run_grid(
            self._training_spec(),
            [ParameterAxis("channel_loss_db", (8.0, 16.0))],
            seed=0, workers=1)
        assert result.metric("trained_vertical").shape == (2,)
        # The baseline seeds the search, so the trained score never sits
        # below the fixed lineup's (and here the openings track it).
        assert np.all(result.metric("trained_score")
                      >= result.metric("fixed_score"))
        assert np.all(result.metric("trained_vertical")
                      >= result.metric("fixed_vertical"))
        # Budget 8 searched solves + the exempt baseline seed.
        assert np.all(result.metric("training_evaluations") <= 9)

    def test_requires_a_link_front_end(self):
        spec = ScenarioSpec(stimulus=StimulusSpec(n_bits=200),
                            measurement=MeasurementPlan(train_equalizers=True))
        with pytest.raises(ValueError, match="link front"):
            run_grid(spec, [FREQUENCY_AXIS], seed=0, workers=1)

    def test_training_budget_axis_caps_evaluations(self):
        result = run_grid(
            self._training_spec(training=None),
            [ParameterAxis("training_budget", (2, 6))],
            seed=0, workers=1)
        evaluations = result.metric("training_evaluations")
        assert evaluations[0] <= 3  # 2 searched + the baseline seed
        assert evaluations[1] <= 7
        assert evaluations[1] > evaluations[0]

    def test_deterministic_across_worker_counts(self):
        axis = [ParameterAxis("channel_loss_db", (8.0, 16.0))]
        serial = run_grid(self._training_spec(), axis, seed=2, workers=1)
        pooled = run_grid(self._training_spec(), axis, seed=2, workers=2)
        for key in ("trained_vertical", "trained_tx_post_db",
                    "trained_ctle_peaking_db", "errors"):
            np.testing.assert_array_equal(serial.metric(key),
                                          pooled.metric(key))

    def test_dfe_taps_recorded_when_configured(self):
        from dataclasses import replace

        from repro.link import LmsDfe

        spec = self._training_spec()
        spec = replace(spec, link=replace(spec.link, dfe=LmsDfe(n_taps=2)))
        from repro.experiments import link_training_measurement
        metrics = link_training_measurement(spec)
        assert "trained_dfe_tap1" in metrics and "trained_dfe_tap2" in metrics

    def test_measurement_serializes_through_sweep_result(self):
        from repro.experiments import SweepResult
        result = run_grid(
            self._training_spec(),
            [ParameterAxis("channel_loss_db", (8.0,))],
            seed=0, workers=1)
        restored = SweepResult.from_json(result.to_json())
        np.testing.assert_array_equal(restored.metric("trained_vertical"),
                                      result.metric("trained_vertical"))


class TestToleranceSearch:
    def test_search_finds_larger_low_frequency_tolerance(self):
        result = run_tolerance_search(
            BASE,
            [ParameterAxis("sj_frequency_hz", (2.5e5, 7.5e8))],
            ToleranceSearch(maximum=4.0, target_errors=1),
            seed=5, workers=1)
        low, near_rate = result.metric("sj_amplitude_ui_pp")
        assert low > near_rate

    def test_deterministic_across_worker_counts(self):
        search = ToleranceSearch(maximum=2.0, target_errors=1)
        axis = [ParameterAxis("sj_frequency_hz", (2.5e6,))]
        serial = run_tolerance_search(BASE, axis, search, seed=5, workers=1)
        pooled = run_tolerance_search(BASE, axis, search, seed=5, workers=2)
        np.testing.assert_array_equal(serial.metric("sj_amplitude_ui_pp"),
                                      pooled.metric("sj_amplitude_ui_pp"))

    def test_metadata_records_search_settings(self):
        result = run_tolerance_search(
            BASE, [ParameterAxis("sj_frequency_hz", (2.5e6,))],
            ToleranceSearch(maximum=1.0, target_errors=2), seed=0, workers=1)
        assert result.metadata["search_axis"] == "sj_amplitude_ui_pp"
        assert result.metadata["maximum"] == 1.0
        assert result.metadata["target_errors"] == 2

    def test_invalid_search_settings_rejected(self):
        with pytest.raises(ValueError):
            ToleranceSearch(maximum=0.0)
        with pytest.raises(ValueError):
            ToleranceSearch(resolution=-1.0)


class TestProvenanceStamping:
    def test_run_grid_stamps_a_manifest(self):
        from repro.telemetry.manifest import RunManifest

        result = run_grid(BASE, [FREQUENCY_AXIS], seed=3, workers=1)
        manifest = RunManifest.from_dict(result.metadata["manifest"])
        assert manifest.backend == FASTEST_CLEAN
        assert manifest.kernel_tier in (None, "python", "jit")
        assert manifest.seed == 3
        assert manifest.content_key  # the study's content hash

    def test_manifest_survives_the_json_round_trip(self):
        from repro.experiments import SweepResult

        result = run_grid(BASE, [FREQUENCY_AXIS], seed=3, workers=1)
        restored = SweepResult.from_json(result.to_json())
        assert restored.metadata["manifest"] == result.metadata["manifest"]

    def test_checkpoint_header_carries_the_same_manifest(self, tmp_path):
        import json

        checkpoint = tmp_path / "grid.jsonl"
        result = run_grid(
            BASE, [FREQUENCY_AXIS], seed=3, workers=1, checkpoint=checkpoint
        )
        header = json.loads(checkpoint.read_text().splitlines()[0])
        assert header["manifest"] == result.metadata["manifest"]
        progress_header = json.loads(
            (tmp_path / "grid.jsonl.progress").read_text().splitlines()[0]
        )
        assert progress_header["manifest"] == result.metadata["manifest"]

    def test_tolerance_search_stamps_a_manifest(self):
        from repro.telemetry.manifest import RunManifest

        result = run_tolerance_search(
            BASE, [ParameterAxis("sj_frequency_hz", (2.5e6,))],
            ToleranceSearch(maximum=1.0, target_errors=2), seed=0, workers=1)
        manifest = RunManifest.from_dict(result.metadata["manifest"])
        assert manifest.seed == 0
        assert manifest.content_key
