"""Scenario descriptions: stimuli, axes, applicator registry."""

import numpy as np
import pytest

from repro.datapath.encoding8b10b import max_run_length
from repro.datapath.nrz import JitterSpec
from repro.datapath.prbs import prbs_sequence, sequence_period
from repro.experiments import (
    AXIS_APPLICATORS,
    EqualizerLineup,
    LaneSpec,
    MeasurementPlan,
    ParameterAxis,
    ScenarioSpec,
    StimulusSpec,
    apply_axis,
    register_axis,
)
from repro.link import LinkConfig, RxCtle


class TestStimulusSpec:
    def test_prbs_bits_match_datapath(self):
        stimulus = StimulusSpec(kind="prbs", n_bits=300, prbs_order=7)
        np.testing.assert_array_equal(stimulus.bits(), prbs_sequence(7, 300))
        assert stimulus.pattern_period == sequence_period(7)

    def test_prbs_seed_decorrelates(self):
        a = StimulusSpec(n_bits=200, seed=1).bits()
        b = StimulusSpec(n_bits=200, seed=2).bits()
        assert not np.array_equal(a, b)

    def test_cid_stress_run_length(self):
        stimulus = StimulusSpec(kind="cid_stress", n_bits=256, max_run=8)
        bits = stimulus.bits()
        assert bits.size == 256
        assert max_run_length(bits) == 8

    def test_cid_pattern_period(self):
        assert StimulusSpec(kind="cid_stress", n_bits=256,
                            max_run=8).pattern_period == 32
        # Streams shorter than one period are aperiodic.
        assert StimulusSpec(kind="cid_stress", n_bits=16,
                            max_run=8).pattern_period is None

    def test_encoded8b10b_is_run_length_limited(self):
        stimulus = StimulusSpec(kind="encoded8b10b", n_bits=500)
        bits = stimulus.bits()
        assert bits.size == 500
        assert max_run_length(bits) <= 5  # 8b/10b guarantee
        assert stimulus.pattern_period is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown stimulus kind"):
            StimulusSpec(kind="sinewave")

    def test_invalid_n_bits_rejected(self):
        with pytest.raises(ValueError):
            StimulusSpec(n_bits=0)


class TestMeasurementPlan:
    def test_defaults(self):
        plan = MeasurementPlan()
        assert plan.eye is False
        assert plan.statistical_eye is False
        assert plan.target_ber == 1.0e-12
        assert plan.retain == "none"

    def test_unknown_retention_rejected(self):
        with pytest.raises(ValueError, match="retention"):
            MeasurementPlan(retain="everything")

    def test_target_ber_must_be_a_probability(self):
        with pytest.raises(ValueError):
            MeasurementPlan(statistical_eye=True, target_ber=0.0)
        with pytest.raises(ValueError):
            MeasurementPlan(statistical_eye=True, target_ber=1.5)


class TestParameterAxis:
    def test_values_become_tuple(self):
        axis = ParameterAxis("sj_amplitude_ui_pp", np.array([0.1, 0.2]))
        assert axis.values == (0.1, 0.2)
        assert len(axis) == 2

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ParameterAxis("sj_amplitude_ui_pp", ())

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            ParameterAxis("sj_amplitude_ui_pp", (0.1, 0.2), labels=("one",))

    def test_numeric_values(self):
        axis = ParameterAxis("frequency_offset", (0.0, 0.01))
        np.testing.assert_allclose(axis.numeric_values(), [0.0, 0.01])

    def test_structured_axis_has_no_numeric_values(self):
        axis = ParameterAxis("equalization", (EqualizerLineup("a"),))
        assert axis.numeric_values() is None
        assert axis.value_labels() == ("a",)

    def test_lane_labels(self):
        axis = ParameterAxis("lane", (LaneSpec(0, 0.0), LaneSpec(1, 0.01)))
        assert axis.value_labels() == ("lane0", "lane1")


class TestApplicators:
    BASE = ScenarioSpec(jitter=JitterSpec(dj_ui_pp=0.1, rj_ui_rms=0.01))

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter axis"):
            apply_axis(self.BASE, "warp_factor", 9)

    def test_sj_axes_compose(self):
        spec = apply_axis(self.BASE, "sj_amplitude_ui_pp", 0.5)
        spec = apply_axis(spec, "sj_frequency_hz", 1.0e6)
        assert spec.jitter.sj_amplitude_ui_pp == 0.5
        assert spec.jitter.sj_frequency_hz == 1.0e6
        assert spec.jitter.dj_ui_pp == 0.1  # untouched components survive

    def test_frequency_offset_axis(self):
        spec = apply_axis(self.BASE, "frequency_offset", 0.02)
        assert spec.config.frequency_offset == 0.02

    def test_edge_detector_delay_axis(self):
        spec = apply_axis(self.BASE, "edge_detector_delay_ui", 0.8)
        assert spec.config.edge_detector_delay_ui == 0.8

    def test_channel_loss_axis_creates_link(self):
        spec = apply_axis(self.BASE, "channel_loss_db", 12.0)
        assert spec.link is not None
        nyquist = spec.link.timebase.bit_rate_hz / 2.0
        response = spec.link.channel.frequency_response(np.array([nyquist]))
        np.testing.assert_allclose(
            -20.0 * np.log10(np.abs(response[0])), 12.0, rtol=1e-6)

    def test_ctle_peaking_axis(self):
        base = ScenarioSpec(link=LinkConfig(rx_ctle=RxCtle(peaking_db=2.0)))
        spec = apply_axis(base, "ctle_peaking_db", 9.0)
        assert spec.link.rx_ctle.peaking_db == 9.0

    def test_equalization_axis_replaces_lineup(self):
        lineup = EqualizerLineup("ctle", rx_ctle=RxCtle(peaking_db=4.0))
        spec = apply_axis(self.BASE, "equalization", lineup)
        assert spec.link.rx_ctle.peaking_db == 4.0
        assert spec.link.tx_ffe is None

    def test_lane_axis_sets_offset_and_seed(self):
        lane = LaneSpec(index=2, frequency_offset=0.003, stimulus_seed=3)
        spec = apply_axis(self.BASE, "lane", lane)
        assert spec.config.frequency_offset == 0.003
        assert spec.stimulus.seed == 3

    def test_aggressor_amplitude_axis_creates_default_population(self):
        spec = apply_axis(self.BASE, "aggressor_amplitude", 0.15)
        assert spec.link.crosstalk is not None
        assert len(spec.link.crosstalk) == 1
        assert spec.link.crosstalk.aggressors[0].amplitude == 0.15
        assert spec.link.crosstalk.aggressors[0].kind == "fext"

    def test_aggressor_amplitude_axis_rescales_existing_population(self):
        from repro.experiments import CrosstalkSpec
        from repro.link import LinkConfig

        base = ScenarioSpec(link=LinkConfig(
            crosstalk=CrosstalkSpec.uniform(3, 0.05, kind="next")))
        spec = apply_axis(base, "aggressor_amplitude", 0.2)
        assert len(spec.link.crosstalk) == 3
        assert all(a.amplitude == 0.2 for a in spec.link.crosstalk.aggressors)
        assert all(a.kind == "next" for a in spec.link.crosstalk.aggressors)

    def test_aggressor_amplitude_must_be_non_negative(self):
        with pytest.raises(ValueError):
            apply_axis(self.BASE, "aggressor_amplitude", -0.1)

    def test_register_axis_extends_registry(self):
        @register_axis("n_bits")
        def _apply_n_bits(spec, value):
            from dataclasses import replace
            return replace(spec, stimulus=replace(spec.stimulus,
                                                  n_bits=int(value)))

        try:
            spec = apply_axis(self.BASE, "n_bits", 123)
            assert spec.stimulus.n_bits == 123
        finally:
            del AXIS_APPLICATORS["n_bits"]
