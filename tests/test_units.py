"""Tests for unit conversions and physical constants."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestBitPeriod:
    def test_default_bit_rate_is_2p5_gbps(self):
        assert units.DEFAULT_BIT_RATE == pytest.approx(2.5e9)

    def test_default_unit_interval_is_400_ps(self):
        assert units.DEFAULT_UNIT_INTERVAL == pytest.approx(400.0e-12)

    def test_bit_period_inverse_of_rate(self):
        assert units.bit_period(1.0e9) == pytest.approx(1.0e-9)

    def test_bit_period_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            units.bit_period(0.0)
        with pytest.raises(ValueError):
            units.bit_period(-1.0)


class TestUiConversions:
    def test_one_ui_is_one_bit_period(self):
        assert units.ui_to_seconds(1.0) == pytest.approx(400.0e-12)

    def test_round_trip_ui_seconds(self):
        assert units.seconds_to_ui(units.ui_to_seconds(0.37)) == pytest.approx(0.37)

    def test_custom_bit_rate(self):
        assert units.ui_to_seconds(2.0, bit_rate_hz=10.0e9) == pytest.approx(200.0e-12)

    def test_ui_to_radians(self):
        assert units.ui_to_radians(0.5) == pytest.approx(math.pi)

    def test_radians_round_trip(self):
        assert units.radians_to_ui(units.ui_to_radians(0.123)) == pytest.approx(0.123)

    @given(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    def test_ui_seconds_round_trip_property(self, value):
        assert units.seconds_to_ui(units.ui_to_seconds(value)) == pytest.approx(value, abs=1e-12)


class TestPpmAndDb:
    def test_ppm_to_fraction(self):
        assert units.ppm_to_fraction(100.0) == pytest.approx(1.0e-4)

    def test_fraction_to_ppm(self):
        assert units.fraction_to_ppm(0.01) == pytest.approx(10_000.0)

    def test_db_round_trip(self):
        assert units.linear_to_db(units.db_to_linear(-12.5)) == pytest.approx(-12.5)

    def test_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    def test_dbm_zero_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1.0e-3)

    def test_watts_to_dbm_round_trip(self):
        assert units.watts_to_dbm(units.dbm_to_watts(7.3)) == pytest.approx(7.3)

    def test_watts_to_dbm_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)


class TestJitterShapeConversions:
    def test_uniform_rms_factor(self):
        # A uniform distribution has sigma = pp / sqrt(12).
        assert units.peak_to_peak_to_rms_uniform(1.0) == pytest.approx(1.0 / math.sqrt(12.0))

    def test_uniform_round_trip(self):
        assert units.rms_to_peak_to_peak_uniform(
            units.peak_to_peak_to_rms_uniform(0.4)
        ) == pytest.approx(0.4)

    def test_sine_rms_factor(self):
        assert units.peak_to_peak_to_rms_sine(2.0) == pytest.approx(1.0 / math.sqrt(2.0))

    def test_sine_round_trip(self):
        assert units.rms_to_peak_to_peak_sine(
            units.peak_to_peak_to_rms_sine(0.3)
        ) == pytest.approx(0.3)

    def test_table1_rj_relationship(self):
        # Table 1 quotes RJ as 0.021 UIrms (0.3 UIpp at the 1e-12 Q scale),
        # i.e. the pp value is about 14.1 times the rms value.
        assert 0.3 / 0.021 == pytest.approx(14.3, rel=0.05)


class TestPowerPerGbps:
    def test_paper_headline_number(self):
        # 12.5 mW at 2.5 Gbit/s is exactly 5 mW/Gbit/s.
        assert units.power_per_gbps(12.5e-3, 2.5e9) == pytest.approx(5.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            units.power_per_gbps(1.0e-3, 0.0)
