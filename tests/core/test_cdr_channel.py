"""Tests for the behavioural (event-driven) CDR channel."""

import numpy as np
import pytest

from repro.core.cdr_channel import BehavioralCdrChannel
from repro.core.config import PAPER_JITTER_SPEC, CdrChannelConfig
from repro.datapath.nrz import JitterSpec
from repro.datapath.prbs import prbs7

NO_JITTER = JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0)
SJ_ONLY = JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0,
                     sj_amplitude_ui_pp=0.1, sj_frequency_hz=250.0e6)


def run_channel(config, bits=None, jitter=NO_JITTER, seed=1, n=600):
    channel = BehavioralCdrChannel(config)
    if bits is None:
        bits = prbs7(n)
    return channel.run(bits, jitter=jitter, rng=np.random.default_rng(seed))


class TestErrorFreeOperation:
    def test_recovers_prbs7_without_jitter(self):
        result = run_channel(CdrChannelConfig.paper_nominal())
        measurement = result.ber()
        assert measurement.compared_bits > 500
        assert measurement.errors == 0
        assert result.missed_bits() == 0

    def test_recovers_with_improved_tap(self):
        result = run_channel(CdrChannelConfig.paper_improved())
        assert result.ber().errors == 0

    def test_recovers_under_moderate_jitter(self):
        jitter = JitterSpec(dj_ui_pp=0.1, rj_ui_rms=0.01)
        result = run_channel(CdrChannelConfig.paper_nominal(), jitter=jitter)
        assert result.ber().errors == 0

    def test_recovers_under_small_frequency_offset(self):
        config = CdrChannelConfig.paper_nominal().with_frequency_offset(0.001)
        result = run_channel(config)
        assert result.ber().errors == 0

    def test_one_sample_per_bit(self):
        result = run_channel(CdrChannelConfig.paper_nominal())
        assert result.samples_per_bit() == pytest.approx(1.0, abs=0.02)

    def test_recovered_clock_frequency_matches_data_rate(self):
        result = run_channel(CdrChannelConfig.paper_nominal())
        assert result.recovered_clock_frequency_hz() == pytest.approx(2.5e9, rel=0.01)


class TestSamplingPhase:
    def test_nominal_tap_samples_mid_bit(self):
        result = run_channel(CdrChannelConfig.paper_nominal())
        phases = result.sampling_phase_ui()
        in_bit = phases[(phases > 0) & (phases < 1)]
        assert np.median(in_bit) == pytest.approx(0.5, abs=0.03)

    def test_improved_tap_samples_one_eighth_earlier(self):
        """Section 3.3b: the improved tap shifts sampling by T/8."""
        result = run_channel(CdrChannelConfig.paper_improved())
        phases = result.sampling_phase_ui()
        in_bit = phases[(phases > 0) & (phases < 1)]
        assert np.median(in_bit) == pytest.approx(0.375, abs=0.03)


class TestEyeDiagram:
    def test_clean_eye_is_wide_open(self):
        result = run_channel(CdrChannelConfig.paper_nominal())
        metrics = result.eye_diagram().metrics()
        assert metrics.eye_opening_ui > 0.7

    def test_figure14_eye_is_asymmetric(self):
        """Fig. 14: with a 5 % slow oscillator the right edge spreads, the left stays tight."""
        config = CdrChannelConfig.figure14_condition()
        result = run_channel(config, jitter=SJ_ONLY, n=1500)
        metrics = result.eye_diagram().metrics()
        assert metrics.right_edge_std_ui > metrics.left_edge_std_ui

    def test_figure16_improved_tap_recentres_eye(self):
        """Fig. 16: under the Figure 14 condition (5 % slow CCO) the improved tap
        moves the eye centre back towards the sampling instant."""
        nominal = run_channel(CdrChannelConfig.figure14_condition(), jitter=SJ_ONLY,
                              n=1500)
        improved = run_channel(CdrChannelConfig.figure14_condition(improved_sampling=True),
                               jitter=SJ_ONLY, n=1500)
        assert abs(improved.eye_diagram().metrics().eye_centre_ui) < \
            abs(nominal.eye_diagram().metrics().eye_centre_ui)


class TestEdgeDetectorDelayWindow:
    def test_short_delay_fails_with_frequency_offset(self):
        """Fig. 13: tau well below T/2 loses synchronisation under offset + jitter."""
        good = CdrChannelConfig.paper_nominal().with_frequency_offset(0.02)
        bad = good.with_edge_detector_delay(0.2)
        jitter = JitterSpec(dj_ui_pp=0.2, rj_ui_rms=0.02)
        good_result = run_channel(good, jitter=jitter, n=1200)
        bad_result = run_channel(bad, jitter=jitter, n=1200)
        assert bad_result.ber().errors > good_result.ber().errors

    def test_large_frequency_offset_loses_last_bit_of_long_runs(self):
        """With a slow oscillator and a long edge-detector delay, the gating of
        the next transition swallows the sampling edge of the last bit of long
        runs — the freeze blanks the final (tau - T/2) of every run."""
        config = CdrChannelConfig.figure14_condition().with_edge_detector_delay(0.85)
        result = run_channel(config, n=1500)
        assert result.missed_bits() > 0
        assert result.ber().errors == result.missed_bits()

    def test_short_edge_detector_delay_avoids_the_blanking(self):
        """The same 5 % offset with tau near T/2 keeps every bit sampled."""
        config = CdrChannelConfig.figure14_condition().with_edge_detector_delay(0.55)
        result = run_channel(config, n=1500)
        assert result.missed_bits() == 0


class TestDiagnostics:
    def test_traces_are_recorded(self):
        result = run_channel(CdrChannelConfig.paper_nominal(), n=100)
        for name in ("din", "ddin", "edet", "clock", "dout"):
            assert result.trace(name).edges("any").size > 0

    def test_sequence_ber_agrees_when_no_slips(self):
        result = run_channel(CdrChannelConfig.paper_nominal(), n=400)
        assert result.sequence_ber().errors == 0

    def test_reproducible_with_seed(self):
        config = CdrChannelConfig.paper_nominal()
        a = run_channel(config, jitter=PAPER_JITTER_SPEC, seed=5, n=300)
        b = run_channel(config, jitter=PAPER_JITTER_SPEC, seed=5, n=300)
        np.testing.assert_array_equal(a.sampled_bits, b.sampled_bits)

    def test_rejects_empty_bits(self):
        with pytest.raises(ValueError):
            BehavioralCdrChannel().run(np.array([], dtype=np.uint8))
