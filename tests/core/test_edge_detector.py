"""Tests for the gate-level edge detector."""

import pytest

from repro.events.kernel import Simulator
from repro.events.signal import Signal
from repro.events.waveform import WaveformRecorder
from repro.core.edge_detector import EdgeDetector


def build(total_delay_s=300.0e-12, n_cells=3):
    simulator = Simulator()
    data = Signal(simulator, "din", initial=0)
    detector = EdgeDetector(simulator, data, total_delay_s=total_delay_s, n_cells=n_cells)
    recorder = WaveformRecorder()
    edet = recorder.watch(detector.output, "edet")
    ddin = recorder.watch(detector.delayed_data, "ddin")
    return simulator, data, detector, edet, ddin


class TestEdgeDetector:
    def test_edet_idles_high(self):
        simulator, _data, detector, edet, _ddin = build()
        simulator.run_until(5.0e-9)
        assert detector.output.value == 1
        assert edet.edges("any").size == 0

    def test_pulse_on_rising_data_edge(self):
        simulator, data, _detector, edet, _ddin = build()
        simulator.call_at(1.0e-9, lambda: data.force(1))
        simulator.run_until(3.0e-9)
        falling = edet.edges("falling")
        rising = edet.edges("rising")
        assert falling.size == 1
        assert rising.size == 1
        # The low pulse lasts the delay-line delay.
        assert rising[0] - falling[0] == pytest.approx(300.0e-12, rel=0.05)

    def test_pulse_on_falling_data_edge_too(self):
        simulator, data, _detector, edet, _ddin = build()
        simulator.call_at(1.0e-9, lambda: data.force(1))
        simulator.call_at(3.0e-9, lambda: data.force(0))
        simulator.run_until(5.0e-9)
        assert edet.edges("falling").size == 2

    def test_delayed_data_follows_input(self):
        simulator, data, detector, _edet, ddin = build()
        simulator.call_at(1.0e-9, lambda: data.force(1))
        simulator.run_until(3.0e-9)
        edges = ddin.edges("rising")
        assert edges.size == 1
        # DDIN is delayed by the delay line plus the dummy gate (25 ps).
        assert edges[0] - 1.0e-9 == pytest.approx(325.0e-12, rel=0.05)
        assert detector.delayed_data.value == 1

    def test_ddin_and_edet_rise_are_matched(self):
        """The dummy gate makes the DDIN edge and the EDET release coincide."""
        simulator, data, _detector, edet, ddin = build()
        simulator.call_at(1.0e-9, lambda: data.force(1))
        simulator.run_until(3.0e-9)
        assert ddin.edges("rising")[0] == pytest.approx(edet.edges("rising")[0], abs=2e-12)

    def test_pulse_width_tracks_configured_delay(self):
        for delay in (220.0e-12, 380.0e-12):
            simulator, data, _detector, edet, _ddin = build(total_delay_s=delay)
            simulator.call_at(1.0e-9, lambda: data.force(1))
            simulator.run_until(3.0e-9)
            width = edet.edges("rising")[0] - edet.edges("falling")[0]
            assert width == pytest.approx(delay, rel=0.05)

    def test_closely_spaced_edges_produce_split_pulses(self):
        # Two data edges closer together than the delay-line delay produce two
        # short EDET pulses — the hazard behind the paper's tau < T bound.
        simulator, data, _detector, edet, _ddin = build(total_delay_s=300.0e-12)
        simulator.call_at(1.0e-9, lambda: data.force(1))
        simulator.call_at(1.2e-9, lambda: data.force(0))
        simulator.run_until(3.0e-9)
        assert edet.edges("falling").size == 2

    def test_rejects_bad_parameters(self):
        simulator = Simulator()
        data = Signal(simulator, "d", initial=0)
        with pytest.raises(ValueError):
            EdgeDetector(simulator, data, total_delay_s=0.0)
