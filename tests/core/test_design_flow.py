"""Tests for the end-to-end top-down design flow."""

import numpy as np
import pytest

from repro.core.design_flow import run_design_flow


@pytest.fixture(scope="module")
def report():
    return run_design_flow(behavioural_bits=600, grid_step_ui=4.0e-3,
                           rng=np.random.default_rng(0))


class TestDesignFlow:
    def test_statistical_feasibility(self, report):
        assert report.nominal_ber < 1.0e-12

    def test_ftol_exceeds_100ppm(self, report):
        assert report.ftol.meets_specification(100.0)

    def test_jtol_passes_mask(self, report):
        assert report.compliance.jtol_pass

    def test_power_below_paper_target(self, report):
        """Headline result: < 5 mW/Gbit/s."""
        assert report.power_report.power_per_gbps_mw < 5.0
        assert report.compliance.power_pass

    def test_oscillator_meets_kappa_budget(self, report):
        assert report.oscillator_design.kappa <= report.oscillator_design.kappa_budget

    def test_behavioural_verification_is_error_free(self, report):
        assert report.behavioural_ber.errors == 0
        assert report.behavioural_ber.compared_bits > 500

    def test_recovered_clock_at_bit_rate(self, report):
        assert report.recovered_frequency_hz == pytest.approx(2.5e9, rel=0.01)

    def test_overall_compliance(self, report):
        assert report.compliance.overall_pass

    def test_summary_lines_render(self, report):
        text = "\n".join(report.summary_lines())
        assert "mW/Gbit/s" in text
        assert "PASS" in text
        assert "Stage 3" in text
