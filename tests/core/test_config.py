"""Tests for the CDR channel configuration objects."""

import pytest

from repro.core.config import (
    PAPER_JITTER_SPEC,
    PAPER_POWER_TARGET_MW_PER_GBPS,
    PAPER_TARGET_BER,
    CdrChannelConfig,
)


class TestPaperConstants:
    def test_table1_values(self):
        assert PAPER_JITTER_SPEC.dj_ui_pp == pytest.approx(0.4)
        assert PAPER_JITTER_SPEC.rj_ui_rms == pytest.approx(0.021)
        assert PAPER_JITTER_SPEC.sj_amplitude_ui_pp == 0.0

    def test_targets(self):
        assert PAPER_TARGET_BER == 1.0e-12
        assert PAPER_POWER_TARGET_MW_PER_GBPS == 5.0


class TestChannelConfig:
    def test_default_unit_interval(self):
        assert CdrChannelConfig().unit_interval_s == pytest.approx(400.0e-12)

    def test_sampling_phase_selection(self):
        assert CdrChannelConfig().sampling_phase_ui == pytest.approx(0.5)
        assert CdrChannelConfig(improved_sampling=True).sampling_phase_ui == pytest.approx(0.375)

    def test_edge_detector_delay_inside_window(self):
        config = CdrChannelConfig()
        assert 0.5 < config.edge_detector_delay_ui < 1.0
        assert config.edge_detector_delay_s == pytest.approx(
            config.edge_detector_delay_ui * config.oscillator_period_s)

    def test_frequency_offset_changes_oscillator_frequency(self):
        config = CdrChannelConfig(frequency_offset=0.05)
        assert config.oscillator_frequency_hz == pytest.approx(2.5e9 / 1.05)
        assert config.oscillator_period_s > 400e-12

    def test_frequency_offset_bounds(self):
        with pytest.raises(ValueError):
            CdrChannelConfig(frequency_offset=0.6)

    def test_with_helpers_return_copies(self):
        base = CdrChannelConfig()
        improved = base.with_improved_sampling()
        offset = base.with_frequency_offset(0.01)
        delayed = base.with_edge_detector_delay(0.6)
        assert improved.improved_sampling and not base.improved_sampling
        assert offset.frequency_offset == 0.01 and base.frequency_offset == 0.0
        assert delayed.edge_detector_delay_ui == 0.6

    def test_paper_factories(self):
        nominal = CdrChannelConfig.paper_nominal()
        improved = CdrChannelConfig.paper_improved()
        assert not nominal.improved_sampling
        assert improved.improved_sampling
        assert nominal.oscillator.jitter_sigma_fraction > 0.0

    def test_figure14_condition_is_5_percent_slow(self):
        config = CdrChannelConfig.figure14_condition()
        assert config.oscillator_frequency_hz == pytest.approx(2.375e9)
        assert config.frequency_offset == pytest.approx(2.5 / 2.375 - 1.0)
