"""Tests for the elastic buffer."""

from hypothesis import given, settings, strategies as st

from repro.core.elastic_buffer import ElasticBuffer


class TestBasicOperation:
    def test_prime_fills_to_half_depth(self):
        buffer = ElasticBuffer(depth=16)
        buffer.prime()
        assert buffer.occupancy == 8

    def test_write_then_read_fifo_order(self):
        buffer = ElasticBuffer(depth=8)
        for value in (1, 0, 1, 1):
            assert buffer.write(value)
        assert [buffer.read() for _ in range(4)] == [1, 0, 1, 1]

    def test_overflow_drops_and_counts(self):
        buffer = ElasticBuffer(depth=4)
        for _ in range(4):
            assert buffer.write(1)
        assert not buffer.write(1)
        stats = buffer.statistics()
        assert stats.overflows == 1
        assert buffer.occupancy == 4

    def test_underflow_repeats_and_counts(self):
        buffer = ElasticBuffer(depth=4)
        buffer.write(1)
        assert buffer.read() == 1
        assert buffer.read() == 1  # repeated value
        assert buffer.statistics().underflows == 1

    def test_occupancy_tracking(self):
        buffer = ElasticBuffer(depth=8)
        for _ in range(5):
            buffer.write(0)
        for _ in range(3):
            buffer.read()
        stats = buffer.statistics()
        assert stats.max_occupancy == 5
        assert stats.writes == 5
        assert stats.reads == 3
        assert stats.slips == 0

    @given(st.lists(st.sampled_from(["w", "r"]), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_depth(self, operations):
        buffer = ElasticBuffer(depth=8)
        for operation in operations:
            if operation == "w":
                buffer.write(1)
            else:
                buffer.read()
        assert 0 <= buffer.occupancy <= 8


class TestClockDomainSimulation:
    def test_matched_rates_do_not_slip(self):
        stats = ElasticBuffer.simulate_clock_domains(
            5000, write_rate_hz=250.0e6, read_rate_hz=250.0e6, depth=16)
        assert stats.slips == 0

    def test_100ppm_offset_absorbed_over_short_burst(self):
        # +/-100 ppm over 5000 symbols drifts by 0.5 symbols: easily absorbed.
        stats = ElasticBuffer.simulate_clock_domains(
            5000, write_rate_hz=250.0e6 * 1.0001, read_rate_hz=250.0e6, depth=16)
        assert stats.slips == 0

    def test_large_offset_eventually_slips(self):
        stats = ElasticBuffer.simulate_clock_domains(
            20000, write_rate_hz=250.0e6 * 1.01, read_rate_hz=250.0e6, depth=8)
        assert stats.slips > 0

    def test_deeper_buffer_slips_less(self):
        shallow = ElasticBuffer.simulate_clock_domains(
            20000, write_rate_hz=250.0e6 * 1.002, read_rate_hz=250.0e6, depth=8)
        deep = ElasticBuffer.simulate_clock_domains(
            20000, write_rate_hz=250.0e6 * 1.002, read_rate_hz=250.0e6, depth=64)
        assert deep.slips <= shallow.slips
