"""Tests for the baseline CDR models used in ablations."""

import pytest

from repro.core.baselines import FreeRunningOscillatorBer, PllCdrBerModel
from repro.statistical.ber_model import CdrJitterBudget, GatedOscillatorBerModel

GRID = 4.0e-3


class TestFreeRunningBaseline:
    def test_fails_catastrophically_with_offset(self):
        """Without gating, even 100 ppm of offset destroys the BER over a burst."""
        budget = CdrJitterBudget(frequency_offset=1.0e-4)
        baseline = FreeRunningOscillatorBer(budget, n_bits=10_000, grid_step_ui=GRID)
        assert baseline.ber() > 1.0e-3

    def test_gating_wins_by_orders_of_magnitude(self):
        """Ablation A3: the gated oscillator versus the same oscillator ungated."""
        budget = CdrJitterBudget(frequency_offset=1.0e-4)
        gated = GatedOscillatorBerModel(budget, grid_step_ui=GRID).ber()
        ungated = FreeRunningOscillatorBer(budget, n_bits=10_000, grid_step_ui=GRID).ber()
        assert gated < 1.0e-12
        assert ungated > 1.0e6 * max(gated, 1e-30)

    def test_perfect_frequency_match_is_benign(self):
        budget = CdrJitterBudget(frequency_offset=0.0, osc_sigma_ui_per_bit=0.0)
        baseline = FreeRunningOscillatorBer(budget, n_bits=2_000, grid_step_ui=GRID)
        assert baseline.ber() < 1.0e-10


class TestPllBaseline:
    def test_tracks_low_frequency_jitter(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=1.0, sj_frequency_hz=1.0e5)
        model = PllCdrBerModel(budget, loop_bandwidth_hz=4.0e6)
        assert model.untracked_sj_amplitude_ui_pp() < 0.05
        assert model.ber() < 1.0e-12

    def test_does_not_track_high_frequency_jitter(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=1.0, sj_frequency_hz=1.0e9)
        model = PllCdrBerModel(budget, loop_bandwidth_hz=4.0e6)
        assert model.untracked_sj_amplitude_ui_pp() == pytest.approx(1.0, rel=0.01)
        assert model.ber() > 1.0e-12

    def test_is_immune_to_frequency_offset_unlike_gcco(self):
        # The PLL tracks frequency, so offset does not matter; the GCCO degrades.
        budget = CdrJitterBudget(frequency_offset=0.05, sj_amplitude_ui_pp=0.3,
                                 sj_frequency_hz=1.0e9)
        pll = PllCdrBerModel(budget).ber()
        gcco = GatedOscillatorBerModel(budget, grid_step_ui=GRID).ber()
        assert gcco > pll

    def test_no_sj_case(self):
        model = PllCdrBerModel(CdrJitterBudget())
        assert model.untracked_sj_amplitude_ui_pp() == 0.0
        assert model.ber() < 1.0e-12
