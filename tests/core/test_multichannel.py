"""Tests for the multi-channel receiver."""

import numpy as np
import pytest

from repro.core.multichannel import MultiChannelConfig, MultiChannelReceiver
from repro.pll.pll import ChannelBiasMismatch


class TestBiasDistribution:
    def test_shared_control_current(self):
        receiver = MultiChannelReceiver(rng=np.random.default_rng(0))
        assert receiver.shared_control_current_a() == pytest.approx(200.0e-6)

    def test_channel_offsets_have_mismatch_scale(self):
        config = MultiChannelConfig(
            n_channels=64,
            mismatch=ChannelBiasMismatch(mirror_gain_sigma=0.0,
                                         oscillator_frequency_sigma=0.005),
        )
        receiver = MultiChannelReceiver(config, rng=np.random.default_rng(1))
        offsets = receiver.channel_frequency_offsets()
        assert offsets.size == 64
        assert 0.002 < offsets.std() < 0.01

    def test_transmitter_ppm_shifts_all_channels(self):
        config = MultiChannelConfig(
            n_channels=16, transmitter_offset_ppm=100.0,
            mismatch=ChannelBiasMismatch(0.0, 0.0))
        receiver = MultiChannelReceiver(config, rng=np.random.default_rng(2))
        offsets = receiver.channel_frequency_offsets()
        np.testing.assert_allclose(offsets, -1.0e-4, rtol=1e-6)

    def test_lane_skews_bounded(self):
        config = MultiChannelConfig(n_channels=8, max_lane_skew_ui=10.0)
        receiver = MultiChannelReceiver(config, rng=np.random.default_rng(3))
        skews = receiver.lane_skews_ui()
        assert np.all((skews >= 0.0) & (skews <= 10.0))


class TestStatisticalReport:
    def test_all_channels_meet_target_with_realistic_mismatch(self):
        """Matched oscillators (sub-percent mismatch) keep every channel below 1e-12."""
        config = MultiChannelConfig(n_channels=4)
        receiver = MultiChannelReceiver(config, rng=np.random.default_rng(4))
        report = receiver.statistical_report(grid_step_ui=4.0e-3)
        assert len(report.channels) == 4
        assert report.all_channels_pass
        assert report.worst_ber < 1.0e-12

    def test_gross_mismatch_fails_channels(self):
        config = MultiChannelConfig(
            n_channels=4,
            mismatch=ChannelBiasMismatch(mirror_gain_sigma=0.0,
                                         oscillator_frequency_sigma=0.08))
        receiver = MultiChannelReceiver(config, rng=np.random.default_rng(5))
        report = receiver.statistical_report(grid_step_ui=4.0e-3)
        assert not report.all_channels_pass

    def test_report_fields(self):
        receiver = MultiChannelReceiver(rng=np.random.default_rng(6))
        report = receiver.statistical_report(grid_step_ui=4.0e-3)
        channel = report.channels[0]
        assert channel.channel_index == 0
        assert channel.frequency_offset_ppm == pytest.approx(
            channel.frequency_offset * 1e6)


class TestBehaviouralRun:
    def test_all_channels_recover_data(self):
        config = MultiChannelConfig(n_channels=2)
        receiver = MultiChannelReceiver(config, rng=np.random.default_rng(7))
        report = receiver.behavioural_run(n_bits=300)
        assert len(report.results) == 2
        assert report.total_bits > 500
        assert report.aggregate_ber < 0.01

    def test_independent_data_per_channel(self):
        config = MultiChannelConfig(n_channels=2)
        receiver = MultiChannelReceiver(config, rng=np.random.default_rng(8))
        report = receiver.behavioural_run(n_bits=200)
        a = report.results[0].transmitted_bits
        b = report.results[1].transmitted_bits
        assert not np.array_equal(a, b)
