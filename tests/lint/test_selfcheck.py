"""The repository satisfies its own determinism & spawn-safety contract.

This is the test-suite twin of the blocking CI step: repro-lint over the
full tree must be clean against the committed (empty-for-RPL001..003)
baseline.  A new violation fails here first, with the rule's message.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro._lint import Baseline, DEFAULT_BASELINE_NAME, lint_paths, rule_codes

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT_TARGETS = ["src", "tests", "benchmarks", "examples"]


def test_repo_lints_clean():
    findings = lint_paths(LINT_TARGETS, REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    kept, stale = baseline.apply(findings)
    assert kept == [], "\n".join(finding.render() for finding in kept)
    assert stale == [], stale


def test_committed_baseline_is_empty_for_core_invariants():
    # Acceptance contract: RPL001 (implicit RNG), RPL002 (wall clock) and
    # RPL003 (raw json) violations were *fixed or pragma'd*, never
    # baselined — and they must stay that way.
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    core = {"RPL001", "RPL002", "RPL003"}
    offenders = [key for key in baseline.entries if key[1] in core]
    assert offenders == [], offenders


def test_cli_module_exits_zero_from_repo_root():
    # Exactly the blocking CI invocation, importable without numpy.
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro._lint", *LINT_TARGETS],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 findings" in result.stdout


def test_every_rule_is_registered():
    assert rule_codes() == [f"RPL00{n}" for n in range(1, 9)]
