"""Fixture-snippet coverage for every repro-lint rule.

Each rule gets the same three-way treatment the CI contract relies on:

* a **positive** fixture proving detection (plus a scope/negative twin),
* **pragma** suppression (inline ``# repro-lint: disable=RPLxxx``),
* **baseline** suppression (the shrink-only JSON file).

``lint_source`` scopes rules by the relpath the caller declares, so the
fixtures choose their scope by naming themselves into ``src/repro/...``
or ``tests/...``.
"""

import textwrap

import pytest

from repro._lint import Baseline, lint_source

SRC = "src/repro/jitter/fixture_mod.py"
TEST = "tests/fixture_mod.py"


def codes(source, relpath=SRC):
    return [finding.code for finding in lint_source(textwrap.dedent(source), relpath)]


def single(source, relpath=SRC):
    findings = lint_source(textwrap.dedent(source), relpath)
    assert len(findings) == 1, findings
    return findings[0]


# --- RPL001 implicit-rng ------------------------------------------------------


class TestImplicitRng:
    def test_legacy_global_numpy_rng_call(self):
        finding = single(
            """
            import numpy as np

            def noisy():
                return np.random.normal(0.0, 1.0)
            """
        )
        assert finding.code == "RPL001"
        assert "numpy.random.normal" in finding.message

    def test_unseeded_default_rng(self):
        assert codes("import numpy as np\nrng = np.random.default_rng()\n") == ["RPL001"]

    def test_default_rng_seeded_with_none_literal(self):
        assert codes("import numpy as np\nrng = np.random.default_rng(None)\n") == ["RPL001"]

    def test_stdlib_random(self):
        assert codes("import random\nx = random.random()\n") == ["RPL001"]

    def test_stdlib_random_from_import(self):
        assert codes("from random import randint\nx = randint(0, 5)\n") == ["RPL001"]

    def test_seeded_paths_are_clean(self):
        assert (
            codes(
                """
                import numpy as np

                root = np.random.SeedSequence(7)
                rngs = [np.random.default_rng(child) for child in root.spawn(3)]
                """
            )
            == []
        )

    def test_local_variable_named_random_is_not_flagged(self):
        assert codes("random = object()\nrandom.shuffle()\n") == []

    def test_scope_is_src_only(self):
        assert codes("import numpy as np\nrng = np.random.default_rng()\n", TEST) == []

    def test_pragma_suppresses(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=RPL001 — fixture\n"
        )
        assert codes(source) == []

    def test_baseline_suppresses(self, tmp_path):
        findings = lint_source("import numpy as np\nrng = np.random.default_rng()\n", SRC)
        Baseline.write(tmp_path / "base.json", findings)
        kept, stale = Baseline.load(tmp_path / "base.json").apply(findings)
        assert kept == [] and stale == []


# --- RPL002 wall-clock --------------------------------------------------------


class TestWallClock:
    def test_time_time(self):
        finding = single("import time\nstamp = time.time()\n")
        assert finding.code == "RPL002"

    def test_datetime_now_via_from_import(self):
        assert codes("from datetime import datetime\nnow = datetime.now()\n") == ["RPL002"]

    def test_applies_outside_src_too(self):
        assert codes("import time\nstamp = time.time()\n", TEST) == ["RPL002"]

    def test_perf_counter_is_fine(self):
        assert codes("import time\nt0 = time.perf_counter()\n") == []

    @pytest.mark.parametrize(
        "relpath", ["src/repro/telemetry/tracer.py", "benchmarks/run_bench.py"]
    )
    def test_allowlist(self, relpath):
        assert codes("import time\nstamp = time.time()\n", relpath) == []

    def test_pragma_suppresses(self):
        source = "import time\nstamp = time.time()  # repro-lint: disable=RPL002 — fixture\n"
        assert codes(source) == []

    def test_baseline_suppresses(self, tmp_path):
        findings = lint_source("import time\nstamp = time.time()\n", SRC)
        Baseline.write(tmp_path / "base.json", findings)
        kept, stale = Baseline.load(tmp_path / "base.json").apply(findings)
        assert kept == [] and stale == []


# --- RPL003 raw-json ----------------------------------------------------------


class TestRawJson:
    def test_raw_dumps(self):
        finding = single("import json\ntext = json.dumps({})\n")
        assert finding.code == "RPL003"
        assert "dumps_strict" in finding.message

    def test_raw_loads_via_from_import(self):
        assert codes("from json import loads\nvalue = loads('{}')\n") == ["RPL003"]

    def test_jsonio_itself_is_exempt(self):
        assert codes("import json\ntext = json.dumps({})\n", "src/repro/_jsonio.py") == []

    def test_lint_package_is_exempt(self):
        assert codes("import json\ntext = json.dumps({})\n", "src/repro/_lint/baseline.py") == []

    def test_tests_are_out_of_scope(self):
        # Independent verification of codec output *should* use raw json.
        assert codes("import json\ntext = json.dumps({})\n", TEST) == []

    def test_jsondecodeerror_reference_is_fine(self):
        assert (
            codes(
                """
                import json

                def parse(text, fallback):
                    try:
                        return fallback(text)
                    except json.JSONDecodeError:
                        return None
                """
            )
            == []
        )

    def test_pragma_suppresses(self):
        source = "import json\ntext = json.dumps({})  # repro-lint: disable=RPL003 — fixture\n"
        assert codes(source) == []

    def test_baseline_suppresses(self, tmp_path):
        findings = lint_source("import json\ntext = json.dumps({})\n", SRC)
        Baseline.write(tmp_path / "base.json", findings)
        kept, stale = Baseline.load(tmp_path / "base.json").apply(findings)
        assert kept == [] and stale == []


# --- RPL004 spawn-unsafe-callable ---------------------------------------------


class TestSpawnUnsafeCallable:
    def test_lambda_worker(self):
        finding = single(
            """
            from repro.sweep import map_tasks

            def run(tasks):
                return map_tasks(lambda task, rng: task, tasks, seed=0)
            """
        )
        assert finding.code == "RPL004"
        assert "lambda" in finding.message

    def test_locally_defined_worker(self):
        finding = single(
            """
            from repro.sweep import map_tasks_resilient

            def run(tasks):
                def worker(task, rng):
                    return task
                return map_tasks_resilient(worker, tasks, seed=0)
            """
        )
        assert finding.code == "RPL004"
        assert "worker" in finding.message

    def test_lambda_into_executor_submit(self):
        assert (
            codes(
                """
                def run(pool):
                    return pool.submit(lambda: 1)
                """,
                TEST,
            )
            == ["RPL004"]
        )

    def test_module_level_worker_is_fine(self):
        assert (
            codes(
                """
                from repro.sweep import map_tasks

                def worker(task, rng):
                    return task

                def run(tasks):
                    return map_tasks(worker, tasks, seed=0)
                """
            )
            == []
        )

    def test_method_in_local_class_is_not_confused_with_closure(self):
        assert (
            codes(
                """
                from repro.sweep import map_tasks

                def worker(task, rng):
                    return task

                def run(tasks):
                    class Helper:
                        def worker(self, task, rng):
                            return task
                    return map_tasks(worker, tasks, seed=0)
                """
            )
            == []
        )

    def test_pragma_suppresses(self):
        source = textwrap.dedent(
            """
            from repro.sweep import map_tasks

            def run(tasks):
                # repro-lint: disable=RPL004 — fixture, serial-only test helper
                return map_tasks(lambda task, rng: task, tasks, seed=0, workers=1)
            """
        )
        assert [finding.code for finding in lint_source(source, SRC)] == []

    def test_baseline_suppresses(self, tmp_path):
        source = textwrap.dedent(
            """
            from repro.sweep import map_tasks

            def run(tasks):
                return map_tasks(lambda task, rng: task, tasks, seed=0)
            """
        )
        findings = lint_source(source, SRC)
        Baseline.write(tmp_path / "base.json", findings)
        kept, stale = Baseline.load(tmp_path / "base.json").apply(findings)
        assert kept == [] and stale == []


# --- RPL005 unordered-iteration -----------------------------------------------


class TestUnorderedIteration:
    def test_for_over_set_literal(self):
        finding = single(
            """
            def run():
                for item in {"b", "a"}:
                    print(item)
            """
        )
        assert finding.code == "RPL005"

    def test_comprehension_over_set_call(self):
        assert codes("tasks = [t for t in set(range(5))]\n") == ["RPL005"]

    def test_list_conversion_of_set(self):
        assert codes("tasks = list(set((1, 2)))\n") == ["RPL005"]

    def test_sorted_set_is_fine(self):
        assert codes("tasks = sorted(set((1, 2)))\n") == []
        assert codes("for t in sorted({2, 1}):\n    print(t)\n") == []

    def test_membership_test_is_fine(self):
        assert codes("ok = 3 in {1, 2, 3}\n") == []

    def test_pragma_suppresses(self):
        source = "tasks = list(set((1, 2)))  # repro-lint: disable=RPL005 — fixture\n"
        assert codes(source) == []

    def test_baseline_suppresses(self, tmp_path):
        findings = lint_source("tasks = list(set((1, 2)))\n", SRC)
        Baseline.write(tmp_path / "base.json", findings)
        kept, stale = Baseline.load(tmp_path / "base.json").apply(findings)
        assert kept == [] and stale == []


# --- RPL006 float-equality ----------------------------------------------------


class TestFloatEquality:
    def test_nonzero_float_literal(self):
        finding = single("def gate(x):\n    return x == 1.5\n")
        assert finding.code == "RPL006"

    def test_negative_float_literal(self):
        assert codes("def gate(x):\n    return x != -0.25\n") == ["RPL006"]

    def test_float_call_operand(self):
        assert codes('def gate(x):\n    return x == float("inf")\n') == ["RPL006"]

    def test_math_inf_attribute(self):
        assert codes("import math\ndef gate(x):\n    return x == math.inf\n") == ["RPL006"]

    def test_exact_zero_gate_is_sanctioned(self):
        assert codes("def gate(x):\n    return x == 0.0 or x != 0.0\n") == []

    def test_int_comparison_is_fine(self):
        assert codes("def gate(x):\n    return x == 1\n") == []

    def test_scope_is_src_only(self):
        assert codes("def gate(x):\n    return x == 1.5\n", TEST) == []

    def test_pragma_suppresses(self):
        source = "def gate(x):\n    return x == 1.5  # repro-lint: disable=RPL006 — fixture\n"
        assert codes(source) == []

    def test_baseline_suppresses(self, tmp_path):
        findings = lint_source("def gate(x):\n    return x == 1.5\n", SRC)
        Baseline.write(tmp_path / "base.json", findings)
        kept, stale = Baseline.load(tmp_path / "base.json").apply(findings)
        assert kept == [] and stale == []


# --- RPL007 broad-except ------------------------------------------------------

BROAD = """
def guarded(task):
    try:
        return task()
    except Exception:
        return None
"""


class TestBroadExcept:
    def test_broad_except(self):
        finding = single(BROAD)
        assert finding.code == "RPL007"

    def test_bare_except(self):
        source = "try:\n    pass\nexcept:\n    pass\n"
        assert codes(source) == ["RPL007"]

    def test_tuple_containing_broad_type(self):
        source = "try:\n    pass\nexcept (ValueError, Exception):\n    pass\n"
        assert codes(source) == ["RPL007"]

    def test_narrow_except_is_fine(self):
        source = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert codes(source) == []

    @pytest.mark.parametrize(
        "relpath", ["src/repro/sweep/resilient.py", "src/repro/_kernels/dispatch.py"]
    )
    def test_sanctioned_isolation_sites(self, relpath):
        assert codes(BROAD, relpath) == []

    def test_pragma_suppresses(self):
        source = BROAD.replace(
            "except Exception:", "except Exception:  # repro-lint: disable=RPL007 — fixture"
        )
        assert codes(source) == []

    def test_baseline_suppresses(self, tmp_path):
        findings = lint_source(BROAD, SRC)
        Baseline.write(tmp_path / "base.json", findings)
        kept, stale = Baseline.load(tmp_path / "base.json").apply(findings)
        assert kept == [] and stale == []


# --- RPL008 environment-read --------------------------------------------------


class TestEnvironmentRead:
    def test_os_environ_subscript(self):
        finding = single('import os\nvalue = os.environ["REPRO_SEED"]\n')
        assert finding.code == "RPL008"
        assert "os.environ" in finding.message
        assert "manifest" in finding.message

    def test_os_environ_get_is_flagged_once(self):
        assert codes('import os\nvalue = os.environ.get("REPRO_SEED")\n') == ["RPL008"]

    def test_os_getenv(self):
        assert codes('import os\nvalue = os.getenv("REPRO_SEED")\n') == ["RPL008"]

    def test_platform_call(self):
        assert codes("import platform\nv = platform.python_version()\n") == ["RPL008"]

    def test_platform_from_import(self):
        assert codes("from platform import machine\narch = machine()\n") == ["RPL008"]

    def test_sys_version_info(self):
        assert codes("import sys\nok = sys.version_info >= (3, 11)\n") == ["RPL008"]

    def test_benchmarks_are_in_scope(self):
        assert codes(
            "import platform\nv = platform.python_version()\n", "benchmarks/run_bench.py"
        ) == ["RPL008"]

    def test_manifest_module_is_exempt(self):
        assert (
            codes(
                "import platform\nv = platform.python_version()\n",
                "src/repro/telemetry/manifest.py",
            )
            == []
        )

    def test_tests_are_out_of_scope(self):
        assert codes("import os\nvalue = os.getenv('X')\n", TEST) == []

    def test_other_sys_attributes_are_fine(self):
        assert codes("import sys\nsys.exit(1)\n") == []
        assert codes("import sys\npath = sys.path\n") == []

    def test_local_name_platform_is_not_confused(self):
        assert codes("platform = object()\nv = platform.python_version()\n") == []

    def test_pragma_suppresses(self):
        source = (
            "import os\n"
            'value = os.getenv("REPRO_SEED")  # repro-lint: disable=RPL008 — fixture\n'
        )
        assert codes(source) == []

    def test_baseline_suppresses(self, tmp_path):
        findings = lint_source('import os\nvalue = os.getenv("X")\n', SRC)
        Baseline.write(tmp_path / "base.json", findings)
        kept, stale = Baseline.load(tmp_path / "base.json").apply(findings)
        assert kept == [] and stale == []


# --- pragma placement & parse-error behaviour ---------------------------------


class TestPragmaMechanics:
    def test_comment_line_above_covers_next_line(self):
        source = (
            "import time\n"
            "# repro-lint: disable=RPL002 — fixture\n"
            "stamp = time.time()\n"
        )
        assert codes(source) == []

    def test_file_level_pragma(self):
        source = (
            "# repro-lint: disable-file=RPL002 — fixture module\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        assert codes(source) == []

    def test_disable_all(self):
        source = "import time\nstamp = time.time()  # repro-lint: disable=all — fixture\n"
        assert codes(source) == []

    def test_wrong_code_does_not_suppress(self):
        source = "import time\nstamp = time.time()  # repro-lint: disable=RPL001 — wrong\n"
        assert codes(source) == ["RPL002"]

    def test_pragma_inside_string_literal_is_inert(self):
        source = (
            "import time\n"
            'note = "# repro-lint: disable=RPL002"\n'
            "stamp = time.time()\n"
        )
        assert codes(source) == ["RPL002"]

    def test_syntax_error_reports_parse_error_code(self):
        findings = lint_source("def broken(:\n", SRC)
        assert [finding.code for finding in findings] == ["RPL000"]


class TestBaselineMechanics:
    def test_stale_entry_is_reported(self, tmp_path):
        findings = lint_source("import time\nstamp = time.time()\n", SRC)
        Baseline.write(tmp_path / "base.json", findings)
        baseline = Baseline.load(tmp_path / "base.json")
        kept, stale = baseline.apply([])  # violation has been fixed
        assert kept == []
        assert len(stale) == 1 and stale[0]["code"] == "RPL002"

    def test_snippet_identity_survives_line_moves(self, tmp_path):
        findings = lint_source("import time\nstamp = time.time()\n", SRC)
        Baseline.write(tmp_path / "base.json", findings)
        moved = lint_source("import time\n\n\n# a comment\nstamp = time.time()\n", SRC)
        kept, stale = Baseline.load(tmp_path / "base.json").apply(moved)
        assert kept == [] and stale == []

    def test_count_covers_duplicate_lines(self, tmp_path):
        source = "import time\na = time.time()\na = time.time()\n"
        findings = lint_source(source, SRC)
        assert len(findings) == 2
        Baseline.write(tmp_path / "base.json", findings)
        baseline = Baseline.load(tmp_path / "base.json")
        assert sum(baseline.entries.values()) == 2
        kept, stale = baseline.apply(findings)
        assert kept == [] and stale == []
