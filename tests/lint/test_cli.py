"""CLI exit-code / output-format contract for ``python -m repro._lint``."""

import io
import json

import pytest

from repro._lint import DEFAULT_BASELINE_NAME, main

CLEAN = "import numpy as np\nrng = np.random.default_rng(7)\n"
DIRTY = "import numpy as np\nrng = np.random.default_rng()\n"


def write_module(root, relpath, source):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def run_cli(root, *argv):
    stream = io.StringIO()
    code = main(["--root", str(root), *argv], stream=stream)
    return code, stream.getvalue()


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        write_module(tmp_path, "src/repro/core/mod.py", CLEAN)
        code, output = run_cli(tmp_path, "src")
        assert code == 0
        assert "0 findings" in output

    def test_findings_exit_one(self, tmp_path):
        write_module(tmp_path, "src/repro/core/mod.py", DIRTY)
        code, output = run_cli(tmp_path, "src")
        assert code == 1
        assert "RPL001" in output and "1 finding" in output

    def test_missing_path_exits_two(self, tmp_path):
        code, _ = run_cli(tmp_path, "no_such_dir")
        assert code == 2

    def test_no_paths_exits_two(self, tmp_path):
        code, _ = run_cli(tmp_path)
        assert code == 2

    def test_corrupt_baseline_exits_two(self, tmp_path):
        write_module(tmp_path, "src/repro/core/mod.py", CLEAN)
        (tmp_path / DEFAULT_BASELINE_NAME).write_text("not json", encoding="utf-8")
        code, _ = run_cli(tmp_path, "src")
        assert code == 2

    def test_parse_error_exits_one(self, tmp_path):
        write_module(tmp_path, "src/repro/core/mod.py", "def broken(:\n")
        code, output = run_cli(tmp_path, "src")
        assert code == 1
        assert "RPL000" in output


class TestJsonOutput:
    def test_report_shape(self, tmp_path):
        write_module(tmp_path, "src/repro/core/mod.py", DIRTY)
        code, output = run_cli(tmp_path, "--format", "json", "src")
        assert code == 1
        report = json.loads(output)
        assert report["version"] == 1
        assert report["summary"]["findings"] == 1
        (finding,) = report["findings"]
        assert finding["code"] == "RPL001"
        assert finding["path"] == "src/repro/core/mod.py"
        assert finding["line"] == 2
        assert finding["snippet"] == "rng = np.random.default_rng()"

    def test_clean_report(self, tmp_path):
        write_module(tmp_path, "src/repro/core/mod.py", CLEAN)
        code, output = run_cli(tmp_path, "--format", "json", "src")
        assert code == 0
        report = json.loads(output)
        assert report["findings"] == [] and report["stale_baseline"] == []


class TestBaselineFlow:
    def test_write_then_enforce_then_stale(self, tmp_path):
        module = write_module(tmp_path, "src/repro/core/mod.py", DIRTY)

        code, output = run_cli(tmp_path, "--write-baseline", "src")
        assert code == 0 and "1 finding" in output

        # Grandfathered: same tree now lints clean against the baseline.
        code, output = run_cli(tmp_path, "src")
        assert code == 0 and "suppressed by baseline" in output

        # Fixing the violation makes the entry stale -> the run fails
        # until the entry is deleted (the list only shrinks).
        module.write_text(CLEAN, encoding="utf-8")
        code, output = run_cli(tmp_path, "src")
        assert code == 1
        assert "stale baseline entry" in output

    def test_no_baseline_flag_reports_everything(self, tmp_path):
        write_module(tmp_path, "src/repro/core/mod.py", DIRTY)
        run_cli(tmp_path, "--write-baseline", "src")
        code, output = run_cli(tmp_path, "--no-baseline", "src")
        assert code == 1 and "RPL001" in output

    def test_explicit_baseline_path(self, tmp_path):
        write_module(tmp_path, "src/repro/core/mod.py", DIRTY)
        baseline = tmp_path / "custom_baseline.json"
        code, _ = run_cli(tmp_path, "--write-baseline", "--baseline", str(baseline), "src")
        assert code == 0 and baseline.exists()
        code, _ = run_cli(tmp_path, "--baseline", str(baseline), "src")
        assert code == 0


class TestListRules:
    def test_lists_all_seven_rules(self, tmp_path):
        code, output = run_cli(tmp_path, "--list-rules")
        assert code == 0
        for expected in (f"RPL00{n}" for n in range(1, 8)):
            assert expected in output


class TestDiscovery:
    def test_pycache_is_skipped(self, tmp_path):
        write_module(tmp_path, "src/repro/core/mod.py", CLEAN)
        write_module(tmp_path, "src/repro/core/__pycache__/junk.py", DIRTY)
        code, _ = run_cli(tmp_path, "src")
        assert code == 0

    def test_single_file_argument(self, tmp_path):
        write_module(tmp_path, "src/repro/core/mod.py", DIRTY)
        code, output = run_cli(tmp_path, "src/repro/core/mod.py")
        assert code == 1 and "RPL001" in output

    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_output_is_deterministic(self, tmp_path, fmt):
        write_module(tmp_path, "src/repro/core/b.py", DIRTY)
        write_module(tmp_path, "src/repro/core/a.py", DIRTY)
        first = run_cli(tmp_path, "--format", fmt, "src")
        second = run_cli(tmp_path, "--format", fmt, "src")
        assert first == second
        # Findings come out path-sorted regardless of creation order.
        assert first[1].index("a.py") < first[1].index("b.py")
