"""End-to-end checks of the paper's headline claims.

Each test corresponds to a sentence of the paper's abstract or conclusions and
exercises the public API the way a user reproducing that claim would.
"""

import numpy as np

from repro.core import (
    CdrChannelConfig,
    MultiChannelConfig,
    MultiChannelReceiver,
    run_design_flow,
)
from repro.phasenoise import channel_power_report, design_oscillator
from repro.specs.infiniband import infiniband_mask
from repro.statistical import (
    CdrJitterBudget,
    GatedOscillatorBerModel,
    frequency_tolerance,
    jitter_tolerance_curve,
)


class TestAbstractClaims:
    def test_power_consumption_as_low_as_5mw_per_gbps(self):
        """'...to achieve a power consumption as low as 5 mW/Gbit/s.'"""
        report = channel_power_report(design_oscillator())
        assert report.power_per_gbps_mw <= 5.0

    def test_statistical_simulation_estimates_achievable_ber(self):
        """'Statistical simulation is used to estimate the achievable bit error rate
        in presence of phase and frequency errors...'"""
        budget = CdrJitterBudget.paper_table1(sj_amplitude_ui_pp=0.2,
                                              sj_frequency_hz=1.0e6,
                                              frequency_offset=100.0e-6)
        assert GatedOscillatorBerModel(budget, grid_step_ui=4e-3).ber() < 1.0e-12

    def test_gated_oscillator_is_viable_with_frequency_and_phase_variations(self):
        """'...the gated oscillator approach is a viable solution in presence of
        frequency and phase variations.'"""
        ftol = frequency_tolerance(grid_step_ui=4.0e-3, max_offset=0.05,
                                   resolution=1e-3)
        assert ftol.meets_specification(100.0)  # the +/-100 ppm application spec

    def test_jitter_tolerance_above_infiniband_mask(self):
        """Fig. 9: 'The targeted bit error rate of 1e-12 is much above the
        specifications of Figure 5, especially for low-frequency jitter.'"""
        mask = infiniband_mask()
        frequencies = mask.frequencies_for_sweep(points_per_decade=1)
        curve = jitter_tolerance_curve(frequencies, grid_step_ui=4.0e-3,
                                       max_amplitude_ui_pp=20.0)
        required = np.asarray(mask.amplitude_ui_pp(frequencies))
        margins = curve.margin_to_mask(required)
        assert np.all(margins > 0.0)
        # 'especially for low-frequency jitter': the margin grows towards DC.
        assert margins[0] > margins[-1]

    def test_improved_sampling_point_reduces_ber(self):
        """Section 3.3b / Fig. 17: the modified topology improves the BER."""
        stress = CdrJitterBudget(sj_amplitude_ui_pp=0.3, sj_frequency_hz=1.25e9,
                                 frequency_offset=0.01)
        nominal = GatedOscillatorBerModel(stress, sampling_phase_ui=0.5,
                                          grid_step_ui=4e-3).ber()
        improved = GatedOscillatorBerModel(stress, sampling_phase_ui=0.375,
                                           grid_step_ui=4e-3).ber()
        assert improved < nominal / 10.0


class TestSystemLevel:
    def test_multi_channel_receiver_meets_target_ber(self):
        """Figure 6: four matched channels biased from one shared PLL all work."""
        receiver = MultiChannelReceiver(MultiChannelConfig(n_channels=4),
                                        rng=np.random.default_rng(0))
        report = receiver.statistical_report(grid_step_ui=4.0e-3)
        assert report.all_channels_pass

    def test_complete_design_flow_is_compliant(self):
        """The paper's overall claim: the top-down flow produces a compliant design."""
        report = run_design_flow(behavioural_bits=400, grid_step_ui=4.0e-3,
                                 rng=np.random.default_rng(1))
        assert report.compliance.overall_pass

    def test_frequency_tolerance_well_beyond_100ppm_but_below_5_percent(self):
        """Section 2.3 + Fig. 10: ppm-level offsets are fine, percent-level offsets
        start to cost BER."""
        ftol = frequency_tolerance(budget=CdrJitterBudget(), grid_step_ui=4.0e-3,
                                   max_offset=0.1, resolution=1e-3)
        assert 100.0 < ftol.symmetric_tolerance_ppm < 50_000.0
