"""Cross-level integration tests.

The paper's methodological claim is that the statistical, behavioural and
circuit levels of the flow agree with each other; these tests check exactly
that consistency on conditions every level can reach.
"""

import numpy as np
import pytest

from repro.core.cdr_channel import BehavioralCdrChannel
from repro.core.config import CdrChannelConfig
from repro.datapath.nrz import JitterSpec
from repro.datapath.prbs import prbs7
from repro.jitter.accumulation import OscillatorJitterBudget
from repro.phasenoise.design import design_oscillator
from repro.statistical.ber_model import CdrJitterBudget, GatedOscillatorBerModel
from repro.statistical.montecarlo import simulate_ber


class TestStatisticalVersusMonteCarlo:
    @pytest.mark.parametrize("offset, sj_amplitude", [
        (0.02, 0.8),
        (0.05, 0.5),
        (0.0, 1.0),
    ])
    def test_models_agree_at_measurable_ber(self, offset, sj_amplitude):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=sj_amplitude,
                                 sj_frequency_hz=1.25e9,
                                 frequency_offset=offset)
        analytic = GatedOscillatorBerModel(budget, grid_step_ui=2e-3).ber()
        monte_carlo = simulate_ber(budget, n_bits=150_000,
                                   rng=np.random.default_rng(42))
        assert analytic > 1.0e-4  # within Monte-Carlo reach
        assert monte_carlo.ber == pytest.approx(analytic, rel=0.2)


class TestStatisticalVersusBehavioural:
    def test_benign_conditions_are_error_free_in_both(self):
        budget = CdrJitterBudget(sj_amplitude_ui_pp=0.1, sj_frequency_hz=250.0e6)
        statistical = GatedOscillatorBerModel(budget, grid_step_ui=4e-3).ber()
        assert statistical < 1.0e-12

        result = BehavioralCdrChannel(CdrChannelConfig.paper_nominal()).run(
            prbs7(1000),
            jitter=JitterSpec(dj_ui_pp=0.4, rj_ui_rms=0.021,
                              sj_amplitude_ui_pp=0.1, sj_frequency_hz=250.0e6),
            rng=np.random.default_rng(0))
        # 1000 bits cannot resolve 1e-12, but an error-free run is consistent.
        assert result.ber().errors <= 1

    def test_gross_frequency_offset_fails_in_both(self):
        # A 9 % slow oscillator overruns the end of the longest PRBS7 runs
        # (7 x 0.09 > 0.5 UI), so both modelling levels must report errors.
        offset = 0.09
        from repro.datapath.cid import geometric_run_distribution
        budget = CdrJitterBudget(dj_ui_pp=0.0, rj_ui_rms=0.0, frequency_offset=offset)
        statistical = GatedOscillatorBerModel(
            budget, run_lengths=geometric_run_distribution(7),
            grid_step_ui=4e-3).ber()
        assert statistical > 1.0e-4

        config = CdrChannelConfig.paper_nominal().with_frequency_offset(offset)
        behavioural = BehavioralCdrChannel(config).run(
            prbs7(2000), jitter=JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0),
            rng=np.random.default_rng(1)).ber()
        assert behavioural.errors > 0

    def test_improved_tap_recentres_eye_and_reduces_statistical_ber(self):
        offset = 0.02
        stress = CdrJitterBudget(sj_amplitude_ui_pp=0.3, sj_frequency_hz=1.25e9,
                                 frequency_offset=offset)
        stat_nominal = GatedOscillatorBerModel(stress, sampling_phase_ui=0.5,
                                               grid_step_ui=4e-3).ber()
        stat_improved = GatedOscillatorBerModel(stress, sampling_phase_ui=0.375,
                                                grid_step_ui=4e-3).ber()
        assert stat_improved < stat_nominal

        jitter = JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0)
        nominal = BehavioralCdrChannel(
            CdrChannelConfig.paper_nominal().with_frequency_offset(offset)).run(
            prbs7(1200), jitter=jitter, rng=np.random.default_rng(2))
        improved = BehavioralCdrChannel(
            CdrChannelConfig.paper_improved().with_frequency_offset(offset)).run(
            prbs7(1200), jitter=jitter, rng=np.random.default_rng(2))
        assert abs(improved.eye_diagram().metrics().eye_centre_ui) <= \
            abs(nominal.eye_diagram().metrics().eye_centre_ui) + 0.02


class TestPhaseNoiseVersusBehaviour:
    def test_designed_oscillator_jitter_budget_holds_in_simulation(self):
        """The sized oscillator's per-stage jitter keeps accumulated jitter < 0.01 UI."""
        design = design_oscillator(budget=OscillatorJitterBudget())
        # Convert kappa to the per-stage fractional jitter of the event model:
        # per-period sigma = kappa * sqrt(T); per stage (8 per period, independent)
        # sigma_stage = sigma_period / sqrt(8); fractional = sigma_stage / t_stage.
        period = 1.0 / design.oscillation_frequency_hz
        sigma_period = design.kappa * np.sqrt(period)
        sigma_fraction = (sigma_period / np.sqrt(8.0)) / design.stage_delay_s

        config = CdrChannelConfig.paper_nominal(jitter_sigma_fraction=float(sigma_fraction))
        result = BehavioralCdrChannel(config).run(
            prbs7(1500), jitter=JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0),
            rng=np.random.default_rng(3))
        phases = result.sampling_phase_ui()
        in_bit = phases[(phases > 0.0) & (phases < 1.0)]
        # The sampling-phase spread of 1-UI runs reflects the per-period jitter;
        # it must stay well inside the 0.01 UI budget at CID 5.
        assert in_bit.std() < 0.02
        assert result.ber().errors == 0
