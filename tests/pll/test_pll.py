"""Tests for the shared PLL simulation and channel mismatch model."""

import numpy as np
import pytest

from repro.pll.components import CurrentControlledOscillator
from repro.pll.pll import ChannelBiasMismatch, PllConfig, SharedPll


class TestConfig:
    def test_target_frequency(self):
        config = PllConfig(reference_frequency_hz=156.25e6, multiplication_factor=16)
        assert config.target_frequency_hz == pytest.approx(2.5e9)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PllConfig(reference_frequency_hz=0.0)


class TestSharedPll:
    @pytest.fixture(scope="class")
    def result(self):
        return SharedPll().simulate(duration_s=20.0e-6, time_step_s=2.0e-9)

    def test_locks_to_target_frequency(self, result):
        assert abs(result.final_frequency_error) < 1.0e-3

    def test_control_current_settles_near_midpoint(self, result):
        # The CCO free-running frequency equals the target, so the control
        # current settles at its midpoint (200 uA).
        assert result.final_control_current_a == pytest.approx(200.0e-6, rel=0.05)

    def test_lock_time_is_finite(self, result):
        lock = result.lock_time_s(1.0e-3)
        assert 0.0 < lock < 15.0e-6

    def test_acquisition_starts_away_from_lock(self, result):
        initial_error = abs(result.frequencies_hz[0] - result.target_frequency_hz)
        final_error = abs(result.final_frequency_hz - result.target_frequency_hz)
        assert initial_error > 10 * final_error

    def test_locked_control_current_helper(self):
        pll = SharedPll()
        assert pll.locked_control_current_a() == pytest.approx(200.0e-6)

    def test_off_frequency_reference(self):
        config = PllConfig(reference_frequency_hz=156.25e6 * 1.0001)
        result = SharedPll(config).simulate(duration_s=20.0e-6, time_step_s=2.0e-9)
        assert result.final_frequency_hz == pytest.approx(config.target_frequency_hz,
                                                          rel=1.0e-3)


class TestChannelMismatch:
    def test_offsets_have_requested_spread(self):
        mismatch = ChannelBiasMismatch(mirror_gain_sigma=0.01,
                                       oscillator_frequency_sigma=0.0)
        cco = CurrentControlledOscillator()
        offsets = mismatch.sample_channel_offsets(2000, 200e-6, cco,
                                                  rng=np.random.default_rng(0))
        # Mirror gain error translates through Kcco * Ic / f0 ~ 0.16 ppm/ppm here.
        assert offsets.std() > 0.0
        assert abs(offsets.mean()) < 3.0 * offsets.std() / np.sqrt(2000) + 1e-6

    def test_zero_mismatch_gives_zero_offsets(self):
        mismatch = ChannelBiasMismatch(mirror_gain_sigma=0.0,
                                       oscillator_frequency_sigma=0.0)
        offsets = mismatch.sample_channel_offsets(8, 200e-6,
                                                  CurrentControlledOscillator(),
                                                  rng=np.random.default_rng(1))
        np.testing.assert_allclose(offsets, 0.0, atol=1e-12)

    def test_oscillator_mismatch_dominates(self):
        mismatch = ChannelBiasMismatch(mirror_gain_sigma=0.0,
                                       oscillator_frequency_sigma=0.005)
        offsets = mismatch.sample_channel_offsets(2000, 200e-6,
                                                  CurrentControlledOscillator(),
                                                  rng=np.random.default_rng(2))
        assert offsets.std() == pytest.approx(0.005, rel=0.1)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            ChannelBiasMismatch(mirror_gain_sigma=-0.1)
