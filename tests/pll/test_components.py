"""Tests for the PLL behavioural components."""

import math

import pytest

from repro.pll.components import (
    ChargePump,
    CurrentControlledOscillator,
    PhaseFrequencyDetector,
    SecondOrderLoopFilter,
)


class TestPfd:
    def test_linear_region(self):
        pfd = PhaseFrequencyDetector()
        assert pfd.phase_error(1.0, 0.4) == pytest.approx(0.6)

    def test_clamps_to_two_pi(self):
        pfd = PhaseFrequencyDetector()
        assert pfd.phase_error(100.0, 0.0) == pytest.approx(2.0 * math.pi)
        assert pfd.phase_error(0.0, 100.0) == pytest.approx(-2.0 * math.pi)

    def test_gain(self):
        assert PhaseFrequencyDetector(gain=2.0).phase_error(1.0, 0.0) == pytest.approx(2.0)


class TestChargePump:
    def test_current_proportional_to_error(self):
        pump = ChargePump(pump_current_a=50e-6)
        assert pump.output_current(2.0 * math.pi) == pytest.approx(50e-6)
        assert pump.output_current(math.pi) == pytest.approx(25e-6)

    def test_mismatch_scales_output(self):
        pump = ChargePump(pump_current_a=50e-6, mismatch_fraction=0.1)
        assert pump.output_current(2.0 * math.pi) == pytest.approx(55e-6)


class TestLoopFilter:
    def test_integrates_charge(self):
        lf = SecondOrderLoopFilter(resistance_ohm=1e3, capacitance_f=100e-12,
                                   ripple_capacitance_f=10e-12)
        for _ in range(100):
            lf.update(10e-6, 1e-9)
        # Integrator: 10 uA * 100 ns / 100 pF = 10 mV, plus the proportional
        # path 10 uA * 1 kOhm = 10 mV -> ~20 mV at the (settled) ripple node.
        assert lf.control_voltage_v == pytest.approx(0.02, rel=0.15)

    def test_reset(self):
        lf = SecondOrderLoopFilter()
        lf.update(1e-6, 1e-9)
        lf.reset(0.0)
        assert lf.control_voltage_v == 0.0

    def test_control_current_via_transconductance(self):
        lf = SecondOrderLoopFilter(transconductance_s=100e-6)
        lf.reset(1.0)
        assert lf.control_current_a() == pytest.approx(100e-6)


class TestCco:
    def test_frequency_at_midpoint(self):
        cco = CurrentControlledOscillator()
        assert cco.frequency_hz(cco.control_current_midpoint_a) == pytest.approx(2.5e9)

    def test_gain(self):
        cco = CurrentControlledOscillator()
        assert cco.frequency_hz(cco.control_current_midpoint_a + 1e-6) == pytest.approx(
            2.5e9 + 2e6)

    def test_inverse_tuning(self):
        cco = CurrentControlledOscillator()
        current = cco.control_current_for(2.375e9)
        assert cco.frequency_hz(current) == pytest.approx(2.375e9)

    def test_zero_gain_cannot_be_tuned(self):
        cco = CurrentControlledOscillator(gain_hz_per_a=0.0)
        with pytest.raises(ValueError):
            cco.control_current_for(2.6e9)

    def test_frequency_clamped_positive(self):
        cco = CurrentControlledOscillator()
        assert cco.frequency_hz(-1.0) >= 1.0
