"""Run provenance manifests: collection, stamping, serialization, stamping sites."""

import pytest

from repro._jsonio import dumps_strict, loads_strict
from repro.fastpath import backends as backend_registry
from repro.telemetry.manifest import (
    MANIFEST_KIND,
    MANIFEST_VERSION,
    RunManifest,
    collect_manifest,
)


class TestCollect:
    def test_environment_fields_are_populated(self):
        manifest = collect_manifest()
        assert manifest.python.count(".") == 2
        assert manifest.implementation == "cpython"
        assert manifest.platform
        assert manifest.machine
        # numpy is importable in the test environment.
        assert manifest.numpy is not None

    def test_capability_snapshot_matches_registry(self):
        manifest = collect_manifest()
        assert manifest.capabilities == tuple(
            sorted(backend_registry.environment_capabilities())
        )
        assert manifest.backends == tuple(sorted(backend_registry.BACKENDS))

    def test_capability_snapshot_is_live_not_cached(self, monkeypatch):
        baseline = collect_manifest()
        monkeypatch.setattr(
            backend_registry, "environment_capabilities", lambda: frozenset()
        )
        assert collect_manifest().capabilities == ()
        monkeypatch.undo()
        assert collect_manifest().capabilities == baseline.capabilities

    def test_study_fields_default_to_none(self):
        manifest = collect_manifest()
        assert (manifest.backend, manifest.kernel_tier) == (None, None)
        assert (manifest.content_key, manifest.seed) == (None, None)

    def test_study_fields_can_be_collected_directly(self):
        manifest = collect_manifest(backend="events", kernel_tier="python", seed=7)
        assert manifest.backend == "events"
        assert manifest.kernel_tier == "python"
        assert manifest.seed == 7


class TestStamped:
    def test_stamped_fills_only_given_fields(self):
        manifest = collect_manifest().stamped(backend="events", seed=3)
        assert manifest.backend == "events"
        assert manifest.seed == 3
        assert manifest.kernel_tier is None

    def test_stamped_preserves_existing_values(self):
        manifest = collect_manifest(backend="events").stamped(seed=3)
        assert manifest.backend == "events"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            collect_manifest().python = "other"


class TestSerialization:
    def test_to_dict_envelope(self):
        payload = collect_manifest().to_dict()
        assert payload["kind"] == MANIFEST_KIND
        assert payload["version"] == MANIFEST_VERSION
        assert isinstance(payload["capabilities"], list)
        assert isinstance(payload["backends"], list)

    def test_round_trip(self):
        manifest = collect_manifest(backend="events", kernel_tier="jit", seed=11)
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_strict_json_round_trip(self):
        manifest = collect_manifest(seed=11)
        payload = loads_strict(dumps_strict(manifest.to_dict(), sort_keys=True))
        assert RunManifest.from_dict(payload) == manifest

    def test_from_dict_rejects_foreign_kind(self):
        with pytest.raises(ValueError, match=MANIFEST_KIND):
            RunManifest.from_dict({"kind": "something-else"})

    def test_from_dict_ignores_unknown_keys(self):
        payload = collect_manifest().to_dict()
        payload["future_field"] = "ignored"
        RunManifest.from_dict(payload)
