"""Trace reporting: stage/cache/pool tables, stage_breakdown, history, CLI."""

import json

import pytest

from repro._jsonio import dumps_compact
from repro.telemetry import Tracer
from repro.telemetry.report import (
    HISTORY_KIND,
    HISTORY_VERSION,
    cache_table,
    counter_table,
    history_summary,
    history_table,
    load_history,
    load_trace,
    main,
    pool_table,
    stage_breakdown,
    stage_table,
    summarize,
)


def _tracer() -> Tracer:
    tracer = Tracer("study")
    with tracer.span("sweep.chunk"):
        with tracer.span("fastpath.run"):
            pass
    tracer.count("link.pulse_cache.hits", 9)
    tracer.count("link.pulse_cache.misses", 1)
    tracer.count("stateye.objective_cache.misses", 4)
    tracer.count("kernel.events", 120)
    tracer.count("sweep.tasks.pool", 8)
    tracer.count("sweep.retries", 1)
    return tracer


class TestLoadTrace:
    def test_accepts_tracer(self):
        trace = load_trace(_tracer())
        assert trace["counters"]["kernel.events"] == 120
        assert len(trace["spans"]) == 2

    def test_accepts_dict_verbatim(self):
        trace = load_trace(_tracer())
        assert load_trace(trace) is trace

    def test_accepts_path(self, tmp_path):
        path = _tracer().write_jsonl(tmp_path / "trace.jsonl")
        assert load_trace(path)["name"] == "study"


class TestStageTable:
    def test_rows_sorted_by_total_time(self):
        table = stage_table(load_trace(_tracer()))
        stages = [row[0] for row in table.rows]
        assert "sweep.chunk" in stages
        assert "sweep.chunk/fastpath.run" in stages
        assert stages[0] == "sweep.chunk"  # outer span dominates

    def test_share_normalized_by_top_level(self):
        table = stage_table(load_trace(_tracer()))
        top = dict(zip([row[0] for row in table.rows], [row[4] for row in table.rows]))
        assert top["sweep.chunk"] == "100.0%"


class TestCacheTable:
    def test_pairs_hits_and_misses(self):
        table = cache_table(load_trace(_tracer()))
        rows = {row[0]: row[1:] for row in table.rows}
        assert rows["link.pulse_cache"] == ["9", "1", "90.0%"]
        # A cache with only misses still reports, at zero rate.
        assert rows["stateye.objective_cache"] == ["0", "4", "0.0%"]


class TestPoolTable:
    def test_only_sweep_counters(self):
        table = pool_table(load_trace(_tracer()))
        names = [row[0] for row in table.rows]
        assert names == ["sweep.retries", "sweep.tasks.pool"]


class TestCounterTable:
    def test_lists_every_counter(self):
        table = counter_table(load_trace(_tracer()))
        assert len(table.rows) == 6


class TestStageBreakdown:
    def test_shape(self):
        breakdown = stage_breakdown(_tracer())
        assert set(breakdown) == {"stages", "caches", "counters"}
        assert breakdown["stages"]["sweep.chunk"]["count"] == 1
        assert breakdown["caches"]["link.pulse_cache"] == {
            "hits": 9,
            "misses": 1,
            "hit_rate": 0.9,
        }
        # Hit/miss counters live under caches, not duplicated as counters.
        assert "link.pulse_cache.hits" not in breakdown["counters"]
        assert breakdown["counters"]["kernel.events"] == 120

    def test_json_safe(self, tmp_path):
        import json

        json.dumps(stage_breakdown(_tracer()), allow_nan=False)

    def test_from_file(self, tmp_path):
        path = _tracer().write_jsonl(tmp_path / "trace.jsonl")
        assert stage_breakdown(path)["counters"]["kernel.events"] == 120


class TestSummarize:
    def test_contains_all_sections(self):
        text = summarize(_tracer())
        assert "stage breakdown" in text
        assert "cache hit rates" in text
        assert "pool health" in text
        assert "link.pulse_cache" in text
        assert "stateye.objective_cache" in text
        assert "sweep.tasks.pool" in text
        assert "kernel.events" in text

    def test_sections_without_data_are_omitted(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        text = summarize(tracer)
        assert "cache hit rates" not in text
        assert "pool health" not in text


def _history_file(tmp_path, speedups_per_run, name="loop"):
    """Write a synthetic bench-history ledger: one record per run."""
    path = tmp_path / "bench_history.jsonl"
    lines = []
    for speedup in speedups_per_run:
        lines.append(
            dumps_compact(
                {
                    "kind": HISTORY_KIND,
                    "version": HISTORY_VERSION,
                    "quick": True,
                    "floor": 5,
                    "manifest": {"kind": "repro-run-manifest"},
                    "entries": {name: {"speedup": speedup}},
                }
            )
        )
    path.write_text("\n".join(lines) + "\n")
    return path


class TestHistory:
    def test_load_history_skips_foreign_and_torn_records(self, tmp_path):
        path = _history_file(tmp_path, [2.0, 3.0])
        with path.open("a") as handle:
            handle.write('{"kind": "other"}\n{"kind": "repro-bench-hist')
        assert len(load_history(path)) == 2

    def test_load_history_rejects_non_ledger(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "nope"}\n')
        with pytest.raises(ValueError, match="no repro-bench-history"):
            load_history(path)

    def test_steady_trend_is_healthy(self, tmp_path):
        summary = history_summary(_history_file(tmp_path, [2.0, 2.1, 1.9, 2.0]))
        assert summary["regressions"] == []
        assert summary["benchmarks"]["loop"]["median"] == 2.0

    def test_drop_below_tolerance_times_median_is_flagged(self, tmp_path):
        summary = history_summary(_history_file(tmp_path, [2.0, 2.1, 1.9, 1.0]))
        assert summary["regressions"] == ["loop"]
        assert summary["benchmarks"]["loop"]["regression"] is True

    def test_fresh_ledger_is_never_a_regression(self, tmp_path):
        # One prior run is noise, not a trend: no flag even on a 10x drop.
        summary = history_summary(_history_file(tmp_path, [2.0, 0.2]))
        assert summary["regressions"] == []

    def test_median_uses_rolling_window(self, tmp_path):
        # Ancient fast runs outside the window must not flag a stable present.
        speedups = [9.0, 9.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0]
        summary = history_summary(_history_file(tmp_path, speedups), window=5)
        assert summary["regressions"] == []
        assert summary["benchmarks"]["loop"]["median"] == 2.0

    def test_history_table_lists_benchmarks(self, tmp_path):
        summary = history_summary(_history_file(tmp_path, [2.0, 2.1]))
        assert "loop" in history_table(summary).render()


class TestCli:
    def test_main_prints_report(self, tmp_path, capsys):
        path = _tracer().write_jsonl(tmp_path / "trace.jsonl")
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report: study" in out
        assert "stage breakdown" in out

    def test_main_rejects_non_trace_with_exit_1(self, tmp_path, capsys):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind":"nope"}\n')
        assert main([str(path)]) == 1
        assert "report:" in capsys.readouterr().out

    def test_missing_trace_file_exits_1(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 1
        assert "report:" in capsys.readouterr().out

    def test_trace_json_format_matches_stage_breakdown(self, tmp_path, capsys):
        path = _tracer().write_jsonl(tmp_path / "trace.jsonl")
        assert main([str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == stage_breakdown(path)

    def test_requires_exactly_one_input(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        path = _history_file(tmp_path, [2.0])
        with pytest.raises(SystemExit) as excinfo:
            main([str(path), "--history", str(path)])
        assert excinfo.value.code == 2

    def test_history_healthy_exits_0(self, tmp_path, capsys):
        path = _history_file(tmp_path, [2.0, 2.1, 2.0])
        assert main(["--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "loop" in out
        assert "REGRESSION" not in out

    def test_history_regression_exits_1_and_names_benchmark(self, tmp_path, capsys):
        path = _history_file(tmp_path, [2.0, 2.1, 1.9, 1.0])
        assert main(["--history", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION: loop" in out

    def test_history_json_format_matches_summary(self, tmp_path, capsys):
        path = _history_file(tmp_path, [2.0, 2.1, 1.9, 1.0])
        assert main(["--history", str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload == history_summary(path)
        assert payload["regressions"] == ["loop"]

    def test_history_missing_file_exits_1(self, tmp_path, capsys):
        assert main(["--history", str(tmp_path / "absent.jsonl")]) == 1
        assert "report:" in capsys.readouterr().out
