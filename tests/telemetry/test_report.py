"""Trace reporting: stage/cache/pool tables, stage_breakdown, CLI."""

import pytest

from repro.telemetry import Tracer
from repro.telemetry.report import (
    cache_table,
    counter_table,
    load_trace,
    main,
    pool_table,
    stage_breakdown,
    stage_table,
    summarize,
)


def _tracer() -> Tracer:
    tracer = Tracer("study")
    with tracer.span("sweep.chunk"):
        with tracer.span("fastpath.run"):
            pass
    tracer.count("link.pulse_cache.hits", 9)
    tracer.count("link.pulse_cache.misses", 1)
    tracer.count("stateye.objective_cache.misses", 4)
    tracer.count("kernel.events", 120)
    tracer.count("sweep.tasks.pool", 8)
    tracer.count("sweep.retries", 1)
    return tracer


class TestLoadTrace:
    def test_accepts_tracer(self):
        trace = load_trace(_tracer())
        assert trace["counters"]["kernel.events"] == 120
        assert len(trace["spans"]) == 2

    def test_accepts_dict_verbatim(self):
        trace = load_trace(_tracer())
        assert load_trace(trace) is trace

    def test_accepts_path(self, tmp_path):
        path = _tracer().write_jsonl(tmp_path / "trace.jsonl")
        assert load_trace(path)["name"] == "study"


class TestStageTable:
    def test_rows_sorted_by_total_time(self):
        table = stage_table(load_trace(_tracer()))
        stages = [row[0] for row in table.rows]
        assert "sweep.chunk" in stages
        assert "sweep.chunk/fastpath.run" in stages
        assert stages[0] == "sweep.chunk"  # outer span dominates

    def test_share_normalized_by_top_level(self):
        table = stage_table(load_trace(_tracer()))
        top = dict(zip([row[0] for row in table.rows], [row[4] for row in table.rows]))
        assert top["sweep.chunk"] == "100.0%"


class TestCacheTable:
    def test_pairs_hits_and_misses(self):
        table = cache_table(load_trace(_tracer()))
        rows = {row[0]: row[1:] for row in table.rows}
        assert rows["link.pulse_cache"] == ["9", "1", "90.0%"]
        # A cache with only misses still reports, at zero rate.
        assert rows["stateye.objective_cache"] == ["0", "4", "0.0%"]


class TestPoolTable:
    def test_only_sweep_counters(self):
        table = pool_table(load_trace(_tracer()))
        names = [row[0] for row in table.rows]
        assert names == ["sweep.retries", "sweep.tasks.pool"]


class TestCounterTable:
    def test_lists_every_counter(self):
        table = counter_table(load_trace(_tracer()))
        assert len(table.rows) == 6


class TestStageBreakdown:
    def test_shape(self):
        breakdown = stage_breakdown(_tracer())
        assert set(breakdown) == {"stages", "caches", "counters"}
        assert breakdown["stages"]["sweep.chunk"]["count"] == 1
        assert breakdown["caches"]["link.pulse_cache"] == {
            "hits": 9,
            "misses": 1,
            "hit_rate": 0.9,
        }
        # Hit/miss counters live under caches, not duplicated as counters.
        assert "link.pulse_cache.hits" not in breakdown["counters"]
        assert breakdown["counters"]["kernel.events"] == 120

    def test_json_safe(self, tmp_path):
        import json

        json.dumps(stage_breakdown(_tracer()), allow_nan=False)

    def test_from_file(self, tmp_path):
        path = _tracer().write_jsonl(tmp_path / "trace.jsonl")
        assert stage_breakdown(path)["counters"]["kernel.events"] == 120


class TestSummarize:
    def test_contains_all_sections(self):
        text = summarize(_tracer())
        assert "stage breakdown" in text
        assert "cache hit rates" in text
        assert "pool health" in text
        assert "link.pulse_cache" in text
        assert "stateye.objective_cache" in text
        assert "sweep.tasks.pool" in text
        assert "kernel.events" in text

    def test_sections_without_data_are_omitted(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        text = summarize(tracer)
        assert "cache hit rates" not in text
        assert "pool health" not in text


class TestCli:
    def test_main_prints_report(self, tmp_path, capsys):
        path = _tracer().write_jsonl(tmp_path / "trace.jsonl")
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report: study" in out
        assert "stage breakdown" in out

    def test_main_rejects_non_trace(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind":"nope"}\n')
        with pytest.raises(ValueError, match="not a telemetry trace"):
            main([str(path)])
