"""Watch CLI: sidecar parsing, status assembly, rendering, numpy-free operation."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sweep.faults import FailEveryNth
from repro.sweep.resilient import SweepTaskError, map_tasks_resilient
from repro.telemetry import Tracer
from repro.telemetry import watch
from repro.telemetry.watch import collect_status, main, render_status

REPO_ROOT = Path(__file__).resolve().parents[2]


def _draw(task, rng):
    return float(task) + float(rng.uniform())


TASKS = list(range(10))


def _completed_run(tmp_path, manifest=None):
    checkpoint = tmp_path / "sweep.jsonl"
    map_tasks_resilient(
        _draw, TASKS, seed=42, workers=1, chunk_size=3, checkpoint=checkpoint,
        manifest=manifest,
    )
    return checkpoint


def _interrupted_run(tmp_path):
    """A sweep killed mid-flight by an injected fault under policy='raise'."""
    checkpoint = tmp_path / "sweep.jsonl"
    faulty = FailEveryNth(_draw, every=4)
    with pytest.raises(SweepTaskError):
        map_tasks_resilient(
            faulty, TASKS, seed=42, workers=1, chunk_size=3,
            failure_policy="raise", checkpoint=checkpoint,
        )
    return checkpoint


class TestKindConstants:
    def test_mirrors_match_the_writers(self):
        # watch.py cannot import the numpy-dependent writer module, so it
        # carries copies of the sidecar kind tags; pin the copies equal.
        from repro.sweep import resilient
        from repro.telemetry import TRACE_KIND  # noqa: F401 (import sanity)

        assert watch.CHECKPOINT_KIND == resilient._CHECKPOINT_KIND
        assert watch.AUDIT_KIND == resilient._AUDIT_KIND
        assert watch.PROGRESS_KIND == resilient._PROGRESS_KIND


class TestCollectStatus:
    def test_completed_run(self, tmp_path):
        status = collect_status(_completed_run(tmp_path))
        assert status["run"]["state"] == "completed"
        assert status["completion"] == 1.0
        assert status["run"]["done"] == len(TASKS)
        assert status["durable"] == {"points": len(TASKS), "failures": 0}
        assert status["files"] == {"checkpoint": True, "progress": True, "audit": True}
        assert status["torn_tails"] == {
            "checkpoint": False, "progress": False, "audit": False,
        }
        assert status["modes"] == {"serial": len(TASKS)}

    def test_interrupted_run_reads_in_progress(self, tmp_path):
        status = collect_status(_interrupted_run(tmp_path))
        assert status["run"]["state"] == "in-progress"
        assert status["durable"]["failures"] == 1
        assert 0 < status["completion"] < 1.0

    def test_manifest_surfaces_from_the_header(self, tmp_path):
        manifest = {"kind": "repro-run-manifest", "python": "3.12.0", "backend": "events"}
        status = collect_status(_completed_run(tmp_path, manifest=manifest))
        assert status["manifest"] == manifest

    def test_resumed_run_reports_the_latest_start(self, tmp_path):
        checkpoint = _completed_run(tmp_path)
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, chunk_size=3, checkpoint=checkpoint
        )
        status = collect_status(checkpoint)
        assert status["run"]["state"] == "completed"
        assert status["run"]["restored"] == len(TASKS)
        assert status["run"]["done"] == 0

    def test_torn_progress_tail_is_flagged_not_fatal(self, tmp_path):
        checkpoint = _completed_run(tmp_path)
        sidecar = tmp_path / "sweep.jsonl.progress"
        sidecar.write_text(sidecar.read_text() + '{"kind": "chu')
        status = collect_status(checkpoint)
        assert status["torn_tails"]["progress"] is True
        assert status["run"]["state"] == "completed"

    def test_missing_everything_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_status(tmp_path / "absent.jsonl")

    def test_wrong_kind_raises_value_error(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"kind": "repro-telemetry-trace"}\n')
        with pytest.raises(ValueError, match="not a repro-sweep-checkpoint"):
            collect_status(path)


class TestRenderStatus:
    def test_tables_present(self, tmp_path):
        manifest = {"kind": "repro-run-manifest", "python": "3.12.0", "backend": "events"}
        text = render_status(collect_status(_completed_run(tmp_path, manifest=manifest)))
        assert "run status" in text
        assert "execution modes" in text
        assert "provenance" in text
        assert "completion" in text

    def test_trace_breakdown_is_appended(self, tmp_path):
        checkpoint = _completed_run(tmp_path)
        tracer = Tracer("study")
        with tracer.span("sweep.chunk"):
            pass
        trace = tracer.write_jsonl(tmp_path / "trace.jsonl")
        text = render_status(collect_status(checkpoint), trace=trace)
        assert "sweep.chunk" in text


class TestCli:
    def test_one_shot_text(self, tmp_path, capsys):
        assert main([str(_completed_run(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "sweep watch" in out and "completed" in out

    def test_json_format_matches_collect_status(self, tmp_path, capsys):
        checkpoint = _completed_run(tmp_path)
        assert main([str(checkpoint), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == collect_status(checkpoint)

    def test_follow_exits_when_completed(self, tmp_path, capsys):
        assert main([str(_completed_run(tmp_path)), "--follow", "--interval", "0.01"]) == 0

    def test_missing_file_exits_1(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 1
        assert "watch:" in capsys.readouterr().out

    def test_wrong_file_exits_1(self, tmp_path, capsys):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"kind": "nope"}\n')
        assert main([str(path)]) == 1
        assert "watch:" in capsys.readouterr().out


class TestNumpyFree:
    def test_watch_works_with_numpy_blocked(self, tmp_path):
        # The acceptance scenario: a sweep is interrupted mid-run, and an
        # operator inspects it from an environment that cannot import
        # numpy (the CI lint job).  Block numpy with a poisoned shadow
        # module on PYTHONPATH and run the real CLI as a subprocess.
        checkpoint = _interrupted_run(tmp_path)
        blocker = tmp_path / "blocker"
        blocker.mkdir()
        (blocker / "numpy.py").write_text(
            'raise ImportError("numpy deliberately blocked for this test")\n'
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(blocker), str(REPO_ROOT / "src")])
        result = subprocess.run(
            [sys.executable, "-m", "repro.telemetry.watch", str(checkpoint),
             "--format", "json"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        status = json.loads(result.stdout)
        assert status["run"]["state"] == "in-progress"
        assert status["durable"]["failures"] == 1
        # Same numbers the in-process (numpy-enabled) reader produces.
        assert status == collect_status(checkpoint)
