"""Tracer core: spans, counters, snapshots, activation, JSONL round trip."""

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    NULL_TRACER,
    SPAN_HISTOGRAM_PREFIX,
    NullTracer,
    SpanRecord,
    Tracer,
    read_trace,
)


class TestActivation:
    def test_disabled_by_default(self):
        assert telemetry.ACTIVE is NULL_TRACER
        assert not telemetry.active()

    def test_null_tracer_is_falsy_and_real_tracer_truthy(self):
        assert not NullTracer()
        assert Tracer("t")

    def test_trace_binds_and_restores(self):
        with telemetry.trace("study") as tracer:
            assert telemetry.ACTIVE is tracer
            assert tracer.name == "study"
        assert telemetry.ACTIVE is NULL_TRACER

    def test_trace_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry.trace():
                raise RuntimeError("boom")
        assert telemetry.ACTIVE is NULL_TRACER

    def test_traces_nest(self):
        with telemetry.trace("outer") as outer:
            with telemetry.trace("inner") as inner:
                assert telemetry.ACTIVE is inner
            assert telemetry.ACTIVE is outer
        assert telemetry.ACTIVE is NULL_TRACER

    def test_activate_returns_previous(self):
        tracer = Tracer()
        previous = telemetry.activate(tracer)
        try:
            assert previous is NULL_TRACER
            assert telemetry.ACTIVE is tracer
        finally:
            assert telemetry.activate(previous) is tracer
        assert telemetry.ACTIVE is NULL_TRACER


class TestNullTracer:
    def test_all_operations_are_noops(self):
        null = NullTracer()
        null.count("a")
        null.gauge("b", 1.0)
        null.observe("c", 2.0)
        null.merge_snapshot({"counters": {"a": 1}})
        with null.span("stage"):
            pass

    def test_span_is_one_shared_object(self):
        null = NullTracer()
        assert null.span("a") is null.span("b")


class TestMetrics:
    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("events")
        tracer.count("events", 4)
        assert tracer.counters == {"events": 5}

    def test_gauges_last_write_wins(self):
        tracer = Tracer()
        tracer.gauge("depth", 3)
        tracer.gauge("depth", 7)
        assert tracer.gauges == {"depth": 7.0}

    def test_histograms_track_count_total_min_max(self):
        tracer = Tracer()
        for value in (3.0, 1.0, 2.0):
            tracer.observe("chunk_s", value)
        assert tracer.histograms["chunk_s"] == {
            "count": 3,
            "total": 6.0,
            "min": 1.0,
            "max": 3.0,
        }


class TestSpans:
    def test_nested_spans_record_slash_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.path for span in tracer.spans] == ["outer/inner", "outer"]
        assert [span.name for span in tracer.spans] == ["inner", "outer"]

    def test_span_durations_fold_into_histograms(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        with tracer.span("stage"):
            pass
        histogram = tracer.histograms[SPAN_HISTOGRAM_PREFIX + "stage"]
        assert histogram["count"] == 2
        assert histogram["total"] >= 0.0

    def test_span_pops_stack_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("stage"):
                raise ValueError("boom")
        assert tracer._stack == []
        assert tracer.spans[0].name == "stage"


class TestSnapshots:
    def _loaded(self) -> Tracer:
        tracer = Tracer()
        tracer.count("kernel.events", 10)
        tracer.gauge("depth", 2)
        tracer.observe("chunk_s", 0.5)
        return tracer

    def test_snapshot_is_json_safe_and_sorted(self):
        tracer = self._loaded()
        tracer.count("a.first")
        snapshot = tracer.snapshot()
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])
        json.dumps(snapshot, allow_nan=False)

    def test_snapshot_excludes_spans(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        snapshot = tracer.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        # Span durations still travel via the span: histogram.
        assert SPAN_HISTOGRAM_PREFIX + "stage" in snapshot["histograms"]

    def test_merge_adds_counters_and_combines_histograms(self):
        parent = Tracer()
        parent.count("kernel.events", 1)
        parent.observe("chunk_s", 2.0)
        parent.merge_snapshot(self._loaded().snapshot())
        assert parent.counters["kernel.events"] == 11
        assert parent.gauges["depth"] == 2.0
        assert parent.histograms["chunk_s"] == {
            "count": 2,
            "total": 2.5,
            "min": 0.5,
            "max": 2.0,
        }

    def test_merge_into_empty_tracer_reproduces_totals(self):
        parent = Tracer()
        parent.merge_snapshot(self._loaded().snapshot())
        assert parent.snapshot() == self._loaded().snapshot()


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        tracer = Tracer("study")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.count("kernel.events", 3)
        tracer.gauge("depth", 1)
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")

        loaded = read_trace(path)
        assert loaded["name"] == "study"
        assert loaded["counters"] == {"kernel.events": 3}
        assert loaded["gauges"] == {"depth": 1.0}
        assert [span.path for span in loaded["spans"]] == ["outer/inner", "outer"]
        assert isinstance(loaded["spans"][0], SpanRecord)
        assert loaded["histograms"][SPAN_HISTOGRAM_PREFIX + "outer"]["count"] == 1

    def test_file_is_strict_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.count("a", 1)
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == telemetry.TRACE_KIND
        for line in lines:
            json.loads(line)

    def test_read_rejects_non_trace(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind":"something-else"}\n')
        with pytest.raises(ValueError, match="not a telemetry trace"):
            read_trace(path)

    def test_read_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(path)

    def test_read_tolerates_torn_tail(self, tmp_path):
        # A crash mid-append tears at most the last line; everything
        # durably written before it must still load.
        tracer = Tracer("study")
        with tracer.span("outer"):
            pass
        tracer.count("kernel.events", 3)
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        intact = read_trace(path)
        assert intact["truncated_tail"] is None

        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + '\n{"kind": "tel')
        torn = read_trace(path)
        assert torn["name"] == "study"
        assert torn["truncated_tail"] == '{"kind": "tel'
        # Only the torn record is lost, nothing before it.
        n_loaded = len(torn["spans"]) + sum(
            len(torn[section]) for section in ("counters", "gauges", "histograms")
        )
        assert n_loaded == len(lines) - 2  # header and torn record excluded
