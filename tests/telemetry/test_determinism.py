"""Telemetry never changes numerics, and its totals never depend on workers.

The two contracts that make tracing safe to leave on in real studies:

* **bit identity** — a traced run serializes byte-for-byte identically
  to an untraced run (telemetry only *reads* simulation state);
* **worker invariance** — merged counter totals are identical at any
  worker count, because each guarded task collects into its own
  task-local tracer and the parent merges snapshots in task-index
  order.  (The ``sweep.*`` pool-health counters are the deliberate
  exception: they describe *how* the run executed.)
"""

import numpy as np

from repro import telemetry
from repro.datapath.nrz import JitterSpec
from repro.datapath.prbs import prbs_sequence
from repro.experiments import ParameterAxis, ScenarioSpec, StimulusSpec, run_grid
from repro.link import LinkConfig, LinkPath, RxCtle, TxFfe
from repro.link.training import StatEyeObjective

MILD = JitterSpec(dj_ui_pp=0.2, rj_ui_rms=0.01)
BASE = ScenarioSpec(stimulus=StimulusSpec(n_bits=300), jitter=MILD)
AMPLITUDE_AXIS = ParameterAxis("sj_amplitude_ui_pp", (0.1, 1.0))
FREQUENCY_AXIS = ParameterAxis("sj_frequency_hz", (2.5e6, 7.5e8))


def _grid(workers: int):
    return run_grid(
        BASE, [AMPLITUDE_AXIS, FREQUENCY_AXIS], seed=5, workers=workers
    )


class TestBitIdentity:
    def test_sweep_result_identical_tracing_on_and_off(self):
        baseline = _grid(workers=1).to_json()
        with telemetry.trace():
            traced = _grid(workers=1).to_json()
        assert traced == baseline

    def test_link_waveform_identical_tracing_on_and_off(self):
        bits = prbs_sequence(7, 127)
        link = LinkConfig(
            tx_ffe=TxFfe.de_emphasis(post_db=3.5), rx_ctle=RxCtle(peaking_db=6.0)
        )
        baseline = LinkPath(link).transmit(bits)
        with telemetry.trace():
            traced = LinkPath(link).transmit(bits)
        np.testing.assert_array_equal(traced.edge_times_s, baseline.edge_times_s)
        np.testing.assert_array_equal(traced.bits, baseline.bits)


class TestWorkerInvariance:
    def test_merged_counter_totals_match_across_worker_counts(self):
        with telemetry.trace() as serial:
            serial_grid = _grid(workers=1)
        with telemetry.trace() as pooled:
            pooled_grid = _grid(workers=4)
        np.testing.assert_array_equal(
            serial_grid.metric("errors"), pooled_grid.metric("errors")
        )

        def merged(tracer):
            return {
                name: value
                for name, value in tracer.counters.items()
                if not name.startswith("sweep.")
            }

        assert merged(serial) == merged(pooled)
        # The pinned grid exercises the fastpath in every worker.
        assert merged(serial)["fastpath.runs"] == 4
        assert merged(serial)["fastpath.bits"] == 4 * 300

    def test_pool_health_counters_reflect_execution_mode(self):
        with telemetry.trace() as serial:
            _grid(workers=1)
        with telemetry.trace() as pooled:
            _grid(workers=4)
        assert serial.counters["sweep.tasks.serial"] == 4
        assert pooled.counters["sweep.tasks.pool"] == 4


class TestInstrumentationPresence:
    def test_link_path_cache_counters(self):
        bits = prbs_sequence(7, 127)
        with telemetry.trace() as tracer:
            path = LinkPath(LinkConfig())
            path.equalized_pulse_response(64)
            path.equalized_pulse_response(64)
            path.transmit(bits)
            path.transmit(bits)
        # transmit() pulls the pulse response on its own grid length, so
        # expect one miss per distinct grid and at least the explicit hit.
        assert tracer.counters["link.pulse_cache.misses"] >= 1
        assert tracer.counters["link.pulse_cache.hits"] >= 1
        assert tracer.counters["link.pattern_cache.misses"] == 1
        assert tracer.counters["link.pattern_cache.hits"] >= 1

    def test_objective_memo_counters_and_solve_span(self):
        with telemetry.trace() as tracer:
            objective = StatEyeObjective(LinkConfig())
            first = objective.evaluate(None, None, None)
            second = objective.evaluate(None, None, None)
        assert first is second
        assert tracer.counters["stateye.objective_cache.misses"] == 1
        assert tracer.counters["stateye.objective_cache.hits"] == 1
        assert objective.evaluations == 1
        solves = [span for span in tracer.spans if span.name == "stateye.solve"]
        assert len(solves) == 1

    def test_disabled_tracer_records_nothing(self):
        assert telemetry.ACTIVE is telemetry.NULL_TRACER
        objective = StatEyeObjective(LinkConfig())
        objective.evaluate(None, None, None)
        # Nothing leaked onto the null tracer (it has no storage at all).
        assert not hasattr(telemetry.NULL_TRACER, "counters")
