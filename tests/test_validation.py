"""Tests for the shared argument-validation helpers."""

import math

import pytest

from repro import _validation as v


class TestRequireFinite:
    def test_accepts_finite(self):
        assert v.require_finite("x", 3.5) == 3.5

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            v.require_finite("x", math.nan)

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            v.require_finite("x", math.inf)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert v.require_positive("x", 1e-12) == 1e-12

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            v.require_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            v.require_positive("x", -1.0)


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert v.require_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            v.require_non_negative("x", -1e-9)


class TestRequireInRange:
    def test_inclusive_bounds(self):
        assert v.require_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_edges(self):
        with pytest.raises(ValueError):
            v.require_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            v.require_in_range("x", 2.0, 0.0, 1.0)


class TestRequireProbabilityAndFraction:
    def test_probability_bounds(self):
        assert v.require_probability("p", 0.0) == 0.0
        assert v.require_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            v.require_probability("p", 1.5)

    def test_fraction_excludes_one(self):
        assert v.require_fraction("f", 0.999) == 0.999
        with pytest.raises(ValueError):
            v.require_fraction("f", 1.0)


class TestRequireInt:
    def test_accepts_int(self):
        assert v.require_int("n", 5) == 5

    def test_accepts_integral_float(self):
        assert v.require_int("n", 5.0) == 5

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            v.require_int("n", True)

    def test_rejects_fractional(self):
        with pytest.raises(TypeError):
            v.require_int("n", 2.5)

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            v.require_positive_int("n", 0)


class TestRequireBinarySequence:
    def test_accepts_bits(self):
        assert v.require_binary_sequence("bits", [0, 1, 1, 0]) == [0, 1, 1, 0]

    def test_accepts_bools(self):
        assert v.require_binary_sequence("bits", [True, False]) == [1, 0]

    def test_rejects_other_values(self):
        with pytest.raises(ValueError, match=r"bits\[1\]"):
            v.require_binary_sequence("bits", [0, 2])
