"""The deterministic fault injectors themselves."""

import numpy as np
import pytest

from repro.experiments import ScenarioSpec, apply_axis
from repro.sweep import map_tasks
from repro.sweep.faults import (
    FailEveryNth,
    FailOnceThenSucceed,
    FaultyStimulus,
    InjectedFault,
    reset_fault_state,
    task_index,
)


def _identity(task, rng):
    return task


def _own_task_index(task, rng):
    return task_index(rng)


class TestTaskIndex:
    def test_recovers_flat_index_from_spawned_generator(self):
        children = np.random.SeedSequence(7).spawn(5)
        for expected, child in enumerate(children):
            assert task_index(np.random.default_rng(child)) == expected

    def test_matches_runner_task_order(self):
        indices = map_tasks(_own_task_index, list("abcd"), seed=0, workers=1)
        assert indices == [0, 1, 2, 3]


class TestFailEveryNth:
    def test_fails_at_exactly_the_selected_points(self):
        faulty = FailEveryNth(_identity, every=3, offset=1)
        children = np.random.SeedSequence(0).spawn(7)
        outcomes = []
        for task, child in enumerate(children):
            try:
                outcomes.append(faulty(task, np.random.default_rng(child)))
            except InjectedFault:
                outcomes.append("boom")
        assert outcomes == [0, "boom", 2, 3, "boom", 5, 6]

    def test_selection_depends_on_index_not_seed(self):
        faulty = FailEveryNth(_identity, every=2)
        for seed in (0, 1, 99):
            children = np.random.SeedSequence(seed).spawn(2)
            with pytest.raises(InjectedFault):
                faulty("x", np.random.default_rng(children[0]))
            assert faulty("x", np.random.default_rng(children[1])) == "x"

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="every must be positive"):
            FailEveryNth(_identity, every=0)


class TestFailOnceThenSucceed:
    def test_first_attempt_fails_then_succeeds(self):
        reset_fault_state()
        flaky = FailOnceThenSucceed(_identity, indices=(2,), tag="unit")
        child = np.random.SeedSequence(0).spawn(3)[2]
        with pytest.raises(InjectedFault, match="transient fault at point 2"):
            flaky("t", np.random.default_rng(child))
        assert flaky("t", np.random.default_rng(child)) == "t"

    def test_tags_keep_wrappers_independent(self):
        reset_fault_state()
        child = np.random.SeedSequence(0).spawn(1)[0]
        first = FailOnceThenSucceed(_identity, indices=(0,), tag="a")
        second = FailOnceThenSucceed(_identity, indices=(0,), tag="b")
        with pytest.raises(InjectedFault):
            first("t", np.random.default_rng(child))
        with pytest.raises(InjectedFault):
            second("t", np.random.default_rng(child))
        assert first("t", np.random.default_rng(child)) == "t"


class TestFaultAxis:
    def test_axis_swaps_in_a_detonating_stimulus(self):
        spec = apply_axis(ScenarioSpec(), "inject_fault", True)
        assert isinstance(spec.stimulus, FaultyStimulus)
        with pytest.raises(InjectedFault, match="injected stimulus fault"):
            spec.stimulus.bits()

    def test_false_keeps_the_stimulus_equivalent(self):
        base = ScenarioSpec()
        spec = apply_axis(base, "inject_fault", False)
        assert np.array_equal(spec.stimulus.bits(), base.stimulus.bits())
