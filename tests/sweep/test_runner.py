"""Determinism and fallback behaviour of the parallel sweep runner."""

import pytest

from repro.sweep.runner import SweepRunner, map_tasks


def _draw(task, rng):
    """Module-level worker (picklable): task value plus a seeded draw."""
    return float(task) + float(rng.uniform())


def _structured(task, rng):
    return {"task": task, "draws": rng.normal(size=3).tolist()}


class TestDeterminism:
    def test_results_in_task_order(self):
        results = map_tasks(_draw, [10.0, 20.0, 30.0], seed=1, workers=1)
        assert [int(r) for r in results] == [10, 20, 30]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_same_seed_same_results_regardless_of_worker_count(self, workers):
        serial = map_tasks(_draw, list(range(8)), seed=42, workers=1)
        pooled = map_tasks(_draw, list(range(8)), seed=42, workers=workers)
        assert serial == pooled

    def test_different_seeds_differ(self):
        a = map_tasks(_draw, list(range(4)), seed=1, workers=1)
        b = map_tasks(_draw, list(range(4)), seed=2, workers=1)
        assert a != b

    def test_task_streams_are_independent(self):
        """Each task's stream depends only on (seed, index), not on others."""
        full = map_tasks(_structured, ["a", "b", "c"], seed=7, workers=1)
        # Same seed, same index => same draws even with different task values.
        other = map_tasks(_structured, ["x", "y", "z"], seed=7, workers=1)
        for first, second in zip(full, other):
            assert first["draws"] == second["draws"]

    def test_empty_tasks(self):
        assert map_tasks(_draw, [], seed=0, workers=4) == []

    def test_runner_dataclass(self):
        runner = SweepRunner(workers=1, seed=3)
        assert runner.run(_draw, [1.0]) == map_tasks(_draw, [1.0], seed=3, workers=1)


def _raise_os_error(task, rng):
    raise OSError(f"worker-level failure for task {task!r}")


_CALLS = []


def _counting_raiser(task, rng):
    _CALLS.append(task)
    raise ValueError(f"bad task {task!r}")


class TestExceptionBoundaries:
    """Pool-layer failures fall back to serial; worker bugs must not."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_exception_propagates_unchanged(self, workers):
        with pytest.raises(OSError, match="worker-level failure for task 0"):
            map_tasks(_raise_os_error, [0, 1], seed=0, workers=workers)

    def test_worker_exception_is_not_retried_serially(self):
        """Regression: a worker-raised error used to trigger a serial re-run."""
        _CALLS.clear()
        with pytest.raises(ValueError, match="bad task"):
            map_tasks(_counting_raiser, [0], seed=0, workers=1)
        assert _CALLS == [0]

    def test_pool_spawn_failure_falls_back_to_serial(self, monkeypatch):
        import repro.sweep.runner as runner

        class NoSpawn:
            def __init__(self, *args, **kwargs):
                raise PermissionError("process spawning disabled")

        monkeypatch.setattr(runner, "ProcessPoolExecutor", NoSpawn)
        serial = map_tasks(_draw, list(range(6)), seed=42, workers=1)
        assert map_tasks(_draw, list(range(6)), seed=42, workers=4) == serial
