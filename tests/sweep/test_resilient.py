"""Failure isolation, checkpoint/resume and pool robustness of the resilient runner."""

import pytest

from repro.sweep import map_tasks
from repro.sweep.faults import (
    CrashInPool,
    FailEveryNth,
    FailOnceThenSucceed,
    HangInPool,
    reset_fault_state,
)
from repro.sweep.resilient import (
    CheckpointMismatchError,
    ResilientRunner,
    SweepTaskError,
    map_tasks_resilient,
)


def _draw(task, rng):
    """Module-level worker (picklable): task value plus a seeded draw."""
    return float(task) + float(rng.uniform())


TASKS = list(range(10))


def _reference(seed=42):
    return map_tasks(_draw, TASKS, seed=seed, workers=1)


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("chunk_size", [None, 1, 3, 100])
    def test_matches_plain_runner_at_any_worker_and_chunk_count(self, workers, chunk_size):
        result = map_tasks_resilient(_draw, TASKS, seed=42, workers=workers, chunk_size=chunk_size)
        assert result.values == _reference()
        assert result.failures == ()
        assert [audit.index for audit in result.audit] == TASKS

    def test_empty_tasks(self):
        result = map_tasks_resilient(_draw, [], seed=0, workers=2)
        assert result.values == []
        assert result.failures == ()
        assert result.audit == ()

    def test_runner_dataclass(self):
        runner = ResilientRunner(workers=1, seed=3, chunk_size=2)
        assert runner.run(_draw, [1.0, 2.0]).values == map_tasks(
            _draw, [1.0, 2.0], seed=3, workers=1
        )


class TestFailureIsolation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_collect_reports_exactly_the_injected_points(self, workers):
        faulty = FailEveryNth(_draw, every=4)
        result = map_tasks_resilient(
            faulty, TASKS, seed=42, workers=workers, chunk_size=3, failure_policy="collect"
        )
        assert [failure.index for failure in result.failures] == [0, 4, 8]
        reference = _reference()
        for index in TASKS:
            if index % 4 == 0:
                assert result.values[index] is None
            else:
                assert result.values[index] == reference[index]

    def test_failure_records_are_structured_and_deterministic(self):
        faulty = FailEveryNth(_draw, every=5)
        serial = map_tasks_resilient(faulty, TASKS, seed=1, workers=1)
        pooled = map_tasks_resilient(faulty, TASKS, seed=1, workers=2, chunk_size=4)
        assert serial.failures == pooled.failures
        failure = serial.failures[0]
        assert failure.exception_type == "InjectedFault"
        assert "injected fault at point 0" in failure.message
        assert "InjectedFault" in failure.traceback_tail
        assert failure.seed_path == (0,)
        assert failure.attempts == 1

    def test_failure_round_trips_through_dict(self):
        faulty = FailEveryNth(_draw, every=7)
        failure = map_tasks_resilient(faulty, TASKS, seed=0, workers=1).failures[0]
        assert type(failure).from_dict(failure.to_dict()) == failure

    def test_raise_policy_aborts_with_structured_error(self):
        faulty = FailEveryNth(_draw, every=4, offset=2)
        with pytest.raises(SweepTaskError) as excinfo:
            map_tasks_resilient(faulty, TASKS, seed=42, workers=1, failure_policy="raise")
        assert excinfo.value.failure.index == 2
        assert "InjectedFault" in str(excinfo.value)

    def test_retry_recovers_transient_faults_with_identical_numerics(self):
        reset_fault_state()
        flaky = FailOnceThenSucceed(_draw, indices=(1, 5), tag="retry-test")
        result = map_tasks_resilient(
            flaky, TASKS, seed=42, workers=1, failure_policy="retry", max_retries=1
        )
        assert result.failures == ()
        assert result.values == _reference()
        attempts = {audit.index: audit.attempts for audit in result.audit}
        assert attempts[1] == 2 and attempts[5] == 2
        assert attempts[0] == 1

    def test_retry_budget_exhaustion_collects(self):
        faulty = FailEveryNth(_draw, every=3)  # fails on every attempt
        result = map_tasks_resilient(
            faulty, TASKS, seed=42, workers=1, failure_policy="retry", max_retries=2
        )
        assert [failure.index for failure in result.failures] == [0, 3, 6, 9]
        assert all(failure.attempts == 3 for failure in result.failures)

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError, match="failure policy"):
            map_tasks_resilient(_draw, TASKS, failure_policy="explode")
        with pytest.raises(ValueError, match="chunk_size"):
            map_tasks_resilient(_draw, TASKS, chunk_size=0)
        with pytest.raises(ValueError, match="max_retries"):
            map_tasks_resilient(_draw, TASKS, max_retries=-1)


class TestCheckpointResume:
    def test_resume_runs_only_missing_and_failed_points(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        faulty = FailEveryNth(_draw, every=4)
        partial = map_tasks_resilient(
            faulty, TASKS, seed=42, workers=1, chunk_size=3, checkpoint=checkpoint
        )
        assert [failure.index for failure in partial.failures] == [0, 4, 8]
        resumed = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, chunk_size=3, checkpoint=checkpoint
        )
        assert resumed.failures == ()
        assert resumed.values == _reference()
        modes = {audit.index: audit.mode for audit in resumed.audit}
        for index in TASKS:
            expected = "serial" if index % 4 == 0 else "checkpoint"
            assert modes[index] == expected

    def test_interrupted_chunk_boundary_resume_is_bit_identical(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        faulty = FailEveryNth(_draw, every=10, offset=6)
        with pytest.raises(SweepTaskError):
            map_tasks_resilient(
                faulty,
                TASKS,
                seed=42,
                workers=1,
                chunk_size=2,
                failure_policy="raise",
                checkpoint=checkpoint,
            )
        resumed = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=2, chunk_size=2, checkpoint=checkpoint
        )
        assert resumed.values == _reference()

    def test_truncated_checkpoint_tail_is_tolerated(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)
        lines = checkpoint.read_text().splitlines()
        # Simulate a crash mid-append: drop two records, leave a torn line.
        checkpoint.write_text("\n".join(lines[:-2]) + '\n{"kind": "poi')
        resumed = map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)
        assert resumed.values == _reference()
        restored = sum(audit.mode == "checkpoint" for audit in resumed.audit)
        assert restored == len(TASKS) - 2

    def test_key_mismatch_raises_instead_of_mixing_studies(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)
        with pytest.raises(CheckpointMismatchError, match="different study"):
            map_tasks_resilient(_draw, TASKS, seed=43, workers=1, checkpoint=checkpoint)
        with pytest.raises(CheckpointMismatchError, match="different study"):
            map_tasks_resilient(_draw, TASKS + [99], seed=42, workers=1, checkpoint=checkpoint)

    def test_non_checkpoint_file_is_rejected(self, tmp_path):
        checkpoint = tmp_path / "other.jsonl"
        checkpoint.write_text("not json at all\n")
        with pytest.raises(CheckpointMismatchError, match="not a sweep checkpoint"):
            map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)

    def test_explicit_checkpoint_key_overrides_content_hash(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint, checkpoint_key="abc"
        )
        resumed = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint, checkpoint_key="abc"
        )
        assert all(audit.mode == "checkpoint" for audit in resumed.audit)
        with pytest.raises(CheckpointMismatchError):
            map_tasks_resilient(
                _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint, checkpoint_key="xyz"
            )

    def test_checkpoint_is_strict_jsonl(self, tmp_path):
        import json

        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)

        def reject(token):
            raise AssertionError(f"bare non-finite token {token!r} in checkpoint")

        lines = checkpoint.read_text().splitlines()
        assert len(lines) == 1 + len(TASKS)
        for line in lines:
            json.loads(line, parse_constant=reject)


class TestPoolRobustness:
    def test_spawn_failure_degrades_to_serial_with_identical_results(self, monkeypatch):
        import repro.sweep.resilient as resilient

        class NoSpawn:
            def __init__(self, *args, **kwargs):
                raise PermissionError("process spawning disabled")

        monkeypatch.setattr(resilient, "ProcessPoolExecutor", NoSpawn)
        result = map_tasks_resilient(_draw, TASKS, seed=42, workers=4)
        assert result.values == _reference()
        assert all(audit.mode == "serial" for audit in result.audit)

    def test_worker_process_death_degrades_chunk_to_serial(self):
        crasher = CrashInPool(_draw, indices=(3,))
        result = map_tasks_resilient(crasher, TASKS, seed=42, workers=2, chunk_size=5)
        assert result.values == _reference()
        assert result.failures == ()
        modes = {audit.index: audit.mode for audit in result.audit}
        assert modes[3] == "serial-degraded"

    def test_chunk_timeout_degrades_to_serial(self):
        slow = HangInPool(_draw, indices=(1,), sleep_s=2.0)
        result = map_tasks_resilient(
            slow, TASKS, seed=42, workers=2, chunk_size=len(TASKS), chunk_timeout_s=0.4
        )
        assert result.values == _reference()
        assert result.failures == ()
        modes = {audit.index: audit.mode for audit in result.audit}
        assert modes[1] == "serial-degraded"


class TestAuditSidecar:
    def test_sidecar_written_next_to_checkpoint(self, tmp_path):
        import json

        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)
        sidecar = tmp_path / "sweep.jsonl.audit"
        assert sidecar.exists()
        lines = [json.loads(line) for line in sidecar.read_text().splitlines()]
        assert lines[0]["kind"] == "repro-sweep-audit"
        assert lines[0]["n_tasks"] == len(TASKS)
        records = [line for line in lines[1:] if line["kind"] == "audit"]
        assert sorted(record["index"] for record in records) == TASKS
        assert all(record["mode"] == "serial" for record in records)
        # Durations are nondeterministic wall-clock — never persisted.
        assert "duration" not in sidecar.read_text()

    def test_resume_surfaces_source_mode_and_attempts(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)
        resumed = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint
        )
        assert resumed.values == _reference()
        for audit in resumed.audit:
            assert audit.mode == "checkpoint"
            assert audit.source_mode == "serial"
            assert audit.source_attempts == 1

    def test_retry_attempts_survive_into_the_sidecar(self, tmp_path):
        reset_fault_state()
        checkpoint = tmp_path / "sweep.jsonl"
        flaky = FailOnceThenSucceed(_draw, indices=(1, 5), tag="sidecar-test")
        map_tasks_resilient(
            flaky,
            TASKS,
            seed=42,
            workers=1,
            failure_policy="retry",
            max_retries=1,
            checkpoint=checkpoint,
        )
        resumed = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint
        )
        attempts = {audit.index: audit.source_attempts for audit in resumed.audit}
        assert attempts[1] == 2 and attempts[5] == 2
        assert attempts[0] == 1

    def test_failed_points_rerun_and_last_audit_wins(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        faulty = FailEveryNth(_draw, every=4)
        map_tasks_resilient(
            faulty, TASKS, seed=42, workers=1, chunk_size=3, checkpoint=checkpoint
        )
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, chunk_size=3, checkpoint=checkpoint
        )
        final = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint
        )
        assert final.values == _reference()
        for audit in final.audit:
            assert audit.mode == "checkpoint"
            assert audit.source_mode == "serial"

    def test_disabled_sidecar_leaves_no_file_and_no_sources(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint, audit_sidecar=False
        )
        assert not (tmp_path / "sweep.jsonl.audit").exists()
        resumed = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint, audit_sidecar=False
        )
        for audit in resumed.audit:
            assert audit.mode == "checkpoint"
            assert audit.source_mode is None
            assert audit.source_attempts is None

    def test_resume_without_sidecar_still_works(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint, audit_sidecar=False
        )
        resumed = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint
        )
        assert resumed.values == _reference()
        assert all(audit.source_mode is None for audit in resumed.audit)

    def test_corrupt_sidecar_is_rejected(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)
        (tmp_path / "sweep.jsonl.audit").write_text("not json at all\n")
        with pytest.raises(CheckpointMismatchError, match="not a sweep audit sidecar"):
            map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)

    def test_torn_sidecar_tail_is_tolerated(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, chunk_size=3, checkpoint=checkpoint
        )
        sidecar = tmp_path / "sweep.jsonl.audit"
        lines = sidecar.read_text().splitlines()
        sidecar.write_text("\n".join(lines[:-2]) + '\n{"kind": "aud')
        resumed = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint
        )
        assert resumed.values == _reference()
        sources = [audit.source_mode for audit in resumed.audit]
        assert "serial" in sources  # everything durably written still counts
        assert sources[-1] is None  # the torn tail's audits are simply absent


def _progress_records(path):
    import json

    return [json.loads(line) for line in path.read_text().splitlines()]


class TestProgressSidecar:
    def test_event_stream_of_a_healthy_run(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, chunk_size=3, checkpoint=checkpoint
        )
        records = _progress_records(tmp_path / "sweep.jsonl.progress")
        header = records[0]
        assert header["kind"] == "repro-sweep-progress"
        assert header["n_tasks"] == len(TASKS)
        kinds = [record["kind"] for record in records[1:]]
        assert kinds[0] == "start" and kinds[-1] == "end"
        assert kinds.count("chunk-start") == kinds.count("chunk-end") == 4
        last = records[-1]
        assert last["done"] == len(TASKS)
        assert (last["failed"], last["restored"], last["pending"]) == (0, 0, 0)

    def test_wall_clock_is_confined_to_the_timing_object(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, chunk_size=3, checkpoint=checkpoint
        )
        for record in _progress_records(tmp_path / "sweep.jsonl.progress")[1:]:
            assert set(record["timing"]) == {
                "elapsed_s",
                "throughput_pts_per_s",
                "eta_s",
            }
            deterministic = {
                key: value for key, value in record.items() if key != "timing"
            }
            assert all(
                isinstance(value, (str, int)) for value in deterministic.values()
            ), deterministic

    def test_non_timing_fields_identical_across_worker_counts(self, tmp_path):
        import json

        streams = []
        for workers in (1, 2):
            checkpoint = tmp_path / f"sweep-w{workers}.jsonl"
            map_tasks_resilient(
                _draw, TASKS, seed=42, workers=workers, chunk_size=3,
                checkpoint=checkpoint,
            )
            stripped = []
            for record in _progress_records(
                tmp_path / f"sweep-w{workers}.jsonl.progress"
            ):
                record.pop("timing", None)
                stripped.append(json.dumps(record, sort_keys=True))
            streams.append(stripped)
        assert streams[0] == streams[1]

    def test_failures_and_retries_are_counted(self, tmp_path):
        reset_fault_state()
        checkpoint = tmp_path / "sweep.jsonl"
        flaky = FailOnceThenSucceed(_draw, indices=(1, 5), tag="progress-test")
        map_tasks_resilient(
            flaky,
            TASKS,
            seed=42,
            workers=1,
            failure_policy="retry",
            max_retries=1,
            checkpoint=checkpoint,
        )
        last = _progress_records(tmp_path / "sweep.jsonl.progress")[-1]
        assert last["kind"] == "end"
        assert last["done"] == len(TASKS)
        assert last["failed"] == 0
        assert last["retries"] == 2

    def test_interrupted_run_has_no_end_record(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        faulty = FailEveryNth(_draw, every=4)
        with pytest.raises(SweepTaskError):
            map_tasks_resilient(
                faulty, TASKS, seed=42, workers=1, chunk_size=3,
                failure_policy="raise", checkpoint=checkpoint,
            )
        kinds = [r["kind"] for r in _progress_records(tmp_path / "sweep.jsonl.progress")]
        assert "end" not in kinds  # absence of "end" == live or interrupted

    def test_resume_appends_fresh_start_and_counts_restored(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)
        records = _progress_records(tmp_path / "sweep.jsonl.progress")
        starts = [r for r in records if r["kind"] == "start"]
        assert len(starts) == 2
        assert starts[1]["restored"] == len(TASKS)
        assert starts[1]["pending"] == 0
        assert records[-1]["kind"] == "end"

    def test_disabled_sidecar_leaves_no_file(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint,
            progress_sidecar=False,
        )
        assert not (tmp_path / "sweep.jsonl.progress").exists()

    def test_no_checkpoint_means_no_sidecar(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1)
        assert list(tmp_path.iterdir()) == []

    def test_manifest_lands_in_both_headers(self, tmp_path):
        import json

        checkpoint = tmp_path / "sweep.jsonl"
        manifest = {"kind": "repro-run-manifest", "version": 1, "python": "3.12.0"}
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint, manifest=manifest
        )
        for name in ("sweep.jsonl", "sweep.jsonl.progress"):
            header = json.loads((tmp_path / name).read_text().splitlines()[0])
            assert header["manifest"] == manifest

    def test_manifest_is_not_part_of_the_resume_identity(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint,
            manifest={"kind": "repro-run-manifest", "python": "3.12.0"},
        )
        resumed = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint,
            manifest={"kind": "repro-run-manifest", "python": "3.13.1"},
        )
        assert resumed.values == _reference()

    def test_corrupt_sidecar_is_rejected(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)
        (tmp_path / "sweep.jsonl.progress").write_text("not json at all\n")
        with pytest.raises(CheckpointMismatchError, match="not a sweep progress"):
            map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)

    def test_foreign_study_sidecar_is_rejected(self, tmp_path):
        import json

        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)
        sidecar = tmp_path / "sweep.jsonl.progress"
        lines = sidecar.read_text().splitlines()
        header = json.loads(lines[0])
        header["key"] = "someone-elses-study"
        sidecar.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(CheckpointMismatchError, match="different study"):
            map_tasks_resilient(_draw, TASKS, seed=42, workers=1, checkpoint=checkpoint)

    def test_torn_sidecar_tail_is_tolerated_on_resume(self, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, chunk_size=3, checkpoint=checkpoint
        )
        sidecar = tmp_path / "sweep.jsonl.progress"
        sidecar.write_text(sidecar.read_text() + '{"kind": "chu')
        resumed = map_tasks_resilient(
            _draw, TASKS, seed=42, workers=1, checkpoint=checkpoint
        )
        assert resumed.values == _reference()
