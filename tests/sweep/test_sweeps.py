"""Behaviour of the time-domain sweeps and their backend switch."""

import numpy as np
import pytest

from repro.datapath.nrz import JitterSpec
from repro.sweep import (
    ber_vs_aggressor_sweep,
    ber_vs_frequency_offset_sweep,
    ber_vs_sj_sweep,
    jitter_tolerance_sweep,
    link_training_sweep,
    make_channel,
    multichannel_sweep,
)

MILD = JitterSpec(dj_ui_pp=0.2, rj_ui_rms=0.01, sj_phase_rad=np.pi / 2)
FREQS = np.array([2.5e6, 7.5e8])
AMPS = np.array([0.1, 1.0])


class TestBackendSwitch:
    def test_make_channel_backends(self):
        from repro.core.cdr_channel import BehavioralCdrChannel
        from repro.fastpath import FastCdrChannel
        assert isinstance(make_channel(backend="event"), BehavioralCdrChannel)
        assert isinstance(make_channel(backend="fast"), FastCdrChannel)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_channel(backend="warp")

    def test_backends_count_identical_errors(self):
        """Zero-gate-jitter configs: both backends give the same error counts."""
        fast = ber_vs_sj_sweep(FREQS, AMPS, base_jitter=MILD, n_bits=600,
                               backend="fast", seed=7, workers=1)
        event = ber_vs_sj_sweep(FREQS, AMPS, base_jitter=MILD, n_bits=600,
                                backend="event", seed=7, workers=1)
        np.testing.assert_array_equal(fast.errors, event.errors)
        np.testing.assert_array_equal(fast.compared, event.compared)


class TestBerSurfaces:
    def test_surface_shape_and_counts(self):
        result = ber_vs_sj_sweep(FREQS, AMPS, base_jitter=MILD, n_bits=500,
                                 seed=0, workers=1)
        assert result.errors.shape == (AMPS.size, FREQS.size)
        assert np.all(result.compared > 400)
        assert np.all(result.errors >= 0)

    def test_worker_count_does_not_change_results(self):
        serial = ber_vs_sj_sweep(FREQS, AMPS, base_jitter=MILD, n_bits=500,
                                 seed=3, workers=1)
        pooled = ber_vs_sj_sweep(FREQS, AMPS, base_jitter=MILD, n_bits=500,
                                 seed=3, workers=3)
        np.testing.assert_array_equal(serial.errors, pooled.errors)

    def test_large_near_rate_sj_errors(self):
        """1.0 UIpp SJ at 0.3 fb must break a 500-bit run; 0.1 UIpp must not."""
        result = ber_vs_sj_sweep(np.array([7.5e8]), np.array([0.1, 1.0]),
                                 base_jitter=MILD, n_bits=500, seed=1, workers=1)
        assert result.errors[1, 0] > result.errors[0, 0]

    def test_frequency_offset_sweep_degrades_with_offset(self):
        result = ber_vs_frequency_offset_sweep(
            np.array([0.0, 0.05]), jitter=MILD, n_bits=600, seed=2, workers=1)
        assert result.errors.shape == (1, 2)
        assert result.errors[0, 1] >= result.errors[0, 0]

    def test_ber_property(self):
        result = ber_vs_frequency_offset_sweep(
            np.array([0.0]), jitter=MILD, n_bits=400, seed=2, workers=1)
        assert result.ber.shape == (1, 1)
        assert 0.0 <= result.ber[0, 0] <= 1.0


class TestJitterTolerance:
    def test_low_frequency_tolerance_exceeds_near_rate(self):
        """The gated oscillator tolerates slow jitter far better than fast."""
        result = jitter_tolerance_sweep(
            np.array([2.5e5, 7.5e8]), base_jitter=MILD, n_bits=400,
            seed=5, workers=1, max_amplitude_ui_pp=4.0, target_errors=1)
        low, near_rate = result.amplitudes_ui_pp
        assert low > near_rate

    def test_deterministic_across_workers(self):
        kwargs = dict(base_jitter=MILD, n_bits=300, seed=5,
                      max_amplitude_ui_pp=2.0, target_errors=1)
        serial = jitter_tolerance_sweep(np.array([2.5e6]), workers=1, **kwargs)
        pooled = jitter_tolerance_sweep(np.array([2.5e6]), workers=2, **kwargs)
        np.testing.assert_array_equal(serial.amplitudes_ui_pp,
                                      pooled.amplitudes_ui_pp)


class TestMultichannel:
    def test_lane_counts_and_determinism(self):
        result = multichannel_sweep(n_bits=400, jitter=MILD, seed=11, workers=1)
        again = multichannel_sweep(n_bits=400, jitter=MILD, seed=11, workers=2)
        assert result.errors.shape == (4,)
        np.testing.assert_array_equal(result.errors, again.errors)
        np.testing.assert_array_equal(result.frequency_offsets,
                                      again.frequency_offsets)
        assert 0.0 <= result.aggregate_ber <= 1.0

    def test_backends_agree(self):
        fast = multichannel_sweep(n_bits=400, jitter=MILD, seed=11,
                                  workers=1, backend="fast")
        event = multichannel_sweep(n_bits=400, jitter=MILD, seed=11,
                                   workers=1, backend="event")
        np.testing.assert_array_equal(fast.errors, event.errors)


class TestAggressorSweep:
    AMPLITUDES = np.array([0.0, 0.2, 0.4])

    def test_bit_true_and_statistical_views_track(self):
        result = ber_vs_aggressor_sweep(self.AMPLITUDES, n_bits=1000,
                                        seed=7, workers=1)
        # Bit-true errors are non-decreasing and the statistical eye
        # openings non-increasing as the aggressor strengthens.
        assert result.errors[0] <= result.errors[-1]
        assert np.all(np.diff(result.stateye_vertical) <= 0.0)
        assert np.all(np.diff(result.stateye_horizontal_ui) <= 0.0)
        # The strongest aggressor visibly disturbs both views.
        assert result.errors[-1] > 0
        assert result.stateye_vertical[-1] < result.stateye_vertical[0]

    def test_deterministic_across_workers(self):
        serial = ber_vs_aggressor_sweep(self.AMPLITUDES, n_bits=600,
                                        seed=3, workers=1)
        pooled = ber_vs_aggressor_sweep(self.AMPLITUDES, n_bits=600,
                                        seed=3, workers=2)
        np.testing.assert_array_equal(serial.errors, pooled.errors)
        np.testing.assert_array_equal(serial.stateye_ber, pooled.stateye_ber)

    def test_backends_agree(self):
        fast = ber_vs_aggressor_sweep(self.AMPLITUDES, n_bits=600, seed=3,
                                      workers=1, backend="fast")
        event = ber_vs_aggressor_sweep(self.AMPLITUDES, n_bits=600, seed=3,
                                       workers=1, backend="event")
        np.testing.assert_array_equal(fast.errors, event.errors)
        np.testing.assert_array_equal(fast.stateye_ber, event.stateye_ber)

    def test_source_round_trips(self):
        from repro.experiments import SweepResult
        result = ber_vs_aggressor_sweep(self.AMPLITUDES, n_bits=600,
                                        seed=3, workers=1)
        restored = SweepResult.from_json(result.source.to_json())
        assert restored.equals(result.source)
        assert restored.metadata["loss_db"] == result.loss_db


class TestLinkTrainingSweep:
    LOSSES = np.array([10.0, 16.0])

    def _sweep(self, **overrides):
        from repro.experiments import TrainingBudget

        values = dict(n_bits=600, seed=3, workers=1,
                      training=TrainingBudget(tx_post_db=(0.0, 3.5),
                                              ctle_peaking_db=(3.0, 9.0),
                                              refine_rounds=1,
                                              max_evaluations=8))
        values.update(overrides)
        return link_training_sweep(self.LOSSES, **values)

    def test_trained_never_scores_below_fixed(self):
        result = self._sweep()
        assert np.all(result.trained_vertical >= result.fixed_vertical)
        assert np.all(result.vertical_gain >= 0.0)
        # The harsh loss point is where training visibly helps.
        assert result.trained_vertical[-1] > result.fixed_vertical[-1]

    def test_trained_coordinates_and_costs_recorded(self):
        result = self._sweep()
        assert result.trained_ctle_peaking_db.shape == self.LOSSES.shape
        # Budget 8 searched solves plus the exempt baseline seed.
        assert np.all(result.training_evaluations <= 9)
        assert np.all(result.training_evaluations >= 2)

    def test_deterministic_across_workers(self):
        serial = self._sweep(workers=1)
        pooled = self._sweep(workers=2)
        np.testing.assert_array_equal(serial.errors, pooled.errors)
        np.testing.assert_array_equal(serial.trained_vertical,
                                      pooled.trained_vertical)
        np.testing.assert_array_equal(serial.trained_ctle_peaking_db,
                                      pooled.trained_ctle_peaking_db)

    def test_source_round_trips(self):
        from repro.experiments import SweepResult

        result = self._sweep()
        restored = SweepResult.from_json(result.source.to_json())
        assert restored.equals(result.source)
        assert restored.metadata["target_ber"] == result.target_ber
