"""Tests for the technology constants and square-law MOSFET model."""

import math

import pytest

from repro.circuit.mosfet import Mosfet
from repro.circuit.technology import UMC_018, Technology


class TestTechnology:
    def test_default_node_values(self):
        assert UMC_018.supply_v == pytest.approx(1.8)
        assert UMC_018.minimum_length_um == pytest.approx(0.18)

    def test_gate_capacitance_scales_with_area(self):
        small = UMC_018.gate_capacitance_f(1.0, 0.18)
        large = UMC_018.gate_capacitance_f(2.0, 0.18)
        assert large > small

    def test_drain_capacitance_scales_with_width(self):
        assert UMC_018.drain_capacitance_f(4.0) == pytest.approx(
            2.0 * UMC_018.drain_capacitance_f(2.0))

    def test_rejects_non_positive_parameters(self):
        with pytest.raises(ValueError):
            Technology(name="bad", supply_v=0.0, nmos_threshold_v=0.4,
                       pmos_threshold_v=0.4, nmos_kprime_a_per_v2=3e-4,
                       pmos_kprime_a_per_v2=7e-5, gate_capacitance_f_per_um2=8e-15,
                       overlap_capacitance_f_per_um=0.3e-15,
                       junction_capacitance_f_per_um=0.9e-15,
                       minimum_length_um=0.18, sheet_resistance_ohm=300.0,
                       noise_gamma=1.5)


class TestMosfet:
    def test_minimum_length_enforced(self):
        with pytest.raises(ValueError):
            Mosfet(width_um=1.0, length_um=0.1)

    def test_cutoff_region(self):
        device = Mosfet(width_um=2.0, length_um=0.18)
        assert device.drain_current(0.2, 1.0) == 0.0

    def test_saturation_current_square_law(self):
        device = Mosfet(width_um=2.0, length_um=0.18)
        vov = 0.2
        expected = 0.5 * device.beta * vov ** 2
        assert device.saturation_current(device.threshold_v + vov) == pytest.approx(expected)

    def test_triode_below_saturation(self):
        device = Mosfet(width_um=2.0, length_um=0.18)
        vgs = device.threshold_v + 0.3
        triode = device.drain_current(vgs, 0.1)
        saturation = device.drain_current(vgs, 1.0)
        assert 0.0 < triode < saturation

    def test_vgs_for_current_round_trip(self):
        device = Mosfet(width_um=4.0, length_um=0.18)
        current = 200e-6
        vgs = device.vgs_for_current(current)
        assert device.saturation_current(vgs) == pytest.approx(current, rel=1e-9)

    def test_transconductance_formula(self):
        device = Mosfet(width_um=4.0, length_um=0.18)
        current = 150e-6
        assert device.transconductance(current) == pytest.approx(
            math.sqrt(2.0 * device.beta * current))

    def test_overdrive_for_current(self):
        device = Mosfet(width_um=4.0, length_um=0.18)
        vov = device.overdrive_for_current(100e-6)
        assert device.saturation_current(device.threshold_v + vov) == pytest.approx(100e-6)

    def test_thermal_noise_positive_and_scales_with_gamma(self):
        device = Mosfet(width_um=4.0, length_um=0.18)
        assert device.thermal_noise_current_psd(200e-6) > 0.0

    def test_sizing_helper(self):
        device = Mosfet.sized_for_current(200e-6, 0.25)
        assert device.saturation_current(device.threshold_v + 0.25) == pytest.approx(
            200e-6, rel=1e-6)

    def test_pmos_uses_pmos_parameters(self):
        nmos = Mosfet(width_um=2.0, length_um=0.18, is_pmos=False)
        pmos = Mosfet(width_um=2.0, length_um=0.18, is_pmos=True)
        assert pmos.beta < nmos.beta
        assert pmos.threshold_v == pytest.approx(UMC_018.pmos_threshold_v)
