"""Tests for the circuit-level ("transistor-level") transient CDR simulation.

These are the slowest unit tests in the suite; bit counts are kept small.
"""

import numpy as np
import pytest

from repro.circuit.transient import (
    CircuitCdrConfig,
    CircuitLevelCdr,
    calibrate_ring,
    measure_free_running_frequency,
)
from repro.datapath.nrz import JitterSpec
from repro.datapath.prbs import prbs7


@pytest.fixture(scope="module")
def calibrated_config():
    return calibrate_ring(CircuitCdrConfig())


class TestCalibration:
    def test_free_running_frequency_is_measurable(self):
        frequency = measure_free_running_frequency(CircuitCdrConfig(), n_unit_intervals=30)
        assert 1.0e9 < frequency < 10.0e9

    def test_calibration_hits_bit_rate(self, calibrated_config):
        frequency = measure_free_running_frequency(calibrated_config, n_unit_intervals=30)
        assert frequency == pytest.approx(calibrated_config.bit_rate_hz, rel=0.01)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CircuitCdrConfig(n_ring_stages=2)
        with pytest.raises(ValueError):
            CircuitCdrConfig(tau_scale=0.0)


class TestTransientSimulation:
    @pytest.fixture(scope="class")
    def result(self, calibrated_config):
        simulator = CircuitLevelCdr(calibrated_config)
        return simulator.simulate(prbs7(150), rng=np.random.default_rng(0))

    def test_waveforms_have_cml_swing(self, result, calibrated_config):
        half_swing = 0.5 * calibrated_config.stage.bias.swing_v
        assert abs(result.clock_v).max() <= half_swing * 1.05
        assert abs(result.delayed_data_v).max() >= 0.5 * half_swing

    def test_one_clock_edge_per_bit(self, result):
        ratio = result.clock_rising_edges_s().size / result.transmitted_bits.size
        assert ratio == pytest.approx(1.0, abs=0.05)

    def test_recovers_data_without_jitter(self, result):
        """Typical-case run (no jitter): the recovered bits match the sent ones."""
        measurement = result.ber()
        assert measurement.compared_bits > 100
        assert measurement.errors <= 2

    def test_eye_is_open(self, result):
        """Figure 18: the typical-case eye at the sampler is open."""
        metrics = result.eye_diagram().metrics()
        assert metrics.eye_opening_ui > 0.2
        assert metrics.n_crossings > 30

    def test_edet_pulses_exist(self, result):
        # EDET must swing low after transitions: its minimum is well below zero.
        assert result.edet_v.min() < -0.05

    def test_sample_times_are_increasing(self, result):
        assert np.all(np.diff(result.sample_times_s) > 0.0)


class TestNoiseAndImpairments:
    def test_noise_injection_runs(self, calibrated_config):
        from dataclasses import replace
        noisy = replace(calibrated_config, noise_enabled=True)
        result = CircuitLevelCdr(noisy).simulate(prbs7(60), rng=np.random.default_rng(1))
        assert result.clock_rising_edges_s().size > 30

    def test_input_jitter_closes_eye(self, calibrated_config):
        clean = CircuitLevelCdr(calibrated_config).simulate(
            prbs7(120), rng=np.random.default_rng(2))
        jittered = CircuitLevelCdr(calibrated_config).simulate(
            prbs7(120), jitter=JitterSpec(dj_ui_pp=0.2, rj_ui_rms=0.02),
            rng=np.random.default_rng(2))
        assert jittered.eye_diagram().metrics().eye_opening_ui < \
            clean.eye_diagram().metrics().eye_opening_ui
