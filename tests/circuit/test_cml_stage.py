"""Tests for the CML stage electrical analysis."""

import pytest

from repro.circuit.cml_stage import design_cml_stage
from repro.jitter.accumulation import OscillatorJitterBudget


class TestDesignCmlStage:
    @pytest.fixture(scope="class")
    def stage(self):
        return design_cml_stage(200.0e-6)

    def test_swing_and_load_consistent(self, stage):
        assert stage.bias.swing_v == pytest.approx(0.4)
        assert stage.bias.load_resistance_ohm == pytest.approx(2000.0)

    def test_load_capacitance_in_tens_of_femtofarads(self, stage):
        assert 5.0e-15 < stage.load_capacitance_f < 100.0e-15

    def test_propagation_delay_supports_2p5ghz_ring(self, stage):
        # Four stages must oscillate at (or above) the 2.5 GHz bit rate.
        assert stage.ring_frequency_hz(4) > 2.0e9

    def test_max_toggle_frequency_matches_ring_frequency(self, stage):
        assert stage.maximum_toggle_frequency_hz == pytest.approx(stage.ring_frequency_hz(4))

    def test_more_current_is_faster(self):
        slow = design_cml_stage(50e-6)
        fast = design_cml_stage(400e-6)
        assert fast.ring_frequency_hz(4) > slow.ring_frequency_hz(4)

    def test_noise_voltage_microvolt_range(self, stage):
        noise = stage.output_noise_voltage_rms()
        assert 50.0e-6 < noise < 2.0e-3

    def test_jitter_per_transition_sub_picosecond(self, stage):
        jitter = stage.jitter_per_transition_rms_s()
        assert 1.0e-15 < jitter < 2.0e-12

    def test_kappa_meets_paper_budget(self, stage):
        """The 200 uA stage comfortably meets the 0.01 UIrms @ CID 5 budget."""
        assert OscillatorJitterBudget().satisfied_by(stage.kappa())

    def test_power(self, stage):
        assert stage.power_w == pytest.approx(200e-6 * 1.8)

    def test_ring_needs_three_stages(self, stage):
        with pytest.raises(ValueError):
            stage.ring_frequency_hz(2)

    def test_fanout_increases_load(self):
        single = design_cml_stage(200e-6, fanout=1)
        double = design_cml_stage(200e-6, fanout=2)
        assert double.load_capacitance_f > single.load_capacitance_f
