"""Tests for the reporting helpers."""

import pytest

from repro.reporting.tables import Series, TextTable, format_engineering


class TestFormatEngineering:
    def test_milli(self):
        assert format_engineering(12.5e-3, "W") == "12.5 mW"

    def test_giga(self):
        assert format_engineering(2.5e9, "Hz") == "2.5 GHz"

    def test_unity(self):
        assert format_engineering(5.0, "V") == "5 V"

    def test_zero(self):
        assert format_engineering(0.0, "A") == "0 A"

    def test_femto(self):
        assert format_engineering(25e-15, "F") == "25 fF"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(headers=["name", "value"], title="Demo")
        table.add_row("alpha", 1)
        table.add_row("beta", 22)
        text = table.render()
        assert "Demo" in text
        assert "alpha" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, two rows

    def test_row_length_checked(self):
        table = TextTable(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_csv_export(self):
        table = TextTable(headers=["a", "b"])
        table.add_row(1, 2)
        assert table.to_csv() == "a,b\n1,2\n"


class TestSeries:
    def test_add_and_render(self):
        series = Series("BER vs amplitude", "amplitude_ui", "ber")
        series.add(0.1, 1e-15)
        series.add(0.2, 1e-9)
        text = series.render()
        assert "BER vs amplitude" in text
        assert "1e-09" in text

    def test_extend(self):
        series = Series("s", "x", "y")
        series.extend([1, 2, 3], [4, 5, 6])
        assert len(series.points) == 3

    def test_render_downsamples(self):
        series = Series("s", "x", "y")
        series.extend(range(1000), range(1000))
        text = series.render(max_points=10)
        assert len(text.splitlines()) < 120

    def test_csv(self):
        series = Series("s", "x", "y")
        series.add(1.0, 2.0)
        assert series.to_csv().splitlines()[0] == "x,y"
