"""Tests for jittered NRZ edge-stream generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.datapath import nrz


class TestJitterSpec:
    def test_defaults_match_table1(self):
        spec = nrz.JitterSpec()
        assert spec.dj_ui_pp == pytest.approx(0.4)
        assert spec.rj_ui_rms == pytest.approx(0.021)
        assert spec.sj_amplitude_ui_pp == 0.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            nrz.JitterSpec(dj_ui_pp=-0.1)

    def test_with_sinusoidal(self):
        spec = nrz.JitterSpec().with_sinusoidal(0.2, 5.0e6)
        assert spec.sj_amplitude_ui_pp == pytest.approx(0.2)
        assert spec.sj_frequency_hz == pytest.approx(5.0e6)
        assert spec.dj_ui_pp == pytest.approx(0.4)

    def test_total_deterministic(self):
        spec = nrz.JitterSpec(dj_ui_pp=0.3, sj_amplitude_ui_pp=0.2)
        assert spec.total_deterministic_ui_pp() == pytest.approx(0.5)


class TestIdealEdges:
    def test_edges_at_bit_boundaries(self):
        times, indices = nrz.ideal_edge_times([1, 1, 0, 1], 1.0e-9)
        np.testing.assert_allclose(times, [0.0, 2.0e-9, 3.0e-9])
        np.testing.assert_array_equal(indices, [0, 2, 3])

    def test_no_edges_for_constant_stream(self):
        times, _ = nrz.ideal_edge_times([0, 0, 0], 1.0e-9)
        assert times.size == 0

    def test_initial_level_controls_first_edge(self):
        times, _ = nrz.ideal_edge_times([1, 1], 1.0e-9, initial_level=1)
        assert times.size == 0


class TestGenerateEdgeTimes:
    def test_no_jitter_matches_ideal(self):
        bits = [0, 1, 0, 1, 1, 0]
        stream = nrz.generate_edge_times(
            bits, jitter=nrz.JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0),
            rng=np.random.default_rng(0))
        ideal, _ = nrz.ideal_edge_times(bits, units.DEFAULT_UNIT_INTERVAL)
        np.testing.assert_allclose(stream.edge_times_s, ideal)

    def test_edges_remain_ordered_under_jitter(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=2000)
        stream = nrz.generate_edge_times(bits, jitter=nrz.JitterSpec(), rng=rng)
        assert np.all(np.diff(stream.edge_times_s) >= 0.0)

    def test_data_rate_offset_changes_bit_period(self):
        stream = nrz.generate_edge_times([0, 1] * 10, data_rate_offset_ppm=1000.0,
                                         jitter=nrz.JitterSpec(0.0, 0.0),
                                         rng=np.random.default_rng(0))
        assert stream.bit_period_s == pytest.approx(
            units.DEFAULT_UNIT_INTERVAL / 1.001, rel=1e-9)

    def test_jitter_displacement_statistics(self):
        rng = np.random.default_rng(2)
        bits = (np.arange(40000) % 2).astype(np.uint8)  # all boundaries toggle
        spec = nrz.JitterSpec(dj_ui_pp=0.4, rj_ui_rms=0.0)
        stream = nrz.generate_edge_times(bits, jitter=spec, rng=rng)
        ideal, _ = nrz.ideal_edge_times(bits, stream.bit_period_s)
        displacement_ui = (stream.edge_times_s - ideal) / units.DEFAULT_UNIT_INTERVAL
        # Uniform DJ of 0.4 UIpp has sigma 0.4/sqrt(12) ~ 0.115 and bounded support.
        assert abs(displacement_ui).max() <= 0.21
        assert displacement_ui.std() == pytest.approx(0.4 / np.sqrt(12.0), rel=0.05)

    def test_sinusoidal_jitter_bounded(self):
        rng = np.random.default_rng(3)
        bits = (np.arange(5000) % 2).astype(np.uint8)
        spec = nrz.JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0,
                              sj_amplitude_ui_pp=0.2, sj_frequency_hz=10.0e6)
        stream = nrz.generate_edge_times(bits, jitter=spec, rng=rng)
        ideal, _ = nrz.ideal_edge_times(bits, stream.bit_period_s)
        displacement_ui = (stream.edge_times_s - ideal) / units.DEFAULT_UNIT_INTERVAL
        assert abs(displacement_ui).max() <= 0.101

    def test_start_time_offset(self):
        stream = nrz.generate_edge_times([1, 0], start_time_s=1.0e-6,
                                         jitter=nrz.JitterSpec(0.0, 0.0),
                                         rng=np.random.default_rng(0))
        assert stream.edge_times_s[0] == pytest.approx(1.0e-6)


class TestStreamSampling:
    def test_level_at_reproduces_bits(self):
        bits = [1, 0, 0, 1, 1, 1, 0]
        stream = nrz.generate_edge_times(bits, jitter=nrz.JitterSpec(0.0, 0.0),
                                         rng=np.random.default_rng(0))
        ui = stream.bit_period_s
        sampled = [stream.level_at((i + 0.5) * ui) for i in range(len(bits))]
        assert sampled == bits

    def test_vectorised_sample_matches_scalar(self):
        bits = [1, 0, 1, 1, 0]
        stream = nrz.generate_edge_times(bits, jitter=nrz.JitterSpec(0.0, 0.0),
                                         rng=np.random.default_rng(0))
        times = (np.arange(len(bits)) + 0.5) * stream.bit_period_s
        np.testing.assert_array_equal(stream.sample(times),
                                      [stream.level_at(t) for t in times])

    def test_level_before_first_edge_is_initial(self):
        stream = nrz.generate_edge_times([1, 0], start_time_s=1.0e-9,
                                         jitter=nrz.JitterSpec(0.0, 0.0),
                                         initial_level=0,
                                         rng=np.random.default_rng(0))
        assert stream.level_at(0.0) == 0

    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_mid_bit_sampling_recovers_data_without_jitter(self, n_bits):
        rng = np.random.default_rng(n_bits)
        bits = rng.integers(0, 2, size=n_bits).astype(np.uint8)
        stream = nrz.generate_edge_times(bits, jitter=nrz.JitterSpec(0.0, 0.0), rng=rng)
        times = (np.arange(n_bits) + 0.5) * stream.bit_period_s
        np.testing.assert_array_equal(stream.sample(times), bits)

    def test_waveform_rendering(self):
        bits = [0, 1, 1, 0]
        stream = nrz.generate_edge_times(bits, jitter=nrz.JitterSpec(0.0, 0.0),
                                         rng=np.random.default_rng(0))
        times, levels = nrz.waveform_from_edges(stream, stream.bit_period_s / 8.0)
        assert levels.min() == 0 and levels.max() == 1
        assert times.size == levels.size
