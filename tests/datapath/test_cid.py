"""Tests for run-length / CID statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datapath import cid


class TestRunLengths:
    def test_simple_pattern(self):
        lengths = cid.run_lengths([0, 0, 1, 1, 1, 0])
        np.testing.assert_array_equal(lengths, [2, 3, 1])

    def test_single_run(self):
        np.testing.assert_array_equal(cid.run_lengths([1, 1, 1]), [3])

    def test_empty(self):
        assert cid.run_lengths([]).size == 0

    def test_histogram(self):
        histogram = cid.run_length_histogram([0, 0, 1, 1, 1, 0])
        assert histogram == {1: 1, 2: 1, 3: 1}

    def test_max_cid(self):
        assert cid.max_consecutive_identical_digits([0, 1, 1, 1, 1, 0, 0]) == 4

    def test_transition_density_alternating(self):
        assert cid.transition_density([0, 1, 0, 1, 0]) == pytest.approx(1.0)

    def test_transition_density_constant(self):
        assert cid.transition_density([1, 1, 1, 1]) == pytest.approx(0.0)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_run_lengths_sum_to_stream_length(self, bits):
        assert int(cid.run_lengths(bits).sum()) == len(bits)


class TestRunLengthDistribution:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            cid.RunLengthDistribution((0.5, 0.4))

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            cid.RunLengthDistribution((1.5, -0.5))

    def test_geometric_distribution_sums_to_one(self):
        distribution = cid.geometric_run_distribution(5)
        assert sum(distribution.probabilities) == pytest.approx(1.0)

    def test_geometric_tail_folded_into_last_bin(self):
        distribution = cid.geometric_run_distribution(5)
        # P(5) contains the folded tail, so it exceeds the raw geometric value 1/32.
        assert distribution.probabilities[-1] > 0.5 ** 5

    def test_8b10b_distribution_max_run_is_five(self):
        assert cid.encoded_8b10b_run_distribution().max_run == 5

    def test_mean_run_length_of_fair_stream(self):
        distribution = cid.geometric_run_distribution(20)
        assert distribution.mean_run_length == pytest.approx(2.0, rel=0.01)

    def test_bit_weights_sum_to_one(self):
        distribution = cid.geometric_run_distribution(5)
        assert distribution.bit_weights().sum() == pytest.approx(1.0)

    def test_bit_weights_favour_long_runs_versus_run_weights(self):
        distribution = cid.geometric_run_distribution(5)
        # A bit is more likely than a run to belong to the longest bin.
        assert distribution.bit_weights()[-1] > distribution.probabilities[-1]

    def test_position_in_run_weights_structure(self):
        distribution = cid.geometric_run_distribution(4)
        joint = distribution.position_in_run_weights()
        assert joint.shape == (4, 4)
        assert joint.sum() == pytest.approx(1.0)
        # Positions beyond the run length are impossible.
        assert joint[0, 1] == 0.0
        assert joint[2, 3] == 0.0

    def test_position_distribution_is_decreasing(self):
        distribution = cid.geometric_run_distribution(5)
        positions = cid.bit_position_distribution(distribution)
        assert positions.sum() == pytest.approx(1.0)
        assert all(positions[i] >= positions[i + 1] for i in range(len(positions) - 1))

    def test_measured_distribution_matches_stream(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=20000)
        distribution = cid.measured_run_distribution(bits, max_run=6)
        # The measured distribution of an i.i.d. stream approximates the geometric one.
        expected = cid.geometric_run_distribution(6)
        np.testing.assert_allclose(distribution.probabilities,
                                   expected.probabilities, atol=0.02)

    def test_measured_distribution_rejects_empty(self):
        with pytest.raises(ValueError):
            cid.measured_run_distribution([])

    def test_invalid_transition_probability(self):
        with pytest.raises(ValueError):
            cid.geometric_run_distribution(5, transition_probability=0.0)
