"""Tests for the 8b/10b encoder / decoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datapath import encoding8b10b as enc


class TestEncoderBasics:
    def test_symbol_length_is_ten(self):
        encoder = enc.Encoder8b10b()
        assert encoder.encode_symbol(0x00).size == 10

    def test_running_disparity_starts_negative(self):
        assert enc.Encoder8b10b().running_disparity == -1

    def test_invalid_byte_rejected(self):
        with pytest.raises(enc.EncodingError):
            enc.Encoder8b10b().encode_symbol(256)

    def test_invalid_control_rejected(self):
        with pytest.raises(enc.EncodingError):
            enc.Encoder8b10b().encode_symbol(0x00, control=True)

    def test_d0_0_rd_negative_code(self):
        # D0.0 at RD- is 100111 0100 in abcdei fghj order.
        bits = enc.Encoder8b10b().encode_symbol(0x00)
        assert "".join(str(b) for b in bits) == "1001110100"

    def test_k28_5_comma_rd_negative(self):
        bits = enc.Encoder8b10b().encode_symbol(enc.K28_5, control=True)
        assert "".join(str(b) for b in bits) == "0011111010"

    def test_symbol_name(self):
        assert enc.symbol_name(0xBC, control=True) == "K28.5"
        assert enc.symbol_name(0x4A) == "D10.2"


class TestDisparityInvariants:
    def test_disparity_stays_bounded(self):
        encoder = enc.Encoder8b10b()
        running = 0
        for byte in range(256):
            bits = encoder.encode_symbol(byte)
            running += int(bits.sum()) * 2 - 10
            # The cumulative ones/zeros imbalance of a valid stream stays within +/-2.
            assert -3 <= running <= 3

    def test_each_symbol_disparity_is_0_or_pm2(self):
        encoder = enc.Encoder8b10b()
        for byte in range(256):
            bits = encoder.encode_symbol(byte)
            disparity = int(bits.sum()) * 2 - 10
            assert disparity in (-2, 0, 2)


class TestRunLengthGuarantee:
    def test_max_run_length_is_five_over_all_bytes(self):
        stream = enc.encode_bytes(list(range(256)) * 2)
        assert enc.max_run_length(stream) <= 5

    def test_max_run_length_random_payload(self):
        rng = np.random.default_rng(11)
        payload = rng.integers(0, 256, size=4000).tolist()
        stream = enc.encode_bytes(payload)
        assert enc.max_run_length(stream) <= 5

    def test_paper_worst_case_cid_is_reachable(self):
        # The worst case the paper designs for (five identical digits) does occur.
        rng = np.random.default_rng(5)
        payload = rng.integers(0, 256, size=4000).tolist()
        stream = enc.encode_bytes(payload)
        assert enc.max_run_length(stream) == 5

    def test_max_run_length_helper(self):
        assert enc.max_run_length([0, 0, 0, 1, 1]) == 3
        assert enc.max_run_length([]) == 0


class TestRoundTrip:
    def test_all_bytes_round_trip_from_rd_negative(self):
        encoder = enc.Encoder8b10b()
        decoder = enc.Decoder8b10b()
        data = list(range(256))
        stream = encoder.encode(data)
        decoded = decoder.decode(stream)
        assert [byte for byte, is_control in decoded] == data
        assert all(not is_control for _byte, is_control in decoded)

    def test_all_bytes_round_trip_from_rd_positive(self):
        encoder = enc.Encoder8b10b(running_disparity=+1)
        decoder = enc.Decoder8b10b(running_disparity=+1)
        data = list(range(255, -1, -1))
        decoded = decoder.decode(encoder.encode(data))
        assert [byte for byte, _ in decoded] == data

    def test_control_characters_round_trip(self):
        encoder = enc.Encoder8b10b()
        decoder = enc.Decoder8b10b()
        controls = list(enc.CONTROL_CODES)
        stream = encoder.encode(controls, controls=set(range(len(controls))))
        decoded = decoder.decode(stream)
        assert [byte for byte, _ in decoded] == controls
        assert all(is_control for _byte, is_control in decoded)

    def test_mixed_data_and_controls(self):
        encoder = enc.Encoder8b10b()
        decoder = enc.Decoder8b10b()
        data = [enc.K28_5, 0x55, 0xAA, enc.K28_5, 0x00]
        stream = encoder.encode(data, controls={0, 3})
        decoded = decoder.decode(stream)
        assert decoded[0] == (enc.K28_5, True)
        assert decoded[1] == (0x55, False)
        assert decoded[3] == (enc.K28_5, True)

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, payload):
        stream = enc.encode_bytes(payload)
        decoded = enc.decode_symbols(stream)
        assert [byte for byte, _ in decoded] == payload


class TestDecoderErrors:
    def test_wrong_length_rejected(self):
        with pytest.raises(enc.DecodingError):
            enc.Decoder8b10b().decode_symbol([0, 1, 0])

    def test_invalid_code_group_rejected(self):
        with pytest.raises(enc.DecodingError):
            enc.Decoder8b10b().decode_symbol([1] * 10)

    def test_stream_length_must_be_multiple_of_ten(self):
        with pytest.raises(enc.DecodingError):
            enc.Decoder8b10b().decode([0, 1] * 7)

    def test_disparity_error_detection(self):
        encoder = enc.Encoder8b10b()
        decoder = enc.Decoder8b10b()
        # D0.1 has a code group with overall disparity +2; decoding the same
        # group twice in a row (without the complementary form in between)
        # violates the running-disparity rule.
        first = encoder.encode_symbol(0x20)
        assert int(first.sum()) * 2 - 10 == 2
        decoder.decode_symbol(first)
        decoder.decode_symbol(first)
        assert decoder.disparity_errors >= 1

    def test_reset_clears_errors(self):
        decoder = enc.Decoder8b10b()
        decoder.disparity_errors = 3
        decoder.reset()
        assert decoder.disparity_errors == 0
        assert decoder.running_disparity == -1
