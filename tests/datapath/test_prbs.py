"""Tests for the PRBS generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datapath import prbs


class TestTapsAndPeriods:
    def test_supported_orders(self):
        assert set(prbs.PRBS_TAPS) == {7, 9, 11, 15, 23, 31}

    def test_period_formula(self):
        assert prbs.sequence_period(7) == 127
        assert prbs.sequence_period(15) == 32767

    def test_unsupported_order_rejected(self):
        with pytest.raises(ValueError):
            prbs.sequence_period(8)


class TestGenerator:
    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            prbs.PrbsGenerator(7, seed=0)

    def test_prbs7_has_full_period(self):
        assert prbs.verify_maximal_length(7)

    def test_prbs9_has_full_period(self):
        assert prbs.verify_maximal_length(9)

    def test_sequence_repeats_after_period(self):
        generator = prbs.PrbsGenerator(7)
        first = generator.bits(127)
        second = generator.bits(127)
        np.testing.assert_array_equal(first, second)

    def test_balance_of_full_period(self):
        # A maximal-length sequence of order n has 2**(n-1) ones and 2**(n-1)-1 zeros.
        sequence = prbs.prbs7()
        assert int(sequence.sum()) == 64
        assert sequence.size - int(sequence.sum()) == 63

    def test_prbs15_balance(self):
        sequence = prbs.prbs15()
        assert int(sequence.sum()) == 2 ** 14

    def test_different_seeds_give_shifted_sequences(self):
        a = prbs.prbs_sequence(7, 127, seed=0b1010101)
        b = prbs.prbs_sequence(7, 127, seed=0b0110011)
        assert not np.array_equal(a, b)
        # Same multiset of runs: the sequences are cyclic shifts of each other.
        assert int(a.sum()) == int(b.sum())

    def test_invert_flag(self):
        plain = prbs.prbs_sequence(7, 50)
        inverted = prbs.prbs_sequence(7, 50, invert=True)
        np.testing.assert_array_equal(plain ^ 1, inverted)

    def test_reset_restores_sequence(self):
        generator = prbs.PrbsGenerator(7)
        first = generator.bits(20)
        generator.reset()
        np.testing.assert_array_equal(first, generator.bits(20))

    def test_iteration_protocol(self):
        generator = prbs.PrbsGenerator(7)
        iterated = [bit for _, bit in zip(range(10), iter(generator))]
        generator.reset()
        np.testing.assert_array_equal(np.array(iterated), generator.bits(10))

    def test_prbs31_is_inverted_convention(self):
        bits = prbs.prbs31(1000)
        assert bits.size == 1000
        assert set(np.unique(bits)) <= {0, 1}

    @given(st.sampled_from([7, 9, 11, 15]), st.integers(min_value=1, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_output_is_binary(self, order, length):
        bits = prbs.prbs_sequence(order, length)
        assert bits.dtype == np.uint8
        assert set(np.unique(bits)) <= {0, 1}


class TestRunLengthProperty:
    def test_prbs7_max_run_is_seven(self):
        from repro.datapath.cid import max_consecutive_identical_digits
        # PRBS7 contains a run of 7 ones (and 6 zeros) per period.
        sequence = prbs.prbs7()
        assert max_consecutive_identical_digits(sequence) == 7

    def test_prbs7_has_more_cid_than_8b10b(self):
        # The paper notes PRBS7 "exhibits more consecutive identical digits
        # than an 8bit/10bit encoded stream" (max 5).
        from repro.datapath.cid import max_consecutive_identical_digits
        assert max_consecutive_identical_digits(prbs.prbs7()) > 5


class TestVectorizedGeneration:
    """Word-stepped numpy generation must be bit-exact with the scalar LFSR."""

    @pytest.mark.parametrize("order", sorted(prbs.PRBS_TAPS))
    def test_matches_scalar_lfsr(self, order):
        scalar = prbs.PrbsGenerator(order)
        vector = prbs.PrbsGenerator(order)
        expected = np.array([scalar.next_bit() for _ in range(2000)], dtype=np.uint8)
        np.testing.assert_array_equal(vector.bits(2000), expected)
        assert vector.state == scalar.state

    @pytest.mark.parametrize("order", [7, 9, 15])
    def test_state_supports_interleaved_generation(self, order):
        split = prbs.PrbsGenerator(order, seed=0b1011)
        whole = prbs.PrbsGenerator(order, seed=0b1011)
        pieces = np.concatenate([split.bits(3), split.bits(500), split.bits(7),
                                 np.array([split.next_bit()], dtype=np.uint8)])
        np.testing.assert_array_equal(pieces, whole.bits(511))

    def test_invert_applies_to_vectorized_path(self):
        plain = prbs.PrbsGenerator(7).bits(800)
        inverted = prbs.PrbsGenerator(7, invert=True).bits(800)
        np.testing.assert_array_equal(plain ^ 1, inverted)

    @pytest.mark.parametrize("order", [7, 9])
    def test_full_period_preserved(self, order):
        period = prbs.sequence_period(order)
        two_periods = prbs.PrbsGenerator(order).bits(2 * period)
        np.testing.assert_array_equal(two_periods[:period], two_periods[period:])
        # Maximal length: no shorter cycle divides the period.
        first = two_periods[:period]
        assert not any(np.array_equal(first, np.roll(first, shift))
                       for shift in range(1, 8))
