"""Tests for clock-aligned eye-diagram construction."""

import numpy as np
import pytest

from repro.analysis.eye import EyeDiagram


UI = 400.0e-12


class TestFromEdges:
    def test_clean_eye_is_fully_open(self):
        clock = np.arange(1, 50) * UI
        data = clock[:-1] + 0.5 * UI  # transitions exactly between clock edges
        eye = EyeDiagram.from_edges(data, clock, UI)
        assert eye.eye_opening_ui() > 0.9

    def test_crossing_offsets_are_wrapped(self):
        clock = np.arange(1, 20) * UI
        data = clock[:-1] + 0.95 * UI
        eye = EyeDiagram.from_edges(data, clock, UI)
        assert np.all(eye.crossing_offsets_ui >= -0.5)
        assert np.all(eye.crossing_offsets_ui < 0.5)
        # A crossing just before the next clock edge appears at ~ -0.05 UI.
        assert np.allclose(eye.crossing_offsets_ui, -0.05, atol=1e-6)

    def test_crossing_at_sampling_instant_destroys_margin(self):
        # A data transition landing right on the sampling instant leaves no
        # margin on that side, even if the other side stays clear.
        clock = np.arange(1, 20) * UI
        data = clock[:-1] + 0.002 * UI
        eye = EyeDiagram.from_edges(data, clock, UI)
        assert eye.metrics().right_margin_ui < 0.01
        assert eye.eye_opening_ui() < 0.55

    def test_empty_inputs(self):
        eye = EyeDiagram.from_edges(np.array([]), np.array([]), UI)
        assert eye.n_crossings == 0
        assert eye.eye_opening_ui() == 1.0

    def test_edges_outside_clock_span_dropped(self):
        clock = np.array([10 * UI, 11 * UI])
        data = np.array([1 * UI, 10.5 * UI, 20 * UI])
        eye = EyeDiagram.from_edges(data, clock, UI)
        assert eye.n_crossings == 1


class TestMetrics:
    def test_symmetric_eye_metrics(self):
        rng = np.random.default_rng(0)
        n = 4000
        offsets = np.concatenate([
            -0.35 + rng.normal(0.0, 0.02, n // 2),
            +0.35 + rng.normal(0.0, 0.02, n // 2),
        ])
        metrics = EyeDiagram.from_offsets(offsets).metrics()
        assert metrics.eye_centre_ui == pytest.approx(0.0, abs=0.05)
        assert metrics.left_edge_std_ui == pytest.approx(0.02, rel=0.25)
        assert metrics.right_edge_std_ui == pytest.approx(0.02, rel=0.25)
        assert 0.4 < metrics.eye_opening_ui < 0.8

    def test_asymmetric_eye_detected(self):
        # Left crossings tight, right crossings spread: the gated-oscillator
        # signature from the paper's Figure 14.
        rng = np.random.default_rng(1)
        n = 3000
        clock = np.arange(1, n + 1) * UI
        left = clock[: n // 2] - 0.45 * UI + rng.normal(0, 0.002 * UI, n // 2)
        right = clock[n // 2:] + 0.45 * UI + rng.normal(0, 0.05 * UI, n // 2)
        eye = EyeDiagram.from_offsets(
            np.concatenate([(left - clock[: n // 2]) / UI,
                            (right - clock[n // 2:]) / UI]))
        metrics = eye.metrics()
        assert metrics.right_edge_std_ui > 5 * metrics.left_edge_std_ui

    def test_empty_metrics(self):
        metrics = EyeDiagram.from_offsets(np.array([])).metrics()
        assert metrics.eye_opening_ui == 1.0
        assert metrics.n_crossings == 0

    def test_margins(self):
        eye = EyeDiagram.from_offsets(np.array([-0.4, -0.38, 0.42, 0.44]))
        metrics = eye.metrics()
        assert metrics.left_margin_ui == pytest.approx(0.39, abs=0.02)
        assert metrics.right_margin_ui == pytest.approx(0.43, abs=0.02)


class TestHistogram:
    def test_histogram_counts_all_crossings(self):
        offsets = np.random.default_rng(2).uniform(-0.5, 0.5, size=500)
        eye = EyeDiagram.from_offsets(offsets)
        centres, counts = eye.histogram(50)
        assert counts.sum() == 500
        assert centres.size == 50

    def test_series_export(self):
        eye = EyeDiagram.from_offsets(np.array([-0.4, 0.4]))
        series = eye.to_series(10)
        assert len(series) == 10
        assert sum(count for _offset, count in series) == 2

    def test_guard_band_reduces_opening(self):
        eye = EyeDiagram.from_offsets(np.array([-0.4, 0.4]))
        assert eye.eye_opening_ui(guard_band_ui=0.1) == pytest.approx(
            eye.eye_opening_ui() - 0.2)
