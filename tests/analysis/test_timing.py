"""Tests for timing / jitter measurement utilities."""

import numpy as np
import pytest

from repro.analysis.timing import (
    duty_cycle,
    measure_frequency,
    period_jitter,
    time_interval_error,
)


class TestTie:
    def test_clean_clock_has_zero_tie(self):
        edges = np.arange(100) * 400e-12
        tie, stats = time_interval_error(edges, 400e-12)
        assert stats.rms_s == pytest.approx(0.0, abs=1e-18)

    def test_gaussian_jitter_recovered(self):
        rng = np.random.default_rng(0)
        edges = np.arange(20000) * 400e-12 + rng.normal(0, 3e-12, 20000)
        _, stats = time_interval_error(edges, 400e-12)
        assert stats.rms_s == pytest.approx(3e-12, rel=0.05)

    def test_frequency_offset_removed_by_fit(self):
        # A constant frequency error must not register as jitter.
        edges = np.arange(1000) * 401e-12
        _, stats = time_interval_error(edges, 400e-12)
        assert stats.rms_s < 1e-15

    def test_ui_conversion(self):
        rng = np.random.default_rng(1)
        edges = np.arange(5000) * 400e-12 + rng.normal(0, 4e-12, 5000)
        _, stats = time_interval_error(edges, 400e-12)
        assert stats.rms_ui(400e-12) == pytest.approx(0.01, rel=0.1)

    def test_too_few_edges(self):
        _, stats = time_interval_error(np.array([1e-9]), 400e-12)
        assert stats.count == 0


class TestPeriodJitter:
    def test_mean_period(self):
        edges = np.arange(50) * 400e-12
        _, stats = period_jitter(edges)
        assert stats.mean_s == pytest.approx(400e-12)
        assert stats.peak_to_peak_s == pytest.approx(0.0, abs=1e-18)

    def test_jittered_periods(self):
        rng = np.random.default_rng(2)
        edges = np.cumsum(400e-12 + rng.normal(0, 2e-12, 10000))
        _, stats = period_jitter(edges)
        assert stats.rms_s == pytest.approx(2e-12, rel=0.05)


class TestFrequencyAndDuty:
    def test_measure_frequency(self):
        edges = np.arange(101) * 400e-12
        assert measure_frequency(edges) == pytest.approx(2.5e9)

    def test_measure_frequency_needs_two_edges(self):
        with pytest.raises(ValueError):
            measure_frequency(np.array([1e-9]))

    def test_duty_cycle_50_percent(self):
        rising = np.arange(20) * 1e-9
        falling = rising + 0.5e-9
        assert duty_cycle(rising, falling) == pytest.approx(0.5)

    def test_duty_cycle_asymmetric(self):
        rising = np.arange(20) * 1e-9
        falling = rising + 0.3e-9
        assert duty_cycle(rising, falling) == pytest.approx(0.3)

    def test_duty_cycle_requires_edges(self):
        with pytest.raises(ValueError):
            duty_cycle(np.array([0.0]), np.array([]))
