"""Tests for the shared threshold-crossing routine.

One routine serves both the circuit-level transient result and the link
front end's edge extraction; these tests pin its interpolation semantics.
"""

import numpy as np
import pytest

from repro.analysis.timing import threshold_crossings


class TestThresholdCrossings:
    def test_linear_interpolation_of_crossing_instant(self):
        times = np.array([0.0, 1.0, 2.0])
        values = np.array([-1.0, 1.0, -1.0])
        rising = threshold_crossings(times, values, kind="rising")
        falling = threshold_crossings(times, values, kind="falling")
        assert rising == pytest.approx([0.5])
        assert falling == pytest.approx([1.5])

    def test_any_merges_both_directions(self):
        times = np.linspace(0.0, 3.0 * np.pi, 3001)
        crossings = threshold_crossings(times, np.sin(times), kind="any")
        assert crossings == pytest.approx([np.pi, 2.0 * np.pi], abs=1e-3)

    def test_nonzero_threshold(self):
        times = np.array([0.0, 1.0])
        values = np.array([0.0, 1.0])
        crossings = threshold_crossings(times, values, threshold=0.25,
                                        kind="rising")
        assert crossings == pytest.approx([0.25])

    def test_touching_from_above_counts_as_falling(self):
        # Mirrors the transient analyser's original semantics: reaching the
        # threshold exactly counts as a crossing.
        times = np.array([0.0, 1.0, 2.0])
        values = np.array([1.0, 0.0, 1.0])
        falling = threshold_crossings(times, values, kind="falling")
        assert falling == pytest.approx([1.0])

    def test_no_crossings_and_validation(self):
        assert threshold_crossings(np.array([0.0, 1.0]),
                                   np.array([1.0, 2.0])).size == 0
        assert threshold_crossings(np.array([0.0]), np.array([1.0])).size == 0
        with pytest.raises(ValueError):
            threshold_crossings(np.array([0.0, 1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            threshold_crossings(np.array([0.0, 1.0]), np.array([-1.0, 1.0]),
                                kind="sideways")

    def test_nonuniform_time_steps(self):
        times = np.array([0.0, 3.0])
        values = np.array([-1.0, 2.0])
        assert threshold_crossings(times, values) == pytest.approx([1.0])
