"""Tests for bit-error counting and alignment."""

import numpy as np
import pytest

from repro.analysis.ber_counter import BerMeasurement, align_and_count, count_errors


class TestCountErrors:
    def test_identical_streams(self):
        result = count_errors([1, 0, 1, 1], [1, 0, 1, 1])
        assert result.errors == 0
        assert result.compared_bits == 4
        assert result.ber == 0.0

    def test_counts_mismatches(self):
        result = count_errors([1, 0, 1, 1], [1, 1, 1, 0])
        assert result.errors == 2
        assert result.ber == pytest.approx(0.5)

    def test_unequal_lengths_compare_prefix(self):
        result = count_errors([1, 0, 1, 1, 0], [1, 0])
        assert result.compared_bits == 2

    def test_empty(self):
        result = count_errors([], [])
        assert result.compared_bits == 0
        assert np.isnan(result.ber)


class TestAlignAndCount:
    def test_latency_offset_found(self):
        rng = np.random.default_rng(0)
        tx = rng.integers(0, 2, size=200)
        rx = tx[3:]  # receiver output lags by 3 bits
        result = align_and_count(tx, rx, skip_head=0)
        assert result.errors == 0
        assert result.alignment_offset == 3

    def test_leading_stale_samples_handled(self):
        # Start-up decisions before the data arrives add leading receive bits.
        rng = np.random.default_rng(1)
        tx = rng.integers(0, 2, size=200)
        rx = np.concatenate([[0, 0], tx])
        result = align_and_count(tx, rx, skip_head=0)
        assert result.errors == 0
        assert result.alignment_offset == -2

    def test_skip_head_excludes_acquisition(self):
        tx = np.ones(100, dtype=np.uint8)
        rx = tx.copy()
        rx[:5] = 0  # acquisition errors
        result = align_and_count(tx, rx, skip_head=8)
        assert result.errors == 0

    def test_real_errors_counted(self):
        rng = np.random.default_rng(2)
        tx = rng.integers(0, 2, size=500)
        rx = tx.copy()
        error_positions = [50, 100, 400]
        for position in error_positions:
            rx[position] ^= 1
        result = align_and_count(tx, rx, skip_head=0)
        assert result.errors == 3

    def test_empty_inputs(self):
        result = align_and_count([], [])
        assert result.compared_bits == 0


class TestConfidence:
    def test_zero_error_upper_bound(self):
        result = BerMeasurement(errors=0, compared_bits=1000)
        assert result.confidence_upper_bound(0.95) == pytest.approx(3.0e-3, rel=0.01)

    def test_nonzero_error_bound_above_estimate(self):
        result = BerMeasurement(errors=10, compared_bits=1000)
        assert result.confidence_upper_bound() > result.ber

    def test_nan_for_empty(self):
        assert np.isnan(BerMeasurement(errors=0, compared_bits=0).confidence_upper_bound())
