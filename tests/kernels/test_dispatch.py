"""Kernel-tier dispatch: resolution, JIT fallback, telemetry, warmup."""

import numpy as np
import pytest

from repro import _kernels, telemetry
from repro._kernels import dispatch
from repro.events.kernel import SimulationError, Simulator

SAMPLES = np.array([0.4, -0.6, 0.8, -0.2, 0.5, -0.7, 0.3])
LEVELS = np.array([1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0])


class _FakeJit:
    """Stands in for the numba module so fallback/upgrade paths run anywhere."""

    def __init__(self):
        self.warmed = 0

    def warmup(self):
        self.warmed += 1

    # Tier-"jit" dispatches delegate to the scalar kernels (bit-identical),
    # so routing tests can assert on results without numba installed.
    @staticmethod
    def dfe_adapt(*args):
        from repro._kernels import scalar
        return scalar.dfe_adapt(*args)

    @staticmethod
    def dfe_adapt_decision_directed(*args):
        from repro._kernels import scalar
        return scalar.dfe_adapt_decision_directed(*args)

    @staticmethod
    def dfe_error_propagation(*args):
        from repro._kernels import scalar
        return scalar.dfe_error_propagation(*args)


class TestResolveTier:
    def test_auto_matches_environment(self):
        expected = _kernels.TIER_JIT if _kernels.jit_available() else _kernels.TIER_PYTHON
        assert _kernels.resolve_tier(_kernels.TIER_AUTO) == expected

    def test_concrete_tiers_pass_through(self):
        assert _kernels.resolve_tier("python") == "python"
        assert _kernels.resolve_tier("reference") == "reference"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="warp"):
            _kernels.resolve_tier("warp")

    def test_jit_incapable_loops_resolve_to_python(self):
        assert _kernels.resolve_tier("auto", jit_capable=False) == "python"
        assert _kernels.resolve_tier("jit", jit_capable=False) == "python"

    def test_forced_jit_without_numba_falls_back(self, monkeypatch):
        monkeypatch.setattr(dispatch, "_jit", None)
        with telemetry.trace() as tracer:
            assert _kernels.resolve_tier("jit") == "python"
        assert tracer.counters["kernels.jit_fallback"] == 1

    def test_jit_resolves_when_available(self, monkeypatch):
        monkeypatch.setattr(dispatch, "_jit", _FakeJit())
        assert _kernels.resolve_tier("jit") == "jit"
        assert _kernels.resolve_tier("auto") == "jit"
        assert _kernels.jit_available()


class TestTelemetryCounters:
    def test_dfe_dispatch_counts_resolved_tier(self):
        with telemetry.trace() as tracer:
            _kernels.dfe_adapt(SAMPLES, LEVELS, 2, 0.05, 3, tier="python")
        assert tracer.counters["kernels.tier.python"] == 1

    def test_auto_dispatch_counts_concrete_tier(self, monkeypatch):
        monkeypatch.setattr(dispatch, "_jit", _FakeJit())
        with telemetry.trace() as tracer:
            _kernels.dfe_adapt(SAMPLES, LEVELS, 2, 0.05, 3, tier="auto")
        assert tracer.counters["kernels.tier.jit"] == 1

    def test_simulator_drain_counts_tier(self):
        simulator = Simulator()
        simulator.call_after(1.0e-9, lambda: None)
        with telemetry.trace() as tracer:
            simulator.run()
        assert tracer.counters["kernels.tier.python"] == 1
        assert tracer.counters["kernel.events"] == 1

    def test_fallback_counter_fires_through_dispatch(self, monkeypatch):
        monkeypatch.setattr(dispatch, "_jit", None)
        with telemetry.trace() as tracer:
            _kernels.dfe_adapt(SAMPLES, LEVELS, 2, 0.05, 3, tier="jit")
        assert tracer.counters["kernels.jit_fallback"] == 1
        assert tracer.counters["kernels.tier.python"] == 1


class TestWarmup:
    def test_warmup_without_numba_is_a_clean_noop(self, monkeypatch):
        monkeypatch.setattr(dispatch, "_jit", None)
        with telemetry.trace() as tracer:
            assert _kernels.warmup_jit() is False
        assert "kernels.jit_warmup" not in tracer.counters

    def test_warmup_compiles_and_counts(self, monkeypatch):
        fake = _FakeJit()
        monkeypatch.setattr(dispatch, "_jit", fake)
        with telemetry.trace() as tracer:
            assert _kernels.warmup_jit() is True
        assert fake.warmed == 1
        assert tracer.counters["kernels.jit_warmup"] == 1

    @pytest.mark.skipif(not _kernels.jit_available(), reason="numba not installed")
    def test_real_warmup_compiles_numba_kernels(self):
        assert _kernels.warmup_jit() is True


class TestSimulatorTiers:
    def test_invalid_tier_rejected_at_construction(self):
        with pytest.raises(ValueError, match="warp"):
            Simulator(kernel_tier="warp")

    @staticmethod
    def _scheduled(simulator):
        order = []
        simulator.call_after(2.0e-9, lambda: order.append("late"))
        simulator.call_after(1.0e-9, lambda: order.append("early"))
        simulator.call_after(1.0e-9, lambda: order.append("tied"))
        return order

    def test_tiers_execute_identical_event_order(self):
        runs = {}
        for tier in ("reference", "python", "auto"):
            simulator = Simulator(kernel_tier=tier)
            order = self._scheduled(simulator)
            executed = simulator.run()
            runs[tier] = (order, executed, simulator.now)
        assert runs["reference"] == runs["python"] == runs["auto"]

    def test_run_until_budget_error_matches_reference(self):
        for tier in ("reference", "python"):
            simulator = Simulator(kernel_tier=tier)

            def reschedule():
                simulator.call_after(0.0, reschedule)

            simulator.call_after(0.0, reschedule)
            with pytest.raises(SimulationError, match="zero-delay loop"):
                simulator.run_until(1.0e-9, max_events=25)

    def test_run_budget_error_matches_reference(self):
        for tier in ("reference", "python"):
            simulator = Simulator(kernel_tier=tier)

            def reschedule():
                simulator.call_after(1.0e-12, reschedule)

            simulator.call_after(0.0, reschedule)
            with pytest.raises(SimulationError, match="without draining"):
                simulator.run(max_events=25)

    def test_run_until_advances_clock_to_stop_time(self):
        for tier in ("reference", "python"):
            simulator = Simulator(kernel_tier=tier)
            simulator.call_after(1.0e-9, lambda: None)
            assert simulator.run_until(5.0e-9) == 1
            assert simulator.now == 5.0e-9
