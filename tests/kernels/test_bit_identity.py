"""Golden bit-identity pins: every kernel tier must match the reference.

The pure-python loops in :mod:`repro.link.equalization` and
:mod:`repro.events.kernel` are the pinned semantic reference; the scalar
and (where installed) numba tiers must reproduce their results **byte for
byte** on pinned PRBS7 configurations — adapted taps, per-epoch errors,
decision-error diagnostics, error-propagation bursts, event counts and
full trained-link sweeps at any worker count.  These tests byte-compare
arrays (``.tobytes()``), not approximately.
"""

import numpy as np
import pytest

from repro import _kernels
from repro.core.cdr_channel import BehavioralCdrChannel
from repro.datapath.nrz import JitterSpec
from repro.datapath.prbs import prbs_sequence
from repro.experiments import ParameterAxis, ScenarioSpec, StimulusSpec, run_grid
from repro.link import (
    LinkConfig,
    LinkPath,
    LmsDfe,
    LossyLineChannel,
    RxCtle,
    TxFfe,
)
from repro.link.isi import nrz_symbol_levels

#: Every dispatchable tier available in this environment ("auto" resolves
#: to the fastest; "jit" is exercised only where numba is installed).
TIERS = ["python", "auto"] + (["jit"] if _kernels.jit_available() else [])

PRBS7_BITS = prbs_sequence(7)
PRBS7_LEVELS = nrz_symbol_levels(PRBS7_BITS)
#: The pinned "received waveform": PRBS7 levels plus deterministic
#: pseudo-ISI perturbations — enough structure for non-trivial adaptation.
PRBS7_SAMPLES = PRBS7_LEVELS + np.random.default_rng(1234).normal(0.0, 0.18, PRBS7_LEVELS.size)


def _bytes_equal(left: np.ndarray, right: np.ndarray) -> bool:
    return left.dtype == right.dtype and left.tobytes() == right.tobytes()


class TestDfeAdaptationBitIdentity:
    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("n_taps", [1, 2, 3, 5])
    def test_data_aided_matches_reference(self, tier, n_taps):
        dfe = LmsDfe(n_taps=n_taps, step_size=0.02, n_epochs=25)
        reference = dfe.adapt(PRBS7_SAMPLES, PRBS7_LEVELS, kernel="reference")
        fast = dfe.adapt(PRBS7_SAMPLES, PRBS7_LEVELS, kernel=tier)
        assert _bytes_equal(fast.weights, reference.weights)
        assert _bytes_equal(fast.error_rms_per_epoch, reference.error_rms_per_epoch)
        assert fast.decision_error_rate_per_epoch is None

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("n_taps", [1, 2, 4])
    def test_decision_directed_matches_reference(self, tier, n_taps):
        dfe = LmsDfe(n_taps=n_taps, step_size=0.015, n_epochs=30,
                     decision_directed=True)
        reference = dfe.adapt(PRBS7_SAMPLES, PRBS7_LEVELS, kernel="reference")
        fast = dfe.adapt(PRBS7_SAMPLES, PRBS7_LEVELS, kernel=tier)
        assert _bytes_equal(fast.weights, reference.weights)
        assert _bytes_equal(fast.error_rms_per_epoch, reference.error_rms_per_epoch)
        assert _bytes_equal(fast.decision_error_rate_per_epoch,
                            reference.decision_error_rate_per_epoch)

    @pytest.mark.parametrize("tier", TIERS)
    def test_default_kernel_is_bit_identical_to_reference(self, tier):
        dfe = LmsDfe(n_taps=2, step_size=0.02, n_epochs=40)
        default = dfe.adapt(PRBS7_SAMPLES, PRBS7_LEVELS)
        reference = dfe.adapt(PRBS7_SAMPLES, PRBS7_LEVELS, kernel="reference")
        assert _bytes_equal(default.weights, reference.weights)


class TestErrorPropagationBitIdentity:
    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("weights", [
        (0.3,),
        (0.3, -0.15),
        (0.45, -0.2, 0.1),
    ])
    def test_burst_matches_reference(self, tier, weights):
        dfe = LmsDfe(n_taps=len(weights))
        reference = dfe.error_propagation(np.array(weights), PRBS7_LEVELS,
                                          error_index=5, kernel="reference")
        fast = dfe.error_propagation(np.array(weights), PRBS7_LEVELS,
                                     error_index=5, kernel=tier)
        assert _bytes_equal(fast.wrong_decisions, reference.wrong_decisions)
        assert _bytes_equal(fast.deviation_per_ui, reference.deviation_per_ui)
        assert fast.burst_length == reference.burst_length
        assert fast.decays == reference.decays

    @pytest.mark.parametrize("tier", TIERS)
    def test_unstable_weights_match_reference(self, tier):
        """Past the stability boundary the burst rings — still bit-identical."""
        dfe = LmsDfe(n_taps=2)
        weights = np.array([1.2, 0.6])
        reference = dfe.error_propagation(weights, PRBS7_LEVELS, horizon=64,
                                          kernel="reference")
        fast = dfe.error_propagation(weights, PRBS7_LEVELS, horizon=64,
                                     kernel=tier)
        assert _bytes_equal(fast.wrong_decisions, reference.wrong_decisions)
        assert _bytes_equal(fast.deviation_per_ui, reference.deviation_per_ui)


class TestEventKernelBitIdentity:
    @pytest.mark.parametrize("tier", ["python", "auto"])
    def test_behavioral_channel_matches_reference_drain(self, tier):
        bits = prbs_sequence(7, 220)
        runs = {}
        for kernel_tier in ("reference", tier):
            channel = BehavioralCdrChannel(kernel_tier=kernel_tier)
            result = channel.run(bits, rng=np.random.default_rng(7))
            runs[kernel_tier] = result
        reference, fast = runs["reference"], runs[tier]
        assert _bytes_equal(fast.sampled_bits, reference.sampled_bits)
        assert _bytes_equal(fast.sample_times_s, reference.sample_times_s)
        assert fast.ber().errors == reference.ber().errors
        assert fast.ber().compared_bits == reference.ber().compared_bits

    def test_jittered_channel_matches_reference_drain(self):
        from repro.core.config import CdrChannelConfig
        config = CdrChannelConfig(gate_jitter_sigma_fraction=0.01)
        bits = prbs_sequence(7, 220)
        runs = []
        for kernel_tier in ("reference", "auto"):
            channel = BehavioralCdrChannel(config, kernel_tier=kernel_tier)
            runs.append(channel.run(bits, rng=np.random.default_rng(11)))
        assert _bytes_equal(runs[0].sampled_bits, runs[1].sampled_bits)
        assert _bytes_equal(runs[0].sample_times_s, runs[1].sample_times_s)


LINK = LinkConfig(
    channel=LossyLineChannel.for_loss_at_nyquist(6.0, LinkConfig().timebase.bit_rate_hz),
    tx_ffe=TxFfe.de_emphasis(post_db=2.0),
    rx_ctle=RxCtle(peaking_db=4.0),
    dfe=LmsDfe(n_taps=2, step_size=0.02, n_epochs=30),
)


class TestTrainedLinkBitIdentity:
    @pytest.mark.parametrize("tier", TIERS)
    def test_link_edge_stream_matches_reference(self, tier):
        bits = prbs_sequence(7, 254)
        reference = LinkPath(LINK, kernel_tier="reference").transmit(
            bits, pattern_period=127)
        fast = LinkPath(LINK, kernel_tier=tier).transmit(
            bits, pattern_period=127)
        assert _bytes_equal(fast.edge_times_s, reference.edge_times_s)

    @pytest.mark.parametrize("tier", TIERS)
    def test_decision_directed_link_matches_reference(self, tier):
        from dataclasses import replace
        link = replace(LINK, dfe=LmsDfe(n_taps=2, step_size=0.015, n_epochs=30,
                                        decision_directed=True))
        bits = prbs_sequence(7, 254)
        reference = LinkPath(link, kernel_tier="reference").transmit(
            bits, pattern_period=127)
        fast = LinkPath(link, kernel_tier=tier).transmit(bits, pattern_period=127)
        assert _bytes_equal(fast.edge_times_s, reference.edge_times_s)

    def test_trained_link_sweep_at_any_worker_count(self):
        """Full link sweep: dispatched kernels == reference, worker-invariant."""
        spec = ScenarioSpec(
            stimulus=StimulusSpec(n_bits=254),
            jitter=JitterSpec(rj_ui_rms=0.01),
            link=LINK,
        )
        axis = ParameterAxis("sj_amplitude_ui_pp", (0.0, 0.2))
        serial = run_grid(spec, [axis], seed=9, workers=1)
        pooled = run_grid(spec, [axis], seed=9, workers=2)
        assert _bytes_equal(serial.metric("errors"), pooled.metric("errors"))
        assert _bytes_equal(serial.metric("compared"), pooled.metric("compared"))

        # Recompute every point manually on the pinned reference tier: the
        # sweep's dispatched kernels must not have changed a single bit.
        from repro.experiments import resolve_grid, simulate_scenario
        from repro.fastpath.backends import BACKENDS, resolve_backend
        children = np.random.SeedSequence(9).spawn(2)
        for index, point in enumerate(resolve_grid(spec, (axis,))):
            rng = np.random.default_rng(children[index])
            backend = resolve_backend(point.config, point.backend)
            bits = point.stimulus.bits()
            stream = LinkPath(point.link, kernel_tier="reference").transmit(
                bits,
                jitter=point.jitter,
                data_rate_offset_ppm=point.data_rate_offset_ppm,
                rng=rng,
                pattern_period=point.stimulus.pattern_period,
            )
            manual = backend.create(point.config).run(
                bits, rng=rng, stream=stream).ber()
            assert serial.metric("errors")[index] == manual.errors
            assert serial.metric("compared")[index] == manual.compared_bits


class TestVectorizedTapArithmetic:
    """Satellite regression pins: the vectorized tap paths equal the old loops."""

    FFE = TxFfe.de_emphasis(pre_db=1.5, post_db=3.5)

    def test_apply_to_symbols_matches_roll_loop(self):
        symbols = PRBS7_LEVELS
        expected = np.zeros_like(symbols)
        for offset, tap in enumerate(self.FFE.taps):
            expected += tap * np.roll(symbols, offset - self.FFE.main_cursor)
        assert _bytes_equal(self.FFE.apply_to_symbols(symbols), expected)

    def test_frequency_response_matches_tap_loop(self):
        frequencies = np.linspace(1.0e8, 1.0e10, 37)
        unit_interval = 1.0 / 2.5e9
        expected = np.zeros(frequencies.shape, dtype=complex)
        for offset, tap in enumerate(self.FFE.taps):
            delay = (offset - self.FFE.main_cursor) * unit_interval
            expected += tap * np.exp(-2j * np.pi * frequencies * delay)
        assert _bytes_equal(
            self.FFE.frequency_response(frequencies, unit_interval), expected)

    def test_normalization_sum_matches_python_sum(self):
        ffe = TxFfe(taps=(-0.12, 0.9, -0.2), main_cursor=1).normalized()
        assert sum(abs(tap) for tap in ffe.taps) == pytest.approx(1.0, abs=1e-12)

    def test_feedback_waveform_matches_roll_loop(self):
        dfe = LmsDfe(n_taps=3)
        weights = np.array([0.25, -0.1, 0.05])
        expected = np.zeros(PRBS7_LEVELS.size)
        for offset, weight in enumerate(weights, start=1):
            expected += weight * np.roll(PRBS7_LEVELS, offset)
        expected = np.repeat(expected, 8)
        assert _bytes_equal(dfe.feedback_waveform(PRBS7_LEVELS, weights, 8), expected)

    def test_empty_weights_feedback_is_zero(self):
        dfe = LmsDfe(n_taps=1)
        waveform = dfe.feedback_waveform(PRBS7_LEVELS, np.array([]), 4)
        assert waveform.shape == (PRBS7_LEVELS.size * 4,)
        assert not waveform.any()
