"""Tests for the numerical PDF algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.jitter.pdf import (
    Pdf,
    convolve_pdfs,
    delta_pdf,
    dual_dirac_pdf,
    gaussian_pdf,
    sinusoidal_pdf,
    uniform_pdf,
)


class TestPdfConstruction:
    def test_rejects_non_uniform_grid(self):
        with pytest.raises(ValueError):
            Pdf(np.array([0.0, 1.0, 3.0]), np.array([1.0, 1.0, 1.0]))

    def test_rejects_negative_density(self):
        with pytest.raises(ValueError):
            Pdf(np.array([0.0, 1.0, 2.0]), np.array([1.0, -1.0, 1.0]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Pdf(np.array([0.0, 1.0]), np.array([1.0]))

    def test_step_property(self):
        p = uniform_pdf(1.0, step=0.01)
        assert p.step == pytest.approx(0.01)


class TestConstructors:
    def test_delta_total_probability(self):
        assert delta_pdf(0.3).total_probability == pytest.approx(1.0, rel=1e-6)

    def test_uniform_moments(self):
        p = uniform_pdf(0.4, step=1e-3)
        assert p.mean() == pytest.approx(0.0, abs=1e-9)
        assert p.std() == pytest.approx(0.4 / np.sqrt(12.0), rel=1e-2)
        assert p.peak_to_peak() == pytest.approx(0.4, abs=0.01)

    def test_gaussian_moments(self):
        p = gaussian_pdf(0.021, step=1e-3)
        assert p.mean() == pytest.approx(0.0, abs=1e-9)
        assert p.std() == pytest.approx(0.021, rel=1e-2)

    def test_gaussian_tail_probability(self):
        p = gaussian_pdf(1.0, step=1e-3)
        # P(X > 3 sigma) ~ 1.35e-3
        assert p.probability_above(3.0) == pytest.approx(1.35e-3, rel=0.05)

    def test_sinusoidal_moments(self):
        p = sinusoidal_pdf(1.0, step=1e-3)
        # A sinusoid of pp 1.0 (amplitude 0.5) has rms 0.3536.
        assert p.std() == pytest.approx(0.5 / np.sqrt(2.0), rel=1e-2)
        assert p.probability_above(0.51) == pytest.approx(0.0, abs=1e-9)

    def test_sinusoidal_is_bathtub_shaped(self):
        p = sinusoidal_pdf(1.0, step=1e-3)
        centre_density = p.density[np.argmin(np.abs(p.grid))]
        edge_density = p.density[np.argmin(np.abs(p.grid - 0.45))]
        assert edge_density > centre_density

    def test_dual_dirac_two_impulses(self):
        p = dual_dirac_pdf(0.2, step=1e-3)
        assert p.total_probability == pytest.approx(1.0, rel=1e-6)
        assert p.std() == pytest.approx(0.1, rel=0.05)

    def test_zero_width_collapses_to_delta(self):
        assert uniform_pdf(0.0).std() == pytest.approx(0.0, abs=1e-6)
        assert sinusoidal_pdf(0.0).std() == pytest.approx(0.0, abs=1e-6)
        assert gaussian_pdf(0.0).std() == pytest.approx(0.0, abs=1e-6)


class TestProbabilities:
    def test_probability_below_and_above_are_complementary(self):
        p = gaussian_pdf(0.1, step=1e-3)
        assert p.probability_below(0.05) + p.probability_above(0.05) == pytest.approx(1.0, abs=1e-6)

    def test_probability_below_far_left_is_zero(self):
        assert gaussian_pdf(0.1).probability_below(-10.0) == 0.0

    def test_probability_above_far_right_is_zero(self):
        assert gaussian_pdf(0.1).probability_above(10.0) == 0.0

    def test_uniform_cdf_midpoint(self):
        p = uniform_pdf(0.4, step=1e-3)
        assert p.probability_below(0.0) == pytest.approx(0.5, abs=0.01)
        assert p.probability_below(0.1) == pytest.approx(0.75, abs=0.01)


class TestTransformations:
    def test_shift_moves_mean(self):
        p = gaussian_pdf(0.05).shifted(0.3)
        assert p.mean() == pytest.approx(0.3, abs=1e-3)

    def test_scale_changes_std(self):
        p = gaussian_pdf(0.05).scaled(2.0)
        assert p.std() == pytest.approx(0.1, rel=0.02)

    def test_negative_scale_mirrors(self):
        p = uniform_pdf(0.2, centre=0.1).scaled(-1.0)
        assert p.mean() == pytest.approx(-0.1, abs=2e-3)

    def test_scale_zero_rejected(self):
        with pytest.raises(ValueError):
            gaussian_pdf(0.05).scaled(0.0)

    def test_mirror_preserves_std(self):
        p = gaussian_pdf(0.07)
        assert p.mirrored().std() == pytest.approx(p.std(), rel=1e-6)


class TestConvolution:
    def test_convolution_adds_means(self):
        a = gaussian_pdf(0.02, centre=0.1)
        b = uniform_pdf(0.2, centre=-0.05)
        c = convolve_pdfs(a, b)
        assert c.mean() == pytest.approx(0.05, abs=2e-3)

    def test_convolution_adds_variances(self):
        a = gaussian_pdf(0.03)
        b = gaussian_pdf(0.04)
        c = a.convolve(b)
        assert c.std() == pytest.approx(0.05, rel=0.02)

    def test_convolution_normalised(self):
        c = uniform_pdf(0.4).convolve(gaussian_pdf(0.02))
        assert c.total_probability == pytest.approx(1.0, rel=1e-6)

    def test_gaussian_convolution_matches_analytic_tail(self):
        c = gaussian_pdf(0.03).convolve(gaussian_pdf(0.04))
        from scipy.stats import norm
        assert c.probability_above(0.2) == pytest.approx(norm.sf(0.2 / 0.05), rel=0.05)

    def test_mixed_resolution_convolution(self):
        a = gaussian_pdf(0.03, step=1e-3)
        b = gaussian_pdf(0.04, step=2e-3)
        assert a.convolve(b).std() == pytest.approx(0.05, rel=0.03)

    @given(st.floats(min_value=0.01, max_value=0.2),
           st.floats(min_value=0.01, max_value=0.2))
    @settings(max_examples=20, deadline=None)
    def test_variance_additivity_property(self, sigma_a, sigma_b):
        a = gaussian_pdf(sigma_a, step=2e-3)
        b = uniform_pdf(sigma_b, step=2e-3)
        combined = a.convolve(b)
        expected = np.sqrt(a.variance() + b.variance())
        assert combined.std() == pytest.approx(expected, rel=0.05)


class TestResampling:
    def test_resample_preserves_shape(self):
        p = gaussian_pdf(0.05, step=1e-3)
        grid = np.arange(-0.5, 0.5, 2e-3)
        q = p.resampled(grid)
        assert q.std() == pytest.approx(p.std(), rel=0.05)
        assert q.total_probability == pytest.approx(1.0, rel=1e-6)
