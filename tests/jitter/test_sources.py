"""Tests for time-domain jitter sources."""

import math

import numpy as np
import pytest

from repro.jitter import sources
from repro import units


def RNG(seed=0):
    return np.random.default_rng(seed)


class TestNoJitter:
    def test_zero_everything(self):
        source = sources.NoJitter()
        times = np.linspace(0.0, 1e-6, 100)
        assert np.all(source.displacement_ui(times, RNG()) == 0.0)
        assert source.rms_ui() == 0.0
        assert source.peak_to_peak_ui() == 0.0


class TestRandomJitter:
    def test_statistics_match_sigma(self):
        source = sources.RandomJitter(sigma_ui=0.02)
        displacement = source.displacement_ui(np.zeros(200000), RNG(1))
        assert displacement.std() == pytest.approx(0.02, rel=0.02)
        assert abs(displacement.mean()) < 1e-3

    def test_unbounded_peak_to_peak(self):
        assert sources.RandomJitter(0.02).peak_to_peak_ui() == math.inf

    def test_pdf_matches_time_domain(self):
        source = sources.RandomJitter(sigma_ui=0.02)
        assert source.pdf().std() == pytest.approx(0.02, rel=0.02)

    def test_table1_default(self):
        assert sources.RandomJitter().sigma_ui == pytest.approx(0.021)


class TestDeterministicJitter:
    def test_bounded_support(self):
        source = sources.DeterministicJitter(0.4)
        displacement = source.displacement_ui(np.zeros(100000), RNG(2))
        assert abs(displacement).max() <= 0.2
        assert displacement.std() == pytest.approx(0.4 / math.sqrt(12.0), rel=0.02)

    def test_peak_to_peak(self):
        assert sources.DeterministicJitter(0.4).peak_to_peak_ui() == pytest.approx(0.4)

    def test_rms_formula(self):
        assert sources.DeterministicJitter(0.4).rms_ui() == pytest.approx(
            units.peak_to_peak_to_rms_uniform(0.4))


class TestSinusoidalJitter:
    def test_displacement_follows_sine(self):
        source = sources.SinusoidalJitter(0.2, 10.0e6, phase_rad=0.0)
        quarter_period = 1.0 / (4.0 * 10.0e6)
        assert source.displacement_ui(np.array([quarter_period]), RNG())[0] == pytest.approx(0.1)
        assert source.displacement_ui(np.array([0.0]), RNG())[0] == pytest.approx(0.0, abs=1e-12)

    def test_bounded_amplitude(self):
        source = sources.SinusoidalJitter(0.3, 1.0e6)
        times = np.linspace(0.0, 1e-5, 10000)
        assert abs(source.displacement_ui(times, RNG())).max() <= 0.15 + 1e-12

    def test_rms(self):
        assert sources.SinusoidalJitter(0.2, 1e6).rms_ui() == pytest.approx(
            0.2 / (2.0 * math.sqrt(2.0)))

    def test_relative_amplitude_low_frequency_vanishes(self):
        source = sources.SinusoidalJitter(1.0, 1.0e3)
        assert source.relative_amplitude_over_gap_ui_pp(5.0) < 1e-4

    def test_relative_amplitude_peaks_at_half_bit_rate(self):
        source = sources.SinusoidalJitter(1.0, units.DEFAULT_BIT_RATE / 2.0)
        assert source.relative_amplitude_over_gap_ui_pp(1.0) == pytest.approx(2.0)

    def test_relative_amplitude_nulls_at_bit_rate(self):
        source = sources.SinusoidalJitter(1.0, units.DEFAULT_BIT_RATE)
        assert source.relative_amplitude_over_gap_ui_pp(1.0) == pytest.approx(0.0, abs=1e-9)

    def test_requires_positive_frequency(self):
        with pytest.raises(ValueError):
            sources.SinusoidalJitter(0.1, 0.0)


class TestBoundedUncorrelatedJitter:
    def test_clipped_to_bound(self):
        source = sources.BoundedUncorrelatedJitter(peak_to_peak_ui_pp=0.1, sigma_ui=0.2)
        displacement = source.displacement_ui(np.zeros(50000), RNG(3))
        assert abs(displacement).max() <= 0.05 + 1e-12

    def test_pdf_is_normalised(self):
        source = sources.BoundedUncorrelatedJitter(0.1, 0.03)
        assert source.pdf().total_probability == pytest.approx(1.0, rel=1e-6)

    def test_zero_sigma_gives_no_jitter(self):
        source = sources.BoundedUncorrelatedJitter(0.1, 0.0)
        assert np.all(source.displacement_ui(np.zeros(10), RNG()) == 0.0)


class TestCompositeJitter:
    def test_rms_adds_in_quadrature(self):
        composite = sources.CompositeJitter((
            sources.RandomJitter(0.03), sources.RandomJitter(0.04)))
        assert composite.rms_ui() == pytest.approx(0.05)

    def test_peak_to_peak_adds_linearly(self):
        composite = sources.CompositeJitter((
            sources.DeterministicJitter(0.3), sources.SinusoidalJitter(0.2, 1e6)))
        assert composite.peak_to_peak_ui() == pytest.approx(0.5)

    def test_displacement_is_sum(self):
        a = sources.SinusoidalJitter(0.2, 10e6)
        b = sources.SinusoidalJitter(0.1, 10e6)
        composite = sources.CompositeJitter((a, b))
        times = np.linspace(0, 1e-7, 50)
        np.testing.assert_allclose(
            composite.displacement_ui(times, RNG()),
            a.displacement_ui(times, RNG()) + b.displacement_ui(times, RNG()))

    def test_rejects_non_sources(self):
        with pytest.raises(TypeError):
            sources.CompositeJitter((1.0,))

    def test_composite_pdf_variance(self):
        composite = sources.CompositeJitter((
            sources.DeterministicJitter(0.4), sources.RandomJitter(0.021)))
        expected = math.sqrt((0.4 ** 2) / 12.0 + 0.021 ** 2)
        assert composite.pdf().std() == pytest.approx(expected, rel=0.03)


class TestTable1Factory:
    def test_without_sj(self):
        composite = sources.table1_jitter_sources()
        assert len(composite.sources) == 2

    def test_with_sj(self):
        composite = sources.table1_jitter_sources(0.1, 250e6)
        assert len(composite.sources) == 3
        # The Gaussian component is unbounded, so the composite peak-to-peak is
        # unbounded too; the bounded components alone sum to 0.4 + 0.1 UI.
        assert composite.peak_to_peak_ui() == math.inf
        bounded = sum(s.peak_to_peak_ui() for s in composite.sources
                      if not isinstance(s, sources.RandomJitter))
        assert bounded == pytest.approx(0.5)
