"""Tests for open-loop oscillator jitter accumulation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.jitter import accumulation as acc


class TestAccumulationLaw:
    def test_sqrt_scaling(self):
        kappa = 1.0e-8
        sigma_1 = acc.accumulated_sigma_seconds(kappa, 1.0e-9)
        sigma_4 = acc.accumulated_sigma_seconds(kappa, 4.0e-9)
        assert sigma_4 == pytest.approx(2.0 * sigma_1)

    def test_zero_time_gives_zero(self):
        assert acc.accumulated_sigma_seconds(1e-8, 0.0) == 0.0

    def test_ui_referred_accumulation(self):
        kappa = acc.kappa_for_ui_budget(0.01, 5)
        assert acc.accumulated_sigma_ui(kappa, 5.0) == pytest.approx(0.01, rel=1e-9)

    @given(st.floats(min_value=1e-10, max_value=1e-6),
           st.floats(min_value=1e-12, max_value=1e-6))
    @settings(max_examples=30, deadline=None)
    def test_accumulation_monotonic_in_time(self, kappa, elapsed):
        assert acc.accumulated_sigma_seconds(kappa, 2 * elapsed) >= \
            acc.accumulated_sigma_seconds(kappa, elapsed)


class TestKappaConversions:
    def test_per_cycle_round_trip(self):
        kappa = acc.kappa_from_per_cycle_sigma(1.0e-13, 400.0e-12)
        assert acc.per_cycle_sigma_from_kappa(kappa, 400.0e-12) == pytest.approx(1.0e-13)

    def test_paper_budget_value(self):
        # 0.01 UI rms over 5 bit periods at 2.5 Gbit/s: sigma = 4 ps over 2 ns.
        kappa = acc.kappa_for_ui_budget()
        assert kappa == pytest.approx(4.0e-12 / math.sqrt(2.0e-9), rel=1e-6)

    def test_budget_round_trip(self):
        kappa = acc.kappa_for_ui_budget(0.02, 7)
        assert acc.ui_budget_from_kappa(kappa, 7) == pytest.approx(0.02, rel=1e-9)


class TestOscillatorJitterBudget:
    def test_paper_defaults(self):
        budget = acc.OscillatorJitterBudget()
        assert budget.budget_ui_rms == pytest.approx(acc.PAPER_CKJ_UI_RMS)
        assert budget.cid == acc.PAPER_WORST_CASE_CID

    def test_kappa_max_meets_budget(self):
        budget = acc.OscillatorJitterBudget()
        assert budget.satisfied_by(budget.kappa_max)
        assert budget.satisfied_by(budget.kappa_max * 0.5)
        assert not budget.satisfied_by(budget.kappa_max * 1.5)

    def test_sigma_per_bit(self):
        budget = acc.OscillatorJitterBudget(budget_ui_rms=0.01, cid=5)
        assert budget.sigma_per_bit_ui == pytest.approx(0.01 / math.sqrt(5.0))

    def test_sigma_at_position_grows_as_sqrt(self):
        budget = acc.OscillatorJitterBudget()
        sigmas = budget.sigma_at_position_ui(np.array([1, 4]))
        assert sigmas[1] == pytest.approx(2.0 * sigmas[0])

    def test_sigma_at_worst_position_equals_budget(self):
        budget = acc.OscillatorJitterBudget(budget_ui_rms=0.01, cid=5)
        assert float(budget.sigma_at_position_ui(5)) == pytest.approx(0.01)

    def test_positions_must_be_positive(self):
        with pytest.raises(ValueError):
            acc.OscillatorJitterBudget().sigma_at_position_ui(0)

    def test_higher_bit_rate_tightens_kappa(self):
        slow = acc.OscillatorJitterBudget(bit_rate_hz=2.5e9)
        fast = acc.OscillatorJitterBudget(bit_rate_hz=10.0e9)
        assert fast.kappa_max < slow.kappa_max
