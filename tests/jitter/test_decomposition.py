"""Tests for jitter decomposition and combination."""

import numpy as np
import pytest

from repro.jitter import decomposition as dec


class TestQScale:
    def test_value_at_1e_12(self):
        # The classic dual-Dirac Q value at BER 1e-12 is ~7.03.
        assert dec.q_scale(1.0e-12) == pytest.approx(7.03, rel=0.01)

    def test_monotonic_in_ber(self):
        assert dec.q_scale(1.0e-15) > dec.q_scale(1.0e-12) > dec.q_scale(1.0e-9)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            dec.q_scale(0.0)


class TestTotalJitter:
    def test_table1_style_combination(self):
        # DJ 0.4 UIpp and RJ 0.021 UIrms give TJ ~ 0.4 + 2*7.03*0.021 ~ 0.695 UI.
        assert dec.total_jitter_pp(0.4, 0.021) == pytest.approx(0.695, abs=0.01)

    def test_rj_only(self):
        assert dec.total_jitter_pp(0.0, 0.021, ber=1e-12) == pytest.approx(0.295, abs=0.01)

    def test_combine_rms(self):
        assert dec.combine_rms(0.3, 0.4) == pytest.approx(0.5)

    def test_combine_deterministic(self):
        assert dec.combine_deterministic(0.1, 0.2, 0.05) == pytest.approx(0.35)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            dec.combine_rms(-0.1)


class TestDualDiracDecomposition:
    def test_pure_gaussian_population(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(0.0, 0.02, size=200000)
        result = dec.decompose_dual_dirac(samples)
        assert result.rj_rms_ui == pytest.approx(0.02, rel=0.1)
        assert result.dj_pp_ui < 0.01

    def test_dual_dirac_plus_gaussian(self):
        rng = np.random.default_rng(1)
        n = 200000
        dirac = np.where(rng.random(n) < 0.5, -0.1, 0.1)
        samples = dirac + rng.normal(0.0, 0.02, size=n)
        result = dec.decompose_dual_dirac(samples)
        assert result.dj_pp_ui == pytest.approx(0.2, rel=0.15)
        assert result.rj_rms_ui == pytest.approx(0.02, rel=0.2)

    def test_total_jitter_of_decomposition(self):
        decomposition = dec.JitterDecomposition(dj_pp_ui=0.2, rj_rms_ui=0.02)
        assert decomposition.total_jitter_pp_ui(1e-12) == pytest.approx(
            0.2 + 2 * dec.q_scale(1e-12) * 0.02)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            dec.decompose_dual_dirac(np.zeros(10))

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            dec.decompose_dual_dirac(np.random.default_rng(0).normal(size=1000),
                                     tail_quantile=0.2)

    def test_estimate_wrapper(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(0.0, 0.05, size=5000)
        result = dec.estimate_rj_dj_from_samples(samples)
        assert result.rj_rms_ui == pytest.approx(0.05, rel=0.2)
