"""Tests for the gate-level gated ring oscillator (GCCO)."""

import numpy as np
import pytest

from repro.events.kernel import Simulator
from repro.events.signal import Signal
from repro.events.waveform import WaveformRecorder
from repro.gates.delay_line import DelayLine
from repro.gates.cml import CmlTiming
from repro.gates.ring import GatedRingOscillator, GccoParameters
from repro.analysis.timing import measure_frequency, period_jitter


def build_oscillator(gate_value=1, parameters=None, control_current=None, seed=0):
    simulator = Simulator()
    gate = Signal(simulator, "edet", initial=gate_value)
    oscillator = GatedRingOscillator(simulator, "osc", gate, parameters,
                                     control_current_a=control_current,
                                     rng=np.random.default_rng(seed))
    recorder = WaveformRecorder()
    nominal = recorder.watch(oscillator.clock_nominal, "nominal")
    improved = recorder.watch(oscillator.clock_improved, "improved")
    return simulator, gate, oscillator, nominal, improved


class TestParameters:
    def test_frequency_at_midpoint(self):
        parameters = GccoParameters()
        assert parameters.frequency_at(parameters.control_current_midpoint_a) == \
            pytest.approx(2.5e9)

    def test_cco_gain(self):
        parameters = GccoParameters()
        up = parameters.frequency_at(parameters.control_current_midpoint_a + 10e-6)
        assert up == pytest.approx(2.5e9 + 2.0e12 * 10e-6)

    def test_stage_delay(self):
        parameters = GccoParameters()
        assert parameters.stage_delay_at(parameters.control_current_midpoint_a) == \
            pytest.approx(50.0e-12)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            GccoParameters().frequency_at(-10.0)

    def test_too_few_stages_rejected(self):
        with pytest.raises(ValueError):
            GccoParameters(n_stages=2)


class TestFreeRunning:
    def test_oscillates_at_nominal_frequency(self):
        simulator, _gate, osc, nominal, _ = build_oscillator()
        simulator.run_until(200.0e-9)
        edges = nominal.edges("rising")
        assert edges.size > 100
        assert measure_frequency(edges[10:]) == pytest.approx(2.5e9, rel=0.01)

    def test_period_is_eight_stage_delays(self):
        simulator, _gate, osc, nominal, _ = build_oscillator()
        simulator.run_until(100.0e-9)
        _, stats = period_jitter(nominal.edges("rising")[5:])
        assert stats.mean_s == pytest.approx(8 * 50.0e-12, rel=0.01)

    def test_control_current_tunes_frequency(self):
        parameters = GccoParameters()
        target = 2.375e9
        control = parameters.control_current_midpoint_a + (
            target - 2.5e9) / parameters.gain_hz_per_a
        simulator, _gate, osc, nominal, _ = build_oscillator(control_current=control)
        assert osc.oscillation_frequency_hz == pytest.approx(target)
        simulator.run_until(200.0e-9)
        assert measure_frequency(nominal.edges("rising")[10:]) == pytest.approx(target, rel=0.01)

    def test_jitter_accumulates_on_periods(self):
        parameters = GccoParameters(jitter_sigma_fraction=0.02)
        simulator, _gate, osc, nominal, _ = build_oscillator(parameters=parameters, seed=3)
        simulator.run_until(400.0e-9)
        _, stats = period_jitter(nominal.edges("rising")[5:])
        assert stats.rms_s > 1.0e-12  # visible period jitter

    def test_set_control_current_at_runtime(self):
        simulator, _gate, osc, nominal, _ = build_oscillator()
        simulator.run_until(50.0e-9)
        osc.set_control_current(osc.parameters.control_current_midpoint_a + 50e-6)
        assert osc.oscillation_frequency_hz > 2.5e9


class TestGating:
    def test_gate_low_freezes_oscillator(self):
        simulator, gate, osc, nominal, _ = build_oscillator()
        simulator.run_until(20.0e-9)
        gate.force(0)
        simulator.run_until(22.0e-9)
        edges_before = nominal.edges("any").size
        simulator.run_until(30.0e-9)
        edges_after = nominal.edges("any").size
        # After the freeze has propagated no further clock activity occurs.
        assert edges_after <= edges_before + 1

    def test_release_rephases_clock(self):
        """The first nominal rising edge comes T/2 after the gate is released."""
        simulator, gate, osc, nominal, _ = build_oscillator()
        simulator.run_until(20.0e-9)
        gate.force(0)
        simulator.run_until(21.0e-9)
        release_time = 21.5e-9
        simulator.call_at(release_time, lambda: gate.force(1))
        simulator.run_until(23.0e-9)
        rising = nominal.edges("rising")
        first_after_release = rising[rising > release_time][0]
        assert first_after_release - release_time == pytest.approx(200.0e-12, rel=0.02)

    def test_improved_tap_is_one_stage_earlier(self):
        """The improved tap rises T/8 before the nominal tap (paper Figure 15)."""
        simulator, gate, osc, nominal, improved = build_oscillator()
        simulator.run_until(20.0e-9)
        gate.force(0)
        simulator.run_until(21.0e-9)
        release_time = 21.5e-9
        simulator.call_at(release_time, lambda: gate.force(1))
        simulator.run_until(23.0e-9)
        nominal_edge = nominal.edges("rising")
        improved_edge = improved.edges("rising")
        first_nominal = nominal_edge[nominal_edge > release_time][0]
        first_improved = improved_edge[improved_edge > release_time][0]
        assert first_nominal - first_improved == pytest.approx(50.0e-12, rel=0.05)


class TestDelayLine:
    def test_total_delay(self):
        simulator = Simulator()
        data = Signal(simulator, "d", initial=0)
        line = DelayLine(simulator, "dl", data, 3, CmlTiming(100.0e-12))
        assert line.nominal_delay_s == pytest.approx(300.0e-12)
        data.force(1)
        simulator.run()
        assert simulator.now == pytest.approx(300.0e-12)
        assert line.output.value == 1

    def test_taps_expose_intermediate_nodes(self):
        simulator = Simulator()
        data = Signal(simulator, "d", initial=0)
        line = DelayLine(simulator, "dl", data, 4, CmlTiming(50.0e-12))
        assert len(line.taps) == 4

    def test_requires_at_least_one_cell(self):
        simulator = Simulator()
        data = Signal(simulator, "d", initial=0)
        with pytest.raises(ValueError):
            DelayLine(simulator, "dl", data, 0, CmlTiming(50.0e-12))
