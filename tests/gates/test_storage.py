"""Tests for the CML latch and flip-flop."""

import numpy as np

from repro.events.kernel import Simulator
from repro.events.signal import Signal
from repro.gates.cml import CmlTiming
from repro.gates.storage import CmlFlipFlop, CmlLatch

DELAY = 20.0e-12


class TestLatch:
    def test_transparent_when_enabled(self):
        simulator = Simulator()
        data = Signal(simulator, "d", initial=0)
        enable = Signal(simulator, "en", initial=1)
        output = Signal(simulator, "q", initial=0)
        CmlLatch("latch", data, enable, output, CmlTiming(DELAY))
        data.force(1)
        simulator.run()
        assert output.value == 1

    def test_holds_when_disabled(self):
        simulator = Simulator()
        data = Signal(simulator, "d", initial=0)
        enable = Signal(simulator, "en", initial=1)
        output = Signal(simulator, "q", initial=0)
        CmlLatch("latch", data, enable, output, CmlTiming(DELAY))
        data.force(1)              # transparent: output follows
        simulator.run()
        assert output.value == 1
        enable.force(0)            # now opaque
        data.force(0)
        simulator.run()
        assert output.value == 1   # held value


class TestFlipFlop:
    def _build(self):
        simulator = Simulator()
        data = Signal(simulator, "d", initial=0)
        clock = Signal(simulator, "ck", initial=0)
        output = Signal(simulator, "q", initial=0)
        ff = CmlFlipFlop(simulator, "ff", data, clock, output, CmlTiming(DELAY))
        return simulator, data, clock, output, ff

    def test_samples_on_rising_edge(self):
        simulator, data, clock, output, ff = self._build()
        data.force(1)
        clock.assign(1, 1.0e-9)
        simulator.run()
        assert output.value == 1
        assert ff.decision_values().tolist() == [1]

    def test_ignores_data_changes_while_clock_high(self):
        simulator, data, clock, output, ff = self._build()
        data.force(1)
        clock.assign(1, 1.0e-9)
        simulator.run()
        data.force(0)         # clock still high: master opaque
        simulator.run()
        assert output.value == 1

    def test_tracks_data_between_clock_edges(self):
        simulator, data, clock, output, ff = self._build()
        clock.assign(1, 1.0e-9)
        clock.assign(0, 2.0e-9)
        simulator.run()
        data.force(1)          # clock low: master transparent again
        clock.assign(1, 1.0e-9)
        simulator.run()
        assert output.value == 1
        assert ff.decision_values().tolist() == [0, 1]

    def test_decision_times_recorded(self):
        simulator, data, clock, output, ff = self._build()
        for cycle in range(4):
            clock.assign(1, (cycle + 0.5) * 1.0e-9)
            clock.assign(0, (cycle + 1.0) * 1.0e-9)
        simulator.run()
        times = ff.decision_times()
        assert times.size == 4
        np.testing.assert_allclose(np.diff(times), 1.0e-9)

    def test_clock_to_q_delay(self):
        simulator, data, clock, output, ff = self._build()
        data.force(1)
        clock.assign(1, 1.0e-9)
        simulator.run_until(1.0e-9 + 0.5 * DELAY)
        assert output.value == 0
        simulator.run_until(1.0e-9 + 1.5 * DELAY)
        assert output.value == 1
