"""Tests for the combinational CML gate models."""

import numpy as np
import pytest

from repro.events.kernel import Simulator
from repro.events.signal import Signal
from repro.events.waveform import WaveformRecorder
from repro.gates.cml import CmlGate, CmlTiming
from repro.gates.logic import (
    And2Gate,
    BufferGate,
    InverterGate,
    Mux2Gate,
    Nand2Gate,
    Or2Gate,
    Xnor2Gate,
    Xor2Gate,
)

DELAY = 25.0e-12


def setup(n_inputs=2):
    simulator = Simulator()
    inputs = [Signal(simulator, f"in{i}", initial=0) for i in range(n_inputs)]
    output = Signal(simulator, "out", initial=0)
    return simulator, inputs, output


class TestTiming:
    def test_delay_for_input_with_skew(self):
        timing = CmlTiming(nominal_delay_s=DELAY, input_skew_s=(0.0, 10.0e-12))
        assert timing.delay_for_input(0) == pytest.approx(DELAY)
        assert timing.delay_for_input(1) == pytest.approx(DELAY + 10.0e-12)
        assert timing.delay_for_input(5) == pytest.approx(DELAY)

    def test_rejects_non_positive_delay(self):
        with pytest.raises(ValueError):
            CmlTiming(nominal_delay_s=0.0)

    def test_with_delay_copy(self):
        timing = CmlTiming(nominal_delay_s=DELAY, jitter_sigma_fraction=0.01)
        copy = timing.with_delay(2 * DELAY)
        assert copy.nominal_delay_s == pytest.approx(2 * DELAY)
        assert copy.jitter_sigma_fraction == pytest.approx(0.01)


class TestPropagation:
    def test_buffer_propagates_with_delay(self):
        simulator, (data,), output = setup(1)
        BufferGate("buf", data, output, CmlTiming(DELAY))
        data.force(1)
        simulator.run_until(DELAY * 0.9)
        assert output.value == 0
        simulator.run_until(DELAY * 1.1)
        assert output.value == 1

    def test_inverter(self):
        simulator, (data,), output = setup(1)
        InverterGate("inv", data, output, CmlTiming(DELAY))
        data.force(1)
        simulator.run()
        assert output.value == 0

    def test_and_gate_truth_table(self):
        for a, b, expected in [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)]:
            simulator, (in_a, in_b), output = setup(2)
            gate = And2Gate("and", in_a, in_b, output, CmlTiming(DELAY))
            in_a.force(a)
            in_b.force(b)
            gate.settle()
            simulator.run()
            assert output.value == expected, (a, b)

    def test_nand_or_xor_xnor(self):
        cases = [
            (Nand2Gate, [(0, 0, 1), (1, 1, 0), (1, 0, 1)]),
            (Or2Gate, [(0, 0, 0), (1, 0, 1), (1, 1, 1)]),
            (Xor2Gate, [(0, 0, 0), (1, 0, 1), (1, 1, 0)]),
            (Xnor2Gate, [(0, 0, 1), (1, 0, 0), (1, 1, 1)]),
        ]
        for gate_class, table in cases:
            for a, b, expected in table:
                simulator, (in_a, in_b), output = setup(2)
                gate = gate_class("g", in_a, in_b, output, CmlTiming(DELAY))
                in_a.force(a)
                in_b.force(b)
                gate.settle()
                simulator.run()
                assert output.value == expected, (gate_class.__name__, a, b)

    def test_mux(self):
        for sel, expected in [(0, 1), (1, 0)]:
            simulator, (in_a, in_b), output = setup(2)
            select = Signal(simulator, "sel", initial=0)
            gate = Mux2Gate("mux", in_a, in_b, select, output, CmlTiming(DELAY))
            in_a.force(1)
            in_b.force(0)
            select.force(sel)
            gate.settle()
            simulator.run()
            assert output.value == expected

    def test_per_input_skew_changes_delay(self):
        simulator, (in_a, in_b), output = setup(2)
        timing = CmlTiming(DELAY, input_skew_s=(0.0, 15.0e-12))
        And2Gate("and", in_a, in_b, output, timing)
        in_a.force(1)
        simulator.run()
        recorder = WaveformRecorder()
        trace = recorder.watch(output)
        # Event arriving on the slower (stacked) input B.
        event_time = simulator.now
        in_b.force(1)
        simulator.run()
        rising = trace.edges("rising")
        assert rising.size == 1
        # The output toggles one nominal delay plus the input-B skew later.
        assert rising[0] - event_time == pytest.approx(DELAY + 15.0e-12, abs=1e-15)

    def test_jitter_spreads_delay(self):
        delays = []
        for seed in range(40):
            simulator, (data,), output = setup(1)
            timing = CmlTiming(DELAY, jitter_sigma_fraction=0.05)
            BufferGate("buf", data, output, timing,
                       rng=np.random.default_rng(seed))
            data.force(1)
            simulator.run()
            delays.append(simulator.now)
        spread = np.std(delays)
        assert spread == pytest.approx(0.05 * DELAY, rel=0.5)

    def test_delay_scale_callable(self):
        simulator, (data,), output = setup(1)
        BufferGate("buf", data, output, CmlTiming(DELAY), delay_scale=lambda: 2.0)
        data.force(1)
        simulator.run()
        assert simulator.now == pytest.approx(2.0 * DELAY)

    def test_event_counter(self):
        simulator, (data,), output = setup(1)
        gate = BufferGate("buf", data, output, CmlTiming(DELAY))
        data.force(1)
        data.force(0)
        simulator.run()
        assert gate.event_count == 2

    def test_gate_requires_inputs(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            CmlGate("bad", [], Signal(simulator, "o"), lambda v: 0, CmlTiming(DELAY))

    def test_settle_forces_output(self):
        simulator, (in_a, in_b), output = setup(2)
        in_a.force(1)
        in_b.force(1)
        gate = And2Gate("and", in_a, in_b, output, CmlTiming(DELAY))
        gate.settle()
        assert output.value == 1
