"""Tests for transport-delay signals."""

import pytest

from repro.events.kernel import Simulator
from repro.events.signal import Edge, Signal, bus


class TestAssignment:
    def test_initial_value(self):
        simulator = Simulator()
        assert Signal(simulator, "s", initial=1).value == 1

    def test_delayed_assignment(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        signal.assign(1, 5.0e-9)
        simulator.run_until(4.0e-9)
        assert signal.value == 0
        simulator.run_until(6.0e-9)
        assert signal.value == 1

    def test_no_event_for_same_value(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=1)
        events = []
        signal.subscribe(lambda s, t: events.append(t))
        signal.assign(1, 1.0e-9)
        simulator.run()
        assert events == []

    def test_transport_semantics_cancel_later_transactions(self):
        # Scheduling an earlier transaction cancels already-pending later ones,
        # exactly as VHDL transport assignments behave.
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        signal.assign(1, 10.0e-9)
        signal.assign(0, 5.0e-9)   # earlier: cancels the later '1'
        simulator.run()
        assert signal.value == 0

    def test_transport_preserves_earlier_transactions(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        history = []
        signal.subscribe(lambda s, t: history.append((t, s.value)))
        signal.assign(1, 1.0e-9)
        signal.assign(0, 3.0e-9)
        simulator.run()
        assert history == [(pytest.approx(1.0e-9), 1), (pytest.approx(3.0e-9), 0)]

    def test_force_is_immediate(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        signal.force(1)
        assert signal.value == 1

    def test_pending_transactions_inspection(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        signal.assign(1, 2.0e-9)
        pending = signal.pending_transactions()
        assert len(pending) == 1
        assert pending[0][1] == 1

    def test_last_event_time(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        signal.assign(1, 2.0e-9)
        simulator.run()
        assert signal.last_event_time_s == pytest.approx(2.0e-9)


class TestSubscription:
    def test_unsubscribe(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        calls = []
        unsubscribe = signal.subscribe(lambda s, t: calls.append(t))
        signal.assign(1, 1.0e-9)
        simulator.run()
        unsubscribe()
        signal.assign(0, 1.0e-9)
        simulator.run()
        assert len(calls) == 1

    def test_edge_filtering(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        rising, falling = [], []
        signal.on_edge(lambda s, t: rising.append(t), Edge.RISING)
        signal.on_edge(lambda s, t: falling.append(t), Edge.FALLING)
        signal.assign(1, 1.0e-9)
        signal.assign(0, 2.0e-9)
        signal.assign(1, 3.0e-9)
        simulator.run()
        assert len(rising) == 2
        assert len(falling) == 1

    def test_unknown_polarity_rejected(self):
        simulator = Simulator()
        signal = Signal(simulator, "s")
        with pytest.raises(Exception):
            signal.on_edge(lambda s, t: None, "sideways")


class TestBus:
    def test_bus_creation(self):
        simulator = Simulator()
        signals = bus(simulator, "d", 4, initial=1)
        assert len(signals) == 4
        assert signals[2].name == "d[2]"
        assert all(s.value == 1 for s in signals)
