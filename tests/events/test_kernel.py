"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.events.kernel import SimulationError, Simulator, WaitFor, WaitOn
from repro.events.signal import Signal


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_execute_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.call_after(2.0e-9, lambda: order.append("late"))
        simulator.call_after(1.0e-9, lambda: order.append("early"))
        simulator.run()
        assert order == ["early", "late"]

    def test_ties_execute_in_scheduling_order(self):
        simulator = Simulator()
        order = []
        simulator.call_after(1.0e-9, lambda: order.append("first"))
        simulator.call_after(1.0e-9, lambda: order.append("second"))
        simulator.run()
        assert order == ["first", "second"]

    def test_cannot_schedule_in_the_past(self):
        simulator = Simulator()
        simulator.call_after(1.0e-9, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.call_at(0.5e-9, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().call_after(-1.0e-9, lambda: None)

    def test_run_until_stops_at_horizon(self):
        simulator = Simulator()
        fired = []
        simulator.call_after(1.0e-9, lambda: fired.append(1))
        simulator.call_after(5.0e-9, lambda: fired.append(2))
        simulator.run_until(2.0e-9)
        assert fired == [1]
        assert simulator.now == pytest.approx(2.0e-9)
        assert simulator.pending_events() == 1

    def test_run_until_event_limit(self):
        simulator = Simulator()

        def reschedule():
            simulator.call_after(0.0, reschedule)

        simulator.call_after(0.0, reschedule)
        with pytest.raises(SimulationError):
            simulator.run_until(1.0e-9, max_events=100)

    def test_nested_scheduling_from_callbacks(self):
        simulator = Simulator()
        hits = []

        def outer():
            hits.append(simulator.now)
            simulator.call_after(1.0e-9, inner)

        def inner():
            hits.append(simulator.now)

        simulator.call_after(1.0e-9, outer)
        simulator.run()
        assert hits == [pytest.approx(1.0e-9), pytest.approx(2.0e-9)]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False


class TestProcesses:
    def test_wait_for_delays(self):
        simulator = Simulator()
        times = []

        def process():
            times.append(simulator.now)
            yield WaitFor(3.0e-9)
            times.append(simulator.now)
            yield WaitFor(2.0e-9)
            times.append(simulator.now)

        simulator.add_process(process)
        simulator.run()
        assert times == [pytest.approx(0.0), pytest.approx(3.0e-9), pytest.approx(5.0e-9)]

    def test_wait_on_signal(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        seen = []

        def watcher():
            yield WaitOn(signal)
            seen.append((simulator.now, signal.value))

        simulator.add_process(watcher)
        simulator.call_after(2.0e-9, lambda: signal.force(1))
        simulator.run()
        assert len(seen) == 1
        assert seen[0][1] == 1

    def test_process_finishes(self):
        simulator = Simulator()

        def process():
            yield WaitFor(1.0e-9)

        handle = simulator.add_process(process)
        simulator.run()
        assert handle.finished

    def test_invalid_yield_raises(self):
        simulator = Simulator()

        def process():
            yield 42

        simulator.add_process(process)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_wait_on_requires_signal(self):
        with pytest.raises(ValueError):
            WaitOn()

    def test_wait_for_rejects_negative(self):
        with pytest.raises(ValueError):
            WaitFor(-1.0)
