"""Tests for waveform recording."""

import numpy as np
import pytest

from repro.events.kernel import Simulator
from repro.events.signal import Signal
from repro.events.waveform import Trace, WaveformRecorder


def make_clock(simulator, signal, period, cycles):
    for index in range(cycles):
        signal.assign(1, index * period + period / 2.0)
        signal.assign(0, (index + 1) * period)


class TestTrace:
    def test_edges_extraction(self):
        simulator = Simulator()
        signal = Signal(simulator, "clk", initial=0)
        recorder = WaveformRecorder()
        trace = recorder.watch(signal)
        make_clock(simulator, signal, 1.0e-9, 3)
        simulator.run()
        assert trace.edges("rising").size == 3
        assert trace.edges("falling").size == 3
        assert trace.edges("any").size == 6

    def test_initial_value_is_not_an_edge(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=1)
        recorder = WaveformRecorder()
        trace = recorder.watch(signal)
        simulator.run()
        assert trace.edges("any").size == 0

    def test_value_at_and_sample(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        trace = WaveformRecorder().watch(signal)
        signal.assign(1, 1.0e-9)
        signal.assign(0, 3.0e-9)
        simulator.run()
        assert trace.value_at(0.5e-9) == 0
        assert trace.value_at(2.0e-9) == 1
        assert trace.value_at(4.0e-9) == 0
        np.testing.assert_array_equal(trace.sample(np.array([0.5e-9, 2e-9, 4e-9])),
                                      [0, 1, 0])

    def test_intervals(self):
        simulator = Simulator()
        signal = Signal(simulator, "clk", initial=0)
        trace = WaveformRecorder().watch(signal)
        make_clock(simulator, signal, 2.0e-9, 4)
        simulator.run()
        np.testing.assert_allclose(trace.intervals("rising"), 2.0e-9)

    def test_empty_trace_value_raises(self):
        with pytest.raises(ValueError):
            Trace("empty").value_at(0.0)

    def test_unknown_polarity_rejected(self):
        trace = Trace("t", [0.0, 1.0], [0, 1])
        with pytest.raises(ValueError):
            trace.edges("diagonal")


class TestRecorder:
    def test_watch_is_idempotent(self):
        simulator = Simulator()
        signal = Signal(simulator, "s", initial=0)
        recorder = WaveformRecorder()
        first = recorder.watch(signal)
        second = recorder.watch(signal)
        assert first is second

    def test_lookup_by_name(self):
        simulator = Simulator()
        signal = Signal(simulator, "data", initial=0)
        recorder = WaveformRecorder()
        recorder.watch(signal, "alias")
        assert "alias" in recorder
        assert recorder["alias"].name == "alias"
        assert recorder.names() == ["alias"]

    def test_missing_trace_raises(self):
        with pytest.raises(KeyError):
            WaveformRecorder().trace("nope")
