"""Tests for the combined compliance report."""

import numpy as np

from repro.specs.compliance import check_compliance
from repro.specs.infiniband import infiniband_mask
from repro.statistical.ftol import FtolResult
from repro.statistical.jtol import JtolCurve, JtolPoint


def make_curve(frequencies, amplitudes, ber=1e-13):
    points = tuple(JtolPoint(f, a, ber) for f, a in zip(frequencies, amplitudes))
    return JtolCurve(points=points, target_ber=1e-12)


class TestComplianceReport:
    def test_all_pass(self):
        mask = infiniband_mask()
        frequencies = mask.frequencies_for_sweep(points_per_decade=2)
        amplitudes = np.asarray(mask.amplitude_ui_pp(frequencies)) + 0.5
        report = check_compliance(
            make_curve(frequencies, amplitudes), mask,
            FtolResult(positive_tolerance=0.01, negative_tolerance=-0.01,
                       target_ber=1e-12),
            power_mw_per_gbps=2.0,
        )
        assert report.jtol_pass
        assert report.ftol_pass
        assert report.power_pass
        assert report.overall_pass
        assert report.jtol_worst_margin_ui >= 0.49

    def test_jtol_failure_detected(self):
        mask = infiniband_mask()
        frequencies = mask.frequencies_for_sweep(points_per_decade=2)
        amplitudes = np.full(frequencies.size, 0.01)
        report = check_compliance(
            make_curve(frequencies, amplitudes), mask,
            FtolResult(0.01, -0.01, 1e-12), power_mw_per_gbps=2.0)
        assert not report.jtol_pass
        assert not report.overall_pass

    def test_ftol_failure_detected(self):
        mask = infiniband_mask()
        frequencies = mask.frequencies_for_sweep(points_per_decade=2)
        amplitudes = np.asarray(mask.amplitude_ui_pp(frequencies)) + 0.5
        report = check_compliance(
            make_curve(frequencies, amplitudes), mask,
            FtolResult(positive_tolerance=50e-6, negative_tolerance=-50e-6,
                       target_ber=1e-12),
            power_mw_per_gbps=2.0)
        assert not report.ftol_pass

    def test_power_failure_detected(self):
        mask = infiniband_mask()
        frequencies = mask.frequencies_for_sweep(points_per_decade=2)
        amplitudes = np.asarray(mask.amplitude_ui_pp(frequencies)) + 0.5
        report = check_compliance(
            make_curve(frequencies, amplitudes), mask,
            FtolResult(0.01, -0.01, 1e-12), power_mw_per_gbps=7.5)
        assert not report.power_pass
        assert "FAIL" in "\n".join(report.summary_lines())

    def test_summary_lines_format(self):
        mask = infiniband_mask()
        frequencies = mask.frequencies_for_sweep(points_per_decade=2)
        amplitudes = np.asarray(mask.amplitude_ui_pp(frequencies)) + 0.5
        report = check_compliance(
            make_curve(frequencies, amplitudes), mask,
            FtolResult(0.01, -0.01, 1e-12), power_mw_per_gbps=2.0)
        lines = report.summary_lines()
        assert len(lines) == 4
        assert lines[-1].startswith("Overall")
