"""Tests for the InfiniBand jitter-tolerance mask."""

import numpy as np
import pytest

from repro.specs.infiniband import (
    INFINIBAND_FREQUENCY_TOLERANCE_PPM,
    INFINIBAND_TARGET_BER,
    JitterToleranceMask,
    infiniband_mask,
)


class TestMaskShape:
    @pytest.fixture(scope="class")
    def mask(self):
        return infiniband_mask()

    def test_constants(self):
        assert INFINIBAND_FREQUENCY_TOLERANCE_PPM == 100.0
        assert INFINIBAND_TARGET_BER == 1.0e-12

    def test_high_frequency_floor(self, mask):
        assert mask.amplitude_ui_pp(50.0e6) == pytest.approx(0.15)

    def test_low_frequency_slope_is_20db_per_decade(self, mask):
        corner = mask.corner_frequency_hz
        assert mask.amplitude_ui_pp(corner / 10.0) == pytest.approx(1.5, rel=1e-6)

    def test_low_frequency_cap(self, mask):
        assert mask.amplitude_ui_pp(1.0) == pytest.approx(1.5)

    def test_monotonically_non_increasing(self, mask):
        frequencies = np.logspace(3, 7, 50)
        amplitudes = mask.amplitude_ui_pp(frequencies)
        assert np.all(np.diff(amplitudes) <= 1e-12)

    def test_scalar_and_array_interfaces(self, mask):
        scalar = mask.amplitude_ui_pp(1.0e6)
        array = mask.amplitude_ui_pp(np.array([1.0e6]))
        assert scalar == pytest.approx(float(array[0]))

    def test_rejects_non_positive_frequency(self, mask):
        with pytest.raises(ValueError):
            mask.amplitude_ui_pp(0.0)

    def test_sweep_frequencies_within_mask_domain(self, mask):
        frequencies = mask.frequencies_for_sweep()
        assert frequencies[0] >= 1.0e4
        assert frequencies[-1] <= mask.bit_rate_hz / 100.0 * 1.01

    def test_compliance_check(self, mask):
        frequencies = np.array([1.0e5, 1.0e6, 1.0e7])
        required = mask.amplitude_ui_pp(frequencies)
        assert mask.check_compliance(frequencies, np.asarray(required) + 0.1)
        assert not mask.check_compliance(frequencies, np.asarray(required) - 0.05)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            JitterToleranceMask(corner_frequency_hz=1e6, floor_ui_pp=0.2,
                                low_frequency_cap_ui_pp=0.1)
