"""Tests for the Hajimiri / McNeill jitter formulas."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.phasenoise import formulas as f


def bias(current=200e-6, swing=0.4, supply=1.8):
    return f.CmlStageBias.from_current_and_swing(current, swing, supply)


class TestCmlStageBias:
    def test_load_follows_from_swing(self):
        b = bias(200e-6, 0.4)
        assert b.load_resistance_ohm == pytest.approx(2000.0)
        assert b.swing_v == pytest.approx(0.4)

    def test_power(self):
        assert bias(200e-6).power_w == pytest.approx(360.0e-6)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            f.CmlStageBias(tail_current_a=0.0, load_resistance_ohm=1e3, swing_v=0.4)


class TestKappaFormulas:
    def test_kappa_order_of_magnitude(self):
        # A few-hundred-uA CML stage has kappa of a few 1e-8 sqrt(s).
        kappa = f.kappa_hajimiri(bias())
        assert 5.0e-9 < kappa < 1.0e-7

    def test_kappa_decreases_with_current(self):
        low = f.kappa_hajimiri(bias(50e-6))
        high = f.kappa_hajimiri(bias(500e-6))
        assert high < low

    def test_kappa_scales_as_inverse_sqrt_current_at_fixed_swing(self):
        # With R_L adjusted to keep the swing, kappa^2 ~ 1/I.
        k1 = f.kappa_hajimiri(bias(100e-6))
        k2 = f.kappa_hajimiri(bias(400e-6))
        assert k1 / k2 == pytest.approx(2.0, rel=1e-6)

    def test_kappa_decreases_with_swing(self):
        small = f.kappa_hajimiri(bias(200e-6, swing=0.2))
        large = f.kappa_hajimiri(bias(200e-6, swing=0.6))
        assert large < small

    def test_mcneill_tracks_hajimiri(self):
        """Fig. 11: the two formulas agree within a small factor over the design space."""
        for current in (50e-6, 200e-6, 1e-3):
            ratio = f.kappa_mcneill(bias(current)) / f.kappa_hajimiri(bias(current))
            assert 0.5 < ratio < 2.0

    def test_temperature_dependence(self):
        cold = f.kappa_hajimiri(bias(), temperature_k=250.0)
        hot = f.kappa_hajimiri(bias(), temperature_k=400.0)
        assert hot > cold

    @given(st.floats(min_value=20e-6, max_value=5e-3))
    @settings(max_examples=30, deadline=None)
    def test_kappa_always_positive(self, current):
        assert f.kappa_hajimiri(bias(current)) > 0.0


class TestPhaseNoiseConversions:
    def test_20db_per_decade(self):
        kappa = 2.0e-8
        l_1m = f.phase_noise_dbc_per_hz(kappa, 2.5e9, 1.0e6)
        l_10m = f.phase_noise_dbc_per_hz(kappa, 2.5e9, 10.0e6)
        assert l_1m - l_10m == pytest.approx(20.0, abs=0.01)

    def test_round_trip(self):
        kappa = 3.0e-8
        noise = f.phase_noise_dbc_per_hz(kappa, 2.5e9, 1.0e6)
        assert f.kappa_from_phase_noise(noise, 2.5e9, 1.0e6) == pytest.approx(kappa, rel=1e-9)

    def test_typical_ring_oscillator_value(self):
        # A 2.5 GHz ring with kappa ~2.5e-8 sits around -90 dBc/Hz at 1 MHz offset.
        noise = f.phase_noise_dbc_per_hz(2.5e-8, 2.5e9, 1.0e6)
        assert -105.0 < noise < -80.0

    def test_zero_kappa_is_minus_infinity(self):
        assert f.phase_noise_dbc_per_hz(0.0, 2.5e9, 1e6) == -math.inf

    def test_period_jitter(self):
        assert f.period_jitter_rms(2.0e-8, 2.5e9) == pytest.approx(
            2.0e-8 * math.sqrt(400e-12))
