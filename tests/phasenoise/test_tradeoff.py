"""Tests for the phase-noise versus power trade-off sweep (Figure 11)."""

import numpy as np
import pytest

from repro.jitter.accumulation import OscillatorJitterBudget
from repro.phasenoise.tradeoff import minimum_power_for_budget, phase_noise_power_tradeoff


class TestTradeoffSweep:
    @pytest.fixture(scope="class")
    def curve(self):
        return phase_noise_power_tradeoff()

    def test_sweep_has_points(self, curve):
        assert len(curve.points) == 60

    def test_kappa_decreases_with_power(self, curve):
        kappas = curve.kappas_hajimiri
        powers = curve.powers_w
        order = np.argsort(powers)
        assert np.all(np.diff(kappas[order]) <= 1e-18)

    def test_mcneill_curve_tracks_hajimiri(self, curve):
        ratio = curve.kappas_mcneill / curve.kappas_hajimiri
        assert np.all((ratio > 0.5) & (ratio < 2.0))

    def test_kappa_follows_inverse_sqrt_power(self, curve):
        powers = curve.powers_w
        kappas = curve.kappas_hajimiri
        product = kappas * np.sqrt(powers)
        assert np.allclose(product, product[0], rtol=1e-6)

    def test_oscillator_power_is_four_stages(self, curve):
        point = curve.points[0]
        assert point.oscillator_power_w == pytest.approx(4.0 * point.stage_power_w)

    def test_first_point_meeting_budget(self, curve):
        budget = OscillatorJitterBudget()
        point = curve.first_point_meeting(budget)
        assert point is not None
        assert point.meets_budget(budget)
        # It is the cheapest such point in the sweep.
        cheaper = [p for p in curve.points
                   if p.oscillator_power_w < point.oscillator_power_w]
        assert all(not p.meets_budget(budget) for p in cheaper)

    def test_accumulated_jitter_column(self, curve):
        budget = OscillatorJitterBudget()
        for point in curve.points[::10]:
            if point.meets_budget(budget):
                assert point.accumulated_jitter_ui_rms <= budget.budget_ui_rms * 1.001


class TestMinimumPower:
    def test_meets_budget_exactly(self):
        budget = OscillatorJitterBudget()
        point = minimum_power_for_budget(budget)
        assert point.kappa_hajimiri <= budget.kappa_max * 1.01
        assert point.kappa_hajimiri >= budget.kappa_max * 0.9

    def test_sub_milliwatt_for_paper_budget(self):
        """The 0.01 UIrms @ CID 5 budget alone needs well under a milliwatt."""
        point = minimum_power_for_budget(OscillatorJitterBudget())
        assert point.oscillator_power_w < 1.0e-3

    def test_tighter_budget_needs_more_power(self):
        loose = minimum_power_for_budget(OscillatorJitterBudget(budget_ui_rms=0.02))
        tight = minimum_power_for_budget(OscillatorJitterBudget(budget_ui_rms=0.005))
        assert tight.oscillator_power_w > loose.oscillator_power_w

    def test_unreachable_budget_raises(self):
        with pytest.raises(ValueError):
            minimum_power_for_budget(OscillatorJitterBudget(budget_ui_rms=1.0e-5),
                                     current_bounds_a=(1e-6, 1e-4))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            minimum_power_for_budget(current_bounds_a=(1e-3, 1e-6))
