"""Tests for the top-down oscillator / channel power design solver."""

import pytest

from repro import units
from repro.jitter.accumulation import OscillatorJitterBudget
from repro.phasenoise.design import (
    ChannelCellBudget,
    StageLoadModel,
    channel_power_report,
    design_oscillator,
)


class TestStageLoadModel:
    def test_load_grows_with_current(self):
        load = StageLoadModel()
        assert load.load_f(1e-3) > load.load_f(1e-4)

    def test_fixed_part(self):
        load = StageLoadModel(fixed_f=20e-15, per_ampere_f=0.0)
        assert load.load_f(1e-3) == pytest.approx(20e-15)


class TestChannelCellBudget:
    def test_default_cell_count(self):
        # 4 ring + 2 delay line + 2 edge detector + 2 sampler latches + 1 buffer.
        assert ChannelCellBudget().total_cells == 11

    def test_rejects_zero_cells(self):
        with pytest.raises(ValueError):
            ChannelCellBudget(oscillator_stages=0)


class TestDesignOscillator:
    @pytest.fixture(scope="class")
    def design(self):
        return design_oscillator()

    def test_frequency_is_bit_rate(self, design):
        assert design.oscillation_frequency_hz == pytest.approx(units.DEFAULT_BIT_RATE)

    def test_stage_delay_is_one_eighth_period(self, design):
        assert design.stage_delay_s == pytest.approx(50.0e-12)

    def test_meets_kappa_budget(self, design):
        assert design.kappa <= design.kappa_budget

    def test_speed_limited_at_2p5_gbps(self, design):
        """At 2.5 Gbit/s the speed constraint, not phase noise, sets the current."""
        assert design.speed_limited
        assert not design.noise_limited

    def test_accumulated_jitter_below_budget(self, design):
        assert design.accumulated_jitter_ui_rms <= 0.01

    def test_bias_current_is_hundreds_of_microamps(self, design):
        assert 50e-6 < design.bias.tail_current_a < 500e-6

    def test_phase_noise_reporting(self, design):
        assert -120.0 < design.phase_noise_dbc(1.0e6) < -70.0

    def test_noise_limited_with_tight_budget(self):
        tight = OscillatorJitterBudget(budget_ui_rms=0.001)
        design = design_oscillator(budget=tight)
        assert design.noise_limited
        assert design.kappa <= design.kappa_budget * 1.01

    def test_unreachable_frequency_raises(self):
        with pytest.raises(ValueError):
            design_oscillator(bit_rate_hz=100.0e9)

    def test_higher_rate_needs_more_current(self):
        slow = design_oscillator(bit_rate_hz=1.25e9)
        fast = design_oscillator(bit_rate_hz=3.125e9)
        assert fast.bias.tail_current_a > slow.bias.tail_current_a


class TestChannelPowerReport:
    @pytest.fixture(scope="class")
    def report(self):
        return channel_power_report()

    def test_meets_paper_target(self, report):
        """Headline claim: below 5 mW/Gbit/s per channel."""
        assert report.power_per_gbps_mw < 5.0
        assert report.meets_target()

    def test_total_power_includes_amortised_pll(self, report):
        assert report.total_power_w == pytest.approx(
            report.channel_power_w + report.shared_pll_power_w / report.n_channels)

    def test_channel_power_scales_with_cells(self):
        small = channel_power_report(cells=ChannelCellBudget(output_buffers=1))
        large = channel_power_report(cells=ChannelCellBudget(output_buffers=4))
        assert large.channel_power_w > small.channel_power_w

    def test_more_channels_amortise_pll_better(self):
        few = channel_power_report(n_channels=2)
        many = channel_power_report(n_channels=16)
        assert many.power_per_gbps_mw < few.power_per_gbps_mw

    def test_power_in_plausible_range(self, report):
        # Per-channel power of a few milliwatts at 2.5 Gbit/s.
        assert 1.0e-3 < report.total_power_w < 13.0e-3
