"""Capability-aware backend registry: resolution, errors, extension."""

import numpy as np
import pytest

from repro.core.cdr_channel import BehavioralCdrChannel
from repro.core.config import CdrChannelConfig
from repro.fastpath import FastCdrChannel
from repro.fastpath.backends import (
    AUTO_BACKEND,
    BACKENDS,
    CAP_GATE_JITTER,
    BackendSpec,
    make_channel,
    register_backend,
    required_capabilities,
    resolve_backend,
)
from repro.gates.ring import GccoParameters

CLEAN = CdrChannelConfig()
GATE_JITTER = CdrChannelConfig(gate_jitter_sigma_fraction=0.01)
OSC_JITTER = CdrChannelConfig(
    oscillator=GccoParameters(jitter_sigma_fraction=0.01))


class TestRequiredCapabilities:
    def test_clean_config_demands_nothing(self):
        assert required_capabilities(CLEAN) == frozenset()
        assert required_capabilities(None) == frozenset()

    def test_gate_jitter_demands_capability(self):
        assert required_capabilities(GATE_JITTER) == {CAP_GATE_JITTER}

    def test_oscillator_jitter_demands_capability(self):
        assert required_capabilities(OSC_JITTER) == {CAP_GATE_JITTER}


class TestResolution:
    def test_auto_picks_fast_on_clean_config(self):
        assert resolve_backend(CLEAN, AUTO_BACKEND).name == "fast"
        assert isinstance(make_channel(CLEAN, "auto"), FastCdrChannel)

    def test_auto_picks_event_under_gate_jitter(self):
        assert resolve_backend(GATE_JITTER, "auto").name == "event"
        assert isinstance(make_channel(GATE_JITTER, "auto"),
                          BehavioralCdrChannel)

    def test_auto_picks_event_under_oscillator_jitter(self):
        assert resolve_backend(OSC_JITTER, "auto").name == "event"

    def test_auto_is_the_default(self):
        assert isinstance(make_channel(GATE_JITTER), BehavioralCdrChannel)
        assert isinstance(make_channel(CLEAN), FastCdrChannel)

    def test_named_backends_still_resolve(self):
        assert isinstance(make_channel(CLEAN, "event"), BehavioralCdrChannel)
        assert isinstance(make_channel(CLEAN, "fast"), FastCdrChannel)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_channel(CLEAN, "warp")

    def test_unknown_backend_error_lists_auto(self):
        with pytest.raises(ValueError, match="auto"):
            make_channel(CLEAN, "warp")


class TestCapabilityErrors:
    def test_forcing_fast_on_gate_jitter_raises(self):
        with pytest.raises(ValueError, match=CAP_GATE_JITTER):
            make_channel(GATE_JITTER, "fast")

    def test_forcing_fast_on_oscillator_jitter_raises(self):
        with pytest.raises(ValueError, match=CAP_GATE_JITTER):
            make_channel(OSC_JITTER, "fast")

    def test_error_names_backend_and_suggests_auto(self):
        with pytest.raises(ValueError, match=r"'fast'.*auto"):
            make_channel(GATE_JITTER, "fast")

    def test_event_accepts_gate_jitter(self):
        assert isinstance(make_channel(GATE_JITTER, "event"),
                          BehavioralCdrChannel)

    def test_spec_create_enforces_capabilities(self):
        with pytest.raises(ValueError, match=CAP_GATE_JITTER):
            BACKENDS["fast"].create(GATE_JITTER)

    def test_direct_engine_construction_remains_open(self):
        """The documented escape hatch bypasses the registry on purpose."""
        channel = FastCdrChannel(GATE_JITTER)
        result = channel.run(np.array([1, 0, 1, 1, 0], dtype=np.uint8),
                             rng=np.random.default_rng(0))
        assert result.ber().compared_bits >= 0


class TestRegistryExtension:
    def test_backendspec_missing_capabilities(self):
        spec = BACKENDS["fast"]
        assert spec.missing_capabilities(GATE_JITTER) == {CAP_GATE_JITTER}
        assert spec.missing_capabilities(CLEAN) == frozenset()

    def test_auto_name_is_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_backend("auto", lambda config: None)

    def test_registered_backend_participates_in_auto(self):
        sentinel = object()
        spec = register_backend("turbo", lambda config: sentinel,
                                capabilities=(CAP_GATE_JITTER,), priority=-1)
        try:
            assert isinstance(spec, BackendSpec)
            assert resolve_backend(GATE_JITTER, "auto").name == "turbo"
            assert make_channel(CLEAN, "turbo") is sentinel
        finally:
            del BACKENDS["turbo"]
        assert resolve_backend(GATE_JITTER, "auto").name == "event"

    def test_priority_orders_auto_resolution(self):
        # fast (priority 0) beats event (priority 10) whenever both qualify.
        assert BACKENDS["fast"].priority < BACKENDS["event"].priority
        assert resolve_backend(CLEAN, "auto").name == "fast"

    def test_no_backend_covers_unknown_capability(self):
        spec = BACKENDS["fast"]
        impossible = frozenset({"quantum-tunnelling"})
        assert impossible - spec.capabilities == impossible
