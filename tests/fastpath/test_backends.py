"""Capability-aware backend registry: resolution, errors, extension."""

import numpy as np
import pytest

from repro import _kernels
from repro.core.cdr_channel import BehavioralCdrChannel
from repro.core.config import CdrChannelConfig
from repro.fastpath import FastCdrChannel
from repro.fastpath import backends as backends_module
from repro.fastpath.backends import (
    AUTO_BACKEND,
    BACKENDS,
    CAP_GATE_JITTER,
    CAP_JIT_KERNELS,
    BackendSpec,
    environment_capabilities,
    make_channel,
    register_backend,
    required_capabilities,
    resolve_backend,
)
from repro.gates.ring import GccoParameters

CLEAN = CdrChannelConfig()
GATE_JITTER = CdrChannelConfig(gate_jitter_sigma_fraction=0.01)
OSC_JITTER = CdrChannelConfig(
    oscillator=GccoParameters(jitter_sigma_fraction=0.01))

#: What backend="auto" must resolve to on a clean config depends on the
#: environment: the compiled tier wins exactly where numba is installed.
FASTEST_CLEAN = "fast+jit" if _kernels.jit_available() else "fast"


class TestRequiredCapabilities:
    def test_clean_config_demands_nothing(self):
        assert required_capabilities(CLEAN) == frozenset()
        assert required_capabilities(None) == frozenset()

    def test_gate_jitter_demands_capability(self):
        assert required_capabilities(GATE_JITTER) == {CAP_GATE_JITTER}

    def test_oscillator_jitter_demands_capability(self):
        assert required_capabilities(OSC_JITTER) == {CAP_GATE_JITTER}


class TestResolution:
    def test_auto_picks_fastest_on_clean_config(self):
        assert resolve_backend(CLEAN, AUTO_BACKEND).name == FASTEST_CLEAN
        assert isinstance(make_channel(CLEAN, "auto"), FastCdrChannel)

    def test_auto_picks_event_under_gate_jitter(self):
        assert resolve_backend(GATE_JITTER, "auto").name == "event"
        assert isinstance(make_channel(GATE_JITTER, "auto"),
                          BehavioralCdrChannel)

    def test_auto_picks_event_under_oscillator_jitter(self):
        assert resolve_backend(OSC_JITTER, "auto").name == "event"

    def test_auto_is_the_default(self):
        assert isinstance(make_channel(GATE_JITTER), BehavioralCdrChannel)
        assert isinstance(make_channel(CLEAN), FastCdrChannel)

    def test_named_backends_still_resolve(self):
        assert isinstance(make_channel(CLEAN, "event"), BehavioralCdrChannel)
        assert isinstance(make_channel(CLEAN, "fast"), FastCdrChannel)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_channel(CLEAN, "warp")

    def test_unknown_backend_error_lists_auto(self):
        with pytest.raises(ValueError, match="auto"):
            make_channel(CLEAN, "warp")


class TestCapabilityErrors:
    def test_forcing_fast_on_gate_jitter_raises(self):
        with pytest.raises(ValueError, match=CAP_GATE_JITTER):
            make_channel(GATE_JITTER, "fast")

    def test_forcing_fast_on_oscillator_jitter_raises(self):
        with pytest.raises(ValueError, match=CAP_GATE_JITTER):
            make_channel(OSC_JITTER, "fast")

    def test_error_names_backend_and_suggests_auto(self):
        with pytest.raises(ValueError, match=r"'fast'.*auto"):
            make_channel(GATE_JITTER, "fast")

    def test_event_accepts_gate_jitter(self):
        assert isinstance(make_channel(GATE_JITTER, "event"),
                          BehavioralCdrChannel)

    def test_spec_create_enforces_capabilities(self):
        with pytest.raises(ValueError, match=CAP_GATE_JITTER):
            BACKENDS["fast"].create(GATE_JITTER)

    def test_direct_engine_construction_remains_open(self):
        """The documented escape hatch bypasses the registry on purpose."""
        channel = FastCdrChannel(GATE_JITTER)
        result = channel.run(np.array([1, 0, 1, 1, 0], dtype=np.uint8),
                             rng=np.random.default_rng(0))
        assert result.ber().compared_bits >= 0


class TestRegistryExtension:
    def test_backendspec_missing_capabilities(self):
        spec = BACKENDS["fast"]
        assert spec.missing_capabilities(GATE_JITTER) == {CAP_GATE_JITTER}
        assert spec.missing_capabilities(CLEAN) == frozenset()

    def test_auto_name_is_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_backend("auto", lambda config: None)

    def test_registered_backend_participates_in_auto(self):
        sentinel = object()
        spec = register_backend("turbo", lambda config: sentinel,
                                capabilities=(CAP_GATE_JITTER,), priority=-1)
        try:
            assert isinstance(spec, BackendSpec)
            assert resolve_backend(GATE_JITTER, "auto").name == "turbo"
            assert make_channel(CLEAN, "turbo") is sentinel
        finally:
            del BACKENDS["turbo"]
        assert resolve_backend(GATE_JITTER, "auto").name == "event"

    def test_priority_orders_auto_resolution(self):
        # fast (priority 0) beats event (priority 10) whenever both qualify.
        assert BACKENDS["fast"].priority < BACKENDS["event"].priority
        assert resolve_backend(CLEAN, "auto").name == FASTEST_CLEAN

    def test_no_backend_covers_unknown_capability(self):
        spec = BACKENDS["fast"]
        impossible = frozenset({"quantum-tunnelling"})
        assert impossible - spec.capabilities == impossible


class TestJitBackendTier:
    """The environment-gated "fast+jit" backend and its kernel_tier field."""

    def test_registered_unconditionally_with_jit_tier(self):
        spec = BACKENDS["fast+jit"]
        assert spec.kernel_tier == _kernels.TIER_JIT
        assert spec.env_requires == {CAP_JIT_KERNELS}
        assert BACKENDS["fast"].kernel_tier == _kernels.TIER_PYTHON
        assert BACKENDS["event"].kernel_tier == _kernels.TIER_PYTHON

    def test_environment_capabilities_track_numba(self):
        expected = {CAP_JIT_KERNELS} if _kernels.jit_available() else set()
        assert environment_capabilities() == frozenset(expected)

    def test_auto_upgrades_when_environment_provides_jit(self, monkeypatch):
        monkeypatch.setattr(backends_module, "environment_capabilities",
                            lambda: frozenset({CAP_JIT_KERNELS}))
        assert resolve_backend(CLEAN, "auto").name == "fast+jit"
        # Jittered configs still demand the event kernel.
        assert resolve_backend(GATE_JITTER, "auto").name == "event"

    def test_auto_skips_jit_tier_without_numba(self, monkeypatch):
        monkeypatch.setattr(backends_module, "environment_capabilities",
                            lambda: frozenset())
        assert resolve_backend(CLEAN, "auto").name == "fast"

    def test_forcing_jit_without_numba_names_capability(self, monkeypatch):
        monkeypatch.setattr(backends_module, "environment_capabilities",
                            lambda: frozenset())
        with pytest.raises(ValueError, match=CAP_JIT_KERNELS):
            resolve_backend(CLEAN, "fast+jit")
        with pytest.raises(ValueError, match=CAP_JIT_KERNELS):
            BACKENDS["fast+jit"].create(CLEAN)

    def test_forcing_jit_with_numba_resolves(self, monkeypatch):
        monkeypatch.setattr(backends_module, "environment_capabilities",
                            lambda: frozenset({CAP_JIT_KERNELS}))
        spec = resolve_backend(CLEAN, "fast+jit")
        assert spec.name == "fast+jit"
        assert isinstance(spec.factory(CLEAN), FastCdrChannel)

    def test_jit_backend_still_subject_to_config_capabilities(self, monkeypatch):
        monkeypatch.setattr(backends_module, "environment_capabilities",
                            lambda: frozenset({CAP_JIT_KERNELS}))
        with pytest.raises(ValueError, match=CAP_GATE_JITTER):
            resolve_backend(GATE_JITTER, "fast+jit")
