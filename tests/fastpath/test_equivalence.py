"""Fast-path versus event-kernel equivalence suite.

On configurations without per-gate delay jitter the fast path must be an
*exact* replica of the event kernel: identical floating-point sample times,
identical bit decisions, identical BER counts, identical traces and eye
metrics, on every seeded run of the corpus — across data-jitter mixes
(DJ / RJ / SJ), transmitter ppm offsets, channel frequency offsets, both
sampling taps and the edge-detector blanking corner.

With gate jitter enabled the fast path draws statistically identical but
not draw-for-draw identical jitter, so only distribution-level agreement is
asserted there.
"""

import numpy as np
import pytest

from repro.core.cdr_channel import BehavioralCdrChannel
from repro.core.config import CdrChannelConfig
from repro.datapath.nrz import JitterSpec
from repro.datapath.prbs import prbs7
from repro.fastpath import FastCdrChannel
from repro.gates.ring import GccoParameters

NO_GATE_JITTER = GccoParameters(jitter_sigma_fraction=0.0)
BASE = CdrChannelConfig(oscillator=NO_GATE_JITTER)
FIG14_OFFSET = 2.5e9 / 2.375e9 - 1.0

NO_JITTER = JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0)
DJ_RJ = JitterSpec(dj_ui_pp=0.3, rj_ui_rms=0.02)
SJ_ONLY = JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0,
                     sj_amplitude_ui_pp=0.1, sj_frequency_hz=250.0e6)
HEAVY = JitterSpec(dj_ui_pp=0.4, rj_ui_rms=0.021,
                   sj_amplitude_ui_pp=0.3, sj_frequency_hz=1.25e9)

#: (label, config, jitter, transmitter ppm) corners of the equivalence corpus.
CORPUS = [
    ("clean", BASE, NO_JITTER, 0.0),
    ("dj_rj", BASE, DJ_RJ, 0.0),
    ("sj", BASE, SJ_ONLY, 0.0),
    ("heavy", BASE, HEAVY, 0.0),
    ("ppm_plus", BASE, DJ_RJ, 300.0),
    ("ppm_minus", BASE.with_frequency_offset(-0.02), DJ_RJ, -200.0),
    ("fig14_offset", BASE.with_frequency_offset(FIG14_OFFSET), SJ_ONLY, 0.0),
    ("blanking", BASE.with_frequency_offset(FIG14_OFFSET).with_edge_detector_delay(0.85),
     NO_JITTER, 0.0),
    ("improved_tap", CdrChannelConfig(oscillator=NO_GATE_JITTER, improved_sampling=True),
     DJ_RJ, 0.0),
    ("gating_skew", CdrChannelConfig(
        oscillator=GccoParameters(jitter_sigma_fraction=0.0, gating_input_skew_s=5.0e-12)),
     DJ_RJ, 0.0),
]


def run_both(config, jitter, ppm, seed=1, n=500):
    bits = prbs7(n)
    event = BehavioralCdrChannel(config).run(
        bits, jitter=jitter, data_rate_offset_ppm=ppm,
        rng=np.random.default_rng(seed))
    fast = FastCdrChannel(config).run(
        bits, jitter=jitter, data_rate_offset_ppm=ppm,
        rng=np.random.default_rng(seed))
    return event, fast


class TestExactEquivalence:
    @pytest.mark.parametrize("label,config,jitter,ppm",
                             CORPUS, ids=[c[0] for c in CORPUS])
    def test_decisions_and_ber_match_exactly(self, label, config, jitter, ppm):
        event, fast = run_both(config, jitter, ppm)
        np.testing.assert_array_equal(event.sample_times_s, fast.sample_times_s)
        np.testing.assert_array_equal(event.sampled_bits, fast.sampled_bits)
        event_ber, fast_ber = event.ber(), fast.ber()
        assert event_ber.errors == fast_ber.errors
        assert event_ber.compared_bits == fast_ber.compared_bits
        assert event.missed_bits() == fast.missed_bits()

    @pytest.mark.parametrize("label,config,jitter,ppm",
                             CORPUS[:4], ids=[c[0] for c in CORPUS[:4]])
    def test_traces_match_exactly(self, label, config, jitter, ppm):
        event, fast = run_both(config, jitter, ppm)
        for name in ("din", "ddin", "edet", "clock", "dout"):
            np.testing.assert_array_equal(
                event.trace(name).edges("any"), fast.trace(name).edges("any"),
                err_msg=f"trace {name!r} diverged")

    def test_eye_metrics_match_exactly(self):
        config = BASE.with_frequency_offset(FIG14_OFFSET)
        event, fast = run_both(config, SJ_ONLY, 0.0, n=1000)
        em = event.eye_diagram().metrics()
        fm = fast.eye_diagram().metrics()
        assert em.n_crossings == fm.n_crossings
        assert em.eye_opening_ui == fm.eye_opening_ui
        assert em.left_edge_std_ui == fm.left_edge_std_ui
        assert em.right_edge_std_ui == fm.right_edge_std_ui

    def test_sampling_phase_matches_exactly(self):
        event, fast = run_both(BASE, DJ_RJ, 0.0)
        np.testing.assert_array_equal(event.sampling_phase_ui(),
                                      fast.sampling_phase_ui())

    def test_sequence_ber_matches(self):
        event, fast = run_both(BASE, DJ_RJ, 0.0)
        assert event.sequence_ber().errors == fast.sequence_ber().errors

    def test_different_seeds_differ(self):
        """Guard against the corpus accidentally comparing constants."""
        _, fast_a = run_both(BASE, DJ_RJ, 0.0, seed=1)
        _, fast_b = run_both(BASE, DJ_RJ, 0.0, seed=2)
        assert not np.array_equal(fast_a.sample_times_s, fast_b.sample_times_s)


class TestJitteredStatisticalAgreement:
    """With per-gate jitter the backends agree in distribution, not per draw."""

    def test_clean_recovery_with_gate_jitter(self):
        config = CdrChannelConfig.paper_nominal()
        event, fast = run_both(config, NO_JITTER, 0.0, n=600)
        assert event.ber().errors == 0
        assert fast.ber().errors == 0

    def test_improved_tap_with_gate_jitter(self):
        config = CdrChannelConfig.paper_improved()
        _, fast = run_both(config, NO_JITTER, 0.0, n=600)
        assert fast.ber().errors == 0
        phases = fast.sampling_phase_ui()
        in_bit = phases[(phases > 0) & (phases < 1)]
        assert np.median(in_bit) == pytest.approx(0.375, abs=0.03)

    def test_fig14_eye_asymmetry_reproduced(self):
        config = CdrChannelConfig.figure14_condition()
        _, fast = run_both(config, SJ_ONLY, 0.0, n=1500)
        metrics = fast.eye_diagram().metrics()
        assert metrics.right_edge_std_ui > metrics.left_edge_std_ui

    def test_gate_jitter_spreads_recovered_clock(self):
        _, clean = run_both(BASE, NO_JITTER, 0.0, n=600)
        _, jittered = run_both(CdrChannelConfig.paper_nominal(), NO_JITTER, 0.0, n=600)
        clean_periods = np.diff(clean.trace("clock").edges("rising"))
        jittered_periods = np.diff(jittered.trace("clock").edges("rising"))
        assert jittered_periods.std() > clean_periods.std()

    def test_fast_path_reproducible_with_seed(self):
        config = CdrChannelConfig.paper_nominal()
        _, a = run_both(config, DJ_RJ, 0.0, seed=5)
        _, b = run_both(config, DJ_RJ, 0.0, seed=5)
        np.testing.assert_array_equal(a.sample_times_s, b.sample_times_s)
        np.testing.assert_array_equal(a.sampled_bits, b.sampled_bits)
