"""Statistical eye study: BER contours, crosstalk, and the bit-true cross-check.

Demonstrates the `repro.link.stateye` solver end to end:

1. The BER(phase, threshold) surface of an equalized lossy link, rendered
   as eye contours at several target BERs — the sub-1e-12 region no
   bit-true run can reach.
2. Eye closure under FEXT crosstalk: horizontal/vertical openings versus
   aggressor amplitude, next to the bit-true error counts of the same
   scenario (`ber_vs_aggressor_sweep` — one declarative study, two views).
3. The cross-validation corner: at a deliberately harsh oscillator
   frequency offset the bit-true backends count errors in 20k bits, and
   the statistical eye reproduces that BER within a factor of two while
   solving ~1e9x faster than bit-true extrapolation to 1e-12 would be.

Run with:  PYTHONPATH=src python examples/statistical_eye.py
"""

import time

import numpy as np

from repro.core.config import CdrChannelConfig
from repro.datapath.cid import measured_run_distribution
from repro.datapath.prbs import prbs_sequence
from repro.gates.ring import GccoParameters
from repro.link import (
    LinkCdrChannel,
    LinkConfig,
    LossyLineChannel,
    RxCtle,
    TxFfe,
    statistical_eye,
)
from repro.reporting import TextTable
from repro.statistical.ber_model import CdrJitterBudget
from repro.sweep import ber_vs_aggressor_sweep

LOSS_DB = 10.0
N_BITS = 20000


def equalized_link(**overrides) -> LinkConfig:
    values = dict(
        channel=LossyLineChannel.for_loss_at_nyquist(LOSS_DB),
        tx_ffe=TxFfe.de_emphasis(post_db=3.5),
        rx_ctle=RxCtle(peaking_db=6.0),
    )
    values.update(overrides)
    return LinkConfig(**values)


def contour_study() -> None:
    print(f"=== Statistical eye of the equalized {LOSS_DB:.0f} dB link ===")
    start = time.perf_counter()
    eye = statistical_eye(equalized_link())
    elapsed = time.perf_counter() - start
    table = TextTable(["target BER", "horizontal opening", "vertical opening"])
    for target in (1.0e-6, 1.0e-9, 1.0e-12, 1.0e-15):
        table.add_row(f"{target:.0e}",
                      f"{eye.horizontal_opening_ui(target):.3f} UI",
                      f"{eye.vertical_opening(target):.2f}")
    print(table.render())
    phase, ber = eye.best_operating_point()
    print(f"best operating point: phase {phase:.3f} UI, BER {ber:.2e}")
    print(f"solved {eye.ber.size} (phase, threshold) points in {elapsed*1e3:.1f} ms\n")


def crosstalk_study() -> None:
    print("=== Eye closure under FEXT crosstalk (statistical + bit-true) ===")
    amplitudes = np.array([0.0, 0.1, 0.2, 0.3, 0.4])
    result = ber_vs_aggressor_sweep(amplitudes, loss_db=LOSS_DB,
                                    n_bits=4000, seed=7)
    table = TextTable(["aggressor", "bit-true errors", "stateye BER",
                       "H opening", "V opening"])
    for index, amplitude in enumerate(amplitudes):
        table.add_row(f"{amplitude:.2f}",
                      str(int(result.errors[index])),
                      f"{result.stateye_ber[index]:.2e}",
                      f"{result.stateye_horizontal_ui[index]:.3f} UI",
                      f"{result.stateye_vertical[index]:.2f}")
    print(table.render())
    print("openings shrink monotonically; bit-true errors appear "
          "once the statistical eye collapses\n")


def cross_validation_study() -> None:
    print("=== Cross-validation: statistical eye vs bit-true backends ===")
    offset = 0.12
    config = CdrChannelConfig(
        oscillator=GccoParameters(jitter_sigma_fraction=0.0),
        frequency_offset=offset)
    channel = LinkCdrChannel(equalized_link(), config=config, backend="fast")
    measurement = channel.run(prbs_sequence(7, N_BITS),
                              rng=np.random.default_rng(3),
                              pattern_period=127).ber()
    measured = measurement.errors / measurement.compared_bits

    budget = CdrJitterBudget(dj_ui_pp=0.0, rj_ui_rms=0.0,
                             osc_sigma_ui_per_bit=0.0,
                             frequency_offset=offset)
    eye = statistical_eye(
        equalized_link(), budget=budget,
        run_lengths=measured_run_distribution(prbs_sequence(7, 127),
                                              max_run=7))
    predicted = eye.ber_at(0.5, 0.0)
    table = TextTable(["view", "BER"])
    table.add_row(f"bit-true fast backend ({N_BITS} bits)", f"{measured:.3e}")
    table.add_row("statistical eye (analytic)", f"{predicted:.3e}")
    print(table.render())
    print(f"agreement ratio: {predicted / measured:.2f} (criterion: within 2x)")


def main() -> None:
    contour_study()
    crosstalk_study()
    cross_validation_study()


if __name__ == "__main__":
    main()
