"""Quickstart: recover a PRBS7 stream with one gated-oscillator CDR channel.

Runs the behavioural (event-driven) model of a single 2.5 Gbit/s channel with
the paper's Table 1 jitter applied to the data, then prints the bit-error
measurement, the recovered-clock statistics and the clock-aligned eye diagram
metrics.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import BehavioralCdrChannel, CdrChannelConfig, PAPER_JITTER_SPEC
from repro.datapath import prbs7
from repro.reporting import TextTable


def main() -> None:
    # 1. Configure the channel exactly as the paper's nominal topology (Fig. 7):
    #    four-stage gated CCO at 2.5 GHz, edge detector inside the T/2..T window,
    #    sampling half a bit after each transition.
    config = CdrChannelConfig.paper_nominal()
    channel = BehavioralCdrChannel(config)

    # 2. Send 4000 bits of PRBS7 with the Table 1 jitter (DJ 0.4 UIpp, RJ 0.021 UIrms).
    bits = prbs7(4000)
    result = channel.run(bits, jitter=PAPER_JITTER_SPEC, rng=np.random.default_rng(1))

    # 3. Report.
    measurement = result.ber()
    eye = result.eye_diagram().metrics()
    table = TextTable(headers=["quantity", "value"], title="Quickstart: single-channel CDR")
    table.add_row("transmitted bits", bits.size)
    table.add_row("bit errors", f"{measurement.errors} / {measurement.compared_bits}")
    table.add_row("BER upper bound (95 %)", f"{measurement.confidence_upper_bound():.2e}")
    table.add_row("recovered clock", f"{result.recovered_clock_frequency_hz() / 1e9:.3f} GHz")
    table.add_row("sampling edges per bit", f"{result.samples_per_bit():.3f}")
    table.add_row("eye opening", f"{eye.eye_opening_ui:.3f} UI")
    table.add_row("eye centre vs sampling instant", f"{eye.eye_centre_ui:+.3f} UI")
    table.add_row("left / right crossing sigma",
                  f"{eye.left_edge_std_ui:.3f} / {eye.right_edge_std_ui:.3f} UI")
    print(table.render())

    if measurement.errors == 0:
        print("The channel recovered every bit under the Table 1 jitter budget.")
    else:
        print("Some bits were received in error - inspect result.trace('clock') "
              "and result.sampling_phase_ui() to see why.")


if __name__ == "__main__":
    main()
