"""Eye-diagram study across the three modelling levels (Figures 14, 16, 18).

Generates the clock-aligned eye diagram of the paper's Figure 14 condition
(CCO at 2.375 GHz, SJ 0.10 UIpp at 250 MHz) with the behavioural model, the
same condition with the improved sampling tap (Figure 16), and the typical-
case circuit-level eye (Figure 18), printing an ASCII rendering of each.

Run with:  python examples/eye_diagram_study.py
"""

import numpy as np

from repro.analysis import EyeDiagram
from repro.circuit import CircuitCdrConfig, CircuitLevelCdr, calibrate_ring
from repro.core import BehavioralCdrChannel, CdrChannelConfig
from repro.datapath import JitterSpec, prbs7

FIG14_JITTER = JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0,
                          sj_amplitude_ui_pp=0.10, sj_frequency_hz=250.0e6)


def ascii_eye(eye: EyeDiagram, title: str, width: int = 61, height: int = 10) -> str:
    """Render the crossing histogram as a small ASCII density plot."""
    centres, counts = eye.histogram(width)
    lines = [title]
    maximum = counts.max() if counts.max() else 1
    for level in range(height, 0, -1):
        threshold = maximum * level / height
        row = "".join("#" if count >= threshold else " " for count in counts)
        lines.append("|" + row + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(" -0.5 UI" + " " * (width - 16) + "+0.5 UI ")
    metrics = eye.metrics()
    lines.append(f"  opening {metrics.eye_opening_ui:.3f} UI, centre "
                 f"{metrics.eye_centre_ui:+.3f} UI, left/right sigma "
                 f"{metrics.left_edge_std_ui:.3f}/{metrics.right_edge_std_ui:.3f} UI")
    return "\n".join(lines) + "\n"


def behavioural_eyes() -> None:
    bits = prbs7(4000)
    for title, config in (
        ("Figure 14: behavioural eye, CCO 2.375 GHz, SJ 0.10 UIpp @ 250 MHz (nominal tap)",
         CdrChannelConfig.figure14_condition()),
        ("Figure 16: same condition, improved (T/8 earlier) sampling tap",
         CdrChannelConfig.figure14_condition(improved_sampling=True)),
    ):
        result = BehavioralCdrChannel(config).run(bits, jitter=FIG14_JITTER,
                                                  rng=np.random.default_rng(14))
        print(ascii_eye(result.eye_diagram(), title))


def circuit_eye() -> None:
    config = calibrate_ring(CircuitCdrConfig())
    result = CircuitLevelCdr(config).simulate(prbs7(180), rng=np.random.default_rng(18))
    print(ascii_eye(result.eye_diagram(),
                    "Figure 18: circuit-level eye (typical case, no jitter applied)"))
    measurement = result.ber()
    print(f"circuit-level recovered bits: {measurement.compared_bits}, "
          f"errors: {measurement.errors}")


def main() -> None:
    behavioural_eyes()
    circuit_eye()


if __name__ == "__main__":
    main()
