"""Link-training study: closed eye -> trained lineup -> reopened eye.

Demonstrates the `repro.link.training` subsystem end to end:

1. A harsh lossy channel closes the unequalized statistical eye; link
   training searches the TX-FFE de-emphasis x RX-CTLE peaking plane on the
   statistical-eye objective (coarse grid + coordinate descent, cached and
   budget-capped) and reopens it — compared against PR 2's hand-tuned
   ``link_equalization_study`` lineup (FFE 3.5 dB + CTLE 6 dB).
2. The trained lineup is cross-checked bit-true through the CDR backends
   on a frequency-offset stress where errors are countable.
3. ``link_training_sweep`` runs the same study across a loss axis on the
   deterministic parallel runner, pairing fixed-lineup error counts with
   trained-versus-fixed openings per point.

Run with:  PYTHONPATH=src python examples/link_training_study.py
"""

import numpy as np

from repro.core.config import CdrChannelConfig
from repro.datapath.cid import measured_run_distribution
from repro.datapath.prbs import prbs_sequence
from repro.gates.ring import GccoParameters
from repro.link import (
    LinkConfig,
    LinkTrainer,
    LmsDfe,
    LossyLineChannel,
    RxCtle,
    TxFfe,
    statistical_eye,
)
from repro.reporting import TextTable
from repro.statistical.ber_model import CdrJitterBudget
from repro.sweep import link_training_sweep

HARSH_LOSS_DB = 16.0
TARGET_BER = 1.0e-12


def hand_tuned_link(channel) -> LinkConfig:
    """PR 2's hand-picked reference lineup (link_equalization_study.py)."""
    return LinkConfig(
        channel=channel,
        tx_ffe=TxFfe.de_emphasis(post_db=3.5),
        rx_ctle=RxCtle(peaking_db=6.0),
    )


def training_study() -> None:
    print(f"=== Training the {HARSH_LOSS_DB:.0f} dB channel (statistical-eye objective) ===")
    channel = LossyLineChannel.for_loss_at_nyquist(HARSH_LOSS_DB)

    closed = statistical_eye(LinkConfig(channel=channel))
    hand = statistical_eye(hand_tuned_link(channel))

    trainer = LinkTrainer(LinkConfig(channel=channel), dfe=LmsDfe(n_taps=2))
    trained = trainer.train()
    trained_eye = trained.eye

    table = TextTable(["lineup", "H opening (UI)", "V opening", "BER @ centre"])
    rows = [
        ("unequalized", closed.horizontal_opening_ui(TARGET_BER),
         closed.vertical_opening(TARGET_BER), closed.ber_at(0.5, 0.0)),
        ("hand-tuned (PR 2)", hand.horizontal_opening_ui(TARGET_BER),
         hand.vertical_opening(TARGET_BER), hand.ber_at(0.5, 0.0)),
        (trained.label, trained_eye.horizontal_ui, trained_eye.vertical,
         trained_eye.ber_nominal),
    ]
    for label, horizontal, vertical, ber in rows:
        table.add_row(label, f"{horizontal:.3f}", f"{vertical:.3f}", f"{ber:.2e}")
    print(table.render())
    print(f"search spent {trained.n_evaluations} statistical-eye solves; "
          f"coarse-grid best was (post={trained.coarse_tx_post_db:g} dB, "
          f"peak={trained.coarse_ctle_peaking_db:g} dB) "
          f"at score {trained.coarse_eye.score:.3f} -> refined to "
          f"{trained.eye.score:.3f}")
    if trained.dfe_weights:
        taps = ", ".join(f"{w:+.3f}" for w in trained.dfe_weights)
        print(f"adapted DFE taps: [{taps}]")
    print()


def cross_check_study() -> None:
    print("=== Bit-true cross-check (15 % slow oscillator, PRBS7) ===")
    offset = 0.15
    channel = LossyLineChannel.for_loss_at_nyquist(10.0)
    budget = CdrJitterBudget(dj_ui_pp=0.0, rj_ui_rms=0.0,
                             osc_sigma_ui_per_bit=0.0,
                             frequency_offset=offset)
    trainer = LinkTrainer(
        LinkConfig(channel=channel),
        budget=budget,
        run_lengths=measured_run_distribution(prbs_sequence(7, 127), max_run=7),
    )
    trained = trainer.train()
    config = CdrChannelConfig(
        oscillator=GccoParameters(jitter_sigma_fraction=0.0),
        frequency_offset=offset)
    check = trainer.cross_check(trained, config=config, n_bits=20000)
    print(f"trained lineup: {trained.label}")
    print(f"bit-true ({check.backend} backend): {check.errors} errors in "
          f"{check.compared_bits} bits -> BER {check.measured_ber:.3e}")
    print(f"statistical objective predicts {check.predicted_ber:.3e} "
          f"(ratio {check.ratio:.2f}, within 2x band: {check.within(2.0)})")
    print()


def sweep_study() -> None:
    print("=== link_training_sweep: trained vs fixed across channel loss ===")
    losses = np.array([8.0, 12.0, 16.0, 18.0])
    result = link_training_sweep(losses, n_bits=2000, seed=7)
    table = TextTable([
        "loss @ Nyquist", "fixed BER", "fixed V", "trained V",
        "trained lineup", "solves",
    ])
    for index, loss in enumerate(losses):
        lineup = (f"post={result.trained_tx_post_db[index]:g} dB, "
                  f"peak={result.trained_ctle_peaking_db[index]:g} dB")
        table.add_row(
            f"{loss:.0f} dB",
            f"{result.ber[index]:.2e}",
            f"{result.fixed_vertical[index]:.3f}",
            f"{result.trained_vertical[index]:.3f}",
            lineup,
            f"{result.training_evaluations[index]:.0f}",
        )
    print(table.render())
    never_worse = bool(np.all(result.vertical_gain >= 0.0))
    print(f"training never shrinks the vertical opening: {never_worse}")


def main() -> None:
    training_study()
    cross_check_study()
    sweep_study()


if __name__ == "__main__":
    main()
