"""Multi-channel receiver study (paper Figure 6).

Builds the four-channel receiver: one shared PLL locks to the bit rate and
distributes its control current; each channel runs a matched gated oscillator
with mirror/oscillator mismatch and its own lane skew.  The example prints the
shared-PLL acquisition, the per-channel statistical BER, a short behavioural
run of every channel, and the elastic-buffer budget towards the system clock.

Run with:  python examples/multichannel_receiver.py
"""

import numpy as np

from repro.core import ElasticBuffer, MultiChannelConfig, MultiChannelReceiver
from repro.pll import SharedPll
from repro.reporting import TextTable


def main() -> None:
    rng = np.random.default_rng(2026)
    config = MultiChannelConfig(n_channels=4, transmitter_offset_ppm=50.0)
    receiver = MultiChannelReceiver(config, rng=rng)

    # --- shared PLL acquisition -------------------------------------------
    pll_result = SharedPll(config.pll).simulate(duration_s=20.0e-6, time_step_s=2.0e-9)
    print(f"Shared PLL: locked to {pll_result.final_frequency_hz / 1e9:.4f} GHz "
          f"(error {pll_result.final_frequency_error * 1e6:+.1f} ppm) "
          f"in {pll_result.lock_time_s() * 1e6:.1f} us, "
          f"control current {pll_result.final_control_current_a * 1e6:.1f} uA\n")

    # --- per-channel statistical BER ---------------------------------------
    report = receiver.statistical_report()
    table = TextTable(
        headers=["channel", "frequency offset [ppm]", "lane skew [UI]", "BER"],
        title="Per-channel statistical BER (Table 1 jitter, matched oscillators)")
    for channel in report.channels:
        table.add_row(channel.channel_index, f"{channel.frequency_offset_ppm:+.1f}",
                      f"{channel.lane_skew_ui:.1f}", f"{channel.ber:.2e}")
    print(table.render())
    print(f"all channels meet 1e-12: {report.all_channels_pass}\n")

    # --- behavioural cross-check (fast-path backend) ------------------------
    behavioural = receiver.behavioural_run(n_bits=800, backend="fast")
    table = TextTable(headers=["channel", "errors", "bits", "lane skew [UI]"],
                      title="Behavioural run (800 PRBS7 bits per channel, fast backend)")
    for index, measurement in enumerate(behavioural.measurements):
        table.add_row(index, measurement.errors, measurement.compared_bits,
                      f"{behavioural.lane_skews_ui[index]:.1f}")
    print(table.render())
    print(f"aggregate behavioural BER: {behavioural.aggregate_ber:.2e}\n")

    # --- parallel lane sweep through the sweep runner ------------------------
    from repro.sweep import multichannel_sweep
    sweep = multichannel_sweep(config, n_bits=800, backend="fast", seed=2026)
    print("parallel sweep (SeedSequence-spawned lanes): "
          f"errors per lane {sweep.errors.tolist()}, "
          f"aggregate BER {sweep.aggregate_ber:.2e}\n")

    # --- elastic buffer towards the system clock ----------------------------
    stats = ElasticBuffer.simulate_clock_domains(
        50_000,
        write_rate_hz=250.0e6 * (1.0 + 100e-6),  # recovered byte clock, +100 ppm
        read_rate_hz=250.0e6,                    # system byte clock
        depth=16,
    )
    print("Elastic buffer (depth 16, +100 ppm): occupancy "
          f"{stats.min_occupancy}..{stats.max_occupancy}, slips {stats.slips}")


if __name__ == "__main__":
    main()
