"""Telemetry-profiled link-training sweep: where does the time go?

Runs one end-to-end link-training sweep (the `link_training_study`
workload: training the TX-FFE x RX-CTLE plane across a channel-loss
axis, bit-true fixed-lineup cross-check per point) under a
:mod:`repro.telemetry` trace, then prints the full
:func:`repro.telemetry.report.summarize` report:

* the **stage breakdown** — sweep chunks, statistical-eye solves,
  training loops, fastpath batch runs, event-kernel runs — with counts,
  totals and share of traced time;
* the **cache hit rates** — :class:`repro.link.LinkPath` pulse-response /
  pattern-displacement caches and the
  :class:`~repro.link.training.objective.StatEyeObjective` memo (how many
  budget-charged solves memoisation saved);
* the **pool health** of the resilient runner (task modes, chunks,
  retries) and the remaining counters (events, gate evaluations, bits).

Tracing is read-only instrumentation: the sweep's numbers are
bit-identical with the trace on or off (``tests/telemetry``), so this
profile is free to run on real studies.  The trace is also written to
``telemetry_profile_trace.jsonl`` and re-summarizable offline with::

    PYTHONPATH=src python -m repro.telemetry.report telemetry_profile_trace.jsonl

Run with:  PYTHONPATH=src python examples/telemetry_profile.py
"""

import numpy as np

from repro import telemetry
from repro.sweep import link_training_sweep
from repro.telemetry.report import summarize

LOSS_DB_VALUES = np.array([10.0, 14.0])
TRACE_PATH = "telemetry_profile_trace.jsonl"


def main() -> None:
    print(
        "profiling link_training_sweep over "
        f"{LOSS_DB_VALUES.size} loss points (traced)..."
    )
    with telemetry.trace("link-training-sweep") as tracer:
        result = link_training_sweep(
            LOSS_DB_VALUES, n_bits=1000, seed=7, workers=1
        )

    for loss_db, trained, fixed in zip(
        result.loss_db_values, result.trained_vertical, result.fixed_vertical
    ):
        print(
            f"  loss {loss_db:4.1f} dB: trained vertical opening "
            f"{trained:.4f} (fixed {fixed:.4f})"
        )
    print()
    print(summarize(tracer))

    path = tracer.write_jsonl(TRACE_PATH)
    print()
    print(f"trace written to {path} (re-summarize with "
          f"`python -m repro.telemetry.report {path}`)")


if __name__ == "__main__":
    main()
