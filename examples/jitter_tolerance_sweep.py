"""Jitter- and frequency-tolerance study with the statistical model.

Sweeps sinusoidal-jitter amplitude/frequency (the paper's Figures 9/10) and
frequency offset, for both the nominal and the improved sampling tap, and
compares the resulting tolerance against the InfiniBand mask (Figure 5).

Run with:  python examples/jitter_tolerance_sweep.py
"""

import numpy as np

from repro import units
from repro.reporting import Series, TextTable
from repro.specs import infiniband_mask
from repro.statistical import (
    IMPROVED_SAMPLING_PHASE_UI,
    CdrJitterBudget,
    ber_vs_frequency_offset,
    ber_vs_sinusoidal_jitter,
    frequency_tolerance,
    jitter_tolerance_curve,
)

GRID = 4.0e-3


def ber_surface() -> None:
    """Figure 9/10-style BER table versus SJ frequency and amplitude."""
    normalised = np.array([1e-4, 1e-3, 1e-2, 0.1, 0.5])
    amplitudes = np.array([0.1, 0.3, 0.6])
    for offset, label in ((0.0, "no frequency offset"), (0.01, "1 % frequency offset")):
        surface = ber_vs_sinusoidal_jitter(
            normalised * units.DEFAULT_BIT_RATE, amplitudes,
            budget=CdrJitterBudget(frequency_offset=offset), grid_step_ui=GRID)
        table = TextTable(
            headers=["SJ amplitude [UIpp]"] + [f"f/fb={f:g}" for f in normalised],
            title=f"BER vs sinusoidal jitter ({label})")
        for row, amplitude in enumerate(amplitudes):
            table.add_row(f"{amplitude:.1f}",
                          *[f"{surface[row, col]:.1e}" for col in range(surface.shape[1])])
        print(table.render())


def tolerance_vs_mask() -> None:
    """Jitter tolerance at 1e-12 versus the InfiniBand mask."""
    mask = infiniband_mask()
    frequencies = mask.frequencies_for_sweep(points_per_decade=2)
    curve = jitter_tolerance_curve(frequencies, grid_step_ui=GRID, max_amplitude_ui_pp=20.0)
    series = Series("Jitter tolerance vs InfiniBand mask", "frequency_hz",
                    "tolerance_minus_mask_ui")
    margins = curve.margin_to_mask(np.asarray(mask.amplitude_ui_pp(frequencies)))
    series.extend(frequencies, margins)
    print(series.render())
    print(f"mask compliance: {'PASS' if np.all(margins >= 0) else 'FAIL'}\n")


def frequency_tolerance_study() -> None:
    """Figure 10 / 17-style frequency-offset study for both sampling taps."""
    offsets = np.array([0.0, 0.005, 0.01, 0.02, 0.04])
    budget = CdrJitterBudget(sj_amplitude_ui_pp=0.3, sj_frequency_hz=1.25e9)
    nominal = ber_vs_frequency_offset(offsets, budget=budget, grid_step_ui=GRID)
    improved = ber_vs_frequency_offset(offsets, budget=budget, grid_step_ui=GRID,
                                       sampling_phase_ui=IMPROVED_SAMPLING_PHASE_UI)
    table = TextTable(headers=["frequency offset", "BER nominal tap", "BER improved tap"],
                      title="Frequency offset sensitivity (SJ 0.3 UIpp at fb/2)")
    for index, offset in enumerate(offsets):
        table.add_row(f"{offset:+.1%}", f"{nominal[index]:.1e}", f"{improved[index]:.1e}")
    print(table.render())

    ftol = frequency_tolerance(grid_step_ui=GRID, max_offset=0.1, resolution=5e-4)
    print(f"Frequency tolerance (Table 1 jitter only): "
          f"+{ftol.positive_tolerance_ppm:.0f} / -{ftol.negative_tolerance_ppm:.0f} ppm "
          f"(specification: +/-100 ppm)")


def main() -> None:
    ber_surface()
    tolerance_vs_mask()
    frequency_tolerance_study()


if __name__ == "__main__":
    main()
