"""Jitter- and frequency-tolerance study: statistical model + time domain.

Sweeps sinusoidal-jitter amplitude/frequency (the paper's Figures 9/10) and
frequency offset, for both the nominal and the improved sampling tap, and
compares the resulting tolerance against the InfiniBand mask (Figure 5).
The final section runs the same studies in the time domain through the
declarative :mod:`repro.experiments` engine: a frozen ``ScenarioSpec`` plus
``ParameterAxis`` objects describe each study, ``run_grid`` /
``run_tolerance_search`` execute it on the deterministic parallel pool, and
the serializable ``SweepResult`` renders straight through
:mod:`repro.reporting` — the measured companion of the analytic surfaces.

Run with:  python examples/jitter_tolerance_sweep.py [--backend auto|event|fast]
"""

import argparse

import numpy as np

from repro import units
from repro.datapath.nrz import JitterSpec
from repro.experiments import (
    ParameterAxis,
    ScenarioSpec,
    StimulusSpec,
    ToleranceSearch,
    run_grid,
    run_tolerance_search,
)
from repro.fastpath.backends import AUTO_BACKEND, BACKENDS
from repro.reporting import Series, TextTable
from repro.specs import infiniband_mask
from repro.statistical import (
    IMPROVED_SAMPLING_PHASE_UI,
    CdrJitterBudget,
    ber_vs_frequency_offset,
    ber_vs_sinusoidal_jitter,
    frequency_tolerance,
    jitter_tolerance_curve,
)

GRID = 4.0e-3


def ber_surface() -> None:
    """Figure 9/10-style BER table versus SJ frequency and amplitude."""
    normalised = np.array([1e-4, 1e-3, 1e-2, 0.1, 0.5])
    amplitudes = np.array([0.1, 0.3, 0.6])
    for offset, label in ((0.0, "no frequency offset"), (0.01, "1 % frequency offset")):
        surface = ber_vs_sinusoidal_jitter(
            normalised * units.DEFAULT_BIT_RATE, amplitudes,
            budget=CdrJitterBudget(frequency_offset=offset), grid_step_ui=GRID)
        table = TextTable(
            headers=["SJ amplitude [UIpp]"] + [f"f/fb={f:g}" for f in normalised],
            title=f"BER vs sinusoidal jitter ({label})")
        for row, amplitude in enumerate(amplitudes):
            table.add_row(f"{amplitude:.1f}",
                          *[f"{surface[row, col]:.1e}" for col in range(surface.shape[1])])
        print(table.render())


def tolerance_vs_mask() -> None:
    """Jitter tolerance at 1e-12 versus the InfiniBand mask."""
    mask = infiniband_mask()
    frequencies = mask.frequencies_for_sweep(points_per_decade=2)
    curve = jitter_tolerance_curve(frequencies, grid_step_ui=GRID, max_amplitude_ui_pp=20.0)
    series = Series("Jitter tolerance vs InfiniBand mask", "frequency_hz",
                    "tolerance_minus_mask_ui")
    margins = curve.margin_to_mask(np.asarray(mask.amplitude_ui_pp(frequencies)))
    series.extend(frequencies, margins)
    print(series.render())
    print(f"mask compliance: {'PASS' if np.all(margins >= 0) else 'FAIL'}\n")


def frequency_tolerance_study() -> None:
    """Figure 10 / 17-style frequency-offset study for both sampling taps."""
    offsets = np.array([0.0, 0.005, 0.01, 0.02, 0.04])
    budget = CdrJitterBudget(sj_amplitude_ui_pp=0.3, sj_frequency_hz=1.25e9)
    nominal = ber_vs_frequency_offset(offsets, budget=budget, grid_step_ui=GRID)
    improved = ber_vs_frequency_offset(offsets, budget=budget, grid_step_ui=GRID,
                                       sampling_phase_ui=IMPROVED_SAMPLING_PHASE_UI)
    table = TextTable(headers=["frequency offset", "BER nominal tap", "BER improved tap"],
                      title="Frequency offset sensitivity (SJ 0.3 UIpp at fb/2)")
    for index, offset in enumerate(offsets):
        table.add_row(f"{offset:+.1%}", f"{nominal[index]:.1e}", f"{improved[index]:.1e}")
    print(table.render())

    ftol = frequency_tolerance(grid_step_ui=GRID, max_offset=0.1, resolution=5e-4)
    print("Frequency tolerance (Table 1 jitter only): "
          f"+{ftol.positive_tolerance_ppm:.0f} / -{ftol.negative_tolerance_ppm:.0f} ppm "
          "(specification: +/-100 ppm)")


def time_domain_sweeps(backend: str) -> None:
    """Measured BER-vs-SJ surface and tolerance as declarative studies."""
    base = JitterSpec(dj_ui_pp=0.2, rj_ui_rms=0.01)
    normalised = np.array([1e-3, 1e-2, 0.3])

    # One frozen scenario + axes fully describe the study; the engine
    # resolves the backend per point (``auto`` keeps the fast path while
    # the configuration stays exactly equivalent) and runs the grid on
    # the deterministic parallel pool.
    scenario = ScenarioSpec(
        stimulus=StimulusSpec(kind="prbs", n_bits=1500, prbs_order=7),
        jitter=base,
        backend=backend,
    )
    surface = run_grid(
        scenario,
        [ParameterAxis("sj_amplitude_ui_pp", (0.1, 0.6, 1.0)),
         ParameterAxis("sj_frequency_hz",
                       tuple(normalised * units.DEFAULT_BIT_RATE))],
        name="Time-domain bit errors over 1500 PRBS7 bits",
        seed=9)
    print(TextTable.from_sweep_result(
        surface,
        title=f"{surface.name} (backend={backend} -> "
              f"{surface.point_backends[0]})").render())

    tolerance = run_tolerance_search(
        ScenarioSpec(stimulus=StimulusSpec(kind="prbs", n_bits=800),
                     jitter=base, backend=backend),
        [ParameterAxis("sj_frequency_hz", (2.5e5, 2.5e7, 7.5e8))],
        ToleranceSearch(axis="sj_amplitude_ui_pp", maximum=8.0,
                        target_errors=1),
        name="Measured SJ tolerance (<=1 error / 800 bits)",
        seed=5)
    print(Series.from_sweep_result(tolerance, "sj_amplitude_ui_pp").render())
    # The engine result serializes losslessly — e.g. for the benchmark
    # harness: tolerance.save("jtol.json"); SweepResult.load("jtol.json").


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend",
                        choices=sorted(BACKENDS) + [AUTO_BACKEND],
                        default=AUTO_BACKEND,
                        help="time-domain channel backend (default: auto, "
                             "resolved per scenario by the registry)")
    arguments = parser.parse_args()
    ber_surface()
    tolerance_vs_mask()
    frequency_tolerance_study()
    time_domain_sweeps(arguments.backend)


if __name__ == "__main__":
    main()
