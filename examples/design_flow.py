"""Top-down design flow: from system specifications to a verified channel.

Reproduces the paper's methodology end to end:

1. statistical feasibility (BER, jitter tolerance, frequency tolerance),
2. phase-noise / power budgeting of the gated oscillator (equation 1),
3. behavioural verification of the gate-level channel,
4. compliance summary against the InfiniBand-style specification and the
   5 mW/Gbit/s power target.

Run with:  python examples/design_flow.py
"""

import numpy as np

from repro.core import run_design_flow
from repro.phasenoise import phase_noise_power_tradeoff
from repro.jitter.accumulation import OscillatorJitterBudget
from repro.reporting import TextTable


def main() -> None:
    report = run_design_flow(behavioural_bits=1500, rng=np.random.default_rng(7))
    print("\n".join(report.summary_lines()))
    print()

    # The Figure 11 trade-off behind stage 2: kappa versus oscillator power.
    budget = OscillatorJitterBudget()
    curve = phase_noise_power_tradeoff()
    table = TextTable(
        headers=["oscillator power [mW]", "kappa (Hajimiri)", "kappa (McNeill)",
                 "CID-5 jitter [UIrms]", "meets 0.01 UI budget"],
        title="Phase-noise / power trade-off (Figure 11)",
    )
    for point in curve.points[::10]:
        table.add_row(
            f"{point.oscillator_power_w * 1e3:.3f}",
            f"{point.kappa_hajimiri:.2e}",
            f"{point.kappa_mcneill:.2e}",
            f"{point.accumulated_jitter_ui_rms:.4f}",
            "yes" if point.meets_budget(budget) else "no",
        )
    print(table.render())

    # Jitter-tolerance curve versus the mask (Figure 5 / 9).
    table = TextTable(
        headers=["SJ frequency [Hz]", "tolerated amplitude [UIpp]"],
        title=f"Jitter tolerance at BER {report.compliance.target_ber:.0e}",
    )
    for point in report.jtol_curve.points:
        table.add_row(f"{point.frequency_hz:.3g}", f"{point.amplitude_ui_pp:.2f}")
    print(table.render())

    verdict = "PASS" if report.compliance.overall_pass else "FAIL"
    print(f"Overall compliance: {verdict} "
          f"({report.power_report.power_per_gbps_mw:.2f} mW/Gbit/s, "
          f"FTOL {report.ftol.symmetric_tolerance_ppm:.0f} ppm)")


if __name__ == "__main__":
    main()
