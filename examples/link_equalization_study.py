"""Link front end study: lossy channel, equalization, and the CDR behind it.

Demonstrates the `repro.link` subsystem end to end:

1. BER versus channel loss at Nyquist, unequalized versus FFE+CTLE, on the
   deterministic parallel sweep runner (both runs use the same seeds, so
   the comparison is paired) — equalization reopening the closed eye shows
   up as a monotone BER improvement at every loss.
2. The equalization-ablation ladder at one harsh loss point
   (none / FFE / CTLE / FFE+CTLE / +DFE).
3. The transmit-side eye opening of the raw and equalized streams against
   the InfiniBand receiver eye template.
4. The statistical hand-off: the channel's data-dependent jitter is fitted
   with the dual-Dirac model and folded into the analytic BER model's
   budget, giving sub-1e-12 predictions no time-domain run can reach.

Run with:  PYTHONPATH=src python examples/link_equalization_study.py
"""

import numpy as np

from repro.datapath import prbs_sequence
from repro.link import (
    LinkCdrChannel,
    LinkConfig,
    LinkPath,
    LmsDfe,
    LossyLineChannel,
    RxCtle,
    TxFfe,
    stream_eye_diagram,
)
from repro.reporting import TextTable
from repro.specs import infiniband_rx_eye_mask
from repro.statistical.ber_model import CdrJitterBudget, GatedOscillatorBerModel
from repro.sweep import (
    LINK_RESIDUAL_JITTER_SPEC,
    ber_vs_channel_loss_sweep,
    equalization_ablation_sweep,
)

LOSSES_DB = np.array([6.0, 10.0, 14.0, 16.0, 18.0])
HARSH_LOSS_DB = 16.0
N_BITS = 3000


def equalized_link() -> LinkConfig:
    return LinkConfig(tx_ffe=TxFfe.de_emphasis(post_db=3.5),
                      rx_ctle=RxCtle(peaking_db=6.0))


def ber_vs_loss_study() -> None:
    print("=== BER vs channel loss (PRBS7, %d bits/point, fast backend) ===" % N_BITS)
    raw = ber_vs_channel_loss_sweep(LOSSES_DB, n_bits=N_BITS, seed=7)
    equalized = ber_vs_channel_loss_sweep(LOSSES_DB, link=equalized_link(),
                                          n_bits=N_BITS, seed=7)
    table = TextTable(["loss @ Nyquist", "unequalized BER", "FFE+CTLE BER"])
    for index, loss in enumerate(LOSSES_DB):
        table.add_row(f"{loss:.0f} dB",
                      f"{raw.ber[0, index]:.2e}",
                      f"{equalized.ber[0, index]:.2e}")
    print(table.render())
    improvement = np.all(equalized.errors <= raw.errors)
    print(f"equalization never degrades a point: {improvement}")
    print(f"total errors: raw {raw.total_errors}, equalized {equalized.total_errors}\n")


def ablation_study() -> None:
    print(f"=== Equalization ablation at {HARSH_LOSS_DB:.0f} dB loss ===")
    result = equalization_ablation_sweep(HARSH_LOSS_DB, n_bits=N_BITS, seed=7,
                                         dfe=LmsDfe())
    table = TextTable(["line-up", "errors", "BER"])
    for label, errors, ber in zip(result.labels, result.errors, result.ber):
        table.add_row(label, str(int(errors)), f"{ber:.2e}")
    print(table.render())
    print()


def eye_mask_study() -> None:
    print(f"=== Transmit-side eye vs InfiniBand template ({HARSH_LOSS_DB:.0f} dB) ===")
    bits = prbs_sequence(7, N_BITS)
    channel = LossyLineChannel.for_loss_at_nyquist(HARSH_LOSS_DB)
    mask = infiniband_rx_eye_mask()
    table = TextTable(["line-up", "eye opening",
                       "mask (>= %.2f UI)" % mask.minimum_opening_ui])
    for label, link in [("unequalized", LinkConfig(channel=channel)),
                        ("FFE+CTLE", equalized_link().with_channel(channel))]:
        result = LinkCdrChannel(link).run(
            bits, jitter=LINK_RESIDUAL_JITTER_SPEC,
            rng=np.random.default_rng(7), pattern_period=127)
        opening = stream_eye_diagram(result.stream).eye_opening_ui()
        verdict = "PASS" if mask.passes(opening) else "FAIL"
        table.add_row(label, f"{opening:.3f} UI", verdict)
    print(table.render())
    print()


def statistical_handoff_study() -> None:
    print("=== Dual-Dirac DDJ fit -> analytic BER model ===")
    bits = prbs_sequence(9)
    # Table 1 with DJ zeroed: the deterministic part now comes from ISI.
    base = CdrJitterBudget(dj_ui_pp=0.0, rj_ui_rms=0.021)
    table = TextTable(["loss", "line-up", "DDJ DJ(dd)", "analytic BER"])
    for loss in (6.0, 12.0):
        channel = LossyLineChannel.for_loss_at_nyquist(loss)
        for label, link in [("raw", LinkConfig(channel=channel)),
                            ("FFE+CTLE", equalized_link().with_channel(channel))]:
            path = LinkPath(link)
            fit = path.ddj_decomposition(bits)
            budget = path.jitter_budget(bits, base_budget=base)
            ber = GatedOscillatorBerModel(budget).ber()
            table.add_row(f"{loss:.0f} dB", label,
                          f"{fit.dj_pp_ui:.3f} UI", f"{ber:.2e}")
    print(table.render())


def main() -> None:
    ber_vs_loss_study()
    ablation_study()
    eye_mask_study()
    statistical_handoff_study()


if __name__ == "__main__":
    main()
