"""Waveform recording for event-driven simulations.

The VHDL flow in the paper dumps aligned data into a text file that is then
read into Matlab to plot the eye diagram (section 3.3b).  The Python
equivalent is the :class:`WaveformRecorder`: it subscribes to signals,
collects ``(time, value)`` pairs, and offers the edge-extraction and sampling
helpers the analysis layer (eye diagrams, BER counting, jitter measurement)
builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .signal import Signal

__all__ = ["Trace", "WaveformRecorder"]


@dataclass(slots=True)
class Trace:
    """Recorded history of a single signal.

    Storage is either growable lists (the live recorder appends on every
    event) or pre-built numpy arrays (the fast path wraps its edge arrays
    directly); all analysis helpers go through :meth:`as_arrays` and accept
    both.
    """

    name: str
    times_s: list[float] = field(default_factory=list)
    values: list = field(default_factory=list)

    def append(self, time_s: float, value) -> None:
        """Record a value change."""
        self.times_s.append(time_s)
        self.values.append(value)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the history as ``(times, values)`` numpy arrays."""
        return np.asarray(self.times_s, dtype=float), np.asarray(self.values)

    def edges(self, polarity: str = "any") -> np.ndarray:
        """Return the times of the requested edges of a binary trace.

        ``polarity`` is ``'rising'``, ``'falling'`` or ``'any'``.  The first
        recorded point (the initial value) never counts as an edge.
        """
        times, values = self.as_arrays()
        if times.size < 2:
            return np.zeros(0, dtype=float)
        values = values.astype(np.int64)
        previous = values[:-1]
        current = values[1:]
        if polarity == "rising":
            mask = (previous == 0) & (current == 1)
        elif polarity == "falling":
            mask = (previous == 1) & (current == 0)
        elif polarity == "any":
            mask = previous != current
        else:
            raise ValueError(f"unknown edge polarity {polarity!r}")
        return times[1:][mask]

    def value_at(self, time_s: float):
        """Return the recorded value in force at absolute time *time_s*."""
        times, values = self.as_arrays()
        if times.size == 0:
            raise ValueError(f"trace {self.name!r} is empty")
        index = int(np.searchsorted(times, time_s, side="right")) - 1
        index = max(index, 0)
        return values[index]

    def sample(self, sample_times_s: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value_at` over an array of sample times."""
        times, values = self.as_arrays()
        if times.size == 0:
            raise ValueError(f"trace {self.name!r} is empty")
        sample_times_s = np.asarray(sample_times_s, dtype=float)
        indices = np.searchsorted(times, sample_times_s, side="right") - 1
        indices = np.clip(indices, 0, times.size - 1)
        return values[indices]

    def intervals(self, polarity: str = "rising") -> np.ndarray:
        """Periods between consecutive edges of the requested polarity."""
        edge_times = self.edges(polarity)
        return np.diff(edge_times)


class WaveformRecorder:
    """Records value changes of a set of signals for post-processing."""

    def __init__(self) -> None:
        self._traces: dict[str, Trace] = {}

    def watch(self, signal: Signal, name: str | None = None) -> Trace:
        """Start recording *signal*; returns the (shared) :class:`Trace`."""
        key = name or signal.name
        if key in self._traces:
            return self._traces[key]
        trace = Trace(name=key)
        trace.append(signal.simulator.now, signal.value)
        self._traces[key] = trace

        def on_change(changed: Signal, time_s: float) -> None:
            trace.append(time_s, changed.value)

        signal.subscribe(on_change)
        return trace

    def __getitem__(self, name: str) -> Trace:
        return self._traces[name]

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def names(self) -> list[str]:
        """Names of all recorded traces."""
        return sorted(self._traces)

    def trace(self, name: str) -> Trace:
        """Return the trace recorded under *name* (KeyError if unknown)."""
        return self._traces[name]
