"""Signals with VHDL-style transport-delayed assignment.

A :class:`Signal` carries a value (any comparable Python object; the gate
library uses ints 0/1), notifies subscribers on value *changes* (VHDL events),
and supports ``transport`` assignment semantics: scheduling a new value at
time ``t`` cancels every previously scheduled transaction at or after ``t`` —
exactly the behaviour of the ``transport`` assignments in the paper's VHDL
model of the gated CCO (Figure 12).
"""

from __future__ import annotations

from typing import Callable

from .. import telemetry
from .._validation import require_non_negative
from .kernel import SimulationError, Simulator

__all__ = ["Signal", "Edge"]


class Edge:
    """Constants naming edge polarities."""

    RISING = "rising"
    FALLING = "falling"
    ANY = "any"


class _Transaction:
    """A pending scheduled value change on a signal."""

    __slots__ = ("time_s", "value", "cancelled")

    def __init__(self, time_s: float, value) -> None:
        self.time_s = time_s
        self.value = value
        self.cancelled = False


class Signal:
    """A simulated signal (wire) with transport-delay scheduling.

    Subscribers are stored as a tuple: dispatch in :meth:`_notify` iterates
    the immutable snapshot directly (no defensive copy per event), and
    subscription changes replace the tuple — the hot path is ``_notify``,
    which runs on every value change of every signal in a simulation.
    """

    __slots__ = ("_simulator", "name", "_value", "_subscribers", "_pending",
                 "last_event_time_s")

    def __init__(self, simulator: Simulator, name: str, initial=0) -> None:
        self._simulator = simulator
        self.name = name
        self._value = initial
        self._subscribers: tuple[Callable[["Signal", float], None], ...] = ()
        self._pending: list[_Transaction] = []
        self.last_event_time_s: float | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, value={self._value!r})"

    @property
    def value(self):
        """Current value of the signal."""
        return self._value

    @property
    def simulator(self) -> Simulator:
        """The simulator this signal belongs to."""
        return self._simulator

    # -- subscription --------------------------------------------------------

    def subscribe(self, callback: Callable[["Signal", float], None]) -> Callable[[], None]:
        """Register *callback(signal, time)* to run on every value change.

        Returns a function that unsubscribes the callback.
        """
        self._subscribers = self._subscribers + (callback,)

        def unsubscribe() -> None:
            subscribers = list(self._subscribers)
            try:
                subscribers.remove(callback)
            except ValueError:
                return
            self._subscribers = tuple(subscribers)

        return unsubscribe

    # -- assignment ----------------------------------------------------------

    def assign(self, value, delay_s: float = 0.0) -> None:
        """Schedule a transport-delayed assignment of *value* after *delay_s*.

        Any previously scheduled transaction at the same or a later time is
        cancelled (VHDL transport semantics).
        """
        require_non_negative("delay_s", delay_s)
        target_time = self._simulator.now + delay_s
        for transaction in self._pending:
            if not transaction.cancelled and transaction.time_s >= target_time:
                transaction.cancelled = True
        transaction = _Transaction(target_time, value)
        self._pending.append(transaction)
        self._simulator.call_at(target_time, lambda: self._apply(transaction))

    def force(self, value) -> None:
        """Immediately set the signal value (used for initial conditions)."""
        if value != self._value:
            self._value = value
            self.last_event_time_s = self._simulator.now
            self._notify()

    def drive(self, times_s, values) -> None:
        """Batch stimulus injection: force each value at its absolute time.

        Equivalent to one ``call_at(t, lambda: force(v))`` per sample but
        with a single self-rescheduling callback instead of a closure and a
        heap entry per edge — the stimulus costs one pending event however
        long the drive pattern is.  Times must be non-decreasing and not in
        the past.
        """
        times_list = [float(t) for t in times_s]
        values_list = [int(v) for v in values]
        if len(times_list) != len(values_list):
            raise SimulationError("drive() needs equally long times and values")
        if not times_list:
            return
        if any(later < earlier
               for earlier, later in zip(times_list, times_list[1:])):
            raise SimulationError("drive() times must be non-decreasing")
        index = 0

        def fire() -> None:
            nonlocal index
            self.force(values_list[index])
            index += 1
            if index < len(times_list):
                self._simulator.call_at(times_list[index], fire)

        self._simulator.call_at(times_list[0], fire)

    def _apply(self, transaction: _Transaction) -> None:
        if transaction in self._pending:
            self._pending.remove(transaction)
        if transaction.cancelled:
            return
        if transaction.value == self._value:
            return
        self._value = transaction.value
        self.last_event_time_s = self._simulator.now
        self._notify()

    def _notify(self) -> None:
        # The tuple is an immutable snapshot: callbacks that (un)subscribe
        # during dispatch replace it without affecting this iteration.
        # Each dispatched callback is one gate/process evaluation; the
        # disabled-telemetry cost is the single truthiness check below.
        tracer = telemetry.ACTIVE
        if tracer:
            tracer.count("kernel.gate_evaluations", len(self._subscribers))
        now = self._simulator.now
        for callback in self._subscribers:
            callback(self, now)

    # -- helpers -------------------------------------------------------------

    def on_edge(self, callback: Callable[["Signal", float], None],
                polarity: str = Edge.RISING) -> Callable[[], None]:
        """Subscribe to a particular edge polarity of a binary signal."""
        if polarity not in (Edge.RISING, Edge.FALLING, Edge.ANY):
            raise SimulationError(f"unknown edge polarity {polarity!r}")

        def filtered(signal: "Signal", time_s: float) -> None:
            if polarity == Edge.ANY:
                callback(signal, time_s)
            elif polarity == Edge.RISING and signal.value == 1:
                callback(signal, time_s)
            elif polarity == Edge.FALLING and signal.value == 0:
                callback(signal, time_s)

        return self.subscribe(filtered)

    def pending_transactions(self) -> list[tuple[float, object]]:
        """Return the (time, value) pairs currently scheduled (for inspection)."""
        return [(t.time_s, t.value) for t in self._pending if not t.cancelled]


def bus(simulator: Simulator, prefix: str, width: int, initial=0) -> list[Signal]:
    """Create a list of *width* signals named ``prefix[i]``."""
    return [Signal(simulator, f"{prefix}[{index}]", initial) for index in range(width)]
