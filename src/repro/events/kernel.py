"""Discrete-event simulation kernel.

This is the Python stand-in for the VHDL simulator the paper uses for
behavioural verification (section 3.3).  It provides the minimal but faithful
subset of VHDL semantics the gated-oscillator model in Figure 12 relies on:

* an event queue ordered by time (with a deterministic tie-break),
* signals with **transport-delayed** assignment (later pending transactions
  are cancelled when an earlier one is scheduled, exactly like VHDL
  ``transport`` assignments),
* processes written either as plain callbacks or as generators that ``yield``
  wait statements (:class:`WaitFor` a delay / :class:`WaitOn` a signal event).

The kernel is deliberately single-threaded and deterministic: given the same
seeded random generators in the gate models, two runs produce identical
waveforms, which is what makes the regression tests meaningful.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Generator

from .. import _kernels, telemetry
from .._validation import require_non_negative

__all__ = [
    "Simulator",
    "WaitFor",
    "WaitOn",
    "Process",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for scheduling errors (negative delays, running past the horizon...)."""


@dataclass(frozen=True)
class WaitFor:
    """Process wait statement: suspend for a fixed simulated delay (seconds)."""

    delay_s: float

    def __post_init__(self) -> None:
        require_non_negative("delay_s", self.delay_s)


@dataclass(frozen=True)
class WaitOn:
    """Process wait statement: suspend until any of the given signals has an event."""

    signals: tuple

    def __init__(self, *signals) -> None:
        if not signals:
            raise ValueError("WaitOn needs at least one signal")
        object.__setattr__(self, "signals", tuple(signals))


class Process:
    """A generator-based simulation process.

    The generator yields :class:`WaitFor` / :class:`WaitOn` objects; the
    kernel resumes it when the wait condition is met.  The process ends when
    the generator returns.
    """

    __slots__ = ("_simulator", "_generator", "name", "finished",
                 "_pending_unsubscribe")

    def __init__(self, simulator: "Simulator", generator: Generator, name: str = "") -> None:
        self._simulator = simulator
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self._pending_unsubscribe: list[Callable[[], None]] = []

    def _resume(self) -> None:
        for unsubscribe in self._pending_unsubscribe:
            unsubscribe()
        self._pending_unsubscribe.clear()
        if self.finished:
            return
        try:
            statement = next(self._generator)
        except StopIteration:
            self.finished = True
            return
        self._wait(statement)

    def _wait(self, statement) -> None:
        if isinstance(statement, WaitFor):
            self._simulator.call_after(statement.delay_s, self._resume)
            return
        if isinstance(statement, WaitOn):
            fired = {"done": False}

            def on_event(_signal, _time) -> None:
                if fired["done"]:
                    return
                fired["done"] = True
                # Resume in a fresh event so all same-delta updates settle first.
                self._simulator.call_after(0.0, self._resume)

            for signal in statement.signals:
                unsubscribe = signal.subscribe(on_event)
                self._pending_unsubscribe.append(unsubscribe)
            return
        raise SimulationError(
            f"process {self.name!r} yielded {statement!r}; expected WaitFor or WaitOn"
        )


class Simulator:
    """Event-driven simulator with an absolute-time event queue.

    *kernel_tier* selects the drain-loop implementation for :meth:`run` /
    :meth:`run_until` (see :mod:`repro._kernels`): ``"auto"`` (default)
    uses the fast scalar drain, ``"reference"`` the pinned per-event
    :meth:`step` loop.  Both execute the same events in the same order —
    gate processes are arbitrary Python callbacks, so the compiled tier
    does not apply here and ``"jit"`` resolves to the scalar drain.
    """

    def __init__(self, kernel_tier: str = _kernels.TIER_AUTO) -> None:
        _kernels.resolve_tier(kernel_tier, jit_capable=False)  # validate eagerly
        self.kernel_tier = kernel_tier
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processes: list[Process] = []
        self._started = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def call_at(self, time_s: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* at absolute time *time_s* (must not be in the past)."""
        if time_s < self._now - 1.0e-18:
            raise SimulationError(
                f"cannot schedule an event at {time_s!r}s, current time is {self._now!r}s"
            )
        heapq.heappush(self._queue, (max(time_s, self._now), next(self._sequence), callback))

    def call_after(self, delay_s: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* after *delay_s* seconds of simulated time."""
        require_non_negative("delay_s", delay_s)
        self.call_at(self._now + delay_s, callback)

    def add_process(self, generator_function: Callable[..., Generator], *args,
                    name: str = "", **kwargs) -> Process:
        """Register a generator-based process; it starts at the current time."""
        process = Process(self, generator_function(*args, **kwargs),
                          name=name or generator_function.__name__)
        self._processes.append(process)
        self.call_after(0.0, process._resume)
        return process

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event; return False when the queue is empty."""
        if not self._queue:
            return False
        time_s, _seq, callback = heapq.heappop(self._queue)
        self._now = time_s
        callback()
        return True

    def drain_until_reference(self, stop_time_s: float,
                              max_events: int | None) -> tuple[int, bool]:
        """Pinned per-event stepping loop behind :meth:`run_until`.

        The ``"reference"`` kernel tier; the fast drain in
        :mod:`repro._kernels.scalar` must match it event for event.
        Returns ``(executed, exceeded)``.
        """
        executed = 0
        while self._queue and self._queue[0][0] <= stop_time_s:
            if max_events is not None and executed >= max_events:
                return executed, True
            self.step()
            executed += 1
        return executed, False

    def drain_reference(self, max_events: int) -> tuple[int, bool]:
        """Pinned per-event stepping loop behind :meth:`run` (reference tier)."""
        executed = 0
        while self._queue:
            if executed >= max_events:
                return executed, True
            self.step()
            executed += 1
        return executed, False

    def run_until(self, stop_time_s: float, max_events: int | None = None) -> int:
        """Run until simulated time reaches *stop_time_s*; return the event count.

        ``max_events`` guards against runaway zero-delay loops (an error is
        raised when it is exceeded).
        """
        executed, exceeded = _kernels.simulator_drain_until(
            self, stop_time_s, max_events, tier=self.kernel_tier)
        if exceeded:
            raise SimulationError(
                f"exceeded {max_events} events before reaching {stop_time_s!r}s "
                "(possible zero-delay loop)"
            )
        self._now = max(self._now, stop_time_s)
        tracer = telemetry.ACTIVE
        if tracer:
            tracer.count("kernel.events", executed)
        return executed

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains; return the number of executed events."""
        executed, exceeded = _kernels.simulator_drain(
            self, max_events, tier=self.kernel_tier)
        if exceeded:
            raise SimulationError(
                f"exceeded {max_events} events without draining the queue"
            )
        tracer = telemetry.ACTIVE
        if tracer:
            tracer.count("kernel.events", executed)
        return executed

    def pending_events(self) -> int:
        """Number of events currently scheduled."""
        return len(self._queue)
