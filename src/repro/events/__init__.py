"""Discrete-event simulation substrate (the Python equivalent of the paper's VHDL flow)."""

from .kernel import Process, SimulationError, Simulator, WaitFor, WaitOn
from .signal import Edge, Signal, bus
from .waveform import Trace, WaveformRecorder

__all__ = [
    "Process",
    "SimulationError",
    "Simulator",
    "WaitFor",
    "WaitOn",
    "Edge",
    "Signal",
    "bus",
    "Trace",
    "WaveformRecorder",
]
