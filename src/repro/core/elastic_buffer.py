"""Elastic buffer between the recovered-clock domain and the system clock.

In short-haul links the resynchronised data is transferred from the receive
clock domain to the system clock domain through an elastic buffer (paper
Figure 4).  The buffer absorbs the phase wander between the two clocks and —
because the recovered and system clocks may differ by up to the combined
reference tolerance (±100 ppm each) — it must occasionally skip or repeat
*idle* symbols to avoid overflow/underflow, which is why the fill level and
the overflow statistics matter for the system-level specification.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


from .._validation import require_positive, require_positive_int

__all__ = ["ElasticBufferStatistics", "ElasticBuffer"]


@dataclass(frozen=True)
class ElasticBufferStatistics:
    """Occupancy and slip statistics of an elastic buffer run."""

    writes: int
    reads: int
    overflows: int
    underflows: int
    max_occupancy: int
    min_occupancy: int

    @property
    def slips(self) -> int:
        """Total number of slip events (overflow drops + underflow repeats)."""
        return self.overflows + self.underflows


class ElasticBuffer:
    """A fixed-depth FIFO written by the recovered clock and read by the system clock.

    The buffer starts half full (the standard centring strategy): writes before
    the first read pre-fill it to ``depth // 2`` via :meth:`prime`.
    """

    def __init__(self, depth: int = 16) -> None:
        self.depth = require_positive_int("depth", depth)
        self._fifo: deque[int] = deque()
        self._writes = 0
        self._reads = 0
        self._overflows = 0
        self._underflows = 0
        self._max_occupancy = 0
        self._min_occupancy = depth
        self._last_read_value = 0

    # -- data-plane operations ----------------------------------------------

    def prime(self, fill_value: int = 0) -> None:
        """Pre-fill the buffer to half depth (centring)."""
        self._fifo.clear()
        for _ in range(self.depth // 2):
            self._fifo.append(int(fill_value))
        self._track_occupancy()

    def write(self, value: int) -> bool:
        """Write one symbol from the recovered-clock domain.

        Returns False (and counts an overflow) when the buffer is full; the
        symbol is dropped in that case.
        """
        self._writes += 1
        if len(self._fifo) >= self.depth:
            self._overflows += 1
            return False
        self._fifo.append(int(value))
        self._track_occupancy()
        return True

    def read(self) -> int:
        """Read one symbol in the system-clock domain.

        On underflow the last successfully read value is repeated and an
        underflow is counted.
        """
        self._reads += 1
        if not self._fifo:
            self._underflows += 1
            return self._last_read_value
        self._last_read_value = self._fifo.popleft()
        self._track_occupancy()
        return self._last_read_value

    @property
    def occupancy(self) -> int:
        """Number of symbols currently stored."""
        return len(self._fifo)

    def _track_occupancy(self) -> None:
        occupancy = len(self._fifo)
        self._max_occupancy = max(self._max_occupancy, occupancy)
        self._min_occupancy = min(self._min_occupancy, occupancy)

    # -- reporting -------------------------------------------------------------

    def statistics(self) -> ElasticBufferStatistics:
        """Return the accumulated occupancy / slip statistics."""
        return ElasticBufferStatistics(
            writes=self._writes,
            reads=self._reads,
            overflows=self._overflows,
            underflows=self._underflows,
            max_occupancy=self._max_occupancy,
            min_occupancy=min(self._min_occupancy, self._max_occupancy),
        )

    # -- system-level helper ------------------------------------------------------

    @staticmethod
    def simulate_clock_domains(
        n_symbols: int,
        *,
        write_rate_hz: float,
        read_rate_hz: float,
        depth: int = 16,
        fill_value: int = 0,
    ) -> ElasticBufferStatistics:
        """Stream *n_symbols* through a buffer with the two clock rates.

        A purely rate-based simulation: symbols are written at ``write_rate_hz``
        and read at ``read_rate_hz``; the returned statistics show whether the
        chosen depth absorbs the ppm difference over the run.
        """
        require_positive_int("n_symbols", n_symbols)
        require_positive("write_rate_hz", write_rate_hz)
        require_positive("read_rate_hz", read_rate_hz)
        buffer = ElasticBuffer(depth)
        buffer.prime(fill_value)

        write_period = 1.0 / write_rate_hz
        read_period = 1.0 / read_rate_hz
        next_write = write_period
        next_read = read_period + 0.5 * read_period  # offset read phase
        written = 0
        read_count = 0
        while written < n_symbols or read_count < n_symbols:
            if next_write <= next_read and written < n_symbols:
                buffer.write(fill_value)
                written += 1
                next_write += write_period
            elif read_count < n_symbols:
                buffer.read()
                read_count += 1
                next_read += read_period
            else:
                break
        return buffer.statistics()
