"""Gated current-controlled oscillator (GCCO) — re-exported for the core API.

The gate-level implementation lives in :mod:`repro.gates.ring`; it is exposed
here because the GCCO is the heart of the paper's contribution and users of
the core package expect to find it under ``repro.core.gcco``.
"""

from __future__ import annotations

from ..gates.ring import GatedRingOscillator, GccoParameters

__all__ = ["GatedRingOscillator", "GccoParameters"]
