"""Baseline clock-recovery schemes used for ablation comparisons.

The paper motivates the gated-oscillator topology against the mainstream
alternatives (PLL-, DLL- and phase-interpolator-based CDRs, section 1).  Two
baselines are provided for quantitative comparison with the same statistical
machinery as the GCCO model:

* :class:`FreeRunningOscillatorBer` — the ablation "what if we never gate":
  an oscillator at a fixed frequency offset samples the data open loop, so the
  phase error grows without bound and the BER degrades to ~0.5 unless the
  frequency match is essentially perfect.  This isolates the benefit of the
  per-edge re-phasing.
* :class:`PllCdrBerModel` — an idealised PLL-based CDR: it tracks frequency
  perfectly (no accumulation term) and low-pass-filters the input jitter with
  a first-order jitter-transfer function of the given bandwidth.  This is the
  reference topology the paper trades power against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import require_positive, require_positive_int
from ..statistical.ber_model import CdrJitterBudget
from ..statistical.qfunc import q_function
from ..jitter.pdf import DEFAULT_GRID_STEP_UI, delta_pdf, gaussian_pdf, sinusoidal_pdf, uniform_pdf

__all__ = ["FreeRunningOscillatorBer", "PllCdrBerModel"]


@dataclass(frozen=True)
class FreeRunningOscillatorBer:
    """BER of an *ungated* oscillator sampling a jittered data stream.

    Without gating, the sampling phase relative to the data drifts by the
    frequency offset every bit and is never corrected; over a burst of
    ``n_bits`` the phase error sweeps through the whole eye unless the offset
    is tiny.  The reported BER is the average over the burst.
    """

    budget: CdrJitterBudget
    n_bits: int = 10_000
    grid_step_ui: float = DEFAULT_GRID_STEP_UI

    def __post_init__(self) -> None:
        require_positive_int("n_bits", self.n_bits)
        require_positive("grid_step_ui", self.grid_step_ui)

    def _edge_pdf(self):
        budget = self.budget
        pdf = delta_pdf(0.0, self.grid_step_ui)
        if budget.dj_ui_pp > 0.0:
            pdf = pdf.convolve(uniform_pdf(budget.dj_ui_pp, self.grid_step_ui))
        if budget.rj_ui_rms > 0.0:
            pdf = pdf.convolve(gaussian_pdf(budget.rj_ui_rms, self.grid_step_ui))
        if budget.sj_amplitude_ui_pp > 0.0:
            pdf = pdf.convolve(sinusoidal_pdf(budget.sj_amplitude_ui_pp, self.grid_step_ui))
        return pdf

    def ber(self) -> float:
        """Average BER over the burst (transition density 0.5 assumed)."""
        budget = self.budget
        edge_pdf = self._edge_pdf()
        osc_sigma = budget.osc_sigma_ui_per_bit

        total = 0.0
        phase = 0.5  # start sampling mid-eye
        for bit_index in range(1, self.n_bits + 1):
            phase_error = phase + bit_index * budget.frequency_offset
            # Wrap into the current bit: the error relative to the nearest eye centre.
            wrapped = (phase_error % 1.0)
            sigma = osc_sigma * math.sqrt(bit_index) if osc_sigma > 0.0 else 0.0
            # Error if the sample lands past either eye edge (jittered by data jitter).
            margin_right = 1.0 - wrapped
            margin_left = wrapped
            p_right = _tail_probability(edge_pdf, margin_right, sigma)
            p_left = _tail_probability(edge_pdf, margin_left, sigma)
            # Errors only matter at transitions (density ~0.5 for random data).
            total += 0.5 * min(1.0, p_right + p_left)
        return total / self.n_bits


def _tail_probability(edge_pdf, margin: float, gaussian_sigma: float) -> float:
    """P(edge displacement + Gaussian > margin) for an edge-jitter PDF."""
    grid = edge_pdf.grid
    density = edge_pdf.density
    if gaussian_sigma > 0.0:
        tail = q_function((margin - grid) / gaussian_sigma)
    else:
        tail = (grid > margin).astype(float)
    return float(np.clip(np.sum(density * tail) * edge_pdf.step, 0.0, 1.0))


@dataclass(frozen=True)
class PllCdrBerModel:
    """Idealised PLL-based CDR used as the conventional-topology reference.

    The loop tracks frequency exactly and passes input jitter below its
    bandwidth (so only the *untracked* high-frequency part of the sinusoidal
    jitter stresses the sampler).  Random and deterministic jitter are assumed
    untracked (worst case).  The sampling instant sits mid-eye.
    """

    budget: CdrJitterBudget
    loop_bandwidth_hz: float = 4.0e6
    grid_step_ui: float = DEFAULT_GRID_STEP_UI

    def __post_init__(self) -> None:
        require_positive("loop_bandwidth_hz", self.loop_bandwidth_hz)
        require_positive("grid_step_ui", self.grid_step_ui)

    def untracked_sj_amplitude_ui_pp(self) -> float:
        """Sinusoidal-jitter amplitude left after the loop's jitter tracking."""
        budget = self.budget
        if budget.sj_amplitude_ui_pp == 0.0:
            return 0.0
        ratio = budget.sj_frequency_hz / self.loop_bandwidth_hz
        highpass = ratio / math.sqrt(1.0 + ratio * ratio)
        return budget.sj_amplitude_ui_pp * highpass

    def ber(self) -> float:
        """BER of the idealised PLL CDR under the configured jitter budget."""
        budget = self.budget
        step = self.grid_step_ui
        pdf = delta_pdf(0.0, step)
        if budget.dj_ui_pp > 0.0:
            pdf = pdf.convolve(uniform_pdf(budget.dj_ui_pp, step))
        if budget.rj_ui_rms > 0.0:
            pdf = pdf.convolve(gaussian_pdf(budget.rj_ui_rms, step))
        untracked = self.untracked_sj_amplitude_ui_pp()
        if untracked > 0.0:
            pdf = pdf.convolve(sinusoidal_pdf(untracked, step))
        # Mid-eye sampling: error when an edge moves more than 0.5 UI either way.
        p_right = pdf.probability_above(0.5)
        p_left = pdf.probability_below(-0.5)
        return float(min(1.0, 0.5 * (p_right + p_left) * 2.0))
