"""Behavioural (event-driven) simulation of one gated-oscillator CDR channel.

This is the Python counterpart of the paper's VHDL verification flow
(section 3.3): the full channel — jittered NRZ source, edge detector, gated
ring oscillator, decision flip-flop — is assembled from the gate-level models
and simulated event by event.  The result object exposes the recovered bits,
the bit-error measurement, the recovered-clock statistics and the
clock-aligned eye diagram (the paper's Figures 14 and 16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import telemetry
from .._validation import require_positive_int
from ..analysis.ber_counter import BerMeasurement, align_and_count
from ..analysis.eye import EyeDiagram
from ..analysis.timing import measure_frequency
from ..datapath.nrz import JitterSpec, NrzEdgeStream, generate_edge_times
from ..events.kernel import Simulator
from ..events.signal import Signal
from ..events.waveform import Trace, WaveformRecorder
from ..gates.cml import CmlTiming
from ..gates.ring import GatedRingOscillator
from ..gates.storage import CmlFlipFlop
from .config import CdrChannelConfig
from .edge_detector import GATE_DELAY_S, EdgeDetector

__all__ = ["BehavioralSimulationResult", "BehavioralCdrChannel"]


@dataclass
class BehavioralSimulationResult:
    """Waveforms and measurements from one behavioural channel simulation."""

    config: CdrChannelConfig
    transmitted_bits: np.ndarray
    stream: NrzEdgeStream
    recorder: WaveformRecorder
    sample_times_s: np.ndarray
    sampled_bits: np.ndarray
    duration_s: float

    # -- traces ----------------------------------------------------------------

    def trace(self, name: str) -> Trace:
        """Return a recorded trace: ``din``, ``ddin``, ``edet``, ``clock``, ``dout``."""
        return self.recorder.trace(name)

    # -- measurements ------------------------------------------------------------

    @property
    def data_pipeline_delay_s(self) -> float:
        """Delay from the transmitter to the sampler data input (DDIN).

        Edge-detector delay line plus the dummy gate that re-times DDIN; used
        to map each sampling decision back to the transmitted bit it decides.
        """
        return self.config.edge_detector_delay_s + GATE_DELAY_S

    def decisions_per_bit(self) -> tuple[np.ndarray, np.ndarray]:
        """Map every sampling decision to a transmitted-bit index.

        Returns ``(bit_indices, values)``: the index of the transmitted bit
        each decision corresponds to (by timing) and the decided value.
        """
        if self.sample_times_s.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.uint8)
        start = self.stream.start_time_s + self.data_pipeline_delay_s
        relative = (self.sample_times_s - start) / self.stream.bit_period_s
        indices = np.floor(relative).astype(np.int64)
        return indices, self.sampled_bits

    def ber(self) -> BerMeasurement:
        """Per-bit error measurement using timing-based alignment.

        Every sampling decision is attributed to the transmitted bit whose
        (delayed) unit interval it falls into; a bit decided wrongly, never
        decided (a missed sampling edge — the failure mode of long runs under
        frequency offset), or decided more than once with the wrong final
        value counts as one error.  This matches the per-bit semantics of the
        statistical model and is immune to the catastrophic misalignment a
        bit slip causes in sequence-alignment BER counting.  Timing-based
        attribution needs no alignment search, so unlike :meth:`sequence_ber`
        there is no ``max_offset`` parameter.
        """
        expected, got = self._aligned_comparison()
        errors = int(np.count_nonzero(got != expected))
        return BerMeasurement(errors=errors, compared_bits=int(expected.size))

    def _aligned_comparison(self) -> tuple[np.ndarray, np.ndarray]:
        """``(expected, decided)`` bit arrays of the timing-based alignment."""
        n_bits = int(self.transmitted_bits.size)
        if n_bits == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        indices, values = self.decisions_per_bit()
        decided = np.full(n_bits, -1, dtype=np.int64)
        in_range = (indices >= 0) & (indices < n_bits)
        # Later decisions overwrite earlier ones (double-clocking keeps the last).
        decided[indices[in_range]] = values[in_range]
        # Exclude the first and last bits, which may legitimately lack a
        # decision because of the pipeline latency at the stream boundaries.
        usable = slice(1, n_bits - 1)
        return self.transmitted_bits[usable].astype(np.int64), decided[usable]

    def error_events(self) -> int:
        """Number of contiguous error bursts in the per-bit comparison.

        One sampling overshoot typically books *two* adjacent bit
        mismatches (the dropped/repeated bit plus its mis-timed
        neighbour), while the statistical model counts it as one error
        event — the known factor-of-two between the two views.  Counting
        bursts instead of bits recovers the per-event semantics, which is
        what the link-training cross-check compares against the
        statistical-eye prediction.
        """
        expected, got = self._aligned_comparison()
        mask = got != expected
        if mask.size == 0:
            return 0
        starts = np.flatnonzero(np.diff(np.concatenate(
            ([False], mask)).astype(np.int8)) == 1)
        return int(starts.size)

    def sequence_ber(self, max_offset: int = 8) -> BerMeasurement:
        """Classic BERT-style sequence-alignment error count (slip sensitive)."""
        return align_and_count(self.transmitted_bits, self.sampled_bits,
                               max_offset=max_offset)

    def missed_bits(self) -> int:
        """Number of transmitted bits that never received a sampling decision."""
        n_bits = int(self.transmitted_bits.size)
        indices, _values = self.decisions_per_bit()
        decided = np.zeros(n_bits, dtype=bool)
        in_range = (indices >= 0) & (indices < n_bits)
        decided[indices[in_range]] = True
        return int(np.count_nonzero(~decided[1:n_bits - 1]))

    def recovered_clock_frequency_hz(self) -> float:
        """Average recovered-clock frequency over the simulation."""
        edges = self.trace("clock").edges("rising")
        if edges.size < 2:
            raise ValueError("too few recovered clock edges to measure a frequency")
        return measure_frequency(edges)

    def eye_diagram(self, skip_start_ui: float = 8.0) -> EyeDiagram:
        """Clock-aligned eye diagram of the delayed data (paper Figures 14/16).

        The first *skip_start_ui* unit intervals of the data are excluded so
        that crossings recorded before the very first trigger re-phased the
        oscillator (acquisition) do not distort the eye statistics.
        """
        data_edges = self.trace("ddin").edges("any")
        clock_edges = self.trace("clock").edges("rising")
        cutoff = self.stream.start_time_s + skip_start_ui * self.config.unit_interval_s
        data_edges = data_edges[data_edges >= cutoff]
        clock_edges = clock_edges[clock_edges >= cutoff - self.config.unit_interval_s]
        return EyeDiagram.from_edges(data_edges, clock_edges, self.config.unit_interval_s)

    def samples_per_bit(self) -> float:
        """Average number of sampling edges per transmitted bit (should be ~1)."""
        if self.transmitted_bits.size == 0:
            return float("nan")
        return self.sample_times_s.size / self.transmitted_bits.size

    def sampling_phase_ui(self) -> np.ndarray:
        """Sampling instants relative to the most recent DDIN transition, in UI.

        This is the quantity whose nominal value is 0.5 (or 0.375 with the
        improved tap); its spread shows the accumulated oscillator jitter.
        """
        data_edges = self.trace("ddin").edges("any")
        if data_edges.size == 0 or self.sample_times_s.size == 0:
            return np.zeros(0)
        indices = np.searchsorted(data_edges, self.sample_times_s, side="right") - 1
        valid = indices >= 0
        offsets = (self.sample_times_s[valid] - data_edges[indices[valid]])
        return offsets / self.config.unit_interval_s


class BehavioralCdrChannel:
    """Assembles and runs the event-driven model of one CDR channel.

    *kernel_tier* selects the event kernel's drain-loop implementation
    (see :class:`repro.events.Simulator`); every tier executes the same
    events in the same order, so results are identical across tiers.
    """

    def __init__(self, config: CdrChannelConfig | None = None, *,
                 kernel_tier: str = "auto") -> None:
        self.config = config or CdrChannelConfig()
        self.kernel_tier = kernel_tier

    def run(
        self,
        bits: np.ndarray,
        *,
        jitter: JitterSpec | None = None,
        data_rate_offset_ppm: float = 0.0,
        rng: np.random.Generator | None = None,
        settle_bits: int = 4,
        stream: NrzEdgeStream | None = None,
    ) -> BehavioralSimulationResult:
        """Simulate the channel (see :meth:`_run`); traced as ``kernel.run``."""
        tracer = telemetry.ACTIVE
        if not tracer:
            return self._run(
                bits,
                jitter=jitter,
                data_rate_offset_ppm=data_rate_offset_ppm,
                rng=rng,
                settle_bits=settle_bits,
                stream=stream,
            )
        with tracer.span("kernel.run"):
            result = self._run(
                bits,
                jitter=jitter,
                data_rate_offset_ppm=data_rate_offset_ppm,
                rng=rng,
                settle_bits=settle_bits,
                stream=stream,
            )
        tracer.count("kernel.runs")
        tracer.count("kernel.bits", int(np.asarray(bits).size))
        return result

    def _run(
        self,
        bits: np.ndarray,
        *,
        jitter: JitterSpec | None = None,
        data_rate_offset_ppm: float = 0.0,
        rng: np.random.Generator | None = None,
        settle_bits: int = 4,
        stream: NrzEdgeStream | None = None,
    ) -> BehavioralSimulationResult:
        """Simulate the channel for the given transmitted bit sequence.

        Parameters
        ----------
        bits:
            Transmitted bit values.
        jitter:
            Data-edge jitter specification (defaults to no jitter; pass
            :data:`repro.core.config.PAPER_JITTER_SPEC` for Table 1).
        data_rate_offset_ppm:
            Transmitter frequency error in ppm (on top of the channel
            oscillator's own ``frequency_offset``).
        settle_bits:
            Idle unit intervals simulated before the first bit so the ring
            reaches steady oscillation.
        stream:
            Pre-built edge stream (e.g. from :class:`repro.link.LinkPath`).
            When given, *jitter*, *data_rate_offset_ppm* and *settle_bits*
            are ignored — the stream already encodes them — and *bits* must
            match ``stream.bits``.
        """
        config = self.config
        bits = np.asarray(bits, dtype=np.uint8)
        require_positive_int("number of bits", int(bits.size))
        rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — opt-in entropy: reproducible callers pass a seeded Generator

        simulator = Simulator(kernel_tier=self.kernel_tier)
        recorder = WaveformRecorder()

        # --- stimulus -------------------------------------------------------
        if stream is None:
            start_time = settle_bits * config.unit_interval_s
            stream = generate_edge_times(
                bits,
                bit_rate_hz=config.bit_rate_hz,
                jitter=jitter or JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0, sj_amplitude_ui_pp=0.0),
                data_rate_offset_ppm=data_rate_offset_ppm,
                start_time_s=start_time,
                rng=rng,
            )
        else:
            if not np.array_equal(stream.bits, bits):
                raise ValueError("bits must match the provided stream's bits")
            start_time = stream.start_time_s
        data_in = Signal(simulator, "din", initial=int(stream.initial_level))
        # Batch stimulus injection: one self-rescheduling driver instead of a
        # closure plus heap entry per data edge.
        data_in.drive(stream.edge_times_s, stream.bits[stream.edge_bit_index])

        # --- channel hardware -------------------------------------------------
        edge_detector = EdgeDetector(
            simulator,
            data_in,
            total_delay_s=config.edge_detector_delay_s,
            n_cells=config.edge_detector_cells,
            jitter_sigma_fraction=config.gate_jitter_sigma_fraction,
            rng=rng,
        )

        oscillator_parameters = config.oscillator
        control_current = oscillator_parameters.control_current_midpoint_a
        if oscillator_parameters.gain_hz_per_a > 0.0:
            control_current = oscillator_parameters.control_current_midpoint_a + (
                config.oscillator_frequency_hz
                - oscillator_parameters.free_running_frequency_hz
            ) / oscillator_parameters.gain_hz_per_a
        oscillator = GatedRingOscillator(
            simulator,
            "gcco",
            edge_detector.output,
            oscillator_parameters,
            control_current_a=control_current,
            rng=rng,
        )
        clock = oscillator.clock_improved if config.improved_sampling else oscillator.clock_nominal

        data_out = Signal(simulator, "dout", initial=0)
        sampler = CmlFlipFlop(
            simulator,
            "sampler",
            edge_detector.delayed_data,
            clock,
            data_out,
            CmlTiming(nominal_delay_s=config.sampler_delay_s,
                      jitter_sigma_fraction=config.gate_jitter_sigma_fraction),
            rng=rng,
        )

        # --- recording --------------------------------------------------------
        recorder.watch(data_in, "din")
        recorder.watch(edge_detector.delayed_data, "ddin")
        recorder.watch(edge_detector.output, "edet")
        recorder.watch(clock, "clock")
        recorder.watch(data_out, "dout")

        # --- run ---------------------------------------------------------------
        duration = start_time + stream.duration_s + 4.0 * config.unit_interval_s
        simulator.run_until(duration)

        sample_times = sampler.decision_times()
        sampled_bits = sampler.decision_values()
        # Ignore decisions taken before the data started (ring start-up).
        valid = sample_times >= start_time
        return BehavioralSimulationResult(
            config=config,
            transmitted_bits=bits,
            stream=stream,
            recorder=recorder,
            sample_times_s=sample_times[valid],
            sampled_bits=sampled_bits[valid],
            duration_s=duration,
        )
