"""Configuration objects and paper constants for the CDR core.

``PAPER_JITTER_SPEC`` is Table 1 of the paper; ``CdrChannelConfig`` bundles
everything the behavioural (event-driven) channel simulation needs and is the
single place where the nominal-versus-improved sampling tap, the edge-detector
delay and the oscillator parameters are selected.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .. import units
from .._validation import require_non_negative, require_positive, require_positive_int
from ..datapath.nrz import JitterSpec
from ..gates.ring import GccoParameters

__all__ = [
    "PAPER_JITTER_SPEC",
    "PAPER_TARGET_BER",
    "PAPER_POWER_TARGET_MW_PER_GBPS",
    "CdrChannelConfig",
]

#: Table 1 of the paper: DJ = 0.4 UIpp, RJ = 0.021 UIrms (0.3 UIpp at 1e-12),
#: sinusoidal jitter swept, oscillator jitter 0.01 UIrms.
PAPER_JITTER_SPEC = JitterSpec(dj_ui_pp=0.4, rj_ui_rms=0.021, sj_amplitude_ui_pp=0.0)

#: Target bit error ratio used throughout the paper.
PAPER_TARGET_BER = 1.0e-12

#: Headline power-efficiency target of the paper.
PAPER_POWER_TARGET_MW_PER_GBPS = 5.0


@dataclass(frozen=True)
class CdrChannelConfig:
    """Configuration of one behavioural (event-driven) CDR channel.

    Attributes
    ----------
    bit_rate_hz:
        Incoming data rate.
    oscillator:
        Gated-oscillator electrical parameters (frequency, gain, jitter).
    edge_detector_delay_ui:
        Total delay of the edge-detector delay line in unit intervals of the
        *oscillator* period.  The paper's stability analysis requires
        ``0.5 < delay < 1.0`` (section 3.3a); values outside that window are
        accepted so the failure can be reproduced (Figure 13).
    edge_detector_cells:
        Number of delay-line cells the delay is split across.
    improved_sampling:
        Select the inverted third-stage clock tap (Figure 15) instead of the
        nominal fourth-stage tap (Figure 7).
    gate_jitter_sigma_fraction:
        Delay jitter of the edge-detector / clock-path cells (fraction of the
        cell delay), matching the oscillator's ``jitter_sigma_fraction``.
    sampler_delay_s:
        Clock-to-Q delay of the decision flip-flop.
    frequency_offset:
        Relative frequency error applied to the channel oscillator versus the
        nominal bit rate (positive = oscillator slow).  This is how the
        CCO-frequency = 2.375 GHz condition of Figure 14 is expressed
        (offset = +0.05 for a 5 % slow oscillator).
    """

    bit_rate_hz: float = units.DEFAULT_BIT_RATE
    oscillator: GccoParameters = field(default_factory=GccoParameters)
    #: Default sits near the low end of the paper's reliable window
    #: (T/2 < tau < T): the smaller the delay, the more closely spaced two
    #: jittered data edges can be before the detector emits a truncated
    #: synchronisation pulse, so the low end maximises tolerance to
    #: deterministic jitter while keeping margin above T/2.
    edge_detector_delay_ui: float = 0.6
    edge_detector_cells: int = 3
    improved_sampling: bool = False
    gate_jitter_sigma_fraction: float = 0.0
    sampler_delay_s: float = 20.0e-12
    frequency_offset: float = 0.0

    def __post_init__(self) -> None:
        require_positive("bit_rate_hz", self.bit_rate_hz)
        require_positive("edge_detector_delay_ui", self.edge_detector_delay_ui)
        require_positive_int("edge_detector_cells", self.edge_detector_cells)
        require_non_negative("gate_jitter_sigma_fraction", self.gate_jitter_sigma_fraction)
        require_positive("sampler_delay_s", self.sampler_delay_s)
        if abs(self.frequency_offset) >= 0.5:
            raise ValueError("frequency_offset must lie in (-0.5, 0.5)")

    @property
    def unit_interval_s(self) -> float:
        """Bit period of the incoming data."""
        return 1.0 / self.bit_rate_hz

    @property
    def oscillator_frequency_hz(self) -> float:
        """Actual channel oscillator frequency including the frequency offset.

        A positive ``frequency_offset`` means the oscillator period is longer
        than the bit period by that fraction.
        """
        return self.bit_rate_hz / (1.0 + self.frequency_offset)

    @property
    def oscillator_period_s(self) -> float:
        """Oscillation period of the channel oscillator."""
        return 1.0 / self.oscillator_frequency_hz

    @property
    def edge_detector_delay_s(self) -> float:
        """Absolute edge-detector delay implied by ``edge_detector_delay_ui``."""
        return self.edge_detector_delay_ui * self.oscillator_period_s

    @property
    def sampling_phase_ui(self) -> float:
        """Nominal sampling phase after the trigger (0.5 nominal, 0.375 improved)."""
        return 0.375 if self.improved_sampling else 0.5

    def with_improved_sampling(self, improved: bool = True) -> "CdrChannelConfig":
        """Return a copy selecting the improved (or nominal) sampling tap."""
        return replace(self, improved_sampling=improved)

    def with_frequency_offset(self, frequency_offset: float) -> "CdrChannelConfig":
        """Return a copy with a different oscillator frequency offset."""
        return replace(self, frequency_offset=frequency_offset)

    def with_edge_detector_delay(self, delay_ui: float) -> "CdrChannelConfig":
        """Return a copy with a different edge-detector delay (in UI)."""
        return replace(self, edge_detector_delay_ui=delay_ui)

    @classmethod
    def paper_nominal(cls, *, jitter_sigma_fraction: float = 0.01) -> "CdrChannelConfig":
        """The nominal 2.5 Gbit/s configuration of the paper (Figure 7 topology)."""
        return cls(
            oscillator=GccoParameters(jitter_sigma_fraction=jitter_sigma_fraction),
            gate_jitter_sigma_fraction=jitter_sigma_fraction,
        )

    @classmethod
    def paper_improved(cls, *, jitter_sigma_fraction: float = 0.01) -> "CdrChannelConfig":
        """The improved-sampling configuration of the paper (Figure 15 topology)."""
        return cls(
            oscillator=GccoParameters(jitter_sigma_fraction=jitter_sigma_fraction),
            gate_jitter_sigma_fraction=jitter_sigma_fraction,
            improved_sampling=True,
        )

    @classmethod
    def figure14_condition(cls, *, improved_sampling: bool = False,
                           jitter_sigma_fraction: float = 0.01) -> "CdrChannelConfig":
        """The condition of Figures 14/16: CCO at 2.375 GHz (5 % slow oscillator)."""
        return cls(
            oscillator=GccoParameters(jitter_sigma_fraction=jitter_sigma_fraction),
            gate_jitter_sigma_fraction=jitter_sigma_fraction,
            improved_sampling=improved_sampling,
            frequency_offset=2.5e9 / 2.375e9 - 1.0,
        )
