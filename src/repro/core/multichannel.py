"""Multi-channel gated-oscillator receiver (paper Figure 6).

A multi-channel receiver combines

* one **shared PLL** locking a CCO to the bit rate and exporting its control
  current,
* ``n_channels`` independent CDR channels, each biasing a *matched* gated
  oscillator from a mirrored copy of that current — so every channel runs at
  (nearly) the incoming data rate without its own loop,
* per-channel lane skew (the reason each channel needs its own CDR at all),
* per-channel elastic buffers towards the common system clock.

Two evaluation paths are provided:

* :meth:`MultiChannelReceiver.statistical_report` — per-channel analytic BER
  using each channel's mismatch-induced frequency offset (fast, reaches
  1e-12);
* :meth:`MultiChannelReceiver.behavioural_run` — event-driven simulation of
  every channel on a common bit budget (slow, but produces waveforms and eyes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import units
from .._validation import require_non_negative, require_positive, require_positive_int
from ..analysis.ber_counter import BerMeasurement
from ..datapath.nrz import JitterSpec
from ..datapath.prbs import PrbsGenerator
from ..pll.pll import ChannelBiasMismatch, PllConfig, SharedPll
from ..statistical.ber_model import CdrJitterBudget, GatedOscillatorBerModel
from .cdr_channel import BehavioralSimulationResult
from .config import CdrChannelConfig

__all__ = [
    "MultiChannelConfig",
    "ChannelReport",
    "MultiChannelStatisticalReport",
    "MultiChannelBehaviouralReport",
    "MultiChannelReceiver",
]


@dataclass(frozen=True)
class MultiChannelConfig:
    """Configuration of the multi-channel receiver."""

    n_channels: int = 4
    bit_rate_hz: float = units.DEFAULT_BIT_RATE
    channel: CdrChannelConfig = field(default_factory=CdrChannelConfig)
    pll: PllConfig = field(default_factory=PllConfig)
    mismatch: ChannelBiasMismatch = field(default_factory=ChannelBiasMismatch)
    #: Maximum lane-to-lane skew (uniformly distributed), in UI.
    max_lane_skew_ui: float = 20.0
    #: Reference-clock error of the remote transmitter, in ppm.
    transmitter_offset_ppm: float = 0.0

    def __post_init__(self) -> None:
        require_positive_int("n_channels", self.n_channels)
        require_positive("bit_rate_hz", self.bit_rate_hz)
        require_non_negative("max_lane_skew_ui", self.max_lane_skew_ui)


@dataclass(frozen=True)
class ChannelReport:
    """Per-channel entry of a multi-channel report."""

    channel_index: int
    frequency_offset: float
    lane_skew_ui: float
    ber: float

    @property
    def frequency_offset_ppm(self) -> float:
        """Channel frequency offset in ppm."""
        return units.fraction_to_ppm(self.frequency_offset)


@dataclass(frozen=True)
class MultiChannelStatisticalReport:
    """Analytic per-channel BER report of the receiver."""

    channels: tuple[ChannelReport, ...]
    control_current_a: float
    target_ber: float

    @property
    def worst_ber(self) -> float:
        """Worst per-channel BER."""
        return max(channel.ber for channel in self.channels)

    @property
    def all_channels_pass(self) -> bool:
        """True when every channel meets the target BER."""
        return all(channel.ber <= self.target_ber for channel in self.channels)


@dataclass(frozen=True)
class MultiChannelBehaviouralReport:
    """Event-driven per-channel simulation results."""

    results: tuple[BehavioralSimulationResult, ...]
    measurements: tuple[BerMeasurement, ...]
    lane_skews_ui: tuple[float, ...]

    @property
    def total_errors(self) -> int:
        """Total errors across all channels."""
        return sum(measurement.errors for measurement in self.measurements)

    @property
    def total_bits(self) -> int:
        """Total compared bits across all channels."""
        return sum(measurement.compared_bits for measurement in self.measurements)

    @property
    def aggregate_ber(self) -> float:
        """Aggregate BER over all channels."""
        if self.total_bits == 0:
            return float("nan")
        return self.total_errors / self.total_bits


class MultiChannelReceiver:
    """The multi-channel receiver: shared PLL plus N gated-oscillator channels."""

    def __init__(self, config: MultiChannelConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.config = config or MultiChannelConfig()
        self._rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — opt-in entropy: reproducible callers pass a seeded Generator
        self._pll = SharedPll(self.config.pll)

    # -- shared bias distribution --------------------------------------------

    def shared_control_current_a(self) -> float:
        """Control current the shared PLL settles to."""
        return self._pll.locked_control_current_a()

    def channel_frequency_offsets(self) -> np.ndarray:
        """Per-channel relative frequency offsets (mismatch + transmitter ppm)."""
        config = self.config
        control_current = self.shared_control_current_a()
        offsets = config.mismatch.sample_channel_offsets(
            config.n_channels,
            control_current,
            config.pll.cco,
            rng=self._rng,
        )
        return offsets - units.ppm_to_fraction(config.transmitter_offset_ppm)

    def lane_skews_ui(self) -> np.ndarray:
        """Per-channel lane skew in UI (uniform in [0, max_lane_skew_ui])."""
        config = self.config
        if config.max_lane_skew_ui == 0.0:
            return np.zeros(config.n_channels)
        return self._rng.uniform(0.0, config.max_lane_skew_ui, size=config.n_channels)

    # -- statistical path -------------------------------------------------------

    def statistical_report(
        self,
        budget: CdrJitterBudget | None = None,
        *,
        target_ber: float = 1.0e-12,
        grid_step_ui: float = 2.0e-3,
    ) -> MultiChannelStatisticalReport:
        """Analytic BER of every channel under its own frequency offset."""
        config = self.config
        budget = budget or CdrJitterBudget(bit_rate_hz=config.bit_rate_hz)
        offsets = self.channel_frequency_offsets()
        skews = self.lane_skews_ui()

        channels = []
        for index in range(config.n_channels):
            model = GatedOscillatorBerModel(
                budget.with_frequency_offset(float(offsets[index])),
                sampling_phase_ui=config.channel.sampling_phase_ui,
                grid_step_ui=grid_step_ui,
            )
            channels.append(
                ChannelReport(
                    channel_index=index,
                    frequency_offset=float(offsets[index]),
                    lane_skew_ui=float(skews[index]),
                    ber=model.ber(),
                )
            )
        return MultiChannelStatisticalReport(
            channels=tuple(channels),
            control_current_a=self.shared_control_current_a(),
            target_ber=target_ber,
        )

    # -- behavioural path ----------------------------------------------------------

    def behavioural_run(
        self,
        n_bits: int = 2000,
        *,
        jitter: JitterSpec | None = None,
        prbs_order: int = 7,
        backend: str = "event",
    ) -> MultiChannelBehaviouralReport:
        """Time-domain simulation of every channel with independent PRBS data.

        *backend* resolves through the capability registry
        (:func:`repro.fastpath.backends.resolve_backend`): ``"event"`` is
        the event-kernel reference (default), ``"fast"`` the vectorized
        fast path (identical results on zero-gate-jitter configs), and
        ``"auto"`` picks the fastest exactly-equivalent backend per lane.
        For parallel lane execution use :func:`repro.sweep.multichannel_sweep`.
        """
        config = self.config
        require_positive_int("n_bits", n_bits)
        offsets = self.channel_frequency_offsets()
        skews = self.lane_skews_ui()

        # Deferred import: repro.fastpath imports repro.core back, and
        # `import repro.fastpath` as the entry point would find this
        # module's names only after both packages finish initialising.
        from ..fastpath.backends import resolve_backend

        results: list[BehavioralSimulationResult] = []
        measurements: list[BerMeasurement] = []
        for index in range(config.n_channels):
            generator = PrbsGenerator(prbs_order, seed=(index + 1))
            bits = generator.bits(n_bits)
            channel_config = config.channel.with_frequency_offset(float(offsets[index]))
            channel = resolve_backend(channel_config, backend).factory(channel_config)
            result = channel.run(
                bits,
                jitter=jitter,
                rng=np.random.default_rng(1000 + index),
            )
            results.append(result)
            measurements.append(result.ber())
        return MultiChannelBehaviouralReport(
            results=tuple(results),
            measurements=tuple(measurements),
            lane_skews_ui=tuple(float(s) for s in skews),
        )
