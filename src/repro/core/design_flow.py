"""Top-down design-flow driver — the end-to-end methodology of the paper.

The paper's claim is methodological: a *top-down* flow, starting from
quantifiable system specifications and descending to the transistor level,
can produce a demanding high-speed analog block.  This module strings the
individual levels together into one call:

1. **System feasibility** (statistical model): BER under Table 1 jitter,
   jitter tolerance against the InfiniBand mask, frequency tolerance.
2. **Block budgeting** (phase noise): oscillator bias current from equation 1
   plus the speed constraint, and the channel power roll-up versus the
   5 mW/Gbit/s target.
3. **Behavioural verification** (event-driven): a short PRBS run through the
   gate-level channel confirming lock and error-free operation at the design
   point.

Each stage's result is kept so examples, tests and benchmarks can inspect
intermediate quantities; :meth:`DesignFlowReport.summary_lines` prints the
whole story.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from .._validation import require_positive_int
from ..analysis.ber_counter import BerMeasurement
from ..datapath.nrz import JitterSpec
from ..datapath.prbs import prbs7
from ..jitter.accumulation import OscillatorJitterBudget
from ..phasenoise.design import (
    ChannelCellBudget,
    ChannelPowerReport,
    RingOscillatorDesign,
    channel_power_report,
    design_oscillator,
)
from ..specs.compliance import ComplianceReport, check_compliance
from ..specs.infiniband import infiniband_mask
from ..statistical.ber_model import CdrJitterBudget, GatedOscillatorBerModel
from ..statistical.ftol import FtolResult, frequency_tolerance
from ..statistical.jtol import JtolCurve, jitter_tolerance_curve
from .cdr_channel import BehavioralCdrChannel
from .config import CdrChannelConfig, PAPER_TARGET_BER

__all__ = ["DesignFlowReport", "run_design_flow"]


@dataclass(frozen=True)
class DesignFlowReport:
    """Aggregated results of the three design-flow stages."""

    # Stage 1 — system-level statistical feasibility.
    nominal_ber: float
    jtol_curve: JtolCurve
    ftol: FtolResult
    # Stage 2 — block-level budgeting.
    oscillator_design: RingOscillatorDesign
    power_report: ChannelPowerReport
    # Stage 3 — behavioural verification.
    behavioural_ber: BerMeasurement
    recovered_frequency_hz: float
    # Overall compliance.
    compliance: ComplianceReport
    target_ber: float = PAPER_TARGET_BER

    def summary_lines(self) -> list[str]:
        """Human-readable end-to-end summary of the flow."""
        lines = [
            "=== Stage 1: statistical feasibility ===",
            f"BER (Table 1 jitter, no SJ)     : {self.nominal_ber:.3e}",
            f"FTOL (symmetric)                : {self.ftol.symmetric_tolerance_ppm:.0f} ppm",
            "=== Stage 2: phase-noise / power budgeting ===",
            f"Oscillator tail current         : {self.oscillator_design.bias.tail_current_a * 1e6:.1f} uA",
            f"Oscillator kappa                : {self.oscillator_design.kappa:.3e} sqrt(s) "
            f"(budget {self.oscillator_design.kappa_budget:.3e})",
            f"Channel power                   : {self.power_report.total_power_w * 1e3:.2f} mW",
            f"Power efficiency                : {self.power_report.power_per_gbps_mw:.2f} mW/Gbit/s",
            "=== Stage 3: behavioural verification ===",
            f"Behavioural BER                 : {self.behavioural_ber.errors} / "
            f"{self.behavioural_ber.compared_bits} bits",
            f"Recovered clock frequency       : {self.recovered_frequency_hz / 1e9:.3f} GHz",
            "=== Compliance ===",
        ]
        lines.extend(self.compliance.summary_lines())
        return lines


def run_design_flow(
    *,
    bit_rate_hz: float = units.DEFAULT_BIT_RATE,
    channel_config: CdrChannelConfig | None = None,
    jitter_budget: CdrJitterBudget | None = None,
    cells: ChannelCellBudget | None = None,
    n_channels: int = 4,
    jtol_frequencies_hz: np.ndarray | None = None,
    behavioural_bits: int = 1500,
    grid_step_ui: float = 2.0e-3,
    rng: np.random.Generator | None = None,
) -> DesignFlowReport:
    """Run the complete top-down flow and return the aggregated report."""
    require_positive_int("behavioural_bits", behavioural_bits)
    rng = rng or np.random.default_rng(7)
    channel_config = channel_config or CdrChannelConfig.paper_nominal()
    jitter_budget = jitter_budget or CdrJitterBudget(bit_rate_hz=bit_rate_hz)
    mask = infiniband_mask(bit_rate_hz)

    # --- stage 1: statistical feasibility -----------------------------------
    nominal_model = GatedOscillatorBerModel(
        jitter_budget,
        sampling_phase_ui=channel_config.sampling_phase_ui,
        grid_step_ui=grid_step_ui,
    )
    nominal_ber = nominal_model.ber()

    if jtol_frequencies_hz is None:
        # Compliance is judged over the mask's specified frequency range
        # (wander up to ~bit rate / 100); the near-bit-rate region where
        # gated-oscillator tolerance collapses is reported separately by the
        # Figure 9/10 benchmarks.
        jtol_frequencies_hz = mask.frequencies_for_sweep(points_per_decade=2)
    jtol = jitter_tolerance_curve(
        jtol_frequencies_hz,
        budget=jitter_budget,
        target_ber=PAPER_TARGET_BER,
        sampling_phase_ui=channel_config.sampling_phase_ui,
        grid_step_ui=grid_step_ui,
        max_amplitude_ui_pp=10.0,
    )
    ftol = frequency_tolerance(
        budget=jitter_budget,
        target_ber=PAPER_TARGET_BER,
        sampling_phase_ui=channel_config.sampling_phase_ui,
        grid_step_ui=grid_step_ui,
        max_offset=0.1,
        resolution=5.0e-4,
    )

    # --- stage 2: block budgeting --------------------------------------------
    oscillator_budget = OscillatorJitterBudget(bit_rate_hz=bit_rate_hz)
    oscillator_design = design_oscillator(bit_rate_hz=bit_rate_hz, budget=oscillator_budget)
    power = channel_power_report(oscillator_design, cells=cells, n_channels=n_channels,
                                 bit_rate_hz=bit_rate_hz)

    # --- stage 3: behavioural verification ------------------------------------
    bits = prbs7(behavioural_bits)
    channel = BehavioralCdrChannel(channel_config)
    result = channel.run(bits, jitter=JitterSpec(dj_ui_pp=0.1, rj_ui_rms=0.01), rng=rng)
    behavioural_ber = result.ber()
    recovered_frequency = result.recovered_clock_frequency_hz()

    compliance = check_compliance(
        jtol, mask, ftol, power.power_per_gbps_mw,
    )

    return DesignFlowReport(
        nominal_ber=nominal_ber,
        jtol_curve=jtol,
        ftol=ftol,
        oscillator_design=oscillator_design,
        power_report=power,
        behavioural_ber=behavioural_ber,
        recovered_frequency_hz=recovered_frequency,
        compliance=compliance,
    )
