"""Gate-level edge detector (delay line + XNOR) of the gated-oscillator CDR.

At every data transition the detector pulses its output EDET low for the
delay-line duration (paper Figure 7).  Because the data handed to the sampler
(DDIN) is taken *after* the delay line, the line's absolute delay and jitter
are common mode and do not affect the sampling precision — the property the
paper emphasises in section 2.2.  A dummy gate on the data path compensates
the XOR propagation delay, exactly as the paper's dummy-gate compensation.
"""

from __future__ import annotations

import numpy as np

from .._validation import require_positive
from ..events.kernel import Simulator
from ..events.signal import Signal
from ..gates.cml import CmlTiming
from ..gates.delay_line import DelayLine
from ..gates.logic import BufferGate, Xnor2Gate

__all__ = ["GATE_DELAY_S", "EdgeDetector"]

#: Propagation delay of the XNOR gate and of the dummy data buffer (identical
#: CML cells).  Shared by the behavioural pipeline-delay bookkeeping and the
#: fast path, which must mirror this value exactly to stay equivalent.
GATE_DELAY_S = 25.0e-12


class EdgeDetector:
    """Delay-line + XNOR edge detector.

    Parameters
    ----------
    simulator:
        Event kernel.
    data_in:
        Incoming data signal (DIN).
    total_delay_s:
        Total delay of the delay line (the ``tau`` of the paper's analysis).
    n_cells:
        Number of cascaded delay cells implementing that delay.
    gate_delay_s:
        Propagation delay of the XNOR gate and of the dummy data buffer
        (identical cells, so the two match and cancel).
    jitter_sigma_fraction:
        Per-cell Gaussian delay jitter.
    """

    def __init__(
        self,
        simulator: Simulator,
        data_in: Signal,
        *,
        total_delay_s: float,
        n_cells: int = 3,
        gate_delay_s: float = GATE_DELAY_S,
        jitter_sigma_fraction: float = 0.0,
        rng: np.random.Generator | None = None,
        name: str = "edge_detector",
    ) -> None:
        require_positive("total_delay_s", total_delay_s)
        require_positive("gate_delay_s", gate_delay_s)
        self.simulator = simulator
        self.name = name
        self.total_delay_s = total_delay_s
        rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — opt-in entropy: reproducible callers pass a seeded Generator

        cell_delay = total_delay_s / n_cells
        cell_timing = CmlTiming(nominal_delay_s=cell_delay,
                                jitter_sigma_fraction=jitter_sigma_fraction)
        gate_timing = CmlTiming(nominal_delay_s=gate_delay_s,
                                jitter_sigma_fraction=jitter_sigma_fraction)

        #: Delayed data (DDIN before the dummy gate).
        self.delay_line = DelayLine(simulator, f"{name}.delay_line", data_in, n_cells,
                                    cell_timing, rng=rng)

        #: EDET: high in steady state, pulses low for ``total_delay_s`` at each edge.
        self.edet = Signal(simulator, f"{name}.edet", initial=1)
        self._xnor = Xnor2Gate(f"{name}.xnor", data_in, self.delay_line.output, self.edet,
                               gate_timing, rng=rng)

        #: DDIN handed to the sampler: the delayed data re-timed through a dummy
        #: gate so its delay matches the XNOR path (paper's dummy-gate trick).
        self.data_out = Signal(simulator, f"{name}.ddin", initial=int(data_in.value))
        self._dummy = BufferGate(f"{name}.dummy", self.delay_line.output, self.data_out,
                                 gate_timing, rng=rng)

    @property
    def delayed_data(self) -> Signal:
        """DDIN — the delayed data signal that the sampler slices."""
        return self.data_out

    @property
    def output(self) -> Signal:
        """EDET — the active-low synchronisation pulse driving the oscillator gate."""
        return self.edet
