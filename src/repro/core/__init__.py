"""Core CDR library: the gated-oscillator channel, multi-channel receiver, design flow."""

from .config import (
    PAPER_JITTER_SPEC,
    PAPER_POWER_TARGET_MW_PER_GBPS,
    PAPER_TARGET_BER,
    CdrChannelConfig,
)
from .gcco import GatedRingOscillator, GccoParameters
from .edge_detector import EdgeDetector
from .cdr_channel import BehavioralCdrChannel, BehavioralSimulationResult
from .elastic_buffer import ElasticBuffer, ElasticBufferStatistics
from .multichannel import (
    ChannelReport,
    MultiChannelBehaviouralReport,
    MultiChannelConfig,
    MultiChannelReceiver,
    MultiChannelStatisticalReport,
)
from .baselines import FreeRunningOscillatorBer, PllCdrBerModel
from .design_flow import DesignFlowReport, run_design_flow

__all__ = [
    "PAPER_JITTER_SPEC",
    "PAPER_POWER_TARGET_MW_PER_GBPS",
    "PAPER_TARGET_BER",
    "CdrChannelConfig",
    "GatedRingOscillator",
    "GccoParameters",
    "EdgeDetector",
    "BehavioralCdrChannel",
    "BehavioralSimulationResult",
    "ElasticBuffer",
    "ElasticBufferStatistics",
    "ChannelReport",
    "MultiChannelBehaviouralReport",
    "MultiChannelConfig",
    "MultiChannelReceiver",
    "MultiChannelStatisticalReport",
    "FreeRunningOscillatorBer",
    "PllCdrBerModel",
    "DesignFlowReport",
    "run_design_flow",
]
