"""Electrical analysis of a differential CML stage.

Bridges the top-down specifications (bias current, swing) to the transistor
level: device sizing, load resistor value, load capacitance, propagation
delay, maximum toggle frequency, and the conversion of the stage's thermal
noise into timing jitter (the quantity equation 1 of the paper summarises).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import units
from .._validation import require_positive
from ..phasenoise.formulas import CmlStageBias, kappa_hajimiri
from .mosfet import Mosfet
from .technology import Technology, UMC_018

__all__ = ["CmlStageDesign", "design_cml_stage"]

_LN2 = math.log(2.0)


@dataclass(frozen=True)
class CmlStageDesign:
    """A fully sized differential CML delay cell.

    Attributes
    ----------
    bias:
        Electrical bias point (tail current, load resistance, swing, supply).
    switch_device:
        One transistor of the switching differential pair.
    tail_device:
        Tail current source transistor.
    wiring_capacitance_f:
        Fixed wiring / layout capacitance per output node.
    fanout:
        Number of identical stages driven by each output.
    technology:
        Process the devices are built in.
    """

    bias: CmlStageBias
    switch_device: Mosfet
    tail_device: Mosfet
    wiring_capacitance_f: float
    fanout: int
    technology: Technology = UMC_018

    def __post_init__(self) -> None:
        require_positive("wiring_capacitance_f", self.wiring_capacitance_f)
        if self.fanout < 1:
            raise ValueError("fanout must be at least 1")

    # -- loading and speed -----------------------------------------------------

    @property
    def load_capacitance_f(self) -> float:
        """Total single-ended load capacitance at each output node."""
        self_loading = self.switch_device.drain_capacitance_f
        next_stage = self.fanout * self.switch_device.gate_capacitance_f
        return self_loading + next_stage + self.wiring_capacitance_f

    @property
    def time_constant_s(self) -> float:
        """Output RC time constant."""
        return self.bias.load_resistance_ohm * self.load_capacitance_f

    @property
    def propagation_delay_s(self) -> float:
        """50 %-swing propagation delay (``ln 2`` times the RC constant)."""
        return _LN2 * self.time_constant_s

    @property
    def maximum_toggle_frequency_hz(self) -> float:
        """Highest frequency a ring of four such stages can reach."""
        return 1.0 / (8.0 * self.propagation_delay_s)

    def ring_frequency_hz(self, n_stages: int = 4) -> float:
        """Oscillation frequency of an *n_stages* ring built from this cell."""
        if n_stages < 3:
            raise ValueError("a ring oscillator needs at least three stages")
        return 1.0 / (2.0 * n_stages * self.propagation_delay_s)

    # -- noise ------------------------------------------------------------------

    def output_noise_voltage_rms(self,
                                 temperature_k: float = units.ROOM_TEMPERATURE_K) -> float:
        """RMS thermal noise voltage at one output node (kT/C plus device excess)."""
        ktc = units.BOLTZMANN_K * temperature_k / self.load_capacitance_f
        excess = 1.0 + self.technology.noise_gamma * self.switch_device.transconductance(
            self.bias.tail_current_a
        ) * self.bias.load_resistance_ohm
        return math.sqrt(ktc * excess)

    def jitter_per_transition_rms_s(self,
                                    temperature_k: float = units.ROOM_TEMPERATURE_K) -> float:
        """RMS timing jitter added to each output transition by this stage.

        The noise voltage is converted to time through the output slew rate at
        the switching threshold (``slew = swing / (2 * tau)``).
        """
        slew_rate = self.bias.swing_v / (2.0 * self.time_constant_s)
        return self.output_noise_voltage_rms(temperature_k) / slew_rate

    def kappa(self, temperature_k: float = units.ROOM_TEMPERATURE_K) -> float:
        """Jitter figure of merit of a ring built from this stage (equation 1)."""
        return kappa_hajimiri(self.bias, gamma=self.technology.noise_gamma,
                              temperature_k=temperature_k)

    # -- power -------------------------------------------------------------------

    @property
    def power_w(self) -> float:
        """Static power of the stage."""
        return self.bias.power_w


def design_cml_stage(
    tail_current_a: float,
    *,
    swing_v: float = 0.4,
    overdrive_v: float = 0.25,
    wiring_capacitance_f: float = 8.0e-15,
    fanout: int = 1,
    technology: Technology = UMC_018,
    supply_v: float | None = None,
) -> CmlStageDesign:
    """Size a differential CML delay cell for the given bias current.

    The switching pair is sized for the requested overdrive at the full tail
    current (so it steers completely at the chosen swing); the tail device is
    sized at a higher overdrive for headroom efficiency; the load resistor
    follows from the swing.
    """
    require_positive("tail_current_a", tail_current_a)
    require_positive("swing_v", swing_v)
    require_positive("overdrive_v", overdrive_v)
    supply = supply_v if supply_v is not None else technology.supply_v

    bias = CmlStageBias.from_current_and_swing(tail_current_a, swing_v, supply)
    switch = Mosfet.sized_for_current(tail_current_a, overdrive_v, technology)
    tail = Mosfet.sized_for_current(tail_current_a, overdrive_v * 1.4, technology,
                                    length_um=2.0 * technology.minimum_length_um)
    return CmlStageDesign(
        bias=bias,
        switch_device=switch,
        tail_device=tail,
        wiring_capacitance_f=wiring_capacitance_f,
        fanout=fanout,
        technology=technology,
    )
