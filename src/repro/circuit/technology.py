"""0.18 µm CMOS technology constants used by the circuit-level models.

The paper implements the CDR in a 0.18 µm digital CMOS process from UMC
(section 4).  The values below are generic, publicly documented figures for a
0.18 µm node (they are not the foundry's proprietary model parameters) and are
sufficient for the behavioural circuit modelling this library performs:
square-law drain current, gate capacitance loading, and thermal noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require_positive

__all__ = ["Technology", "UMC_018"]


@dataclass(frozen=True)
class Technology:
    """Process parameters of a planar CMOS technology node.

    Attributes
    ----------
    name:
        Human-readable node name.
    supply_v:
        Nominal core supply voltage.
    nmos_threshold_v / pmos_threshold_v:
        Threshold voltages (PMOS value given as magnitude).
    nmos_kprime_a_per_v2 / pmos_kprime_a_per_v2:
        Process transconductance ``k' = mu * Cox`` of each device type.
    gate_capacitance_f_per_um2:
        Gate-oxide capacitance per unit area.
    overlap_capacitance_f_per_um:
        Gate-drain/source overlap capacitance per unit gate width.
    junction_capacitance_f_per_um:
        Drain-junction capacitance per unit width (for load estimation).
    minimum_length_um:
        Minimum drawn channel length.
    sheet_resistance_ohm:
        Sheet resistance of the (poly or well) resistor used as CML load.
    noise_gamma:
        Channel thermal-noise factor for the node's short-channel devices.
    """

    name: str
    supply_v: float
    nmos_threshold_v: float
    pmos_threshold_v: float
    nmos_kprime_a_per_v2: float
    pmos_kprime_a_per_v2: float
    gate_capacitance_f_per_um2: float
    overlap_capacitance_f_per_um: float
    junction_capacitance_f_per_um: float
    minimum_length_um: float
    sheet_resistance_ohm: float
    noise_gamma: float

    def __post_init__(self) -> None:
        for field_name in (
            "supply_v", "nmos_threshold_v", "pmos_threshold_v",
            "nmos_kprime_a_per_v2", "pmos_kprime_a_per_v2",
            "gate_capacitance_f_per_um2", "overlap_capacitance_f_per_um",
            "junction_capacitance_f_per_um", "minimum_length_um",
            "sheet_resistance_ohm", "noise_gamma",
        ):
            require_positive(field_name, getattr(self, field_name))

    def gate_capacitance_f(self, width_um: float, length_um: float) -> float:
        """Total gate capacitance (area + overlap) of a device."""
        require_positive("width_um", width_um)
        require_positive("length_um", length_um)
        area = width_um * length_um * self.gate_capacitance_f_per_um2
        overlap = 2.0 * width_um * self.overlap_capacitance_f_per_um
        return area + overlap

    def drain_capacitance_f(self, width_um: float) -> float:
        """Drain junction + overlap capacitance of a device."""
        require_positive("width_um", width_um)
        return width_um * (self.junction_capacitance_f_per_um + self.overlap_capacitance_f_per_um)


#: Generic 0.18 µm process corner used throughout the reproduction.
UMC_018 = Technology(
    name="generic-0.18um",
    supply_v=1.8,
    nmos_threshold_v=0.45,
    pmos_threshold_v=0.48,
    nmos_kprime_a_per_v2=300.0e-6,
    pmos_kprime_a_per_v2=70.0e-6,
    gate_capacitance_f_per_um2=8.5e-15,
    overlap_capacitance_f_per_um=0.35e-15,
    junction_capacitance_f_per_um=0.9e-15,
    minimum_length_um=0.18,
    sheet_resistance_ohm=300.0,
    noise_gamma=1.5,
)
