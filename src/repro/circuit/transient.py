"""Continuous-waveform ("transistor-level") transient simulation of the CDR.

This is the reproduction's stand-in for the paper's SPICE validation
(section 4, Figure 18).  Every CML cell is modelled by its large-signal
differential transfer characteristic (current steering ≈ ``tanh``) driving an
RC output node, so the simulation produces continuous waveforms with finite
rise times, static delays and (optionally) injected thermal noise — the
non-idealities the eye diagram of Figure 18 exhibits — while remaining fast
enough for a few hundred bits on a laptop.

The simulated netlist mirrors Figure 7 / 15 of the paper:

* input driver (limiting amplifier output) with finite edge rate,
* edge-detector delay line (``n_delay_cells`` buffers) and XNOR,
* four-stage gated ring oscillator (stage 0 is the gated cell),
* the nominal (inverted stage 4) and improved (inverted stage 3) clock taps,
* a behavioural sampler that slices the delayed data at the recovered clock's
  rising threshold crossings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .. import units
from .._validation import require_positive, require_positive_int
from ..analysis.eye import EyeDiagram
from ..analysis.ber_counter import BerMeasurement, align_and_count
from ..analysis.timing import threshold_crossings
from ..datapath.nrz import JitterSpec, NrzEdgeStream, generate_edge_times
from .cml_stage import CmlStageDesign, design_cml_stage

__all__ = [
    "CircuitCdrConfig",
    "CircuitSimulationResult",
    "CircuitLevelCdr",
    "measure_free_running_frequency",
    "calibrate_ring",
]


@dataclass(frozen=True)
class CircuitCdrConfig:
    """Configuration of the circuit-level CDR simulation."""

    stage: CmlStageDesign = field(default_factory=lambda: design_cml_stage(200.0e-6))
    n_ring_stages: int = 4
    #: Edge-detector delay-line length.  Four cells give a delay of ~0.55 UI,
    #: inside the paper's reliable window (T/2 < tau < T) with enough margin
    #: for the release wave to propagate before the next data edge gates the
    #: ring again.
    n_delay_cells: int = 4
    bit_rate_hz: float = units.DEFAULT_BIT_RATE
    time_step_s: float = 1.0e-12
    input_rise_time_s: float = 30.0e-12
    noise_enabled: bool = False
    temperature_k: float = units.ROOM_TEMPERATURE_K
    improved_sampling: bool = False
    #: Multiplicative trim on every cell's RC time constant; the CCO control
    #: current of the real circuit plays this role.  Use :func:`calibrate_ring`
    #: to set it so the free-running ring hits the bit rate.
    tau_scale: float = 1.0

    def __post_init__(self) -> None:
        require_positive_int("n_ring_stages", self.n_ring_stages)
        require_positive_int("n_delay_cells", self.n_delay_cells)
        require_positive("bit_rate_hz", self.bit_rate_hz)
        require_positive("time_step_s", self.time_step_s)
        require_positive("input_rise_time_s", self.input_rise_time_s)
        require_positive("temperature_k", self.temperature_k)
        require_positive("tau_scale", self.tau_scale)
        if self.n_ring_stages < 3:
            raise ValueError("the ring oscillator needs at least three stages")

    @property
    def unit_interval_s(self) -> float:
        """Bit period."""
        return 1.0 / self.bit_rate_hz

    @property
    def ring_frequency_hz(self) -> float:
        """Free-running frequency the sized stage gives an ``n_ring_stages`` ring."""
        return self.stage.ring_frequency_hz(self.n_ring_stages)


@dataclass
class CircuitSimulationResult:
    """Waveforms and derived measurements of one transient run."""

    times_s: np.ndarray
    delayed_data_v: np.ndarray
    clock_v: np.ndarray
    edet_v: np.ndarray
    ring_nodes_v: np.ndarray
    sample_times_s: np.ndarray
    sampled_bits: np.ndarray
    transmitted_bits: np.ndarray
    unit_interval_s: float

    def clock_rising_edges_s(self) -> np.ndarray:
        """Times at which the recovered clock crosses zero going positive."""
        return _rising_crossings(self.times_s, self.clock_v)

    def data_transition_times_s(self) -> np.ndarray:
        """Times at which the delayed data crosses zero (either direction)."""
        return _all_crossings(self.times_s, self.delayed_data_v)

    def eye_diagram(self) -> EyeDiagram:
        """Clock-aligned eye diagram of the delayed data (paper Figure 18)."""
        return EyeDiagram.from_edges(
            self.data_transition_times_s(),
            self.clock_rising_edges_s(),
            self.unit_interval_s,
        )

    def ber(self) -> BerMeasurement:
        """Bit-error measurement of the recovered stream against the transmitted one."""
        return align_and_count(self.transmitted_bits, self.sampled_bits)


def _rising_crossings(times: np.ndarray, waveform: np.ndarray) -> np.ndarray:
    return threshold_crossings(times, waveform, kind="rising")


def _all_crossings(times: np.ndarray, waveform: np.ndarray) -> np.ndarray:
    return threshold_crossings(times, waveform, kind="any")


def measure_free_running_frequency(config: "CircuitCdrConfig",
                                   n_unit_intervals: int = 40) -> float:
    """Measure the free-running ring frequency of a circuit configuration.

    A short transient is run with a constant input (no data transitions, so
    EDET stays high and the ring free-runs) and the recovered-clock crossing
    rate is measured.
    """
    require_positive_int("n_unit_intervals", n_unit_intervals)
    simulator = CircuitLevelCdr(config)
    bits = np.ones(n_unit_intervals, dtype=np.uint8)
    result = simulator.simulate(bits, jitter=JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0),
                                rng=np.random.default_rng(0))
    edges = result.clock_rising_edges_s()
    # Discard the start-up portion before measuring.
    edges = edges[edges > 5.0 * config.unit_interval_s]
    if edges.size < 3:
        raise ValueError("free-running measurement produced too few clock edges")
    return float((edges.size - 1) / (edges[-1] - edges[0]))


def calibrate_ring(config: "CircuitCdrConfig", *, target_frequency_hz: float | None = None,
                   n_iterations: int = 3) -> "CircuitCdrConfig":
    """Return a copy of *config* with ``tau_scale`` trimmed to the target frequency.

    This plays the role of the CCO control current: the shared PLL of the real
    receiver tunes the oscillator to the bit rate; here the per-stage time
    constant is scaled until the free-running frequency matches.
    """
    from dataclasses import replace

    target = target_frequency_hz if target_frequency_hz is not None else config.bit_rate_hz
    require_positive("target_frequency_hz", target)
    calibrated = config
    for _ in range(n_iterations):
        measured = measure_free_running_frequency(calibrated)
        calibrated = replace(calibrated, tau_scale=calibrated.tau_scale * measured / target)
    return calibrated


class CircuitLevelCdr:
    """Fixed-time-step nonlinear transient simulator of one CDR channel."""

    def __init__(self, config: CircuitCdrConfig | None = None) -> None:
        self.config = config or CircuitCdrConfig()

    # -- stimulus ---------------------------------------------------------------

    def _input_waveform(self, stream: NrzEdgeStream, times: np.ndarray) -> np.ndarray:
        """Differential input voltage with first-order (RC) edge shaping."""
        config = self.config
        swing = config.stage.bias.swing_v
        levels = stream.sample(times).astype(float) * 2.0 - 1.0
        tau = config.input_rise_time_s / 2.2  # 10-90 % rise time of an RC step
        alpha = 1.0 - math.exp(-config.time_step_s / tau)
        shaped = np.empty_like(levels)
        state = levels[0]
        for index, target in enumerate(levels):
            state += (target - state) * alpha
            shaped[index] = state
        return shaped * (0.5 * swing)

    # -- simulation ---------------------------------------------------------------

    def simulate(
        self,
        bits: np.ndarray,
        *,
        jitter: JitterSpec | None = None,
        data_rate_offset_ppm: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> CircuitSimulationResult:
        """Run the transient simulation for the given transmitted bits."""
        config = self.config
        rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — opt-in entropy: reproducible callers pass a seeded Generator
        bits = np.asarray(bits, dtype=np.uint8)
        stream = generate_edge_times(
            bits,
            bit_rate_hz=config.bit_rate_hz,
            jitter=jitter or JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0),
            data_rate_offset_ppm=data_rate_offset_ppm,
            rng=rng,
        )

        dt = config.time_step_s
        stop_time = stream.duration_s + 4.0 * config.unit_interval_s
        times = np.arange(0.0, stop_time, dt)
        v_in = self._input_waveform(stream, times)

        stage = config.stage
        swing = stage.bias.swing_v
        amplitude = 0.5 * swing                      # single-ended half swing
        tau = stage.time_constant_s * config.tau_scale
        v_switch = 0.5 * stage.switch_device.overdrive_for_current(stage.bias.tail_current_a)
        alpha = dt / tau

        n_delay = config.n_delay_cells
        n_ring = config.n_ring_stages

        # State: delay-line nodes, XNOR output (EDET), ring nodes.
        delay_nodes = np.full(n_delay, -amplitude)
        edet = amplitude
        ring = np.array([amplitude if index % 2 else -amplitude for index in range(n_ring)])

        noise_sigma_v = 0.0
        if config.noise_enabled:
            # kT/C-style noise refreshed every time step of the output node.
            noise_sigma_v = stage.output_noise_voltage_rms(config.temperature_k) * math.sqrt(
                2.0 * alpha
            )

        n_steps = times.size
        delayed_data_v = np.empty(n_steps)
        clock_v = np.empty(n_steps)
        edet_v = np.empty(n_steps)
        ring_nodes_v = np.empty((n_ring, n_steps))

        def saturate(value: float) -> float:
            return amplitude * math.tanh(value / v_switch)

        def switch_fraction(value: float) -> float:
            # The stacked (lower) pair of an AND / Gilbert cell sees the full
            # differential swing and switches essentially completely; model it
            # with a steeper characteristic than the signal path.
            return 0.5 * (1.0 + math.tanh(2.0 * value / v_switch))

        for step in range(n_steps):
            vin_now = v_in[step]

            # Edge-detector delay line (cascade of buffers).
            previous = vin_now
            new_delay = delay_nodes.copy()
            for cell in range(n_delay):
                target = saturate(previous)
                new_delay[cell] = delay_nodes[cell] + (target - delay_nodes[cell]) * alpha
                previous = delay_nodes[cell]
            delay_nodes = new_delay

            # XNOR of input and delayed input: Gilbert-cell product (both ports
            # switch their pairs essentially fully at CML swing levels).
            xnor_target = amplitude * math.tanh(2.0 * vin_now / v_switch) * math.tanh(
                2.0 * delay_nodes[-1] / v_switch
            )
            edet = edet + (xnor_target - edet) * alpha

            # Gated ring oscillator.
            gate_level = switch_fraction(edet)
            feedback = ring[-1]
            gated_target = amplitude * (
                gate_level * math.tanh(feedback / v_switch) - (1.0 - gate_level)
            )
            new_ring = ring.copy()
            new_ring[0] = ring[0] + (gated_target - ring[0]) * alpha
            for stage_index in range(1, n_ring):
                target = -saturate(ring[stage_index - 1])
                new_ring[stage_index] = ring[stage_index] + (target - ring[stage_index]) * alpha
            if noise_sigma_v > 0.0:
                new_ring += rng.normal(0.0, noise_sigma_v, size=n_ring)
                edet += rng.normal(0.0, noise_sigma_v)
            ring = new_ring

            delayed_data_v[step] = delay_nodes[-1]
            edet_v[step] = edet
            ring_nodes_v[:, step] = ring
            # Clock taps: nominal = inverted last stage; improved = third stage
            # with the opposite differential polarity, one stage delay earlier
            # (differential inversion is free).
            clock_v[step] = ring[-2] if config.improved_sampling else -ring[-1]

        sample_times = _rising_crossings(times, clock_v)
        sampled_bits = (np.interp(sample_times, times, delayed_data_v) > 0.0).astype(np.uint8)

        return CircuitSimulationResult(
            times_s=times,
            delayed_data_v=delayed_data_v,
            clock_v=clock_v,
            edet_v=edet_v,
            ring_nodes_v=ring_nodes_v,
            sample_times_s=sample_times,
            sampled_bits=sampled_bits,
            transmitted_bits=bits,
            unit_interval_s=config.unit_interval_s,
        )
