"""Circuit-level substrate: technology, devices, CML stage analysis, transient CDR."""

from .technology import Technology, UMC_018
from .mosfet import Mosfet
from .cml_stage import CmlStageDesign, design_cml_stage
from .transient import (
    CircuitCdrConfig,
    CircuitLevelCdr,
    CircuitSimulationResult,
    calibrate_ring,
    measure_free_running_frequency,
)

__all__ = [
    "Technology",
    "UMC_018",
    "Mosfet",
    "CmlStageDesign",
    "design_cml_stage",
    "CircuitCdrConfig",
    "CircuitLevelCdr",
    "CircuitSimulationResult",
    "calibrate_ring",
    "measure_free_running_frequency",
]
