"""Square-law MOSFET model with smooth region transitions.

The circuit-level simulator only needs a qualitatively correct large-signal
model of the differential pair and tail source — a long-channel square law
with a smooth triode/saturation transition is sufficient and keeps the
transient integration fast and robust.  Thermal noise current density is
``4 k T gamma g_m``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import units
from .._validation import require_positive
from .technology import Technology, UMC_018

__all__ = ["Mosfet"]


@dataclass(frozen=True)
class Mosfet:
    """An NMOS (or PMOS, with polarity handled by the caller) transistor instance."""

    width_um: float
    length_um: float
    technology: Technology = UMC_018
    is_pmos: bool = False

    def __post_init__(self) -> None:
        require_positive("width_um", self.width_um)
        require_positive("length_um", self.length_um)
        if self.length_um < self.technology.minimum_length_um:
            raise ValueError(
                f"channel length {self.length_um} um is below the technology minimum "
                f"{self.technology.minimum_length_um} um"
            )

    # -- derived parameters ---------------------------------------------------

    @property
    def threshold_v(self) -> float:
        """Threshold voltage magnitude of the device."""
        if self.is_pmos:
            return self.technology.pmos_threshold_v
        return self.technology.nmos_threshold_v

    @property
    def kprime(self) -> float:
        """Process transconductance ``k' = mu * Cox`` of the device type."""
        if self.is_pmos:
            return self.technology.pmos_kprime_a_per_v2
        return self.technology.nmos_kprime_a_per_v2

    @property
    def beta(self) -> float:
        """Device transconductance factor ``k' * W / L``."""
        return self.kprime * self.width_um / self.length_um

    @property
    def gate_capacitance_f(self) -> float:
        """Gate capacitance of the device."""
        return self.technology.gate_capacitance_f(self.width_um, self.length_um)

    @property
    def drain_capacitance_f(self) -> float:
        """Drain capacitance of the device."""
        return self.technology.drain_capacitance_f(self.width_um)

    # -- large-signal behaviour -----------------------------------------------

    def drain_current(self, vgs: float, vds: float) -> float:
        """Square-law drain current with a smooth triode/saturation transition."""
        vov = vgs - self.threshold_v
        if vov <= 0.0 or vds <= 0.0:
            return 0.0
        if vds >= vov:
            return 0.5 * self.beta * vov * vov
        return self.beta * (vov * vds - 0.5 * vds * vds)

    def saturation_current(self, vgs: float) -> float:
        """Saturation drain current for the given gate drive."""
        vov = max(vgs - self.threshold_v, 0.0)
        return 0.5 * self.beta * vov * vov

    def vgs_for_current(self, drain_current_a: float) -> float:
        """Gate-source voltage needed to carry *drain_current_a* in saturation."""
        require_positive("drain_current_a", drain_current_a)
        return self.threshold_v + math.sqrt(2.0 * drain_current_a / self.beta)

    def overdrive_for_current(self, drain_current_a: float) -> float:
        """Overdrive voltage ``V_GS - V_T`` at the given saturation current."""
        require_positive("drain_current_a", drain_current_a)
        return math.sqrt(2.0 * drain_current_a / self.beta)

    def transconductance(self, drain_current_a: float) -> float:
        """Small-signal transconductance at the given saturation current."""
        require_positive("drain_current_a", drain_current_a)
        return math.sqrt(2.0 * self.beta * drain_current_a)

    def thermal_noise_current_psd(self, drain_current_a: float,
                                  temperature_k: float = units.ROOM_TEMPERATURE_K) -> float:
        """Drain thermal-noise current PSD [A^2/Hz] at the given bias."""
        gm = self.transconductance(drain_current_a)
        return 4.0 * units.BOLTZMANN_K * temperature_k * self.technology.noise_gamma * gm

    @classmethod
    def sized_for_current(cls, drain_current_a: float, overdrive_v: float,
                          technology: Technology = UMC_018, length_um: float | None = None,
                          is_pmos: bool = False) -> "Mosfet":
        """Size a device to carry *drain_current_a* at the requested overdrive."""
        require_positive("drain_current_a", drain_current_a)
        require_positive("overdrive_v", overdrive_v)
        length = length_um if length_um is not None else technology.minimum_length_um
        kprime = technology.pmos_kprime_a_per_v2 if is_pmos else technology.nmos_kprime_a_per_v2
        width = 2.0 * drain_current_a * length / (kprime * overdrive_v * overdrive_v)
        return cls(width_um=width, length_um=length, technology=technology, is_pmos=is_pmos)
