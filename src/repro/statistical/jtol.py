"""Jitter tolerance (JTOL) analysis.

Jitter tolerance is measured by adding sinusoidal jitter of a given frequency
to a data stream that already carries the channel jitter (Table 1), and
finding the largest amplitude at which the CDR still achieves the target BER
(1e-12).  The result, as a function of jitter frequency, is compared against
the InfiniBand tolerance mask (paper Figure 5); Figure 9 of the paper shows
the underlying BER surface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_positive, require_probability
from ..datapath.cid import RunLengthDistribution
from .ber_model import CdrJitterBudget, GatedOscillatorBerModel, NOMINAL_SAMPLING_PHASE_UI

__all__ = [
    "JtolPoint",
    "JtolCurve",
    "ber_vs_sinusoidal_jitter",
    "jitter_tolerance_curve",
    "jitter_tolerance_at_frequency",
]


@dataclass(frozen=True)
class JtolPoint:
    """One point of a jitter-tolerance curve."""

    frequency_hz: float
    amplitude_ui_pp: float
    ber_at_amplitude: float


@dataclass(frozen=True)
class JtolCurve:
    """A measured/computed jitter-tolerance curve."""

    points: tuple[JtolPoint, ...]
    target_ber: float

    @property
    def frequencies_hz(self) -> np.ndarray:
        """Sinusoidal jitter frequencies of the curve."""
        return np.array([p.frequency_hz for p in self.points])

    @property
    def amplitudes_ui_pp(self) -> np.ndarray:
        """Tolerated amplitude at each frequency."""
        return np.array([p.amplitude_ui_pp for p in self.points])

    def margin_to_mask(self, mask_amplitudes_ui_pp: np.ndarray) -> np.ndarray:
        """Tolerance margin (in UI) relative to a mask evaluated at the same frequencies."""
        mask = np.asarray(mask_amplitudes_ui_pp, dtype=float)
        if mask.shape != self.amplitudes_ui_pp.shape:
            raise ValueError("mask must be evaluated at the curve frequencies")
        return self.amplitudes_ui_pp - mask

    def passes_mask(self, mask_amplitudes_ui_pp: np.ndarray) -> bool:
        """True when the tolerance exceeds the mask at every frequency."""
        return bool(np.all(self.margin_to_mask(mask_amplitudes_ui_pp) >= 0.0))


def _make_model(budget: CdrJitterBudget, sampling_phase_ui: float,
                run_lengths: RunLengthDistribution | None,
                grid_step_ui: float) -> GatedOscillatorBerModel:
    return GatedOscillatorBerModel(
        budget,
        sampling_phase_ui=sampling_phase_ui,
        run_lengths=run_lengths,
        grid_step_ui=grid_step_ui,
    )


def ber_vs_sinusoidal_jitter(
    frequencies_hz: np.ndarray,
    amplitudes_ui_pp: np.ndarray,
    *,
    budget: CdrJitterBudget | None = None,
    sampling_phase_ui: float = NOMINAL_SAMPLING_PHASE_UI,
    run_lengths: RunLengthDistribution | None = None,
    grid_step_ui: float = 2.0e-3,
) -> np.ndarray:
    """BER surface versus sinusoidal-jitter frequency and amplitude (paper Fig. 9/10/17).

    Returns an array of shape ``(len(amplitudes), len(frequencies))``; rows are
    constant-amplitude BER-versus-frequency curves exactly as plotted in the
    paper.
    """
    budget = budget or CdrJitterBudget()
    frequencies_hz = np.asarray(frequencies_hz, dtype=float)
    amplitudes_ui_pp = np.asarray(amplitudes_ui_pp, dtype=float)
    surface = np.empty((amplitudes_ui_pp.size, frequencies_hz.size), dtype=float)
    for row, amplitude in enumerate(amplitudes_ui_pp):
        for col, frequency in enumerate(frequencies_hz):
            stressed = budget.with_sinusoidal(float(amplitude), float(frequency))
            model = _make_model(stressed, sampling_phase_ui, run_lengths, grid_step_ui)
            surface[row, col] = model.ber()
    return surface


def jitter_tolerance_at_frequency(
    frequency_hz: float,
    *,
    budget: CdrJitterBudget | None = None,
    target_ber: float = 1.0e-12,
    sampling_phase_ui: float = NOMINAL_SAMPLING_PHASE_UI,
    run_lengths: RunLengthDistribution | None = None,
    grid_step_ui: float = 2.0e-3,
    max_amplitude_ui_pp: float = 100.0,
    tolerance_ui: float = 0.01,
) -> JtolPoint:
    """Largest sinusoidal-jitter amplitude meeting *target_ber* at one frequency.

    Uses bisection on the amplitude; the search interval is expanded
    geometrically up to *max_amplitude_ui_pp* first (low-frequency tolerance of
    a gated-oscillator CDR is essentially unbounded because the oscillator is
    re-phased at every transition).
    """
    budget = budget or CdrJitterBudget()
    require_positive("frequency_hz", frequency_hz)
    require_probability("target_ber", target_ber)
    require_positive("max_amplitude_ui_pp", max_amplitude_ui_pp)

    def ber_at(amplitude: float) -> float:
        stressed = budget.with_sinusoidal(amplitude, frequency_hz)
        return _make_model(stressed, sampling_phase_ui, run_lengths, grid_step_ui).ber()

    # Expand to bracket the failure amplitude.
    low, high = 0.0, 0.05
    ber_low = ber_at(low)
    if ber_low > target_ber:
        return JtolPoint(frequency_hz, 0.0, ber_low)
    while high < max_amplitude_ui_pp and ber_at(high) <= target_ber:
        low = high
        high *= 2.0
    if high >= max_amplitude_ui_pp:
        amplitude = max_amplitude_ui_pp
        return JtolPoint(frequency_hz, amplitude, ber_at(amplitude))

    # Bisect between the last passing and first failing amplitude.
    while (high - low) > tolerance_ui:
        middle = 0.5 * (low + high)
        if ber_at(middle) <= target_ber:
            low = middle
        else:
            high = middle
    return JtolPoint(frequency_hz, low, ber_at(low))


def jitter_tolerance_curve(
    frequencies_hz: np.ndarray,
    *,
    budget: CdrJitterBudget | None = None,
    target_ber: float = 1.0e-12,
    sampling_phase_ui: float = NOMINAL_SAMPLING_PHASE_UI,
    run_lengths: RunLengthDistribution | None = None,
    grid_step_ui: float = 2.0e-3,
    max_amplitude_ui_pp: float = 100.0,
) -> JtolCurve:
    """Jitter-tolerance curve over a set of sinusoidal-jitter frequencies."""
    points = tuple(
        jitter_tolerance_at_frequency(
            float(frequency),
            budget=budget,
            target_ber=target_ber,
            sampling_phase_ui=sampling_phase_ui,
            run_lengths=run_lengths,
            grid_step_ui=grid_step_ui,
            max_amplitude_ui_pp=max_amplitude_ui_pp,
        )
        for frequency in np.asarray(frequencies_hz, dtype=float)
    )
    return JtolCurve(points=points, target_ber=target_ber)
