"""Gaussian tail utilities (Q-function and friends).

The statistical BER model needs accurate Gaussian tail probabilities down to
(and far below) the 1e-12 target of the paper; everything is routed through
``scipy.special.erfc`` / ``erfcinv`` which stay accurate to ~1e-300.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from .._validation import require_positive

__all__ = [
    "q_function",
    "inverse_q_function",
    "ber_from_snr_margin",
    "sigma_margin_for_ber",
    "log10_ber",
]


def q_function(x: np.ndarray | float) -> np.ndarray | float:
    """Gaussian tail probability ``Q(x) = P(N(0,1) > x)``.

    Accepts scalars or arrays; uses ``0.5 * erfc(x / sqrt(2))`` for numerical
    stability in the far tail.
    """
    x_array = np.asarray(x, dtype=float)
    result = 0.5 * special.erfc(x_array / math.sqrt(2.0))
    if np.isscalar(x) or x_array.ndim == 0:
        return float(result)
    return result


def inverse_q_function(probability: np.ndarray | float) -> np.ndarray | float:
    """Inverse of :func:`q_function`: the x with ``Q(x) = probability``."""
    p_array = np.asarray(probability, dtype=float)
    if np.any((p_array <= 0.0) | (p_array >= 1.0)):
        raise ValueError("probability must lie strictly inside (0, 1)")
    result = math.sqrt(2.0) * special.erfcinv(2.0 * p_array)
    if np.isscalar(probability) or p_array.ndim == 0:
        return float(result)
    return result


def ber_from_snr_margin(margin: float, sigma: float) -> float:
    """BER of a Gaussian-jitter-limited decision with the given timing margin.

    ``margin`` is the distance from the sampling instant to the decision
    boundary and ``sigma`` the rms Gaussian jitter, both in the same unit.
    """
    require_positive("sigma", sigma)
    return float(q_function(margin / sigma))


def sigma_margin_for_ber(ber: float) -> float:
    """Number of Gaussian sigmas of margin required to reach a target BER.

    The classic value is ≈ 7.03 sigma for 1e-12.
    """
    return float(inverse_q_function(ber))


def log10_ber(ber: np.ndarray | float, floor: float = 1.0e-30) -> np.ndarray | float:
    """Return ``log10(ber)`` with a floor to keep log plots finite."""
    ber_array = np.asarray(ber, dtype=float)
    result = np.log10(np.maximum(ber_array, floor))
    if np.isscalar(ber) or ber_array.ndim == 0:
        return float(result)
    return result
