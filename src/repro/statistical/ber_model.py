"""Statistical BER model of the gated-oscillator CDR.

This is the Python equivalent of the paper's Matlab statistical model
(section 3.1): it combines deterministic, random, sinusoidal and oscillator
jitter distributions with the frequency offset accumulated over consecutive
identical digits (CID) and returns the bit error ratio analytically — well
below the 1e-12 target, where Monte-Carlo simulation is hopeless.

Model
-----

The gated oscillator is re-phased by every incoming data transition.  Consider
a run of ``k`` identical bits started by a transition (the *trigger*):

* The recovered sampling edge for the ``i``-th bit of the run sits at

      S_i = (i - 1 + phi_s) * (1 + eps) + G_i        [UI after the trigger]

  where ``phi_s`` is the sampling phase (0.5 for the nominal tap, 0.375 for
  the improved tap shifted T/8 earlier), ``eps`` the relative period error of
  the oscillator versus the incoming data, and ``G_i`` the oscillator jitter
  accumulated over ``i`` bit periods of free running (Gaussian with sigma
  growing as sqrt(i)).

* The run is bounded on the left by the trigger itself (zero relative jitter —
  the paper routes data through the edge-detector delay line precisely so that
  trigger jitter is common-mode) and on the right, ``k`` UI later, by the next
  transition, displaced by the *relative* data jitter between the two edges:
  independent DJ and RJ on each edge plus the differential sinusoidal jitter
  whose amplitude is ``2 * A * |sin(pi * f_sj * k / f_bit)|``.

* A bit error occurs when the sampling edge leaves the run: ``S_i < 0``
  (samples the previous, different bit) or ``S_i > k + J_end`` (samples the
  next, different bit).

The BER is the average of those probabilities over the run-length/position
statistics of the line code (worst case CID = 5 for 8b/10b, longer for PRBS).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from .. import units
from .._validation import (
    require_in_range,
    require_non_negative,
    require_positive,
)
from ..datapath.cid import RunLengthDistribution, geometric_run_distribution
from ..jitter.pdf import (
    DEFAULT_GRID_STEP_UI,
    Pdf,
    delta_pdf,
    gaussian_pdf,
    sinusoidal_pdf,
    uniform_pdf,
)
from .qfunc import q_function

__all__ = [
    "NOMINAL_SAMPLING_PHASE_UI",
    "IMPROVED_SAMPLING_PHASE_UI",
    "CdrJitterBudget",
    "GatedOscillatorBerModel",
    "BerBreakdown",
]

#: Nominal sampling phase: the recovered clock rises T/2 after the trigger.
NOMINAL_SAMPLING_PHASE_UI = 0.5

#: Improved sampling phase: the inverted third-stage tap is T/8 earlier (paper §3.3b).
IMPROVED_SAMPLING_PHASE_UI = 0.375


@dataclass(frozen=True)
class CdrJitterBudget:
    """Jitter and frequency-error environment of the statistical model.

    Default values reproduce Table 1 of the paper.

    Attributes
    ----------
    dj_ui_pp:
        Deterministic jitter on each data edge, peak-to-peak (uniform PDF).
    rj_ui_rms:
        Random jitter on each data edge, rms (Gaussian PDF).
    sj_amplitude_ui_pp:
        Sinusoidal jitter peak-to-peak amplitude (swept in JTOL experiments).
    sj_frequency_hz:
        Sinusoidal jitter frequency.
    osc_sigma_ui_per_bit:
        Oscillator jitter accumulated per bit period of free running, rms, in
        UI.  The paper budgets 0.01 UI rms at CID = 5, i.e. 0.01 / sqrt(5) per
        bit period.
    frequency_offset:
        Relative frequency error between the oscillator and the incoming data
        (positive = oscillator slow, period longer than the bit period).
    bit_rate_hz:
        Channel data rate (used only to relate SJ frequency to the bit rate).
    """

    dj_ui_pp: float = 0.4
    rj_ui_rms: float = 0.021
    sj_amplitude_ui_pp: float = 0.0
    sj_frequency_hz: float = 100.0e6
    osc_sigma_ui_per_bit: float = 0.01 / math.sqrt(5.0)
    frequency_offset: float = 0.0
    bit_rate_hz: float = units.DEFAULT_BIT_RATE

    def __post_init__(self) -> None:
        require_non_negative("dj_ui_pp", self.dj_ui_pp)
        require_non_negative("rj_ui_rms", self.rj_ui_rms)
        require_non_negative("sj_amplitude_ui_pp", self.sj_amplitude_ui_pp)
        require_positive("sj_frequency_hz", self.sj_frequency_hz)
        require_non_negative("osc_sigma_ui_per_bit", self.osc_sigma_ui_per_bit)
        require_in_range("frequency_offset", self.frequency_offset, -0.5, 0.5)
        require_positive("bit_rate_hz", self.bit_rate_hz)

    @classmethod
    def paper_table1(
        cls,
        sj_amplitude_ui_pp: float = 0.0,
        sj_frequency_hz: float = 100.0e6,
        frequency_offset: float = 0.0,
    ) -> "CdrJitterBudget":
        """Return the Table 1 budget with the swept stressors filled in."""
        return cls(
            sj_amplitude_ui_pp=sj_amplitude_ui_pp,
            sj_frequency_hz=sj_frequency_hz,
            frequency_offset=frequency_offset,
        )

    def with_sinusoidal(
        self, amplitude_ui_pp: float, frequency_hz: float | None = None
    ) -> "CdrJitterBudget":
        """Return a copy with the sinusoidal-jitter stressor replaced."""
        return replace(
            self,
            sj_amplitude_ui_pp=amplitude_ui_pp,
            sj_frequency_hz=self.sj_frequency_hz if frequency_hz is None else frequency_hz,
        )

    def with_frequency_offset(self, frequency_offset: float) -> "CdrJitterBudget":
        """Return a copy with the oscillator frequency offset replaced."""
        return replace(self, frequency_offset=frequency_offset)

    def sj_frequency_normalised(self) -> float:
        """Sinusoidal jitter frequency normalised to the data rate."""
        return self.sj_frequency_hz / self.bit_rate_hz

    def relative_sj_pp_over_gap(self, gap_ui: float) -> float:
        """Differential SJ peak-to-peak amplitude between two edges *gap_ui* apart."""
        phase_gap = math.pi * self.sj_frequency_normalised() * gap_ui
        return 2.0 * self.sj_amplitude_ui_pp * abs(math.sin(phase_gap))


@dataclass(frozen=True)
class BerBreakdown:
    """Detailed result of a BER evaluation.

    Attributes
    ----------
    ber:
        Total bit error ratio.
    ber_right:
        Contribution of sampling past the end-of-run transition.
    ber_left:
        Contribution of sampling before the run-start transition.
    per_run_length:
        ``{k: BER contribution of runs of length k}`` (already weighted by the
        probability of a bit belonging to such a run).
    """

    ber: float
    ber_right: float
    ber_left: float
    per_run_length: dict[int, float] = field(default_factory=dict)

    def dominant_run_length(self) -> int:
        """Run length contributing the most errors."""
        if not self.per_run_length:
            return 0
        return max(self.per_run_length, key=self.per_run_length.get)


class GatedOscillatorBerModel:
    """Analytic BER model of a gated-oscillator CDR channel.

    Parameters
    ----------
    budget:
        Jitter / frequency environment (defaults to Table 1).
    sampling_phase_ui:
        Phase of the recovered sampling edge after the trigger transition, in
        UI.  0.5 for the nominal topology (Figure 7), 0.375 for the improved
        topology (Figure 15).
    run_lengths:
        Run-length distribution of the line code.  Defaults to the worst-case
        8b/10b distribution (CID limited to 5).
    grid_step_ui:
        Resolution of the numerical PDF grid.
    static_phase_error_ui:
        Constant sampling-phase error (gate-delay mismatch not compensated by
        the dummy gates); added to the sampling phase.
    """

    def __init__(
        self,
        budget: CdrJitterBudget | None = None,
        *,
        sampling_phase_ui: float = NOMINAL_SAMPLING_PHASE_UI,
        run_lengths: RunLengthDistribution | None = None,
        grid_step_ui: float = DEFAULT_GRID_STEP_UI,
        static_phase_error_ui: float = 0.0,
    ) -> None:
        self.budget = budget or CdrJitterBudget()
        self.sampling_phase_ui = require_in_range(
            "sampling_phase_ui", sampling_phase_ui, 0.0, 1.0, inclusive=False
        )
        self.run_lengths = run_lengths or geometric_run_distribution(max_run=5)
        self.grid_step_ui = require_positive("grid_step_ui", grid_step_ui)
        self.static_phase_error_ui = float(static_phase_error_ui)
        #: Lazily built ``{run length: boundary Pdf}`` cache.  The edge-pair
        #: PDFs depend only on the jitter budget and the run length — never on
        #: the sampling phase — so phase scans (bathtubs, eye margins, the
        #: statistical eye solver) reuse them instead of re-convolving per probe.
        self._boundary_pdf_cache: dict[int, Pdf] = {}

    # -- internal building blocks ------------------------------------------

    def _edge_pair_pdf(self, gap_ui: float) -> Pdf:
        """Distribution of the end-of-run edge displacement relative to the trigger.

        Deterministic jitter is pattern-correlated (inter-symbol interference /
        duty-cycle distortion), so — following the paper's Table 1 convention —
        its uniform PDF bounds the *relative* displacement between the two
        edges and enters once.  Random jitter is independent per edge and
        enters with sqrt(2) times its per-edge sigma; sinusoidal jitter enters
        through its differential amplitude over the *gap_ui* separation.
        """
        budget = self.budget
        step = self.grid_step_ui

        pdf = delta_pdf(0.0, step)
        if budget.dj_ui_pp > 0.0:
            pdf = pdf.convolve(uniform_pdf(budget.dj_ui_pp, step))
        if budget.rj_ui_rms > 0.0:
            rj_diff = gaussian_pdf(budget.rj_ui_rms * math.sqrt(2.0), step)
            pdf = pdf.convolve(rj_diff)
        relative_sj = budget.relative_sj_pp_over_gap(gap_ui)
        if relative_sj > 0.0:
            pdf = pdf.convolve(sinusoidal_pdf(relative_sj, step))
        return pdf

    def _boundary_pdf(self, run_length: int) -> Pdf:
        """Cached end-of-run boundary PDF for runs of *run_length* bits."""
        pdf = self._boundary_pdf_cache.get(run_length)
        if pdf is None:
            pdf = self._edge_pair_pdf(float(run_length))
            self._boundary_pdf_cache[run_length] = pdf
        return pdf

    def _sampling_means_ui(
        self, positions: np.ndarray, phases_ui: np.ndarray | None = None
    ) -> np.ndarray:
        """Mean sampling instant of each run *position* (UI after the trigger).

        With *phases_ui* given, returns a ``(n_phases, n_positions)`` grid —
        the phase-vectorised form the bathtub/eye scans broadcast over.
        """
        if phases_ui is None:
            phi = self.sampling_phase_ui + self.static_phase_error_ui
            return (positions - 1 + phi) * (1.0 + self.budget.frequency_offset)
        phi = phases_ui[:, None] + self.static_phase_error_ui
        return (positions[None, :] - 1 + phi) * (1.0 + self.budget.frequency_offset)

    def _sampling_sigmas_ui(self, positions: np.ndarray) -> np.ndarray:
        """RMS accumulated oscillator jitter at each run position's sampling edge."""
        return self.budget.osc_sigma_ui_per_bit * np.sqrt(positions.astype(float))

    def _right_error_probabilities(
        self, means: np.ndarray, positions: np.ndarray, run_length: int, boundary_pdf: Pdf
    ) -> np.ndarray:
        """Right-overshoot probability; *means* may carry a leading phase axis."""
        sigmas = self._sampling_sigmas_ui(positions)
        # Error when  mean + G > run_length + J_end  <=>  G - J_end > run_length - mean.
        margins = float(run_length) - means
        grid = boundary_pdf.grid
        density = boundary_pdf.density
        if self.budget.osc_sigma_ui_per_bit > 0.0:
            tails = q_function((margins[..., None] + grid) / sigmas[:, None])
        else:
            tails = (grid < -margins[..., None]).astype(float)
        probabilities = np.sum(density * tails, axis=-1) * boundary_pdf.step
        return np.clip(probabilities, 0.0, 1.0)

    def _left_error_probabilities(self, means: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Before-run-start probability; *means* may carry a leading phase axis."""
        if self.budget.osc_sigma_ui_per_bit <= 0.0:
            return (means < 0.0).astype(float)
        return np.asarray(q_function(means / self._sampling_sigmas_ui(positions)), dtype=float)

    # -- public API ----------------------------------------------------------

    def ber_breakdown(self) -> BerBreakdown:
        """Evaluate the BER and return its decomposition by mechanism and run length.

        The position loop inside each run length is vectorised: every run of
        length ``k`` shares one boundary PDF, and the per-position overshoot
        integrals collapse to one ``(k, grid)`` broadcast against it.
        """
        joint = self.run_lengths.position_in_run_weights()
        max_run = self.run_lengths.max_run

        total = 0.0
        total_right = 0.0
        total_left = 0.0
        per_run: dict[int, float] = {}

        for k in range(1, max_run + 1):
            boundary_pdf = self._boundary_pdf(k)
            positions = np.arange(1, k + 1)
            weights = joint[k - 1, :k]
            means = self._sampling_means_ui(positions)
            p_right = self._right_error_probabilities(means, positions, k, boundary_pdf)
            p_left = self._left_error_probabilities(means, positions)
            p_bit = np.minimum(1.0, p_right + p_left)
            active = weights > 0.0
            run_contribution = float(np.sum(weights[active] * p_bit[active]))
            total_right += float(np.sum(weights[active] * p_right[active]))
            total_left += float(np.sum(weights[active] * p_left[active]))
            per_run[k] = run_contribution
            total += run_contribution

        return BerBreakdown(
            ber=float(min(total, 1.0)),
            ber_right=float(min(total_right, 1.0)),
            ber_left=float(min(total_left, 1.0)),
            per_run_length=per_run,
        )

    def ber(self) -> float:
        """Total bit error ratio under the configured conditions."""
        return self.ber_breakdown().ber

    def ber_at_phases(self, phases_ui: np.ndarray) -> np.ndarray:
        """BER at every sampling phase in *phases_ui* with one shared setup.

        The boundary PDFs and run-length statistics are phase-independent;
        only the sampling means shift with the phase.  All phases therefore
        share the cached per-run-length PDFs and collapse to one
        ``(n_phases, positions, grid)`` broadcast per run length — a phase
        scan costs barely more than a single-point evaluation, instead of
        rebuilding the full model per probe.
        """
        phases_ui = np.atleast_1d(np.asarray(phases_ui, dtype=float))
        joint = self.run_lengths.position_in_run_weights()
        max_run = self.run_lengths.max_run
        totals = np.zeros(phases_ui.shape, dtype=float)
        for k in range(1, max_run + 1):
            boundary_pdf = self._boundary_pdf(k)
            positions = np.arange(1, k + 1)
            weights = joint[k - 1, :k]
            means = self._sampling_means_ui(positions, phases_ui)
            p_right = self._right_error_probabilities(means, positions, k, boundary_pdf)
            p_left = self._left_error_probabilities(means, positions)
            p_bit = np.minimum(1.0, p_right + p_left)
            totals += p_bit @ weights
        return np.minimum(totals, 1.0)

    def ber_at_phase(self, phase_ui: float) -> float:
        """BER with the sampling phase moved to *phase_ui* (same budget/code)."""
        return float(self.ber_at_phases(np.array([float(phase_ui)]))[0])

    def eye_margin_ui(self, target_ber: float = 1.0e-12, *, tolerance_ui: float = 1.0e-4) -> float:
        """Horizontal eye margin: how much the sampling phase can move before BER > target.

        Returns the width (UI) of the sampling-phase interval around the
        configured phase for which the BER stays at or below *target_ber*;
        zero if the configured point itself already fails.  Each eye edge is
        located by bisection to *tolerance_ui* (reusing the cached boundary
        PDFs — only the sampling means move with the phase), so the margin
        varies smoothly with *target_ber* and can credit the full 0 / 1 UI
        span instead of stalling one fixed step short of it.
        """
        require_positive("target_ber", target_ber)
        require_positive("tolerance_ui", tolerance_ui)
        if self.ber() > target_ber:
            return 0.0

        def passes(phase: float) -> bool:
            return self.ber_at_phase(phase) <= target_ber

        if passes(0.0):
            left = 0.0
        else:
            low, high = 0.0, self.sampling_phase_ui  # low fails, high passes
            while high - low > tolerance_ui:
                middle = 0.5 * (low + high)
                if passes(middle):
                    high = middle
                else:
                    low = middle
            left = high
        if passes(1.0):
            right = 1.0
        else:
            low, high = self.sampling_phase_ui, 1.0  # low passes, high fails
            while high - low > tolerance_ui:
                middle = 0.5 * (low + high)
                if passes(middle):
                    low = middle
                else:
                    high = middle
            right = low
        return float(right - left)

    def sweep_sampling_phase(self, phases_ui: np.ndarray) -> np.ndarray:
        """Return the BER for each sampling phase in *phases_ui* (bathtub curve)."""
        return self.ber_at_phases(np.asarray(phases_ui, dtype=float))

    def optimum_sampling_phase(self, resolution_ui: float = 0.01) -> tuple[float, float]:
        """Return ``(best_phase_ui, best_ber)`` over a phase scan at *resolution_ui*."""
        require_positive("resolution_ui", resolution_ui)
        phases = np.arange(resolution_ui, 1.0, resolution_ui)
        bers = self.sweep_sampling_phase(phases)
        index = int(np.argmin(bers))
        return float(phases[index]), float(bers[index])
