"""Bathtub-curve and eye-opening analysis based on the statistical model.

The bathtub curve — BER as a function of the sampling phase — is the standard
way of visualising the horizontal eye opening at very low error ratios (the
region Monte-Carlo eye diagrams such as the paper's Figure 14/16 cannot
reach).  It also identifies the optimum sampling instant, which is how the
paper motivates the improved (T/8 earlier) sampling tap in section 3.3b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_positive, require_probability
from ..datapath.cid import RunLengthDistribution
from .ber_model import CdrJitterBudget, GatedOscillatorBerModel

__all__ = [
    "BathtubCurve",
    "bathtub_curve",
    "eye_opening_ui",
    "optimum_sampling_phase",
]


@dataclass(frozen=True)
class BathtubCurve:
    """BER versus sampling phase."""

    phases_ui: np.ndarray
    ber: np.ndarray

    def __post_init__(self) -> None:
        phases = np.asarray(self.phases_ui, dtype=float)
        ber = np.asarray(self.ber, dtype=float)
        if phases.shape != ber.shape:
            raise ValueError("phases_ui and ber must have the same shape")
        object.__setattr__(self, "phases_ui", phases)
        object.__setattr__(self, "ber", ber)

    def eye_opening_ui(self, target_ber: float = 1.0e-12) -> float:
        """Width of the phase interval with BER <= target."""
        passing = self.phases_ui[self.ber <= target_ber]
        if passing.size == 0:
            return 0.0
        return float(passing.max() - passing.min())

    def optimum(self) -> tuple[float, float]:
        """Return ``(phase_ui, ber)`` of the minimum-BER sampling point."""
        index = int(np.argmin(self.ber))
        return float(self.phases_ui[index]), float(self.ber[index])

    def left_edge_ui(self, target_ber: float = 1.0e-12) -> float:
        """Leftmost passing phase (NaN if the curve never passes)."""
        passing = self.phases_ui[self.ber <= target_ber]
        return float(passing.min()) if passing.size else float("nan")

    def right_edge_ui(self, target_ber: float = 1.0e-12) -> float:
        """Rightmost passing phase (NaN if the curve never passes)."""
        passing = self.phases_ui[self.ber <= target_ber]
        return float(passing.max()) if passing.size else float("nan")


def bathtub_curve(
    *,
    budget: CdrJitterBudget | None = None,
    run_lengths: RunLengthDistribution | None = None,
    phases_ui: np.ndarray | None = None,
    grid_step_ui: float = 2.0e-3,
) -> BathtubCurve:
    """Compute the bathtub curve for the given jitter budget.

    ``phases_ui`` defaults to a scan of (0.02 .. 0.98) UI in 0.02 UI steps.
    """
    budget = budget or CdrJitterBudget()
    if phases_ui is None:
        phases_ui = np.arange(0.02, 0.99, 0.02)
    phases_ui = np.asarray(phases_ui, dtype=float)
    # One model serves the whole scan: the boundary PDFs are phase-independent
    # and cached, so the sweep is a single vectorised broadcast per run length.
    model = GatedOscillatorBerModel(
        budget, run_lengths=run_lengths, grid_step_ui=grid_step_ui)
    return BathtubCurve(phases_ui=phases_ui,
                        ber=model.sweep_sampling_phase(phases_ui))


def eye_opening_ui(
    target_ber: float = 1.0e-12,
    *,
    budget: CdrJitterBudget | None = None,
    run_lengths: RunLengthDistribution | None = None,
    grid_step_ui: float = 2.0e-3,
) -> float:
    """Horizontal eye opening (UI) at the target BER."""
    require_probability("target_ber", target_ber)
    curve = bathtub_curve(budget=budget, run_lengths=run_lengths, grid_step_ui=grid_step_ui)
    return curve.eye_opening_ui(target_ber)


def optimum_sampling_phase(
    *,
    budget: CdrJitterBudget | None = None,
    run_lengths: RunLengthDistribution | None = None,
    resolution_ui: float = 0.02,
    grid_step_ui: float = 2.0e-3,
) -> tuple[float, float]:
    """Return the minimum-BER sampling phase and its BER."""
    require_positive("resolution_ui", resolution_ui)
    phases = np.arange(resolution_ui, 1.0, resolution_ui)
    curve = bathtub_curve(
        budget=budget, run_lengths=run_lengths, phases_ui=phases, grid_step_ui=grid_step_ui
    )
    return curve.optimum()
