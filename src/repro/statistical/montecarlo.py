"""Monte-Carlo cross-check of the analytic BER model.

The analytic model of :mod:`repro.statistical.ber_model` evaluates error
probabilities by PDF convolution; this module simulates exactly the same
random experiment by drawing samples, so the two can be cross-validated in the
BER range a Monte-Carlo simulation can reach (roughly down to 1e-5 with 1e7
trials).  The paper uses the same strategy in reverse: the VHDL time-domain
simulations confirm the statistical results at moderate error ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import require_positive_int
from ..datapath.cid import RunLengthDistribution, geometric_run_distribution
from .ber_model import CdrJitterBudget, NOMINAL_SAMPLING_PHASE_UI

__all__ = [
    "MonteCarloResult",
    "simulate_ber",
]


@dataclass(frozen=True)
class MonteCarloResult:
    """Result of a Monte-Carlo BER estimation."""

    errors: int
    trials: int

    @property
    def ber(self) -> float:
        """Estimated bit error ratio."""
        return self.errors / self.trials if self.trials else float("nan")

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval on the BER."""
        if self.trials == 0:
            return (float("nan"), float("nan"))
        p = self.ber
        half_width = z * math.sqrt(max(p * (1.0 - p), 1.0 / self.trials) / self.trials)
        return (max(0.0, p - half_width), min(1.0, p + half_width))

    def consistent_with(self, ber: float, z: float = 3.0) -> bool:
        """True if *ber* lies within the z-sigma confidence interval."""
        low, high = self.confidence_interval(z)
        return low <= ber <= high


def simulate_ber(
    budget: CdrJitterBudget | None = None,
    *,
    n_bits: int = 1_000_000,
    sampling_phase_ui: float = NOMINAL_SAMPLING_PHASE_UI,
    run_lengths: RunLengthDistribution | None = None,
    static_phase_error_ui: float = 0.0,
    rng: np.random.Generator | None = None,
) -> MonteCarloResult:
    """Monte-Carlo estimate of the gated-oscillator CDR BER.

    The experiment mirrors the analytic model bit for bit: draw a run length
    and a position inside the run, draw the sampling-edge displacement
    (frequency-offset accumulation + oscillator random walk) and the relative
    displacement of the end-of-run transition (DJ and RJ on both edges plus
    differential SJ), and count an error whenever the sampling edge leaves the
    run.
    """
    budget = budget or CdrJitterBudget()
    run_lengths = run_lengths or geometric_run_distribution(max_run=5)
    rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — opt-in entropy
    n_bits = require_positive_int("n_bits", n_bits)

    max_run = run_lengths.max_run
    # Flattened joint (run length, position) distribution, precomputed as
    # arrays (run-major, matching the historical pair ordering so seeded
    # draws are unchanged).
    all_runs, all_positions, weights_array = run_lengths.flattened_position_weights()
    weights_array = weights_array / weights_array.sum()

    pair_indices = rng.choice(all_runs.size, size=n_bits, p=weights_array)
    run_k = all_runs[pair_indices]
    pos_i = all_positions[pair_indices]

    phi = sampling_phase_ui + static_phase_error_ui
    sampling_mean = (pos_i - 1 + phi) * (1.0 + budget.frequency_offset)
    osc_sigma = budget.osc_sigma_ui_per_bit * np.sqrt(pos_i.astype(float))
    sampling_edge = sampling_mean + rng.normal(0.0, 1.0, size=n_bits) * osc_sigma

    # Relative displacement of the end-of-run transition versus the trigger.
    # DJ is pattern-correlated and bounds the relative displacement (one draw);
    # RJ is independent per edge (sqrt(2) times the per-edge sigma).
    boundary = run_k.astype(float)
    if budget.dj_ui_pp > 0.0:
        half = 0.5 * budget.dj_ui_pp
        boundary = boundary + rng.uniform(-half, half, size=n_bits)
    if budget.rj_ui_rms > 0.0:
        boundary = boundary + rng.normal(0.0, budget.rj_ui_rms * math.sqrt(2.0), size=n_bits)
    if budget.sj_amplitude_ui_pp > 0.0:
        relative_pp = np.array(
            [budget.relative_sj_pp_over_gap(float(k)) for k in range(1, max_run + 1)]
        )[run_k - 1]
        phase = rng.uniform(0.0, 2.0 * np.pi, size=n_bits)
        boundary = boundary + 0.5 * relative_pp * np.sin(phase)

    errors = int(np.count_nonzero((sampling_edge > boundary) | (sampling_edge < 0.0)))
    return MonteCarloResult(errors=errors, trials=n_bits)
