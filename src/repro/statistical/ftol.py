"""Frequency tolerance (FTOL) analysis.

Unlike PLL-based CDRs, a gated-oscillator CDR never frequency-locks to the
incoming data: any difference between the local oscillator and the data rate
accumulates as phase error over every run of identical bits.  The paper
defines the frequency tolerance as the maximum frequency difference at which
the BER remains below 1e-12 (section 2.3), with ±100 ppm being the typical
application requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from .._validation import require_positive, require_probability
from ..datapath.cid import RunLengthDistribution
from .ber_model import CdrJitterBudget, GatedOscillatorBerModel, NOMINAL_SAMPLING_PHASE_UI

__all__ = [
    "FtolResult",
    "ber_vs_frequency_offset",
    "frequency_tolerance",
]


@dataclass(frozen=True)
class FtolResult:
    """Frequency-tolerance search result."""

    positive_tolerance: float
    negative_tolerance: float
    target_ber: float

    @property
    def positive_tolerance_ppm(self) -> float:
        """Tolerance towards a slow oscillator, in ppm."""
        return units.fraction_to_ppm(self.positive_tolerance)

    @property
    def negative_tolerance_ppm(self) -> float:
        """Tolerance towards a fast oscillator, in ppm (returned positive)."""
        return units.fraction_to_ppm(abs(self.negative_tolerance))

    @property
    def symmetric_tolerance_ppm(self) -> float:
        """Worst-case (smaller) of the two tolerances, in ppm."""
        return min(self.positive_tolerance_ppm, self.negative_tolerance_ppm)

    def meets_specification(self, required_ppm: float = 100.0) -> bool:
        """True when the CDR tolerates at least ±required_ppm."""
        return self.symmetric_tolerance_ppm >= required_ppm


def ber_vs_frequency_offset(
    offsets: np.ndarray,
    *,
    budget: CdrJitterBudget | None = None,
    sampling_phase_ui: float = NOMINAL_SAMPLING_PHASE_UI,
    run_lengths: RunLengthDistribution | None = None,
    grid_step_ui: float = 2.0e-3,
) -> np.ndarray:
    """BER for each relative frequency offset in *offsets*."""
    budget = budget or CdrJitterBudget()
    offsets = np.asarray(offsets, dtype=float)
    bers = np.empty(offsets.shape, dtype=float)
    for index, offset in enumerate(offsets.ravel()):
        model = GatedOscillatorBerModel(
            budget.with_frequency_offset(float(offset)),
            sampling_phase_ui=sampling_phase_ui,
            run_lengths=run_lengths,
            grid_step_ui=grid_step_ui,
        )
        bers.ravel()[index] = model.ber()
    return bers


def frequency_tolerance(
    *,
    budget: CdrJitterBudget | None = None,
    target_ber: float = 1.0e-12,
    sampling_phase_ui: float = NOMINAL_SAMPLING_PHASE_UI,
    run_lengths: RunLengthDistribution | None = None,
    grid_step_ui: float = 2.0e-3,
    max_offset: float = 0.2,
    resolution: float = 1.0e-4,
) -> FtolResult:
    """Find the largest positive and negative frequency offsets meeting *target_ber*.

    Uses bisection independently in each direction.
    """
    budget = budget or CdrJitterBudget()
    require_probability("target_ber", target_ber)
    require_positive("max_offset", max_offset)
    require_positive("resolution", resolution)

    def ber_at(offset: float) -> float:
        model = GatedOscillatorBerModel(
            budget.with_frequency_offset(offset),
            sampling_phase_ui=sampling_phase_ui,
            run_lengths=run_lengths,
            grid_step_ui=grid_step_ui,
        )
        return model.ber()

    def search(direction: float) -> float:
        low = 0.0
        if ber_at(low) > target_ber:
            return 0.0
        high = direction * max_offset
        if ber_at(high) <= target_ber:
            return high
        low_abs, high_abs = 0.0, max_offset
        while (high_abs - low_abs) > resolution:
            middle = 0.5 * (low_abs + high_abs)
            if ber_at(direction * middle) <= target_ber:
                low_abs = middle
            else:
                high_abs = middle
        return direction * low_abs

    return FtolResult(
        positive_tolerance=float(search(+1.0)),
        negative_tolerance=float(search(-1.0)),
        target_ber=target_ber,
    )
