"""Statistical CDR analysis: BER model, JTOL/FTOL sweeps, bathtub curves."""

from .qfunc import (
    ber_from_snr_margin,
    inverse_q_function,
    log10_ber,
    q_function,
    sigma_margin_for_ber,
)
from .ber_model import (
    IMPROVED_SAMPLING_PHASE_UI,
    NOMINAL_SAMPLING_PHASE_UI,
    BerBreakdown,
    CdrJitterBudget,
    GatedOscillatorBerModel,
)
from .jtol import (
    JtolCurve,
    JtolPoint,
    ber_vs_sinusoidal_jitter,
    jitter_tolerance_at_frequency,
    jitter_tolerance_curve,
)
from .ftol import FtolResult, ber_vs_frequency_offset, frequency_tolerance
from .bathtub import BathtubCurve, bathtub_curve, eye_opening_ui, optimum_sampling_phase
from .montecarlo import MonteCarloResult, simulate_ber

__all__ = [
    "ber_from_snr_margin",
    "inverse_q_function",
    "log10_ber",
    "q_function",
    "sigma_margin_for_ber",
    "IMPROVED_SAMPLING_PHASE_UI",
    "NOMINAL_SAMPLING_PHASE_UI",
    "BerBreakdown",
    "CdrJitterBudget",
    "GatedOscillatorBerModel",
    "JtolCurve",
    "JtolPoint",
    "ber_vs_sinusoidal_jitter",
    "jitter_tolerance_at_frequency",
    "jitter_tolerance_curve",
    "FtolResult",
    "ber_vs_frequency_offset",
    "frequency_tolerance",
    "BathtubCurve",
    "bathtub_curve",
    "eye_opening_ui",
    "optimum_sampling_phase",
    "MonteCarloResult",
    "simulate_ber",
]
