"""Physical units, constants and conversions used across the library.

The paper works in three interchangeable "time" units:

* seconds — absolute time used by the event kernel and circuit simulator,
* **unit intervals (UI)** — time normalised to the bit period (1 UI = 400 ps at
  2.5 Gbit/s), the natural unit for jitter specifications,
* radians — phase, used by the PLL and phase-noise models.

All public APIs state their unit explicitly in the argument name
(``amplitude_ui``, ``delay_s`` ...).  This module provides the conversion
helpers plus the handful of physical constants the phase-noise model needs.
"""

from __future__ import annotations

import math

__all__ = [
    "BOLTZMANN_K",
    "ROOM_TEMPERATURE_K",
    "DEFAULT_BIT_RATE",
    "DEFAULT_UNIT_INTERVAL",
    "ui_to_seconds",
    "seconds_to_ui",
    "ui_to_radians",
    "radians_to_ui",
    "ppm_to_fraction",
    "fraction_to_ppm",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "peak_to_peak_to_rms_uniform",
    "rms_to_peak_to_peak_uniform",
    "peak_to_peak_to_rms_sine",
    "rms_to_peak_to_peak_sine",
    "bit_period",
    "power_per_gbps",
]

#: Boltzmann constant [J/K].
BOLTZMANN_K = 1.380_649e-23

#: Default simulation temperature [K].
ROOM_TEMPERATURE_K = 300.0

#: The paper's per-channel data rate [bit/s].
DEFAULT_BIT_RATE = 2.5e9

#: The paper's unit interval, 1 UI = 400 ps [s].
DEFAULT_UNIT_INTERVAL = 1.0 / DEFAULT_BIT_RATE


def bit_period(bit_rate_hz: float = DEFAULT_BIT_RATE) -> float:
    """Return the bit period (one unit interval) in seconds for *bit_rate_hz*."""
    if bit_rate_hz <= 0.0:
        raise ValueError(f"bit rate must be positive, got {bit_rate_hz!r}")
    return 1.0 / bit_rate_hz


def ui_to_seconds(value_ui: float, bit_rate_hz: float = DEFAULT_BIT_RATE) -> float:
    """Convert a duration expressed in unit intervals to seconds."""
    return value_ui * bit_period(bit_rate_hz)


def seconds_to_ui(value_s: float, bit_rate_hz: float = DEFAULT_BIT_RATE) -> float:
    """Convert a duration expressed in seconds to unit intervals."""
    return value_s / bit_period(bit_rate_hz)


def ui_to_radians(value_ui: float) -> float:
    """Convert a phase expressed in unit intervals to radians (1 UI = 2*pi)."""
    return value_ui * 2.0 * math.pi


def radians_to_ui(value_rad: float) -> float:
    """Convert a phase expressed in radians to unit intervals."""
    return value_rad / (2.0 * math.pi)


def ppm_to_fraction(value_ppm: float) -> float:
    """Convert parts-per-million to a dimensionless fraction."""
    return value_ppm * 1.0e-6


def fraction_to_ppm(value: float) -> float:
    """Convert a dimensionless fraction to parts-per-million."""
    return value * 1.0e6


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio in dB to a linear ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to dB."""
    if value <= 0.0:
        raise ValueError(f"ratio must be positive to convert to dB, got {value!r}")
    return 10.0 * math.log10(value)


def dbm_to_watts(value_dbm: float) -> float:
    """Convert dBm to watts."""
    return 1.0e-3 * db_to_linear(value_dbm)


def watts_to_dbm(value_w: float) -> float:
    """Convert watts to dBm."""
    if value_w <= 0.0:
        raise ValueError(f"power must be positive to convert to dBm, got {value_w!r}")
    return linear_to_db(value_w / 1.0e-3)


def peak_to_peak_to_rms_uniform(value_pp: float) -> float:
    """RMS of a zero-mean uniform distribution with the given peak-to-peak span.

    Deterministic jitter is modelled with a uniform PDF (paper section 3.1), for
    which ``rms = pp / sqrt(12)``.
    """
    return value_pp / math.sqrt(12.0)


def rms_to_peak_to_peak_uniform(value_rms: float) -> float:
    """Peak-to-peak span of a uniform distribution with the given RMS value."""
    return value_rms * math.sqrt(12.0)


def peak_to_peak_to_rms_sine(value_pp: float) -> float:
    """RMS of a sinusoid with the given peak-to-peak amplitude (``pp / (2*sqrt(2))``)."""
    return value_pp / (2.0 * math.sqrt(2.0))


def rms_to_peak_to_peak_sine(value_rms: float) -> float:
    """Peak-to-peak amplitude of a sinusoid with the given RMS value."""
    return value_rms * 2.0 * math.sqrt(2.0)


def power_per_gbps(power_w: float, bit_rate_hz: float) -> float:
    """Return power efficiency in mW per Gbit/s — the paper's headline metric."""
    if bit_rate_hz <= 0.0:
        raise ValueError(f"bit rate must be positive, got {bit_rate_hz!r}")
    return (power_w * 1.0e3) / (bit_rate_hz / 1.0e9)
