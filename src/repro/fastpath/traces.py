"""Array-backed waveform traces for the fast-path engine.

The event-driven flow records waveforms through a
:class:`~repro.events.waveform.WaveformRecorder` that subscribes to signals;
the fast path already *has* every edge as a numpy array, so it wraps those
arrays in the same :class:`~repro.events.waveform.Trace` objects (whose
analysis helpers all go through ``as_arrays`` and therefore accept ndarray
storage) and exposes them through a recorder with the same ``trace(name)``
surface.
"""

from __future__ import annotations

import numpy as np

from ..events.waveform import Trace

__all__ = ["array_trace", "ArrayRecorder"]


def array_trace(name: str, times_s: np.ndarray, values: np.ndarray,
                *, initial_time_s: float = 0.0, initial_value: int = 0) -> Trace:
    """Build a :class:`Trace` from edge arrays, prepending the initial sample.

    The event-driven recorder stores the signal value at watch time as the
    first point of every trace; the fast path reproduces that so edge
    extraction (which skips the first point) behaves identically.
    """
    times = np.concatenate(([float(initial_time_s)], np.asarray(times_s, dtype=float)))
    vals = np.concatenate(([int(initial_value)],
                           np.asarray(values, dtype=np.int64)))
    return Trace(name=name, times_s=times, values=vals)


class ArrayRecorder:
    """Duck-typed stand-in for :class:`WaveformRecorder` holding fixed traces."""

    def __init__(self, traces: dict[str, Trace]) -> None:
        self._traces = dict(traces)

    def trace(self, name: str) -> Trace:
        """Return the trace recorded under *name* (KeyError if unknown)."""
        return self._traces[name]

    def __getitem__(self, name: str) -> Trace:
        return self._traces[name]

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def names(self) -> list[str]:
        """Names of all recorded traces."""
        return sorted(self._traces)
