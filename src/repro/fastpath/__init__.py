"""Vectorized fast-path simulation of the gated-oscillator CDR channel.

The event-driven model in :mod:`repro.core.cdr_channel` pays pure-Python
prices on every signal edge (heap events, closures, subscriber dispatch).
Because the CDR topology is *fixed* — jittered NRZ edge stream, delay-line +
XNOR edge detector, gated four-stage ring, decision flip-flop — its behaviour
can be computed as numpy array passes plus one tight re-phasing recurrence,
producing the same :class:`~repro.core.cdr_channel.BehavioralSimulationResult`
surface 10-50x faster.

On configurations without per-gate delay jitter the fast path is equivalent
to the event kernel down to the exact floating-point sample times (see
``tests/fastpath/test_equivalence.py`` and PERFORMANCE.md); with gate jitter
enabled it draws statistically identical but not draw-for-draw identical
jitter, so only distributions (not individual decisions) match.
"""

from .backends import (
    AUTO_BACKEND,
    BACKENDS,
    CAP_GATE_JITTER,
    BackendSpec,
    make_channel,
    register_backend,
    required_capabilities,
    resolve_backend,
)
from .engine import FastCdrChannel
from .traces import ArrayRecorder, array_trace

__all__ = ["AUTO_BACKEND", "BACKENDS", "CAP_GATE_JITTER", "BackendSpec",
           "make_channel", "register_backend", "required_capabilities",
           "resolve_backend", "FastCdrChannel", "ArrayRecorder",
           "array_trace"]
