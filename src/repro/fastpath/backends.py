"""Capability-aware channel-backend registry.

Lives beside the engines (below the sweep layer) so both
:mod:`repro.core.multichannel` and :mod:`repro.sweep` can import it
downward without a cycle.

Each backend is registered as a :class:`BackendSpec` declaring the
*capabilities* it provides.  A :class:`~repro.core.config.CdrChannelConfig`
*demands* capabilities (today only :data:`CAP_GATE_JITTER`, demanded when
any per-gate delay jitter is configured), and resolution matches the two:

* ``backend="auto"`` picks the fastest backend whose capabilities cover the
  config's demands — the vectorized fast path on deterministic-delay
  configurations (where it is exactly equivalent to the event kernel), the
  event kernel as soon as per-gate jitter is in play;
* forcing a named backend that lacks a demanded capability raises a
  ``ValueError`` naming the offending capability instead of silently
  returning non-equivalent results (the fast path's jitter draws agree with
  the event kernel only in distribution — see PERFORMANCE.md).

Backends additionally declare *environment* requirements
(:attr:`BackendSpec.env_requires`): capabilities the running process must
provide, independent of any configuration.  Today that is only
:data:`CAP_JIT_KERNELS` — the ``"fast+jit"`` backend is always registered
but resolvable only where the numba kernel tier imported cleanly, so
``backend="auto"`` upgrades to it exactly when the environment can honour
it and forcing it elsewhere raises a ``ValueError`` naming the missing
capability.  Each spec also carries the :attr:`BackendSpec.kernel_tier`
its name promises (``"fast+jit"`` → the JIT tier, everything else the
scalar ``"python"`` tier), which the engines hand to
:class:`~repro.link.path.LinkPath` for DFE adaptation — so
``resolved_backend`` audit trails pin down the exact kernels a result ran
on.

Constructing :class:`~repro.fastpath.engine.FastCdrChannel` directly remains
the documented escape hatch for statistical studies that want the fast
path's jitter sampling anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import _kernels
from ..core.cdr_channel import BehavioralCdrChannel
from ..core.config import CdrChannelConfig
from .engine import FastCdrChannel

__all__ = [
    "CAP_GATE_JITTER",
    "CAP_JIT_KERNELS",
    "AUTO_BACKEND",
    "BackendSpec",
    "BACKENDS",
    "environment_capabilities",
    "register_backend",
    "required_capabilities",
    "resolve_backend",
    "make_channel",
]

#: Capability demanded by configurations with per-gate delay jitter
#: (``gate_jitter_sigma_fraction > 0`` on the edge-detector/clock-path cells
#: or ``jitter_sigma_fraction > 0`` on the ring oscillator): the backend's
#: per-event jitter draws must match the event kernel draw for draw.
CAP_GATE_JITTER = "per-gate-delay-jitter"

#: Environment capability provided when the numba kernel tier imported
#: cleanly (:func:`repro._kernels.jit_available`); required by backends
#: whose name promises compiled kernels (``"fast+jit"``).
CAP_JIT_KERNELS = "compiled-jit-kernels"

#: Pseudo backend name resolved per configuration at ``make_channel`` time.
AUTO_BACKEND = "auto"


def environment_capabilities() -> frozenset[str]:
    """Capabilities the running environment provides (config-independent).

    Tests monkeypatch this to simulate a numba-less (or numba-ful)
    environment without touching installed packages.
    """
    if _kernels.jit_available():
        return frozenset((CAP_JIT_KERNELS,))
    return frozenset()


@dataclass(frozen=True)
class BackendSpec:
    """One registered channel backend and the capabilities it provides.

    Attributes
    ----------
    name:
        Registry key (``"event"``, ``"fast"``, ...).
    factory:
        ``factory(config) -> channel`` constructor.
    capabilities:
        Capability names this backend supports exactly (i.e. with
        event-kernel-equivalent semantics).
    priority:
        Resolution order for ``backend="auto"``: among the backends whose
        capabilities cover a config's demands (and whose environment
        requirements are met), the lowest priority wins, so faster
        backends get smaller numbers.
    kernel_tier:
        The :mod:`repro._kernels` tier this backend promises for the DFE /
        adaptation recursions of link models built alongside it.
    env_requires:
        Environment capabilities the running process must provide
        (see :func:`environment_capabilities`) for this backend to be
        resolvable.
    """

    name: str
    factory: Callable[[CdrChannelConfig | None], object]
    capabilities: frozenset[str]
    priority: int
    kernel_tier: str = _kernels.TIER_PYTHON
    env_requires: frozenset[str] = field(default_factory=frozenset)

    def missing_capabilities(self, config: CdrChannelConfig | None) -> frozenset[str]:
        """Capabilities *config* demands that this backend does not provide."""
        return required_capabilities(config) - self.capabilities

    def missing_environment(self) -> frozenset[str]:
        """Environment capabilities this backend needs that are absent here."""
        return self.env_requires - environment_capabilities()

    def create(self, config: CdrChannelConfig | None = None):
        """Instantiate the backend for *config*, enforcing its capabilities."""
        missing_env = self.missing_environment()
        if missing_env:
            raise _environment_error(self.name, missing_env)
        missing = self.missing_capabilities(config)
        if missing:
            raise _capability_error(self.name, missing)
        return self.factory(config)

    def __call__(self, config: CdrChannelConfig | None = None):
        return self.create(config)


def _capability_error(name: str, missing: frozenset[str]) -> ValueError:
    """The one place the capability-violation message is built."""
    return ValueError(
        f"backend {name!r} does not support "
        f"{sorted(missing)} demanded by this configuration; "
        'use backend="event" for a draw-for-draw jittered reference '
        'or backend="auto" to resolve automatically'
    )


def _environment_error(name: str, missing: frozenset[str]) -> ValueError:
    """The one place the environment-violation message is built."""
    return ValueError(
        f"backend {name!r} requires {sorted(missing)}, which this "
        "environment does not provide; install the optional extra "
        "(pip install .[fast]) "
        'or use backend="auto" to resolve automatically'
    )


#: Channel simulation backends, by name (capability-aware registry).
BACKENDS: dict[str, BackendSpec] = {}


def register_backend(name: str, factory: Callable, *, capabilities=(),
                     priority: int = 100,
                     kernel_tier: str = _kernels.TIER_PYTHON,
                     env_requires=()) -> BackendSpec:
    """Register a channel backend; returns (and stores) its :class:`BackendSpec`.

    Register at *module scope* (not under an ``if __name__`` guard) if the
    backend will run through the parallel sweep pool: pool workers that are
    spawned rather than forked re-import modules and only see registrations
    that happen at import time.  That is also why environment-gated
    backends (``env_requires``) are registered unconditionally: the spec is
    always present and identical in every process, and resolution — not
    registration — decides whether the environment can honour it.
    """
    if name == AUTO_BACKEND:
        raise ValueError(f"{AUTO_BACKEND!r} is reserved for automatic resolution")
    spec = BackendSpec(name=name, factory=factory,
                       capabilities=frozenset(capabilities), priority=priority,
                       kernel_tier=kernel_tier,
                       env_requires=frozenset(env_requires))
    BACKENDS[name] = spec
    return spec


register_backend("fast", FastCdrChannel, capabilities=(), priority=0)
register_backend("fast+jit", FastCdrChannel, capabilities=(), priority=-10,
                 kernel_tier=_kernels.TIER_JIT,
                 env_requires=(CAP_JIT_KERNELS,))
register_backend("event", BehavioralCdrChannel,
                 capabilities=(CAP_GATE_JITTER,), priority=10)


def required_capabilities(config: CdrChannelConfig | None) -> frozenset[str]:
    """Capabilities *config* demands from an exactly-equivalent backend."""
    config = config or CdrChannelConfig()
    if (config.gate_jitter_sigma_fraction > 0.0
            or config.oscillator.jitter_sigma_fraction > 0.0):
        return frozenset((CAP_GATE_JITTER,))
    return frozenset()


def resolve_backend(config: CdrChannelConfig | None = None,
                    backend: str = AUTO_BACKEND) -> BackendSpec:
    """Resolve *backend* for *config* to a concrete :class:`BackendSpec`.

    ``"auto"`` returns the fastest registered backend that covers every
    capability the configuration demands *and* whose environment
    requirements are met (so ``"fast+jit"`` wins exactly where numba
    imported cleanly).  A named backend is returned as-is but raises a
    ``ValueError`` naming the offending capability when the configuration
    demands something it cannot provide exactly, or when the environment
    lacks a capability it requires.
    """
    if backend == AUTO_BACKEND:
        required = required_capabilities(config)
        provided = environment_capabilities()
        candidates = [spec for spec in BACKENDS.values()
                      if required <= spec.capabilities
                      and spec.env_requires <= provided]
        if not candidates:
            raise ValueError(
                f"no registered backend provides {sorted(required)}")
        return min(candidates, key=lambda spec: spec.priority)
    try:
        spec = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(BACKENDS) + [AUTO_BACKEND]}"
        ) from None
    missing_env = spec.missing_environment()
    if missing_env:
        raise _environment_error(spec.name, missing_env)
    missing = spec.missing_capabilities(config)
    if missing:
        raise _capability_error(spec.name, missing)
    return spec


def make_channel(config: CdrChannelConfig | None = None,
                 backend: str = AUTO_BACKEND):
    """Instantiate a channel model for *backend* (``"auto"`` resolves per config)."""
    return resolve_backend(config, backend).factory(config)
