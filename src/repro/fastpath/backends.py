"""Channel-backend registry: the event-kernel reference and the fast path.

Lives beside the engines (below the sweep layer) so both
:mod:`repro.core.multichannel` and :mod:`repro.sweep` can import it
downward without a cycle.
"""

from __future__ import annotations

from ..core.cdr_channel import BehavioralCdrChannel
from ..core.config import CdrChannelConfig
from .engine import FastCdrChannel

__all__ = ["BACKENDS", "make_channel"]

#: Channel simulation backends, by name.
BACKENDS = {
    "event": BehavioralCdrChannel,
    "fast": FastCdrChannel,
}


def make_channel(config: CdrChannelConfig | None = None, backend: str = "fast"):
    """Instantiate a channel model for *backend* (``"event"`` or ``"fast"``)."""
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(BACKENDS)}"
        ) from None
    return factory(config)
