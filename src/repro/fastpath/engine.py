"""Fast-path (vectorized) simulation of one gated-oscillator CDR channel.

:class:`FastCdrChannel` is a drop-in replacement for
:class:`~repro.core.cdr_channel.BehavioralCdrChannel`: same ``run``
signature, same :class:`~repro.core.cdr_channel.BehavioralSimulationResult`
output.  Instead of dispatching per-edge events through the
:mod:`repro.events` kernel, it exploits the structure of the fixed topology:

* With constant per-gate delays, VHDL transport assignment never cancels
  anything (every gate schedules outputs in increasing time order), so every
  combinational gate is a **pure delay plus value-change filter**.  The delay
  line, the XNOR edge detector and the dummy data gate therefore reduce to
  elementwise array shifts of the stimulus edge times — computed with the
  same floating-point operation order as the event kernel, so the resulting
  edge times are bit-for-bit identical.
* The edge-detector output EDET toggles at every event of either XNOR input
  (a single-input change always toggles an XOR), so its waveform is just the
  sorted merge of the data-edge and delayed-data-edge time arrays.
* The gated ring collapses to a recurrence on the **first stage only**: the
  inverter chain re-times stage-0 transitions by one stage delay each, so the
  feedback and both clock taps are shifted copies of the stage-0 change
  stream.  A tight three-stream merge loop (EDET toggles, ring feedback,
  pending stage-0 applies) reproduces the kernel's scheduling — including
  transport cancellation, which *can* fire on stage 0 when a gating-input
  skew is configured — at a few machine operations per event instead of a
  heap transaction.
* The decision flip-flop samples the delayed data at every rising clock
  edge, so the decisions are one ``searchsorted`` away.

With per-gate delay jitter enabled the same passes apply with per-event
Gaussian draws folded into the delays; the draw *order* differs from the
event kernel's, so jittered runs agree statistically but not sample-for-
sample (see PERFORMANCE.md).
"""

from __future__ import annotations

import numpy as np

from .. import telemetry
from .._validation import require_positive_int
from ..core.cdr_channel import BehavioralSimulationResult
from ..core.config import CdrChannelConfig
from ..core.edge_detector import GATE_DELAY_S
from ..datapath.nrz import JitterSpec, NrzEdgeStream, generate_edge_times
from .traces import ArrayRecorder, array_trace

__all__ = ["FastCdrChannel"]

_INF = float("inf")


def _jittered(times: np.ndarray, delay_s: float, sigma: float,
              rng: np.random.Generator | None) -> np.ndarray:
    """Shift *times* by one gate delay, with optional per-event Gaussian jitter."""
    if sigma > 0.0 and rng is not None and times.size:
        draws = delay_s * (1.0 + rng.normal(0.0, sigma, size=times.size))
        return times + np.maximum(draws, 1.0e-15)
    return times + delay_s


def _drop_coincident(times: np.ndarray, *companions: np.ndarray) -> tuple[np.ndarray, ...]:
    """Drop pairs of exactly coincident events (they cancel via transport).

    Two stimulus edges at the identical float time toggle the data twice in
    the same instant; the second transport assignment cancels the first, so
    downstream gates see nothing.  Extremely rare (requires the jitter clip
    in :func:`generate_edge_times` to collapse two edges exactly).
    """
    if times.size < 2:
        return (times, *companions)
    equal = times[1:] == times[:-1]
    if not np.any(equal):
        return (times, *companions)
    keep = np.ones(times.size, dtype=bool)
    index = 0
    while index < times.size - 1:
        if keep[index] and times[index + 1] == times[index]:
            keep[index] = keep[index + 1] = False
            index += 2
        else:
            index += 1
    return (times[keep], *[c[keep] for c in companions])


def _ring_recurrence(
    edet_times: np.ndarray,
    *,
    t_gate: float,
    t_feedback: float,
    t_stage: float,
    duration_s: float,
    n_stages: int,
    sigma: float,
    rng: np.random.Generator | None,
    improved_tap: bool,
) -> tuple[list[float], list[int]]:
    """Run the gated-ring recurrence; return the selected clock-tap events.

    Three event sources are merged in time order, mirroring the kernel:

    * EDET toggles (precomputed, alternating from the initial high level),
    * ring-feedback events (last-stage transitions, i.e. stage-0 changes
      re-timed through ``n_stages - 1`` inverters),
    * pending stage-0 transport applies.

    Each EDET or feedback event re-evaluates ``AND(feedback, EDET)`` and
    schedules a stage-0 apply one (gating- or feedback-input) delay later,
    cancelling any pending apply at or after that time — exact transport
    semantics.  A stage-0 apply that actually changes the value emits the
    inverter-chain events and the clock-tap samples.
    """
    n_inverters = n_stages - 1
    # Tap positions along the chain (number of inversions in front of them).
    improved_hops = n_stages - 2
    last_parity = n_inverters & 1
    improved_parity = improved_hops & 1

    edet = edet_times.tolist()
    n_edet = len(edet)
    i_edet = 0
    gate_level = 1

    # Pending stage-0 applies (parallel time/value lists, FIFO head pointer).
    p0_t: list[float] = []
    p0_v: list[int] = []
    h0 = 0
    # Feedback (last-stage) events.
    fb_t: list[float] = []
    fb_v: list[int] = []
    hf = 0

    clock_t: list[float] = []
    clock_v: list[int] = []

    v0 = 0
    v_last = (n_stages - 1) & 1

    jitter = sigma > 0.0 and rng is not None
    if jitter:
        buffer = rng.standard_normal(4096)
        buf_i = 0

        def draw() -> float:
            nonlocal buffer, buf_i
            if buf_i >= buffer.size:
                buffer = rng.standard_normal(4096)
                buf_i = 0
            value = buffer[buf_i]
            buf_i += 1
            return value

        def delay(base: float) -> float:
            scaled = base * (1.0 + sigma * draw())
            return scaled if scaled > 1.0e-15 else 1.0e-15
    else:
        def delay(base: float) -> float:
            return base

    def push0(time_s: float, value: int) -> None:
        # Transport semantics: cancel pending applies at or after time_s.
        nonlocal h0
        while len(p0_t) > h0 and p0_t[-1] >= time_s:
            p0_t.pop()
            p0_v.pop()
        p0_t.append(time_s)
        p0_v.append(value)

    # Time zero: every ring gate is kicked via evaluate_now(); only the first
    # stage produces a change (the inverters are already consistent).
    push0(0.0 + delay(t_feedback), v_last & gate_level)

    while True:
        t_e = edet[i_edet] if i_edet < n_edet else _INF
        t_0 = p0_t[h0] if h0 < len(p0_t) else _INF
        t_f = fb_t[hf] if hf < len(fb_t) else _INF

        if t_0 <= t_e and t_0 <= t_f:
            if t_0 > duration_s:
                break
            value = p0_v[h0]
            h0 += 1
            if value != v0:
                v0 = value
                # Propagate through the inverter chain; record the tap.
                time_s = t_0
                for hop in range(n_inverters):
                    time_s = time_s + delay(t_stage)
                    if improved_tap and hop == improved_hops - 1:
                        clock_t.append(time_s)
                        clock_v.append(value ^ improved_parity)
                new_last = value ^ last_parity
                if not improved_tap:
                    # Nominal tap: inverted last stage.
                    clock_t.append(time_s)
                    clock_v.append(1 - new_last)
                fb_t.append(time_s)
                fb_v.append(new_last)
        elif t_f <= t_e:
            if t_f > duration_s:
                break
            v_last = fb_v[hf]
            hf += 1
            push0(t_f + delay(t_feedback), v_last & gate_level)
        else:
            if t_e > duration_s or t_e == _INF:
                break
            gate_level = 1 - gate_level
            i_edet += 1
            push0(t_e + delay(t_gate), v_last & gate_level)

    return clock_t, clock_v


class FastCdrChannel:
    """Vectorized fast-path model of one CDR channel.

    Drop-in for :class:`~repro.core.cdr_channel.BehavioralCdrChannel`; on
    configurations without per-gate delay jitter the returned result is
    bit-for-bit identical to the event kernel's (same float sample times,
    same decisions, same traces).
    """

    #: Backend name used by the sweep layer.
    backend = "fast"

    def __init__(self, config: CdrChannelConfig | None = None) -> None:
        self.config = config or CdrChannelConfig()

    def run(
        self,
        bits: np.ndarray,
        *,
        jitter: JitterSpec | None = None,
        data_rate_offset_ppm: float = 0.0,
        rng: np.random.Generator | None = None,
        settle_bits: int = 4,
        stream: NrzEdgeStream | None = None,
    ) -> BehavioralSimulationResult:
        """Simulate the channel (see :meth:`_run`); traced as ``fastpath.run``."""
        tracer = telemetry.ACTIVE
        if not tracer:
            return self._run(
                bits,
                jitter=jitter,
                data_rate_offset_ppm=data_rate_offset_ppm,
                rng=rng,
                settle_bits=settle_bits,
                stream=stream,
            )
        with tracer.span("fastpath.run"):
            result = self._run(
                bits,
                jitter=jitter,
                data_rate_offset_ppm=data_rate_offset_ppm,
                rng=rng,
                settle_bits=settle_bits,
                stream=stream,
            )
        tracer.count("fastpath.runs")
        tracer.count("fastpath.bits", int(np.asarray(bits).size))
        return result

    def _run(
        self,
        bits: np.ndarray,
        *,
        jitter: JitterSpec | None = None,
        data_rate_offset_ppm: float = 0.0,
        rng: np.random.Generator | None = None,
        settle_bits: int = 4,
        stream: NrzEdgeStream | None = None,
    ) -> BehavioralSimulationResult:
        """Vectorized batch simulation; same contract as ``BehavioralCdrChannel.run``."""
        config = self.config
        bits = np.asarray(bits, dtype=np.uint8)
        require_positive_int("number of bits", int(bits.size))
        rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — opt-in entropy: reproducible callers pass a seeded Generator

        # --- stimulus (identical draws to the event path) -------------------
        if stream is None:
            start_time = settle_bits * config.unit_interval_s
            stream = generate_edge_times(
                bits,
                bit_rate_hz=config.bit_rate_hz,
                jitter=jitter or JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0, sj_amplitude_ui_pp=0.0),
                data_rate_offset_ppm=data_rate_offset_ppm,
                start_time_s=start_time,
                rng=rng,
            )
        else:
            if not np.array_equal(stream.bits, bits):
                raise ValueError("bits must match the provided stream's bits")
            start_time = stream.start_time_s
        duration = start_time + stream.duration_s + 4.0 * config.unit_interval_s
        gate_sigma = config.gate_jitter_sigma_fraction
        gate_rng = rng if gate_sigma > 0.0 else None

        edge_times = stream.edge_times_s
        edge_values = stream.bits[stream.edge_bit_index].astype(np.int64)
        prop_times, prop_values = _drop_coincident(edge_times, edge_values)

        # --- edge detector: delay line, XNOR, dummy gate --------------------
        cell_delay = config.edge_detector_delay_s / config.edge_detector_cells
        line_times = prop_times
        for _cell in range(config.edge_detector_cells):
            line_times = _jittered(line_times, cell_delay, gate_sigma, gate_rng)
        ddin_times = _jittered(line_times, GATE_DELAY_S, gate_sigma, gate_rng)
        edet_side_a = _jittered(prop_times, GATE_DELAY_S, gate_sigma, gate_rng)
        edet_side_b = _jittered(line_times, GATE_DELAY_S, gate_sigma, gate_rng)
        edet_times = np.sort(np.concatenate((edet_side_a, edet_side_b)))

        # --- gated ring oscillator -----------------------------------------
        parameters = config.oscillator
        control_current = parameters.control_current_midpoint_a
        if parameters.gain_hz_per_a > 0.0:
            control_current = parameters.control_current_midpoint_a + (
                config.oscillator_frequency_hz
                - parameters.free_running_frequency_hz
            ) / parameters.gain_hz_per_a
        stage_delay = parameters.stage_delay_at(parameters.control_current_midpoint_a)
        scale = parameters.stage_delay_at(control_current) / stage_delay
        # Same op order as CmlTiming.delay_for_input followed by delay_scale.
        t_feedback = (stage_delay + 0.0) * scale
        t_gate = (stage_delay + parameters.gating_input_skew_s) * scale
        t_stage = stage_delay * scale

        clock_t, clock_v = _ring_recurrence(
            edet_times,
            t_gate=t_gate,
            t_feedback=t_feedback,
            t_stage=t_stage,
            duration_s=duration,
            n_stages=parameters.n_stages,
            sigma=parameters.jitter_sigma_fraction,
            rng=rng if parameters.jitter_sigma_fraction > 0.0 else None,
            improved_tap=config.improved_sampling,
        )
        clock_times = np.asarray(clock_t, dtype=float)
        clock_values = np.asarray(clock_v, dtype=np.int64)
        # Inverter-chain events past the run horizon never execute in the
        # event kernel (run_until stops there), so they produce no decision.
        horizon = clock_times <= duration
        clock_times = clock_times[horizon]
        clock_values = clock_values[horizon]

        # --- sampler: decide DDIN at every rising clock edge ----------------
        rising = clock_values == 1
        sample_times = clock_times[rising]
        indices = np.searchsorted(ddin_times, sample_times, side="left") - 1
        sampled = np.zeros(sample_times.size, dtype=np.uint8)
        in_range = indices >= 0
        sampled[in_range] = prop_values[indices[in_range]].astype(np.uint8)

        # --- traces (match the event recorder, clipped to the run horizon) --
        initial_clock = (parameters.n_stages - 2) & 1 if config.improved_sampling \
            else 1 - ((parameters.n_stages - 1) & 1)
        dout_times, dout_values = self._dout_events(
            sample_times, sampled, config.sampler_delay_s, gate_sigma, gate_rng)
        recorder = ArrayRecorder({
            "din": array_trace("din", edge_times, edge_values),
            "ddin": self._clipped("ddin", ddin_times, prop_values, duration),
            "edet": array_trace(
                "edet",
                edet_times[edet_times <= duration],
                # Value after the i-th toggle, alternating from the initial 1.
                np.arange(np.count_nonzero(edet_times <= duration)) & 1,
                initial_value=1,
            ),
            "clock": self._clipped("clock", clock_times, clock_values, duration,
                                   initial_value=initial_clock),
            "dout": self._clipped("dout", dout_times, dout_values, duration),
        })

        valid = sample_times >= start_time
        return BehavioralSimulationResult(
            config=config,
            transmitted_bits=bits,
            stream=stream,
            recorder=recorder,
            sample_times_s=sample_times[valid],
            sampled_bits=sampled[valid],
            duration_s=duration,
        )

    @staticmethod
    def _clipped(name: str, times: np.ndarray, values: np.ndarray,
                 duration_s: float, *, initial_value: int = 0):
        mask = times <= duration_s
        return array_trace(name, times[mask], values[mask], initial_value=initial_value)

    @staticmethod
    def _dout_events(sample_times: np.ndarray, sampled: np.ndarray,
                     clock_to_q_s: float, sigma: float,
                     rng: np.random.Generator | None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """DOUT transitions: decisions re-timed by the clock-to-Q delay.

        The flip-flop assigns its output on every rising edge; only actual
        value changes produce events (the transport apply filters the rest).
        """
        if sample_times.size == 0:
            return np.zeros(0), np.zeros(0, dtype=np.int64)
        values = sampled.astype(np.int64)
        previous = np.concatenate(([0], values[:-1]))
        changed = values != previous
        times = _jittered(sample_times, clock_to_q_s, sigma, rng)
        return times[changed], values[changed]
