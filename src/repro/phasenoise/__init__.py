"""Phase-noise budgeting: kappa formulas, power trade-off, oscillator design."""

from .formulas import (
    DEFAULT_NOISE_FACTOR_GAMMA,
    DEFAULT_RISE_TIME_RATIO_ETA,
    CmlStageBias,
    kappa_from_phase_noise,
    kappa_hajimiri,
    kappa_mcneill,
    period_jitter_rms,
    phase_noise_dbc_per_hz,
)
from .tradeoff import (
    TradeoffCurve,
    TradeoffPoint,
    minimum_power_for_budget,
    phase_noise_power_tradeoff,
)
from .design import (
    ChannelCellBudget,
    ChannelPowerReport,
    RingOscillatorDesign,
    StageLoadModel,
    channel_power_report,
    design_oscillator,
)

__all__ = [
    "DEFAULT_NOISE_FACTOR_GAMMA",
    "DEFAULT_RISE_TIME_RATIO_ETA",
    "CmlStageBias",
    "kappa_from_phase_noise",
    "kappa_hajimiri",
    "kappa_mcneill",
    "period_jitter_rms",
    "phase_noise_dbc_per_hz",
    "TradeoffCurve",
    "TradeoffPoint",
    "minimum_power_for_budget",
    "phase_noise_power_tradeoff",
    "ChannelCellBudget",
    "ChannelPowerReport",
    "RingOscillatorDesign",
    "StageLoadModel",
    "channel_power_report",
    "design_oscillator",
]
