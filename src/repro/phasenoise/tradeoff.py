"""Phase-noise versus power-consumption trade-off (paper Figure 11).

The oscillator bias current is the design's main power knob: more current
buys lower kappa (less accumulated jitter) at the price of static CML power.
This module sweeps the bias current, evaluates both the Hajimiri (equation 1)
and McNeill kappa formulas, and locates the minimum power meeting the
oscillator-jitter budget (0.01 UI rms at CID = 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from .._validation import require_positive, require_positive_int
from ..jitter.accumulation import OscillatorJitterBudget
from .formulas import (
    DEFAULT_NOISE_FACTOR_GAMMA,
    DEFAULT_RISE_TIME_RATIO_ETA,
    CmlStageBias,
    kappa_hajimiri,
    kappa_mcneill,
)

__all__ = [
    "TradeoffPoint",
    "TradeoffCurve",
    "phase_noise_power_tradeoff",
    "minimum_power_for_budget",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One bias point of the kappa-versus-power trade-off."""

    tail_current_a: float
    stage_power_w: float
    oscillator_power_w: float
    kappa_hajimiri: float
    kappa_mcneill: float
    accumulated_jitter_ui_rms: float

    def meets_budget(self, budget: OscillatorJitterBudget) -> bool:
        """True when the Hajimiri kappa satisfies the accumulation budget."""
        return budget.satisfied_by(self.kappa_hajimiri)


@dataclass(frozen=True)
class TradeoffCurve:
    """Sweep of :class:`TradeoffPoint` over tail current."""

    points: tuple[TradeoffPoint, ...]
    n_stages: int
    swing_v: float
    supply_v: float

    @property
    def powers_w(self) -> np.ndarray:
        """Oscillator power at each sweep point."""
        return np.array([p.oscillator_power_w for p in self.points])

    @property
    def kappas_hajimiri(self) -> np.ndarray:
        """Hajimiri kappa at each sweep point."""
        return np.array([p.kappa_hajimiri for p in self.points])

    @property
    def kappas_mcneill(self) -> np.ndarray:
        """McNeill kappa at each sweep point."""
        return np.array([p.kappa_mcneill for p in self.points])

    def first_point_meeting(self, budget: OscillatorJitterBudget) -> TradeoffPoint | None:
        """Lowest-power sweep point meeting the jitter budget (None if none does)."""
        for point in sorted(self.points, key=lambda p: p.oscillator_power_w):
            if point.meets_budget(budget):
                return point
        return None


def phase_noise_power_tradeoff(
    *,
    tail_currents_a: np.ndarray | None = None,
    n_stages: int = 4,
    swing_v: float = 0.4,
    supply_v: float = 1.8,
    gamma: float = DEFAULT_NOISE_FACTOR_GAMMA,
    eta: float = DEFAULT_RISE_TIME_RATIO_ETA,
    budget: OscillatorJitterBudget | None = None,
) -> TradeoffCurve:
    """Sweep the oscillator bias current and evaluate both kappa formulas.

    Parameters
    ----------
    tail_currents_a:
        Tail currents to sweep (default: logarithmic sweep 20 uA .. 2 mA).
    n_stages:
        Number of delay stages in the ring (the GCCO uses four).
    swing_v, supply_v:
        CML design choices; the load resistor follows from the swing.
    budget:
        Jitter budget used to report the accumulated jitter column (defaults
        to the paper's 0.01 UI at CID 5 and 2.5 Gbit/s).
    """
    n_stages = require_positive_int("n_stages", n_stages)
    require_positive("swing_v", swing_v)
    require_positive("supply_v", supply_v)
    budget = budget or OscillatorJitterBudget()
    if tail_currents_a is None:
        tail_currents_a = np.logspace(np.log10(5.0e-6), np.log10(2.0e-3), 60)
    tail_currents_a = np.asarray(tail_currents_a, dtype=float)

    points: list[TradeoffPoint] = []
    for current in tail_currents_a:
        bias = CmlStageBias.from_current_and_swing(float(current), swing_v, supply_v)
        kappa_h = kappa_hajimiri(bias, gamma=gamma, eta=eta)
        kappa_m = kappa_mcneill(bias, gamma=gamma)
        elapsed_s = units.ui_to_seconds(float(budget.cid), budget.bit_rate_hz)
        accumulated_s = kappa_h * np.sqrt(elapsed_s)
        accumulated_ui = units.seconds_to_ui(float(accumulated_s), budget.bit_rate_hz)
        points.append(
            TradeoffPoint(
                tail_current_a=float(current),
                stage_power_w=bias.power_w,
                oscillator_power_w=bias.power_w * n_stages,
                kappa_hajimiri=kappa_h,
                kappa_mcneill=kappa_m,
                accumulated_jitter_ui_rms=float(accumulated_ui),
            )
        )
    return TradeoffCurve(points=tuple(points), n_stages=n_stages, swing_v=swing_v,
                         supply_v=supply_v)


def minimum_power_for_budget(
    budget: OscillatorJitterBudget | None = None,
    *,
    n_stages: int = 4,
    swing_v: float = 0.4,
    supply_v: float = 1.8,
    gamma: float = DEFAULT_NOISE_FACTOR_GAMMA,
    eta: float = DEFAULT_RISE_TIME_RATIO_ETA,
    current_bounds_a: tuple[float, float] = (1.0e-6, 20.0e-3),
) -> TradeoffPoint:
    """Minimum-power oscillator bias point meeting the jitter budget.

    Because kappa decreases monotonically with tail current, the minimum power
    is found by bisection on the current.
    """
    budget = budget or OscillatorJitterBudget()
    low, high = current_bounds_a
    require_positive("current lower bound", low)
    require_positive("current upper bound", high)
    if low >= high:
        raise ValueError("current_bounds_a must be an increasing interval")

    def kappa_at(current: float) -> float:
        bias = CmlStageBias.from_current_and_swing(current, swing_v, supply_v)
        return kappa_hajimiri(bias, gamma=gamma, eta=eta)

    if not budget.satisfied_by(kappa_at(high)):
        raise ValueError(
            "jitter budget cannot be met within the given current bounds; "
            "increase the upper bound or relax the budget"
        )
    if budget.satisfied_by(kappa_at(low)):
        best = low
    else:
        lo, hi = low, high
        for _ in range(80):
            mid = math_sqrt_interval(lo, hi)
            if budget.satisfied_by(kappa_at(mid)):
                hi = mid
            else:
                lo = mid
        best = hi

    bias = CmlStageBias.from_current_and_swing(best, swing_v, supply_v)
    kappa_h = kappa_hajimiri(bias, gamma=gamma, eta=eta)
    kappa_m = kappa_mcneill(bias, gamma=gamma)
    elapsed_s = units.ui_to_seconds(float(budget.cid), budget.bit_rate_hz)
    accumulated_ui = units.seconds_to_ui(kappa_h * float(np.sqrt(elapsed_s)), budget.bit_rate_hz)
    return TradeoffPoint(
        tail_current_a=best,
        stage_power_w=bias.power_w,
        oscillator_power_w=bias.power_w * n_stages,
        kappa_hajimiri=kappa_h,
        kappa_mcneill=kappa_m,
        accumulated_jitter_ui_rms=float(accumulated_ui),
    )


def math_sqrt_interval(low: float, high: float) -> float:
    """Geometric midpoint used for bisection on a logarithmic quantity."""
    return float(np.sqrt(low * high))
