"""Top-down oscillator and channel power design (the paper's section 3.2 flow).

Two constraints set the CML bias current of the gated oscillator:

1. **Speed** — four differential stages must oscillate at the bit rate
   (2.5 GHz), so each stage delay must equal ``1 / (2 * N * f_osc)`` = 50 ps.
   With a resistive load the delay is ``ln(2) * R_L * C_L`` and the load
   capacitance grows with the device width (itself proportional to the bias
   current), so the required current follows from the fixed (wiring + fan-out)
   part of the load.
2. **Phase noise** — the kappa implied by equation 1 must keep the jitter
   accumulated over the worst-case run (CID = 5) below the 0.01 UI rms budget.

The design point is the larger of the two currents; the resulting per-channel
power (oscillator + edge detector + sampler + output buffer, plus the
amortised share of the multi-channel PLL) is reported in mW per Gbit/s — the
paper's headline metric (< 5 mW/Gbit/s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import units
from .._validation import require_non_negative, require_positive, require_positive_int
from ..jitter.accumulation import OscillatorJitterBudget
from .formulas import (
    DEFAULT_NOISE_FACTOR_GAMMA,
    DEFAULT_RISE_TIME_RATIO_ETA,
    CmlStageBias,
    kappa_hajimiri,
    kappa_mcneill,
    phase_noise_dbc_per_hz,
)

__all__ = [
    "StageLoadModel",
    "ChannelCellBudget",
    "RingOscillatorDesign",
    "ChannelPowerReport",
    "design_oscillator",
    "channel_power_report",
]

#: Natural-log-of-2 factor between an RC time constant and a 50 % swing delay.
_LN2 = math.log(2.0)


@dataclass(frozen=True)
class StageLoadModel:
    """Capacitive load seen by one CML stage.

    ``C_load = fixed_f + per_ampere_f * I_SS`` — the second term models the
    self-loading of the switching pair and the input capacitance of the next
    (identically sized) stage, both of which scale with the device width and
    therefore with the bias current at constant overdrive.
    """

    fixed_f: float = 25.0e-15
    per_ampere_f: float = 40.0e-12

    def __post_init__(self) -> None:
        require_positive("fixed_f", self.fixed_f)
        require_non_negative("per_ampere_f", self.per_ampere_f)

    def load_f(self, tail_current_a: float) -> float:
        """Total load capacitance at the given bias current."""
        require_positive("tail_current_a", tail_current_a)
        return self.fixed_f + self.per_ampere_f * tail_current_a


@dataclass(frozen=True)
class ChannelCellBudget:
    """Cell count of one CDR channel, used for the power roll-up.

    Defaults follow Figure 7 / 15 of the paper: a four-stage gated ring
    oscillator, a two-cell edge-detector delay line, the XOR edge detector, the
    dummy gate compensating the NAND input mismatch, a master-slave sampler
    (two latches) and one output buffer.
    """

    oscillator_stages: int = 4
    delay_line_cells: int = 2
    edge_detector_gates: int = 2
    sampler_latches: int = 2
    output_buffers: int = 1

    def __post_init__(self) -> None:
        for name in ("oscillator_stages", "delay_line_cells", "edge_detector_gates",
                     "sampler_latches", "output_buffers"):
            require_positive_int(name, getattr(self, name))

    @property
    def total_cells(self) -> int:
        """Total number of CML cells in the channel."""
        return (self.oscillator_stages + self.delay_line_cells + self.edge_detector_gates
                + self.sampler_latches + self.output_buffers)


@dataclass(frozen=True)
class RingOscillatorDesign:
    """Result of the oscillator design solve."""

    bias: CmlStageBias
    n_stages: int
    oscillation_frequency_hz: float
    stage_delay_s: float
    load_capacitance_f: float
    kappa: float
    kappa_mcneill: float
    kappa_budget: float
    speed_limited: bool
    noise_limited: bool

    @property
    def oscillator_power_w(self) -> float:
        """Static power of the ring oscillator."""
        return self.bias.power_w * self.n_stages

    @property
    def accumulated_jitter_ui_rms(self) -> float:
        """Jitter accumulated over the worst-case CID (5 bits), in UI rms."""
        elapsed_s = 5.0 / self.oscillation_frequency_hz
        sigma_s = self.kappa * math.sqrt(elapsed_s)
        return sigma_s * self.oscillation_frequency_hz

    def phase_noise_dbc(self, offset_hz: float = 1.0e6) -> float:
        """Single-sideband phase noise at the given offset."""
        return phase_noise_dbc_per_hz(self.kappa, self.oscillation_frequency_hz, offset_hz)


def design_oscillator(
    *,
    bit_rate_hz: float = units.DEFAULT_BIT_RATE,
    n_stages: int = 4,
    swing_v: float = 0.4,
    supply_v: float = 1.8,
    load: StageLoadModel | None = None,
    budget: OscillatorJitterBudget | None = None,
    gamma: float = DEFAULT_NOISE_FACTOR_GAMMA,
    eta: float = DEFAULT_RISE_TIME_RATIO_ETA,
) -> RingOscillatorDesign:
    """Solve for the minimum-power oscillator bias meeting speed and noise.

    Raises ``ValueError`` when the intrinsic (self-loading) delay alone already
    exceeds the required stage delay — i.e. the requested frequency is not
    reachable in this load model regardless of power.
    """
    require_positive("bit_rate_hz", bit_rate_hz)
    n_stages = require_positive_int("n_stages", n_stages)
    require_positive("swing_v", swing_v)
    require_positive("supply_v", supply_v)
    load = load or StageLoadModel()
    budget = budget or OscillatorJitterBudget(bit_rate_hz=bit_rate_hz)

    oscillation_frequency = bit_rate_hz  # full-rate clock recovery
    stage_delay = 1.0 / (2.0 * n_stages * oscillation_frequency)

    # Speed constraint: ln2 * (swing / I) * (C_fixed + c_I * I) <= stage_delay
    #  =>  I >= ln2 * swing * C_fixed / (stage_delay - ln2 * swing * c_I)
    intrinsic_delay = _LN2 * swing_v * load.per_ampere_f
    if intrinsic_delay >= stage_delay:
        raise ValueError(
            "requested oscillation frequency is unreachable: intrinsic stage delay "
            f"{intrinsic_delay:.3e}s exceeds the required {stage_delay:.3e}s"
        )
    current_for_speed = _LN2 * swing_v * load.fixed_f / (stage_delay - intrinsic_delay)

    # Noise constraint: kappa(I) <= kappa_max.  kappa^2 = A / I with
    # A = 8 k T gamma / (3 eta) * (1/swing + 1/swing) because R_L * I = swing.
    kt = units.BOLTZMANN_K * units.ROOM_TEMPERATURE_K
    kappa_budget = budget.kappa_max
    a_coefficient = (8.0 * kt * gamma) / (3.0 * eta) * (2.0 / swing_v)
    current_for_noise = a_coefficient / (kappa_budget ** 2)

    tail_current = max(current_for_speed, current_for_noise)
    bias = CmlStageBias.from_current_and_swing(tail_current, swing_v, supply_v)
    kappa = kappa_hajimiri(bias, gamma=gamma, eta=eta)
    kappa_m = kappa_mcneill(bias, gamma=gamma)

    return RingOscillatorDesign(
        bias=bias,
        n_stages=n_stages,
        oscillation_frequency_hz=oscillation_frequency,
        stage_delay_s=stage_delay,
        load_capacitance_f=load.load_f(tail_current),
        kappa=kappa,
        kappa_mcneill=kappa_m,
        kappa_budget=kappa_budget,
        speed_limited=current_for_speed >= current_for_noise,
        noise_limited=current_for_noise > current_for_speed,
    )


@dataclass(frozen=True)
class ChannelPowerReport:
    """Per-channel power roll-up in the paper's mW/Gbit/s terms."""

    oscillator_design: RingOscillatorDesign
    cells: ChannelCellBudget
    channel_power_w: float
    shared_pll_power_w: float
    n_channels: int
    bit_rate_hz: float

    @property
    def total_power_w(self) -> float:
        """Channel power including the amortised share of the shared PLL."""
        return self.channel_power_w + self.shared_pll_power_w / self.n_channels

    @property
    def power_per_gbps_mw(self) -> float:
        """Power efficiency in mW per Gbit/s."""
        return units.power_per_gbps(self.total_power_w, self.bit_rate_hz)

    def meets_target(self, target_mw_per_gbps: float = 5.0) -> bool:
        """True when the design meets the paper's 5 mW/Gbit/s headline target."""
        return self.power_per_gbps_mw <= target_mw_per_gbps


def channel_power_report(
    design: RingOscillatorDesign | None = None,
    *,
    cells: ChannelCellBudget | None = None,
    shared_pll_power_w: float = 6.0e-3,
    n_channels: int = 4,
    bit_rate_hz: float = units.DEFAULT_BIT_RATE,
) -> ChannelPowerReport:
    """Roll up the per-channel power from the oscillator design point.

    Every CML cell in the channel runs at the same bias current as the
    oscillator stages (the paper builds the delay line and the ring from
    identical two-input gates), so the channel power is simply
    ``total_cells * I_SS * V_DD`` plus the amortised shared-PLL power.
    """
    design = design or design_oscillator(bit_rate_hz=bit_rate_hz)
    cells = cells or ChannelCellBudget()
    require_positive("shared_pll_power_w", shared_pll_power_w)
    n_channels = require_positive_int("n_channels", n_channels)

    channel_power = design.bias.power_w * cells.total_cells
    return ChannelPowerReport(
        oscillator_design=design,
        cells=cells,
        channel_power_w=channel_power,
        shared_pll_power_w=shared_pll_power_w,
        n_channels=n_channels,
        bit_rate_hz=bit_rate_hz,
    )
