"""Ring-oscillator jitter / phase-noise formulas (Hajimiri and McNeill).

Section 3.2 of the paper sizes the oscillator from its equation 1 (after
Hajimiri's analysis of jitter in ring oscillators) and compares it with "a
variation of McNeill's formula".  Both express the oscillator's *jitter
accumulation figure of merit* ``kappa`` (units sqrt(seconds)), defined through
the open-loop random-walk law

    sigma_jitter(delta_t) = kappa * sqrt(delta_t).

Equation 1 of the paper, for a differential current-mode-logic (CML) delay
stage with tail current ``I_SS``, load resistance ``R_L`` and differential
swing ``dV``::

    kappa = sqrt( (8 * k * T * gamma) / (3 * eta * I_SS)
                  * ( 1 / dV  +  1 / (R_L * I_SS) ) )

where ``gamma`` is the channel thermal-noise factor of the active devices and
``eta`` relates rise time to cell delay.  The McNeill variant used for
comparison applies the noise factor to the device term only — the two formulas
agree within a small factor over the design space, which is exactly the point
Figure 11 makes.

The same module provides the standard conversions between ``kappa``, per-cycle
jitter, and single-sideband phase noise ``L(f_offset) = kappa^2 * f0^3 /
f_offset^2`` (McNeill 1997).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import units
from .._validation import require_non_negative, require_positive

__all__ = [
    "CmlStageBias",
    "kappa_hajimiri",
    "kappa_mcneill",
    "phase_noise_dbc_per_hz",
    "kappa_from_phase_noise",
    "period_jitter_rms",
    "DEFAULT_NOISE_FACTOR_GAMMA",
    "DEFAULT_RISE_TIME_RATIO_ETA",
]

#: Long-channel thermal-noise factor; short-channel 0.18 um devices are noisier.
DEFAULT_NOISE_FACTOR_GAMMA = 1.5

#: Ratio between rise time and cell delay for CML stages (Hajimiri's eta).
DEFAULT_RISE_TIME_RATIO_ETA = 0.75


@dataclass(frozen=True)
class CmlStageBias:
    """Bias point of one differential CML delay stage.

    Attributes
    ----------
    tail_current_a:
        Tail (bias) current ``I_SS`` of the stage.
    load_resistance_ohm:
        Load resistance ``R_L`` of each branch.
    swing_v:
        Differential output swing ``dV = I_SS * R_L`` (stored explicitly so a
        reduced-swing design can be expressed).
    supply_v:
        Supply voltage, used for power calculations.
    """

    tail_current_a: float
    load_resistance_ohm: float
    swing_v: float
    supply_v: float = 1.8

    def __post_init__(self) -> None:
        require_positive("tail_current_a", self.tail_current_a)
        require_positive("load_resistance_ohm", self.load_resistance_ohm)
        require_positive("swing_v", self.swing_v)
        require_positive("supply_v", self.supply_v)

    @classmethod
    def from_current_and_swing(cls, tail_current_a: float, swing_v: float,
                               supply_v: float = 1.8) -> "CmlStageBias":
        """Construct the bias point implied by a current and a full-switching swing."""
        require_positive("tail_current_a", tail_current_a)
        require_positive("swing_v", swing_v)
        return cls(
            tail_current_a=tail_current_a,
            load_resistance_ohm=swing_v / tail_current_a,
            swing_v=swing_v,
            supply_v=supply_v,
        )

    @property
    def power_w(self) -> float:
        """Static power drawn by the stage (CML current is constant)."""
        return self.tail_current_a * self.supply_v


def kappa_hajimiri(
    bias: CmlStageBias,
    *,
    gamma: float = DEFAULT_NOISE_FACTOR_GAMMA,
    eta: float = DEFAULT_RISE_TIME_RATIO_ETA,
    temperature_k: float = units.ROOM_TEMPERATURE_K,
) -> float:
    """Jitter figure of merit of a CML ring stage per equation 1 of the paper.

    Returns ``kappa`` in sqrt(seconds): the rms jitter accumulated over a free
    run of duration ``dt`` is ``kappa * sqrt(dt)``.
    """
    require_positive("gamma", gamma)
    require_positive("eta", eta)
    require_positive("temperature_k", temperature_k)
    kt = units.BOLTZMANN_K * temperature_k
    i_ss = bias.tail_current_a
    term = (1.0 / bias.swing_v) + (1.0 / (bias.load_resistance_ohm * i_ss))
    return math.sqrt((8.0 * kt * gamma) / (3.0 * eta * i_ss) * term)


def kappa_mcneill(
    bias: CmlStageBias,
    *,
    gamma: float = DEFAULT_NOISE_FACTOR_GAMMA,
    temperature_k: float = units.ROOM_TEMPERATURE_K,
) -> float:
    """McNeill-style variant of the jitter figure of merit.

    The variation (as used for the paper's Figure 11 comparison) applies the
    device noise factor only to the transconductor term and omits the
    rise-time ratio; it tracks :func:`kappa_hajimiri` within a small constant
    factor across the design space.
    """
    require_positive("gamma", gamma)
    require_positive("temperature_k", temperature_k)
    kt = units.BOLTZMANN_K * temperature_k
    i_ss = bias.tail_current_a
    term = (gamma / bias.swing_v) + (1.0 / (bias.load_resistance_ohm * i_ss))
    return math.sqrt((8.0 * kt) / (3.0 * i_ss) * term)


def phase_noise_dbc_per_hz(kappa: float, oscillation_frequency_hz: float,
                           offset_frequency_hz: float) -> float:
    """Single-sideband phase noise implied by *kappa* (McNeill's relation).

    An oscillator whose timing error random-walks as ``sigma = kappa*sqrt(dt)``
    has white frequency noise, hence ``L(f_off) = kappa^2 * f0^2 / f_off^2``
    (the -20 dB/decade region), returned in dBc/Hz.
    """
    require_non_negative("kappa", kappa)
    require_positive("oscillation_frequency_hz", oscillation_frequency_hz)
    require_positive("offset_frequency_hz", offset_frequency_hz)
    if kappa == 0.0:
        return -math.inf
    linear = (kappa ** 2) * (oscillation_frequency_hz ** 2) / (offset_frequency_hz ** 2)
    return 10.0 * math.log10(linear)


def kappa_from_phase_noise(phase_noise_dbc: float, oscillation_frequency_hz: float,
                           offset_frequency_hz: float) -> float:
    """Invert :func:`phase_noise_dbc_per_hz` — extract kappa from a measured L(f)."""
    require_positive("oscillation_frequency_hz", oscillation_frequency_hz)
    require_positive("offset_frequency_hz", offset_frequency_hz)
    linear = 10.0 ** (phase_noise_dbc / 10.0)
    return math.sqrt(linear) * offset_frequency_hz / oscillation_frequency_hz


def period_jitter_rms(kappa: float, oscillation_frequency_hz: float) -> float:
    """RMS jitter accumulated over one oscillation period (seconds)."""
    require_non_negative("kappa", kappa)
    require_positive("oscillation_frequency_hz", oscillation_frequency_hz)
    return kappa * math.sqrt(1.0 / oscillation_frequency_hz)
