"""Unified, serializable sweep results.

Every study the engine executes — whatever its axes and measurements —
returns one :class:`SweepResult`: named axes, grid-shaped metric arrays,
the backend request and its per-point resolution, and enough metadata to
re-run the study.  The result round-trips losslessly through JSON
(``to_json`` / ``from_json``), exports long-format CSV, and renders
through :mod:`repro.reporting.tables` (``to_table`` / ``to_series``) so
the benchmark harness persists engine output directly instead of
hand-formatting text per sweep.

Retained simulation objects (``MeasurementPlan(retain="results")``) ride
in :attr:`SweepResult.details`; they are in-memory diagnostics and are
deliberately *not* serialized.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .._jsonio import (
    decode_json_value as _decode_json_value,
    dumps_strict,
    encode_float_array as _encode_float_array,
    encode_json_value as _encode_json_value,
    loads_strict,
)
from ..reporting.tables import Series, TextTable

__all__ = ["AxisResult", "PointFailure", "SweepResult", "measured_ber"]


def measured_ber(errors: np.ndarray, compared: np.ndarray) -> np.ndarray:
    """Element-wise measured BER with NaN where nothing was compared.

    The one shared guard for every errors/compared grid pair — the engine
    result and the legacy sweep result classes all delegate here.
    """
    errors = np.asarray(errors)
    compared = np.asarray(compared)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(compared > 0, errors / compared, np.nan)


# -- portable non-finite encoding --------------------------------------------
#
# ``json.dumps`` happily emits the bare tokens ``NaN`` / ``Infinity`` for
# non-finite floats (a tolerance search that never passed, an eye metric of a
# closed eye, a BER with zero compared bits).  Those tokens are not RFC 8259
# JSON — strict parsers (and every non-Python consumer) reject them — so the
# serialization layer encodes them portably and decodes them on load:
#
# * inside *float-typed metric/axis arrays* non-finite entries become the
#   strings ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"`` (unambiguous there —
#   the declared dtype says every entry is a float, and numpy parses the
#   tokens right back);
# * inside *metadata* (where strings are legitimate values) a non-finite
#   float becomes the tagged object ``{"__nonfinite__": "NaN"}``, so a
#   genuine ``"NaN"`` string survives the round-trip untouched.
#
# All ``to_json`` output is therefore strictly valid JSON
# (``allow_nan=False`` enforces it), and the round-trip stays lossless.
# The codec itself lives in :mod:`repro._jsonio` (imported above), shared
# with the resilient sweep runner's checkpoint files.


@dataclass(frozen=True)
class PointFailure:
    """One isolated grid-point failure carried by a :class:`SweepResult`.

    The engine-level view of :class:`repro.sweep.resilient.TaskFailure`:
    the same structured exception record, plus the axis coordinates of
    the grid point that failed.  Everything is deterministic — resuming
    an interrupted grid reproduces the identical records.

    Attributes
    ----------
    index:
        Flat (row-major) grid-point index.
    coordinates:
        The point's axis labels, outermost axis first.
    exception_type:
        ``type(exc).__name__`` of the worker's exception.
    message:
        ``str(exc)`` of that exception.
    traceback_tail:
        Last few lines of the formatted traceback (identical whether the
        point ran pooled or serially).
    seed_path:
        SeedSequence spawn key of the point's random stream.
    attempts:
        Attempts made (more than 1 under ``failure_policy="retry"``).
    """

    index: int
    coordinates: tuple[str, ...]
    exception_type: str
    message: str
    traceback_tail: str
    seed_path: tuple[int, ...]
    attempts: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "coordinates", tuple(self.coordinates))
        object.__setattr__(self, "seed_path", tuple(self.seed_path))

    def to_dict(self) -> dict:
        """Strict-JSON-safe representation."""
        return {
            "index": self.index,
            "coordinates": list(self.coordinates),
            "exception_type": self.exception_type,
            "message": self.message,
            "traceback_tail": self.traceback_tail,
            "seed_path": list(self.seed_path),
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PointFailure":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            index=int(payload["index"]),
            coordinates=tuple(payload["coordinates"]),
            exception_type=payload["exception_type"],
            message=payload["message"],
            traceback_tail=payload["traceback_tail"],
            seed_path=tuple(int(part) for part in payload["seed_path"]),
            attempts=int(payload["attempts"]),
        )


@dataclass(frozen=True)
class AxisResult:
    """One resolved sweep dimension of a result grid.

    Attributes
    ----------
    name:
        The registered axis name the engine applied.
    labels:
        Per-point display / serialization labels.
    values:
        The axis points as floats, or ``None`` for structured axes
        (equalizer line-ups, receiver lanes) that have labels only.
    """

    name: str
    labels: tuple[str, ...]
    values: np.ndarray | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "labels", tuple(self.labels))
        if self.values is not None:
            values = np.asarray(self.values, dtype=float)
            if values.size != len(self.labels):
                raise ValueError(
                    f"axis {self.name!r} has {len(self.labels)} labels but "
                    f"{values.size} values"
                )
            object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.labels)

    def to_dict(self) -> dict:
        """JSON-safe representation (non-finite values sentinel-encoded)."""
        return {
            "name": self.name,
            "labels": list(self.labels),
            "values": None if self.values is None else _encode_float_array(self.values),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AxisResult":
        """Rebuild from :meth:`to_dict` output."""
        values = payload.get("values")
        return cls(
            name=payload["name"],
            labels=tuple(payload["labels"]),
            values=None if values is None else np.asarray(values, dtype=float),
        )


@dataclass(frozen=True, eq=False)
class SweepResult:
    """Result of one engine study: axes, metric grids, backend resolution.

    Attributes
    ----------
    name:
        Study name (used as the serialization stem and table title).
    axes:
        One :class:`AxisResult` per swept dimension, outermost first; the
        metric arrays are shaped ``tuple(len(axis) for axis in axes)``.
    metrics:
        ``{metric name: grid-shaped array}`` — always ``"errors"`` and
        ``"compared"`` for BER studies, the searched axis's name (e.g.
        ``"sj_amplitude_ui_pp"``) for tolerance searches, plus eye metrics
        when the measurement plan asked for them.
    backend:
        The backend *request* of the scenario (possibly ``"auto"``).
    point_backends:
        The concrete backend the registry resolved per grid point, in
        row-major order — the audit trail of ``backend="auto"``.
    n_bits:
        Transmitted bits per point.
    seed:
        Root seed of the deterministic runner.
    metadata:
        Extra JSON-safe scalars describing the study (fixed parameters,
        search settings).
    details:
        Retained per-point simulation results (``retain="results"``),
        row-major; ``None`` unless requested.  Not serialized.
    failures:
        Structured :class:`PointFailure` records of grid points whose
        worker raised (``failure_policy="collect"`` / ``"retry"``),
        ordered by flat index; failed points carry zero errors/compared
        (BER ``NaN``) and ``NaN`` extra metrics.  Serialized.
    audit:
        Per-point :class:`repro.sweep.resilient.TaskAudit` execution
        records (mode, wall-clock duration, attempts), row-major.
        Wall-clock values are nondeterministic, so the audit trail is an
        in-memory diagnostic and — like ``details`` — not serialized.
    """

    name: str
    axes: tuple[AxisResult, ...]
    metrics: dict[str, np.ndarray]
    backend: str
    point_backends: tuple[str, ...]
    n_bits: int
    seed: int | None = 0
    metadata: dict = field(default_factory=dict)
    details: tuple | None = None
    failures: tuple[PointFailure, ...] = ()
    audit: tuple | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "point_backends", tuple(self.point_backends))
        object.__setattr__(self, "failures", tuple(self.failures))
        shape = self.shape
        grids = {}
        for name, values in self.metrics.items():
            grid = np.asarray(values)
            if grid.shape != shape:
                grid = grid.reshape(shape)
            grids[name] = grid
        object.__setattr__(self, "metrics", grids)
        if len(self.point_backends) != self.n_points:
            raise ValueError(
                f"{self.n_points} grid points but "
                f"{len(self.point_backends)} per-point backends"
            )

    # -- shape ----------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        """Grid shape: one dimension per axis."""
        return tuple(len(axis) for axis in self.axes)

    @property
    def n_points(self) -> int:
        """Total grid-point count."""
        return int(np.prod(self.shape)) if self.axes else 1

    def metric(self, name: str) -> np.ndarray:
        """One metric grid by name (with a helpful error)."""
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"result {self.name!r} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            ) from None

    @property
    def ber(self) -> np.ndarray:
        """Measured BER per grid point (NaN where nothing was compared)."""
        return measured_ber(self.metric("errors"), self.metric("compared"))

    # -- JSON -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe representation (lossless for the metric arrays).

        Non-finite floats are encoded portably so the serialization is
        strict RFC 8259 JSON: metric grids and axis values use the
        sentinel strings ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"``
        (unambiguous inside float-typed arrays), metadata uses tagged
        ``{"__nonfinite__": ...}`` objects (so genuine metadata strings
        like ``"NaN"`` survive).  :meth:`from_dict` decodes both back to
        floats.
        """
        return {
            "name": self.name,
            "axes": [axis.to_dict() for axis in self.axes],
            "metrics": {
                name: {
                    "dtype": str(grid.dtype),
                    "values": (
                        _encode_float_array(grid)
                        if np.issubdtype(grid.dtype, np.floating)
                        else grid.tolist()
                    ),
                }
                for name, grid in self.metrics.items()
            },
            "backend": self.backend,
            "point_backends": list(self.point_backends),
            "n_bits": self.n_bits,
            "seed": self.seed,
            "metadata": _encode_json_value(dict(self.metadata)),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResult":
        """Rebuild from :meth:`to_dict` output (dtypes restored)."""
        metrics = {
            name: np.asarray(entry["values"], dtype=np.dtype(entry["dtype"]))
            for name, entry in payload["metrics"].items()
        }
        return cls(
            name=payload["name"],
            axes=tuple(AxisResult.from_dict(axis) for axis in payload["axes"]),
            metrics=metrics,
            backend=payload["backend"],
            point_backends=tuple(payload["point_backends"]),
            n_bits=int(payload["n_bits"]),
            seed=payload["seed"],
            metadata=_decode_json_value(dict(payload.get("metadata", {}))),
            failures=tuple(PointFailure.from_dict(entry) for entry in payload.get("failures", ())),
        )

    def to_json(self, indent: int | None = 1) -> str:
        """Serialize to strict RFC 8259 JSON text (floats survive exactly via repr).

        Non-finite values travel as sentinel strings (see :meth:`to_dict`);
        ``allow_nan=False`` guarantees no bare ``NaN`` / ``Infinity`` token
        can ever reach a non-Python consumer.
        """
        return dumps_strict(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Deserialize :meth:`to_json` output."""
        return cls.from_dict(loads_strict(text))

    def save(self, path: str | Path) -> Path:
        """Write the JSON serialization to *path* and return it."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        """Read a result previously written with :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    def equals(self, other: "SweepResult") -> bool:
        """Exact equality, metric arrays compared element-wise."""
        if not isinstance(other, SweepResult):
            return False
        return self.to_dict() == other.to_dict()

    # -- tabular / reporting views -------------------------------------------

    def _point_rows(self) -> list[tuple[tuple[str, ...], tuple[int, ...]]]:
        """(axis labels, grid index) per point, row-major."""
        rows = []
        for flat in range(self.n_points):
            index = np.unravel_index(flat, self.shape) if self.axes else ()
            labels = tuple(axis.labels[position] for axis, position in zip(self.axes, index))
            rows.append((labels, index))
        return rows

    def to_csv(self) -> str:
        """Long-format CSV: one row per grid point, one column per metric."""
        metric_names = sorted(self.metrics)
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow([axis.name for axis in self.axes] + metric_names + ["backend"])
        for position, (labels, index) in enumerate(self._point_rows()):
            cells = list(labels)
            for name in metric_names:
                value = self.metrics[name][index]
                cells.append(
                    f"{value:.9g}" if np.issubdtype(type(value), np.floating) else str(value)
                )
            cells.append(self.point_backends[position])
            writer.writerow(cells)
        return out.getvalue()

    def to_table(self, title: str | None = None) -> TextTable:
        """Long-format :class:`~repro.reporting.tables.TextTable` view."""
        metric_names = sorted(self.metrics)
        table = TextTable(
            headers=[axis.name for axis in self.axes] + metric_names,
            title=self.name if title is None else title,
        )
        for labels, index in self._point_rows():
            table.add_row(*labels, *(f"{self.metrics[name][index]:g}" for name in metric_names))
        return table

    def to_series(self, metric: str = "errors", name: str | None = None) -> Series:
        """1-D :class:`~repro.reporting.tables.Series` of one metric.

        Requires exactly one axis with more than one point (singleton axes
        are squeezed away) and numeric axis values.
        """
        grid = self.metric(metric)
        if not self.axes:
            raise ValueError(f"result {self.name!r} has no axes; a series needs one")
        long_axes = [axis for axis in self.axes if len(axis) > 1]
        axis = long_axes[0] if long_axes else self.axes[-1]
        if len(long_axes) > 1:
            raise ValueError(
                f"result {self.name!r} has {len(long_axes)} non-singleton "
                "axes; a series needs one"
            )
        if axis.values is None:
            raise ValueError(f"axis {axis.name!r} has no numeric values")
        series = Series(name or self.name, axis.name, metric)
        series.extend(axis.values, np.ravel(grid).astype(float))
        return series
