"""Generic grid / search execution of declarative scenarios.

One engine replaces the per-sweep pipelines: a study is a base
:class:`~repro.experiments.spec.ScenarioSpec` plus
:class:`~repro.experiments.spec.ParameterAxis` objects, and

* :func:`run_grid` measures every point of their cartesian grid,
* :func:`run_tolerance_search` finds, per grid point, the largest value of
  one extra axis that still passes an error-count criterion (the
  jitter-tolerance shape),

both on the deterministic :func:`repro.sweep.runner.map_tasks` pool —
per-point random streams come from a spawned SeedSequence tree, so any
worker count produces identical results.  The backend of every resolved
point goes through :func:`repro.fastpath.backends.resolve_backend`, so
``backend="auto"`` picks the fastest exactly-equivalent engine per point
and a forced backend fails loudly when the configuration demands a
capability it lacks.

The per-point execution (:func:`simulate_scenario`) is deliberately
identical, call for call and random draw for random draw, to what the
legacy hand-rolled sweep workers did — the seven public sweeps in
:mod:`repro.sweep.sweeps` are thin wrappers over this engine and return
bit-identical numbers.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from .. import units
from .._jsonio import content_key
from .._validation import require_positive
from ..datapath.cid import geometric_run_distribution
from ..fastpath.backends import BACKENDS, resolve_backend
from ..telemetry.manifest import collect_manifest
from ..link import LinkPath, LinkTrainer, statistical_eye
from ..statistical.ber_model import CdrJitterBudget
from .results import AxisResult, PointFailure, SweepResult
from .spec import ParameterAxis, ScenarioSpec, apply_axis

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ToleranceSearch",
    "simulate_scenario",
    "scenario_timing_budget",
    "statistical_eye_measurement",
    "link_training_measurement",
    "resolve_grid",
    "run_grid",
    "run_tolerance_search",
]

#: Grid points executed (and checkpointed) per chunk unless overridden —
#: small enough to bound peak in-flight memory and give interruption a
#: fine recovery grain, large enough that chunking overhead is noise.
DEFAULT_CHUNK_SIZE = 64


# --- single-point execution ---------------------------------------------------


def simulate_scenario(spec: ScenarioSpec, rng: np.random.Generator, backend: str | None = None):
    """Run one scenario; returns a ``BehavioralSimulationResult``.

    *backend* overrides the spec's request with an already-resolved concrete
    name (the engine resolves once per point in the parent process); by
    default the spec's own request is resolved here.  Either way the
    registry's capability enforcement applies — forcing a backend the
    configuration rules out raises, it never silently diverges.
    """
    if backend is None:
        backend = resolve_backend(spec.config, spec.backend).name
    bits = spec.stimulus.bits()
    spec_backend = BACKENDS[backend]
    channel = spec_backend.create(spec.config)
    if spec.link is not None:
        stream = LinkPath(spec.link, kernel_tier=spec_backend.kernel_tier).transmit(
            bits,
            jitter=spec.jitter,
            data_rate_offset_ppm=spec.data_rate_offset_ppm,
            rng=rng,
            pattern_period=spec.stimulus.pattern_period,
        )
        return channel.run(bits, rng=rng, stream=stream)
    return channel.run(
        bits,
        jitter=spec.jitter,
        data_rate_offset_ppm=spec.data_rate_offset_ppm,
        rng=rng,
    )


def scenario_timing_budget(spec: ScenarioSpec) -> CdrJitterBudget:
    """The analytic timing budget implied by one scenario's stressors.

    Carries the scenario's *injected* transmitter jitter (DJ/RJ/SJ —
    channel DDJ emerges from the ISI cursor PDF instead), the
    oscillator-versus-data relative frequency error (CDR offset composed
    with the transmitter's ppm error) and the scenario oscillator's
    accumulated per-bit jitter — shared by the statistical-eye and
    link-training measurements.
    """
    jitter = spec.jitter
    # Per-stage delay jitter accumulates over the 2*n_stages stage
    # traversals of one oscillation period: sigma_bit = fraction/sqrt(2N) UI.
    oscillator = spec.config.oscillator
    osc_sigma_ui = oscillator.jitter_sigma_fraction / math.sqrt(2.0 * oscillator.n_stages)
    # The model's eps is the oscillator period error relative to the
    # *incoming* data period: a slow oscillator (config offset) and a fast
    # transmitter (positive ppm) compound.
    tx_scale = 1.0 + units.ppm_to_fraction(spec.data_rate_offset_ppm)
    relative_offset = (1.0 + spec.config.frequency_offset) * tx_scale - 1.0
    # A zero SJ frequency means the bit-true path injects no sinusoidal
    # displacement at all, so the budget's SJ term must vanish with it (the
    # placeholder frequency below only keeps the budget constructor happy).
    sj_frequency = jitter.sj_frequency_hz if jitter is not None else 0.0
    sj_amplitude = jitter.sj_amplitude_ui_pp if jitter is not None and sj_frequency > 0.0 else 0.0
    return CdrJitterBudget(
        dj_ui_pp=jitter.dj_ui_pp if jitter is not None else 0.0,
        rj_ui_rms=jitter.rj_ui_rms if jitter is not None else 0.0,
        sj_amplitude_ui_pp=sj_amplitude,
        sj_frequency_hz=sj_frequency if sj_frequency > 0.0 else 100.0e6,
        osc_sigma_ui_per_bit=osc_sigma_ui,
        frequency_offset=relative_offset,
        bit_rate_hz=spec.config.bit_rate_hz,
    )


def _scenario_run_lengths(spec: ScenarioSpec):
    if spec.stimulus.kind == "prbs":
        max_run = spec.stimulus.prbs_order
    elif spec.stimulus.kind == "cid_stress":
        max_run = spec.stimulus.max_run
    else:  # encoded8b10b: the code guarantees CID <= 5
        max_run = 5
    return geometric_run_distribution(max_run=max_run)


def statistical_eye_measurement(spec: ScenarioSpec) -> dict[str, float]:
    """Solve the analytic statistical eye of one scenario point.

    The scenario's link configuration (channel, equalizers, crosstalk
    population) feeds :func:`repro.link.statistical_eye`; the timing
    budget comes from :func:`scenario_timing_budget` and the run-length
    statistics follow the stimulus kind.  Returns the ``stateye_*``
    metrics recorded per point.
    """
    if spec.link is None:
        raise ValueError(
            "MeasurementPlan(statistical_eye=True) requires a link front "
            "end: the statistical eye is solved from the pulse response"
        )
    eye = statistical_eye(
        spec.link,
        budget=scenario_timing_budget(spec),
        run_lengths=_scenario_run_lengths(spec),
    )
    target = spec.measurement.target_ber
    return {
        "stateye_ber": eye.ber_at(0.5, 0.0),
        "stateye_horizontal_ui": eye.horizontal_opening_ui(target),
        "stateye_vertical": eye.vertical_opening(target),
    }


def link_training_measurement(spec: ScenarioSpec) -> dict[str, float]:
    """Train the point's link and record trained-versus-fixed metrics.

    The scenario's link supplies the channel environment *and* the fixed
    baseline lineup; :class:`repro.link.LinkTrainer` searches the
    de-emphasis × peaking plane under the scenario's ``training`` budget
    with the same timing budget and run-length statistics the
    statistical-eye measurement uses.  Both the ``trained_*`` and the
    ``fixed_*`` metrics are the *training objective's* view — which folds
    each lineup's dual-Dirac DDJ into its timing walls (the trainer's
    conservative default) — so they compare against each other exactly,
    but can sit below the unfolded ``stateye_*`` metrics of the same
    point.  Recorded per point: the trained and fixed scores, eye
    openings and BER at ``target_ber``, the trained coefficients (search
    coordinates — NaN when the fixed baseline was kept — plus adapted DFE
    taps, when a DFE is configured) and the number of statistical-eye
    solves spent.  ``trained_score >= fixed_score`` holds by construction
    (the baseline seeds the search).
    """
    if spec.link is None:
        raise ValueError(
            "MeasurementPlan(train_equalizers=True) requires a link front "
            "end: training searches the equalizer plane of its channel"
        )
    trainer = LinkTrainer(
        spec.link,
        training=spec.training,
        budget=scenario_timing_budget(spec),
        run_lengths=_scenario_run_lengths(spec),
        target_ber=spec.measurement.target_ber,
    )
    trained = trainer.train()
    fixed = trainer.score_fixed()
    metrics = {
        "trained_score": trained.eye.score,
        "trained_horizontal_ui": trained.eye.horizontal_ui,
        "trained_vertical": trained.eye.vertical,
        "trained_ber": trained.eye.ber_nominal,
        "fixed_score": fixed.score,
        "fixed_horizontal_ui": fixed.horizontal_ui,
        "fixed_vertical": fixed.vertical,
        "fixed_ber": fixed.ber_nominal,
        "trained_tx_post_db": float("nan") if trained.tx_post_db is None else trained.tx_post_db,
        "trained_ctle_peaking_db": (
            float("nan") if trained.ctle_peaking_db is None else trained.ctle_peaking_db
        ),
        "training_evaluations": float(trained.n_evaluations),
    }
    for index, weight in enumerate(trained.dfe_weights, start=1):
        metrics[f"trained_dfe_tap{index}"] = float(weight)
    return metrics


@dataclass(frozen=True)
class _PointTask:
    """One resolved grid point: the scenario plus its concrete backend."""

    spec: ScenarioSpec
    backend: str


def _measure_point(task: _PointTask, rng: np.random.Generator) -> tuple:
    """Pool worker: simulate one point, return its measurements.

    Returns ``(errors, compared, extra metrics or None, retained result or
    None)`` according to the scenario's measurement plan.
    """
    result = simulate_scenario(task.spec, rng, backend=task.backend)
    measurement = result.ber()
    plan = task.spec.measurement
    extras = {}
    if plan.eye:
        metrics = result.eye_diagram().metrics()
        extras.update(
            {
                "eye_opening_ui": float(metrics.eye_opening_ui),
                "eye_centre_ui": float(metrics.eye_centre_ui),
                "n_crossings": float(metrics.n_crossings),
            }
        )
    if plan.statistical_eye:
        extras.update(statistical_eye_measurement(task.spec))
    if plan.train_equalizers:
        extras.update(link_training_measurement(task.spec))
    detail = result if plan.retain == "results" else None
    return measurement.errors, measurement.compared_bits, extras or None, detail


# --- grid execution -----------------------------------------------------------


def resolve_grid(spec: ScenarioSpec, axes: tuple[ParameterAxis, ...]) -> list[ScenarioSpec]:
    """Every grid-point scenario, row-major (first axis outermost)."""
    axes = tuple(axes)
    points = []
    for combination in itertools.product(*(axis.values for axis in axes)):
        point = spec
        for axis, value in zip(axes, combination):
            point = apply_axis(point, axis.name, value)
        points.append(point)
    return points


def _axis_results(axes: tuple[ParameterAxis, ...]) -> tuple[AxisResult, ...]:
    return tuple(
        AxisResult(name=axis.name, labels=axis.value_labels(), values=axis.numeric_values())
        for axis in axes
    )


def _grid_failures(
    task_failures, axes: tuple[AxisResult, ...], shape: tuple[int, ...]
) -> tuple[PointFailure, ...]:
    """Runner-level failures annotated with their grid coordinates."""
    converted = []
    for failure in task_failures:
        if axes:
            position = np.unravel_index(failure.index, shape)
            coordinates = tuple(axis.labels[int(p)] for axis, p in zip(axes, position))
        else:
            coordinates = ()
        converted.append(
            PointFailure(
                index=failure.index,
                coordinates=coordinates,
                exception_type=failure.exception_type,
                message=failure.message,
                traceback_tail=failure.traceback_tail,
                seed_path=failure.seed_path,
                attempts=failure.attempts,
            )
        )
    return tuple(converted)


def run_grid(
    spec: ScenarioSpec,
    axes: tuple[ParameterAxis, ...] | list[ParameterAxis],
    *,
    name: str = "sweep",
    seed: int | None = 0,
    workers: int | None = None,
    metadata: dict | None = None,
    chunk_size: int | None = None,
    failure_policy: str = "raise",
    max_retries: int = 1,
    chunk_timeout_s: float | None = None,
    checkpoint=None,
) -> SweepResult:
    """Measure every point of the axes' cartesian grid.

    Each point's scenario is the base *spec* with the axis values applied
    in order; its backend is resolved through the capability registry
    before anything runs, so an impossible forced backend fails before the
    pool spins up.  Metric grids are shaped ``tuple(len(a) for a in axes)``.

    Execution streams through :func:`repro.sweep.resilient.map_tasks_resilient`
    in chunks of *chunk_size* (default :data:`DEFAULT_CHUNK_SIZE`), which
    bounds peak in-flight memory without changing any number — per-point
    random streams depend only on ``(seed, index)``.  *failure_policy*
    selects what a raising point does: ``"raise"`` (default) aborts the
    grid with :class:`repro.sweep.resilient.SweepTaskError`; ``"collect"``
    records a structured :class:`~repro.experiments.results.PointFailure`
    in :attr:`SweepResult.failures` and carries on (failed points report
    zero compared bits, i.e. BER ``NaN``, and ``NaN`` extra metrics);
    ``"retry"`` retries each failing point up to *max_retries* times on
    the same seed child (retries cannot change numerics) before
    collecting.  *checkpoint* names a JSONL file keyed by a content hash
    of ``(spec, axes, seed)``: completed chunks are appended as they
    finish, an interrupted grid resumes by re-running only missing and
    failed points, and the merged result is bit-identical to a single
    uninterrupted run.  *chunk_timeout_s* bounds each pooled chunk's
    wall clock, degrading the affected chunk (and the rest of the run)
    to serial execution.  The per-point execution mode / duration /
    attempt audit trail rides in :attr:`SweepResult.audit`.
    """
    # Deferred import: repro.sweep.sweeps wraps this engine, so importing
    # the runner through the repro.sweep package at module scope would be
    # circular when repro.experiments is imported first.
    from ..sweep.resilient import map_tasks_resilient

    axes = tuple(axes)
    points = resolve_grid(spec, axes)
    if spec.measurement.statistical_eye or spec.measurement.train_equalizers:
        # Fail before the pool spins up, like backend resolution does.
        option = "statistical_eye" if spec.measurement.statistical_eye else "train_equalizers"
        for point in points:
            if point.link is None:
                raise ValueError(
                    f"MeasurementPlan({option}=True) requires every "
                    "grid point to carry a link front end"
                )
    if checkpoint is not None and spec.measurement.retain != "none":
        raise ValueError(
            "checkpointing requires MeasurementPlan(retain='none'): "
            "retained simulation objects do not serialize to a checkpoint"
        )
    tasks = [
        _PointTask(point, resolve_backend(point.config, point.backend).name)
        for point in points
    ]
    study_key = content_key({"study": "run_grid", "spec": spec, "axes": axes, "seed": seed})
    spec_backend = resolve_backend(spec.config, spec.backend)
    manifest = collect_manifest(
        backend=spec_backend.name,
        kernel_tier=spec_backend.kernel_tier,
        content_key=study_key,
        seed=seed,
    )
    mapped = map_tasks_resilient(
        _measure_point,
        tasks,
        seed=seed,
        workers=workers,
        chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
        failure_policy=failure_policy,
        max_retries=max_retries,
        chunk_timeout_s=chunk_timeout_s,
        checkpoint=checkpoint,
        checkpoint_key=study_key,
        manifest=manifest.to_dict(),
    )
    outcomes = mapped.values

    shape = tuple(len(axis) for axis in axes)
    axis_results = _axis_results(axes)
    metrics: dict[str, np.ndarray] = {
        "errors": np.array([o[0] if o is not None else 0 for o in outcomes], dtype=np.int64),
        "compared": np.array([o[1] if o is not None else 0 for o in outcomes], dtype=np.int64),
    }
    extra_keys: tuple = ()
    for outcome in outcomes:
        if outcome is not None and outcome[2] is not None:
            extra_keys = tuple(outcome[2])
            break
    for key in extra_keys:
        metrics[key] = np.array(
            [o[2][key] if o is not None else float("nan") for o in outcomes], dtype=float
        )
    for key, flat in metrics.items():
        metrics[key] = flat.reshape(shape)
    details = (
        tuple(o[3] if o is not None else None for o in outcomes)
        if spec.measurement.retain == "results"
        else None
    )

    return SweepResult(
        name=name,
        axes=axis_results,
        metrics=metrics,
        backend=spec.backend,
        point_backends=tuple(task.backend for task in tasks),
        n_bits=spec.stimulus.n_bits,
        seed=seed,
        metadata={**(metadata or {}), "manifest": manifest.to_dict()},
        details=details,
        failures=_grid_failures(mapped.failures, axis_results, shape),
        audit=mapped.audit,
    )


# --- tolerance search ---------------------------------------------------------


@dataclass(frozen=True)
class ToleranceSearch:
    """Largest passing value of one axis under an error-count criterion.

    Attributes
    ----------
    axis:
        The registered axis searched at every grid point (default: the
        sinusoidal-jitter amplitude, the paper's jitter-tolerance axis).
    maximum:
        Search cap; a point tolerating the cap itself reports the cap.
    resolution:
        Bisection stops when the bracket is narrower than this.
    target_errors:
        Pass criterion: at most this many bit errors per run.
    """

    axis: str = "sj_amplitude_ui_pp"
    maximum: float = 20.0
    resolution: float = 0.05
    target_errors: int = 0

    def __post_init__(self) -> None:
        require_positive("maximum", self.maximum)
        require_positive("resolution", self.resolution)


@dataclass(frozen=True)
class _SearchTask:
    """One search point: the scenario, its backend, and the search shape."""

    spec: ScenarioSpec
    backend: str
    search: ToleranceSearch


def _search_point(task: _SearchTask, rng: np.random.Generator) -> float:
    """Pool worker: expand-and-bisect the largest passing axis value.

    Every trial draws a child generator deterministically from the task
    stream, so the search is reproducible regardless of how many trials
    the bracketing phase needs.
    """
    search = task.search

    def passes(value: float) -> bool:
        child = np.random.default_rng(rng.integers(0, 2**63))
        point = apply_axis(task.spec, search.axis, float(value))
        result = simulate_scenario(point, child, backend=task.backend)
        return result.ber().errors <= search.target_errors

    maximum = search.maximum
    low = 0.0
    if not passes(low):
        return 0.0
    high = min(0.05, maximum)
    # Expand geometrically; every value reported as tolerated has been
    # tested, including the cap itself.
    while passes(high):
        low = high
        if high >= maximum:
            return maximum
        high = min(2.0 * high, maximum)
    while (high - low) > search.resolution:
        middle = 0.5 * (low + high)
        if passes(middle):
            low = middle
        else:
            high = middle
    return low


def run_tolerance_search(
    spec: ScenarioSpec,
    axes: tuple[ParameterAxis, ...] | list[ParameterAxis],
    search: ToleranceSearch,
    *,
    name: str = "tolerance",
    seed: int | None = 0,
    workers: int | None = None,
    metadata: dict | None = None,
    chunk_size: int | None = None,
    failure_policy: str = "raise",
    max_retries: int = 1,
    chunk_timeout_s: float | None = None,
    checkpoint=None,
) -> SweepResult:
    """Per grid point, the largest *search.axis* value that still passes.

    The single metric grid is named after the search axis (e.g.
    ``"sj_amplitude_ui_pp"``) and holds the tolerance in that axis's own
    units at every point of *axes* (typically one frequency axis, giving
    the classic jitter-tolerance curve).  The resilience knobs match
    :func:`run_grid` (the checkpoint key additionally hashes the search
    shape); a collected failure leaves ``NaN`` in the tolerance grid.
    """
    from ..sweep.resilient import map_tasks_resilient  # deferred: see run_grid

    axes = tuple(axes)
    points = resolve_grid(spec, axes)
    tasks = [
        _SearchTask(point, resolve_backend(point.config, point.backend).name, search)
        for point in points
    ]
    study_key = content_key(
        {
            "study": "run_tolerance_search",
            "spec": spec,
            "axes": axes,
            "seed": seed,
            "search": search,
        }
    )
    spec_backend = resolve_backend(spec.config, spec.backend)
    manifest = collect_manifest(
        backend=spec_backend.name,
        kernel_tier=spec_backend.kernel_tier,
        content_key=study_key,
        seed=seed,
    )
    mapped = map_tasks_resilient(
        _search_point,
        tasks,
        seed=seed,
        workers=workers,
        chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
        failure_policy=failure_policy,
        max_retries=max_retries,
        chunk_timeout_s=chunk_timeout_s,
        checkpoint=checkpoint,
        checkpoint_key=study_key,
        manifest=manifest.to_dict(),
    )
    amplitudes = [value if value is not None else float("nan") for value in mapped.values]

    shape = tuple(len(axis) for axis in axes)
    axis_results = _axis_results(axes)
    info = {
        "search_axis": search.axis,
        "maximum": search.maximum,
        "resolution": search.resolution,
        "target_errors": search.target_errors,
    }
    info.update(metadata or {})
    info["manifest"] = manifest.to_dict()
    return SweepResult(
        name=name,
        axes=axis_results,
        metrics={search.axis: np.asarray(amplitudes, dtype=float).reshape(shape)},
        backend=spec.backend,
        point_backends=tuple(task.backend for task in tasks),
        n_bits=spec.stimulus.n_bits,
        seed=seed,
        metadata=info,
        failures=_grid_failures(mapped.failures, axis_results, shape),
        audit=mapped.audit,
    )
