"""Declarative scenario descriptions for the generic experiment engine.

A study is fully described by a frozen :class:`ScenarioSpec` — stimulus,
optional jitter injection, optional :class:`~repro.link.LinkConfig` front
end, :class:`~repro.core.config.CdrChannelConfig`, measurement plan and
backend request — plus one :class:`ParameterAxis` per swept dimension.
The engine (:mod:`repro.experiments.engine`) resolves the cartesian grid,
applies each axis through the :data:`AXIS_APPLICATORS` registry, resolves
the backend per point through :func:`repro.fastpath.backends.resolve_backend`
and executes every point on the deterministic sweep runner.

Everything here is a plain frozen dataclass so scenario points are
picklable (they cross the process-pool boundary) and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from .._validation import require_in_range, require_non_negative, require_positive_int
from ..core.config import CdrChannelConfig
from ..datapath.encoding8b10b import encode_bytes
from ..datapath.nrz import JitterSpec
from ..datapath.prbs import prbs_sequence, sequence_period
from ..link import (
    CrosstalkAggressor,
    CrosstalkSpec,
    LinkConfig,
    LmsDfe,
    LossyLineChannel,
    RxCtle,
    TrainedLineup,
    TrainingBudget,
    TxFfe,
)

__all__ = [
    "STIMULUS_KINDS",
    "StimulusSpec",
    "MeasurementPlan",
    "CrosstalkAggressor",
    "CrosstalkSpec",
    "EqualizerLineup",
    "LaneSpec",
    "ScenarioSpec",
    "ParameterAxis",
    "TrainedLineup",
    "TrainingBudget",
    "AXIS_APPLICATORS",
    "register_axis",
    "apply_axis",
]

#: Supported stimulus generators.
STIMULUS_KINDS = ("prbs", "encoded8b10b", "cid_stress")


@dataclass(frozen=True)
class StimulusSpec:
    """What is transmitted: pattern kind, length and (optional) seeding.

    Attributes
    ----------
    kind:
        ``"prbs"`` — maximal-length PRBS of ``prbs_order`` (the paper's
        verification stimulus); ``"encoded8b10b"`` — a counting byte stream
        through the 8b/10b encoder (run-length-limited, as the paper's
        comparison baseline); ``"cid_stress"`` — an alternating preamble
        followed by ``max_run`` consecutive identical digits of each
        polarity (the CID corner the edge detector must ride through).
    n_bits:
        Transmitted bit count per simulation.
    prbs_order:
        LFSR order for ``kind="prbs"``.
    seed:
        LFSR register seed for ``kind="prbs"`` (``None`` = all ones); used
        by the multi-channel sweep to decorrelate lanes.
    max_run:
        Run length of the ``cid_stress`` pattern.
    """

    kind: str = "prbs"
    n_bits: int = 2000
    prbs_order: int = 7
    seed: int | None = None
    max_run: int = 8

    def __post_init__(self) -> None:
        if self.kind not in STIMULUS_KINDS:
            raise ValueError(
                f"unknown stimulus kind {self.kind!r}; expected one of "
                f"{list(STIMULUS_KINDS)}"
            )
        require_positive_int("n_bits", self.n_bits)
        require_positive_int("max_run", self.max_run)

    @property
    def pattern_period(self) -> int | None:
        """Tiling period of the bit stream (``None`` = aperiodic).

        Link-driven runs hand this to
        :meth:`repro.link.LinkPath.transmit` so the pattern displacement
        table is computed once per period instead of once per stream.
        """
        if self.kind == "prbs":
            return sequence_period(self.prbs_order)
        if self.kind == "cid_stress":
            period = 4 * self.max_run
            return period if self.n_bits >= period else None
        return None

    def bits(self) -> np.ndarray:
        """Generate the transmitted bit sequence (uint8 array)."""
        if self.kind == "prbs":
            return prbs_sequence(self.prbs_order, self.n_bits, seed=self.seed)
        if self.kind == "cid_stress":
            run = self.max_run
            unit = np.concatenate(
                [
                    np.tile(np.array([1, 0], dtype=np.uint8), run),
                    np.ones(run, dtype=np.uint8),
                    np.zeros(run, dtype=np.uint8),
                ]
            )
            return np.resize(unit, self.n_bits)
        # encoded8b10b: a counting byte stream (all 256 data codes) encoded
        # to 10-bit symbols, truncated to the requested length.
        n_bytes = -(-self.n_bits // 10)
        data = bytes(index % 256 for index in range(n_bytes))
        return encode_bytes(data)[: self.n_bits]


@dataclass(frozen=True)
class MeasurementPlan:
    """What each grid point measures and retains.

    BER (error / compared-bit counts) is always measured.  ``eye`` adds
    clock-aligned eye metrics per point; ``statistical_eye`` solves the
    analytic :func:`repro.link.statistical_eye` of the point's link
    configuration (requires a link front end) and records its BER at the
    nominal operating point plus the horizontal/vertical eye openings at
    ``target_ber`` — the sub-1e-12 companion of the bit-true counts.
    ``train_equalizers`` runs the point's link through
    :class:`repro.link.LinkTrainer` (shaped by the scenario's
    ``training`` budget) and records the trained coefficients next to the
    trained-versus-fixed statistical-eye openings — the bit-true counts
    still measure the spec's own *fixed* lineup, so every point pairs
    "what the hand-picked lineup does" with "what training would buy".
    ``retain`` selects the trace retention policy — ``"none"`` keeps only
    the measurements (cheap, pickles across the pool), ``"results"``
    additionally returns every point's full ``BehavioralSimulationResult``
    (waveform traces included) in
    :attr:`repro.experiments.SweepResult.details`.
    """

    eye: bool = False
    statistical_eye: bool = False
    train_equalizers: bool = False
    target_ber: float = 1.0e-12
    retain: str = "none"

    def __post_init__(self) -> None:
        require_in_range("target_ber", self.target_ber, 0.0, 1.0, inclusive=False)
        if self.retain not in ("none", "results"):
            raise ValueError(
                f"unknown retention policy {self.retain!r}; "
                "expected 'none' or 'results'"
            )


@dataclass(frozen=True)
class EqualizerLineup:
    """One equalizer line-up of an ablation axis (labelled stage selection)."""

    label: str
    tx_ffe: TxFfe | None = None
    rx_ctle: RxCtle | None = None
    dfe: LmsDfe | None = None

    @classmethod
    def from_trained(cls, trained: TrainedLineup) -> "EqualizerLineup":
        """Adopt a :class:`repro.link.TrainedLineup` as an ablation line-up.

        ``TrainedLineup`` already exposes the same attribute surface, so
        it can sit on an ``"equalization"`` axis directly; this conversion
        exists for explicitness (and to drop the training metadata).
        """
        return cls(
            label=trained.label, tx_ffe=trained.tx_ffe, rx_ctle=trained.rx_ctle, dfe=trained.dfe
        )


@dataclass(frozen=True)
class LaneSpec:
    """One lane of a multi-channel receiver sweep (mismatch + stimulus seed).

    ``lane_skew_ui`` is report-only metadata (a lane's skew is absorbed by
    its elastic buffer, not by the CDR loop) — the ``lane`` axis applies
    only ``frequency_offset`` and ``stimulus_seed`` to the scenario.
    """

    index: int
    frequency_offset: float
    stimulus_seed: int | None = None
    lane_skew_ui: float = 0.0

    @property
    def label(self) -> str:
        return f"lane{self.index}"


@dataclass(frozen=True)
class ScenarioSpec:
    """Complete declarative description of one simulation scenario.

    Attributes
    ----------
    stimulus:
        Transmitted pattern description.
    jitter:
        Injected transmitter jitter (``None`` = clean edges).  For
        link-driven scenarios this is the *residual* jitter composed on top
        of the channel's data-dependent displacement.
    config:
        CDR channel configuration (oscillator, sampling tap, offsets).
    link:
        Optional waveform-level front end; when set, the stimulus travels
        through FFE → lossy channel → CTLE/DFE → edge extraction before
        driving the CDR.
    measurement:
        Measurement plan (BER always; optional eye metrics / retention).
    training:
        Link-training search shape used by
        ``MeasurementPlan(train_equalizers=True)`` points (``None`` =
        the default :class:`repro.link.TrainingBudget`); the registered
        ``"training_budget"`` axis sweeps its evaluation cap.
    backend:
        Backend request resolved per grid point through the capability
        registry: ``"auto"`` (default) picks the fastest exactly-equivalent
        backend, a concrete name is validated against the configuration.
    data_rate_offset_ppm:
        Transmitter frequency error.
    """

    stimulus: StimulusSpec = field(default_factory=StimulusSpec)
    jitter: JitterSpec | None = None
    config: CdrChannelConfig = field(default_factory=CdrChannelConfig)
    link: LinkConfig | None = None
    measurement: MeasurementPlan = field(default_factory=MeasurementPlan)
    training: TrainingBudget | None = None
    backend: str = "auto"
    data_rate_offset_ppm: float = 0.0


@dataclass(frozen=True)
class ParameterAxis:
    """One swept dimension: a registered axis name plus its points.

    ``name`` selects the transformation from :data:`AXIS_APPLICATORS`;
    ``values`` are the points along the axis (floats for physical axes,
    :class:`EqualizerLineup` / :class:`LaneSpec` objects for structured
    ones).  ``labels`` override the per-point display / serialization
    labels (default: the value's ``label`` attribute or ``str``).
    """

    name: str
    values: tuple
    labels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        if self.labels is not None:
            object.__setattr__(self, "labels", tuple(self.labels))
            if len(self.labels) != len(self.values):
                raise ValueError(
                    f"axis {self.name!r} has {len(self.values)} values but "
                    f"{len(self.labels)} labels"
                )

    def __len__(self) -> int:
        return len(self.values)

    def value_labels(self) -> tuple[str, ...]:
        """Per-point labels (explicit labels, value ``label`` attrs, or ``str``)."""
        if self.labels is not None:
            return self.labels
        return tuple(
            getattr(value, "label", None)
            or (f"{value:g}" if isinstance(value, (int, float)) else str(value))
            for value in self.values
        )

    def numeric_values(self) -> np.ndarray | None:
        """The axis points as a float array, or ``None`` for structured axes."""
        try:
            return np.array([float(value) for value in self.values], dtype=float)
        except (TypeError, ValueError):
            return None


# --- axis applicator registry -------------------------------------------------

#: ``name -> applicator(spec, value) -> spec`` transformations for axes.
AXIS_APPLICATORS: dict[str, Callable[[ScenarioSpec, Any], ScenarioSpec]] = {}


def register_axis(name: str):
    """Register an axis applicator ``fn(spec, value) -> spec`` under *name*.

    Register at *module scope* if the axis will run through the parallel
    sweep pool: pool workers that are spawned rather than forked re-import
    modules and only see registrations made at import time.
    """
    def decorate(function):
        AXIS_APPLICATORS[name] = function
        return function

    return decorate


def apply_axis(spec: ScenarioSpec, name: str, value) -> ScenarioSpec:
    """Apply one axis point to a scenario, returning the transformed scenario."""
    try:
        applicator = AXIS_APPLICATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown parameter axis {name!r}; registered axes: "
            f"{sorted(AXIS_APPLICATORS)}"
        ) from None
    return applicator(spec, value)


def _jitter_of(spec: ScenarioSpec) -> JitterSpec:
    if spec.jitter is None:
        return JitterSpec(dj_ui_pp=0.0, rj_ui_rms=0.0)
    return spec.jitter


def _link_of(spec: ScenarioSpec) -> LinkConfig:
    return spec.link if spec.link is not None else LinkConfig()


@register_axis("sj_amplitude_ui_pp")
def _apply_sj_amplitude(spec: ScenarioSpec, value) -> ScenarioSpec:
    jitter = replace(_jitter_of(spec), sj_amplitude_ui_pp=float(value))
    return replace(spec, jitter=jitter)


@register_axis("sj_frequency_hz")
def _apply_sj_frequency(spec: ScenarioSpec, value) -> ScenarioSpec:
    jitter = replace(_jitter_of(spec), sj_frequency_hz=float(value))
    return replace(spec, jitter=jitter)


@register_axis("rj_ui_rms")
def _apply_rj(spec: ScenarioSpec, value) -> ScenarioSpec:
    require_non_negative("rj_ui_rms", float(value))
    return replace(spec, jitter=replace(_jitter_of(spec), rj_ui_rms=float(value)))


@register_axis("frequency_offset")
def _apply_frequency_offset(spec: ScenarioSpec, value) -> ScenarioSpec:
    return replace(spec, config=spec.config.with_frequency_offset(float(value)))


@register_axis("data_rate_offset_ppm")
def _apply_data_rate_offset(spec: ScenarioSpec, value) -> ScenarioSpec:
    return replace(spec, data_rate_offset_ppm=float(value))


@register_axis("edge_detector_delay_ui")
def _apply_edge_detector_delay(spec: ScenarioSpec, value) -> ScenarioSpec:
    return replace(spec, config=spec.config.with_edge_detector_delay(float(value)))


@register_axis("channel_loss_db")
def _apply_channel_loss(spec: ScenarioSpec, value) -> ScenarioSpec:
    link = _link_of(spec)
    channel = LossyLineChannel.for_loss_at_nyquist(float(value), link.timebase.bit_rate_hz)
    return replace(spec, link=link.with_channel(channel))


@register_axis("ctle_peaking_db")
def _apply_ctle_peaking(spec: ScenarioSpec, value) -> ScenarioSpec:
    link = _link_of(spec)
    base_ctle = link.rx_ctle or RxCtle()
    return replace(
        spec,
        link=link.with_equalization(
            tx_ffe=link.tx_ffe,
            rx_ctle=base_ctle.with_peaking(float(value)),
            dfe=link.dfe,
        ),
    )


@register_axis("aggressor_amplitude")
def _apply_aggressor_amplitude(spec: ScenarioSpec, value) -> ScenarioSpec:
    """Set every crosstalk aggressor's coupling amplitude to *value*.

    A scenario without an aggressor population gets a single FEXT
    aggressor, so ``ParameterAxis("aggressor_amplitude", ...)`` works on
    any link-driven spec out of the box.
    """
    require_non_negative("aggressor_amplitude", float(value))
    link = _link_of(spec)
    crosstalk = link.crosstalk or CrosstalkSpec.single_fext(0.0)
    return replace(spec, link=link.with_crosstalk(crosstalk.with_amplitude(float(value))))


@register_axis("training_budget")
def _apply_training_budget(spec: ScenarioSpec, value) -> ScenarioSpec:
    """Sweep the link-training evaluation cap (statistical-eye solves).

    A scenario without an explicit training shape gets the default
    :class:`repro.link.TrainingBudget`, so the axis works on any
    ``train_equalizers`` spec out of the box.
    """
    training = spec.training or TrainingBudget()
    return replace(spec, training=training.with_max_evaluations(int(value)))


@register_axis("equalization")
def _apply_equalization(spec: ScenarioSpec, value: EqualizerLineup) -> ScenarioSpec:
    link = _link_of(spec)
    lineup = link.with_equalization(tx_ffe=value.tx_ffe, rx_ctle=value.rx_ctle, dfe=value.dfe)
    return replace(spec, link=lineup)


@register_axis("lane")
def _apply_lane(spec: ScenarioSpec, value: LaneSpec) -> ScenarioSpec:
    return replace(
        spec,
        config=spec.config.with_frequency_offset(value.frequency_offset),
        stimulus=replace(spec.stimulus, seed=value.stimulus_seed),
    )
