"""Declarative experiment engine: scenarios in, serializable results out.

Every parameter study of the reproduction is described, not programmed: a
frozen :class:`ScenarioSpec` (stimulus, optional jitter injection, optional
:class:`~repro.link.LinkConfig` front end, CDR configuration, measurement
plan, backend request) plus one :class:`ParameterAxis` per swept dimension
fully define a study, and one generic engine executes it::

    from repro.experiments import ParameterAxis, ScenarioSpec, run_grid

    result = run_grid(
        ScenarioSpec(),                       # paper-nominal scenario
        [ParameterAxis("frequency_offset", (0.0, 0.01, 0.05))],
        name="ber_vs_offset", seed=0)
    print(result.to_table().render())
    result.save("ber_vs_offset.json")         # lossless round-trip

Execution runs on the deterministic :mod:`repro.sweep.runner` pool (same
results at any worker count); the backend of every resolved point goes
through the capability registry in :mod:`repro.fastpath.backends`, so
``backend="auto"`` picks the fastest exactly-equivalent engine per point.
The seven public sweeps in :mod:`repro.sweep` are thin wrappers over this
package; new studies should start from a spec, not a pipeline.
"""

from .spec import (
    AXIS_APPLICATORS,
    STIMULUS_KINDS,
    CrosstalkAggressor,
    CrosstalkSpec,
    EqualizerLineup,
    LaneSpec,
    MeasurementPlan,
    ParameterAxis,
    ScenarioSpec,
    StimulusSpec,
    TrainedLineup,
    TrainingBudget,
    apply_axis,
    register_axis,
)
from .results import AxisResult, PointFailure, SweepResult
from .engine import (
    DEFAULT_CHUNK_SIZE,
    ToleranceSearch,
    link_training_measurement,
    resolve_grid,
    run_grid,
    run_tolerance_search,
    scenario_timing_budget,
    simulate_scenario,
    statistical_eye_measurement,
)

__all__ = [
    "AXIS_APPLICATORS",
    "DEFAULT_CHUNK_SIZE",
    "STIMULUS_KINDS",
    "AxisResult",
    "CrosstalkAggressor",
    "CrosstalkSpec",
    "EqualizerLineup",
    "LaneSpec",
    "MeasurementPlan",
    "ParameterAxis",
    "PointFailure",
    "ScenarioSpec",
    "StimulusSpec",
    "SweepResult",
    "ToleranceSearch",
    "TrainedLineup",
    "TrainingBudget",
    "apply_axis",
    "link_training_measurement",
    "register_axis",
    "resolve_grid",
    "run_grid",
    "run_tolerance_search",
    "scenario_timing_budget",
    "simulate_scenario",
    "statistical_eye_measurement",
]
