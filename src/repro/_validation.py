"""Small argument-validation helpers shared by the public API.

Keeping the checks in one place makes the error messages uniform and keeps the
numerical code readable.  All helpers raise ``ValueError`` (or ``TypeError``
for wrong types) with a message that names the offending argument.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_probability",
    "require_fraction",
    "require_int",
    "require_positive_int",
    "require_binary_sequence",
    "require_finite",
]


def require_finite(name: str, value: float) -> float:
    """Return *value* if it is a finite real number, else raise ``ValueError``."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def require_positive(name: str, value: float) -> float:
    """Return *value* if strictly positive, else raise ``ValueError``."""
    value = require_finite(name, value)
    if value <= 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Return *value* if >= 0, else raise ``ValueError``."""
    value = require_finite(name, value)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Return *value* if it lies in ``[low, high]`` (or ``(low, high)``)."""
    value = require_finite(name, value)
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return value


def require_probability(name: str, value: float) -> float:
    """Return *value* if it is a valid probability in [0, 1]."""
    return require_in_range(name, value, 0.0, 1.0)


def require_fraction(name: str, value: float) -> float:
    """Return *value* if it is a fraction in [0, 1)."""
    value = require_finite(name, value)
    if not (0.0 <= value < 1.0):
        raise ValueError(f"{name} must be in [0, 1), got {value!r}")
    return value


def require_int(name: str, value: int) -> int:
    """Return *value* as ``int`` if it is integral, else raise ``TypeError``."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if not isinstance(value, (int,)):
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    return int(value)


def require_positive_int(name: str, value: int) -> int:
    """Return *value* as ``int`` if it is a strictly positive integer."""
    value = require_int(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_binary_sequence(name: str, bits: Sequence[int] | Iterable[int]) -> list[int]:
    """Return *bits* as a list of 0/1 integers, raising on anything else."""
    out: list[int] = []
    for index, bit in enumerate(bits):
        if isinstance(bit, bool):
            out.append(int(bit))
            continue
        if bit not in (0, 1):
            raise ValueError(f"{name}[{index}] must be 0 or 1, got {bit!r}")
        out.append(int(bit))
    return out
