"""Reporting helpers: text tables, (x, y) series and engineering formatting."""

from .tables import Series, TextTable, format_engineering

__all__ = ["Series", "TextTable", "format_engineering"]
