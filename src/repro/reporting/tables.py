"""Plain-text tables and series used by the benchmark harness.

The benchmarks regenerate every table and figure of the paper as *text*
(aligned tables and ``(x, y)`` series) so the reproduction can be compared to
the paper without a plotting dependency.  CSV export is provided for anyone
who wants to plot the series elsewhere.

Engine output plugs in directly: :meth:`TextTable.from_sweep_result` and
:meth:`Series.from_sweep_result` render a
:class:`repro.experiments.SweepResult` (accepted duck-typed, so this module
stays a dependency-free leaf below the experiments layer).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["TextTable", "Series", "format_engineering"]


def format_engineering(value: float, unit: str = "", digits: int = 3) -> str:
    """Format a value with an engineering (SI) prefix, e.g. ``1.25e-3 -> 1.25 m``."""
    prefixes = {
        -15: "f", -12: "p", -9: "n", -6: "u", -3: "m",
        0: "", 3: "k", 6: "M", 9: "G", 12: "T",
    }
    if value == 0.0:
        return f"0 {unit}".strip()
    magnitude = value
    exponent = 0
    while abs(magnitude) >= 1000.0 and exponent < 12:
        magnitude /= 1000.0
        exponent += 3
    while abs(magnitude) < 1.0 and exponent > -15:
        magnitude *= 1000.0
        exponent -= 3
    prefix = prefixes.get(exponent, f"e{exponent}")
    return f"{magnitude:.{digits}g} {prefix}{unit}".strip()


@dataclass
class TextTable:
    """A simple aligned text table."""

    headers: Sequence[str]
    rows: list[Sequence[str]] = field(default_factory=list)
    title: str = ""

    @classmethod
    def from_sweep_result(cls, result, title: str | None = None) -> "TextTable":
        """Long-format table of a :class:`repro.experiments.SweepResult`.

        One row per grid point: axis labels followed by every metric.
        """
        return result.to_table(title)

    def add_row(self, *cells) -> None:
        """Append a row; cells are converted to strings."""
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as aligned text."""
        columns = len(self.headers)
        widths = [len(str(header)) for header in self.headers]
        for row in self.rows:
            for index in range(columns):
                widths[index] = max(widths[index], len(row[index]))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
        out.write(line(self.headers) + "\n")
        out.write(line(["-" * width for width in widths]) + "\n")
        for row in self.rows:
            out.write(line(row) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Render the table as CSV."""
        out = io.StringIO()
        out.write(",".join(str(h) for h in self.headers) + "\n")
        for row in self.rows:
            out.write(",".join(row) + "\n")
        return out.getvalue()


@dataclass
class Series:
    """A named (x, y) series — one curve of a paper figure."""

    name: str
    x_label: str
    y_label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    @classmethod
    def from_sweep_result(cls, result, metric: str = "errors", name: str | None = None) -> "Series":
        """One metric of a 1-D :class:`repro.experiments.SweepResult` as a curve."""
        return result.to_series(metric, name)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.points.append((float(x), float(y)))

    def extend(self, xs: Iterable[float], ys: Iterable[float]) -> None:
        """Append many points."""
        for x, y in zip(xs, ys):
            self.add(x, y)

    def render(self, max_points: int | None = None) -> str:
        """Render the series as aligned two-column text."""
        table = TextTable(headers=[self.x_label, self.y_label], title=self.name)
        points = self.points
        if max_points is not None and len(points) > max_points:
            step = max(1, len(points) // max_points)
            points = points[::step]
        for x, y in points:
            table.add_row(f"{x:.6g}", f"{y:.6g}")
        return table.render()

    def to_csv(self) -> str:
        """Render the series as CSV."""
        out = io.StringIO()
        out.write(f"{self.x_label},{self.y_label}\n")
        for x, y in self.points:
            out.write(f"{x:.9g},{y:.9g}\n")
        return out.getvalue()
