"""repro — reproduction of "Top-Down Design of a Low-Power Multi-Channel
2.5-Gbit/s/Channel Gated Oscillator Clock-Recovery Circuit" (DATE 2005).

The package mirrors the paper's top-down flow:

* :mod:`repro.statistical` — the system-level statistical BER / JTOL / FTOL model,
* :mod:`repro.phasenoise` — oscillator jitter budgeting and power design,
* :mod:`repro.events`, :mod:`repro.gates`, :mod:`repro.core` — the behavioural
  (event-driven) gate-level model of the gated-oscillator CDR,
* :mod:`repro.fastpath` — the vectorized production engine (exact event-kernel
  equivalence on zero-gate-jitter configurations),
* :mod:`repro.link` — the waveform-level link front end (lossy channel,
  TX/RX equalization, ISI, edge extraction) feeding both engines,
* :mod:`repro.sweep` — deterministic parallel sweeps over either backend,
* :mod:`repro.circuit` — the circuit-level (transistor-like) transient substrate,
* :mod:`repro.datapath`, :mod:`repro.jitter`, :mod:`repro.pll`, :mod:`repro.specs`,
  :mod:`repro.analysis`, :mod:`repro.reporting` — supporting substrates.

Quick start::

    from repro.core import BehavioralCdrChannel, CdrChannelConfig, PAPER_JITTER_SPEC
    from repro.datapath import prbs7

    channel = BehavioralCdrChannel(CdrChannelConfig.paper_nominal())
    result = channel.run(prbs7(2000), jitter=PAPER_JITTER_SPEC)
    print(result.ber().ber, result.eye_diagram().metrics())
"""

from . import units

__version__ = "1.0.0"

__all__ = ["units", "__version__"]
