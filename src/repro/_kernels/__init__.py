"""Optional compiled/batched kernel tier for the bit-true hot loops.

The remaining per-sample Python loops of the stack — the LMS /
decision-directed DFE recursion (:mod:`repro.link.equalization`), the
event kernel's gate-evaluation stepping (:mod:`repro.events.kernel`) and
the per-candidate adaptation inside link training — dominate every
bit-true workload.  This package provides drop-in fast implementations
of exactly those loops behind a single dispatch module, following the
pure-python-reference + drop-in-compiled-kernel pattern (QAMpy's DSP
layer):

* **reference** — the pinned pure-python loops, living where they always
  did (``LmsDfe._adapt_reference`` and friends, the classic
  ``Simulator`` stepping loop).  They define the semantics; every other
  tier must match them **bit for bit** (gated by
  ``tests/kernels/test_bit_identity.py``).
* **python** — the always-available scalar middle tier
  (:mod:`repro._kernels.scalar`): the same recursions on unboxed Python
  floats with hoisted indexing, ~10x over the reference loops without
  any new dependency.
* **jit** — numba ``@njit(cache=True)`` kernels
  (:mod:`repro._kernels.jit`) behind a guarded import.  When numba is
  not installed the import fails silently, :func:`jit_available` returns
  False and dispatch falls back to the python tier (counted as
  ``kernels.jit_fallback`` in telemetry); nothing warns or spams.

Tier selection is explicit everywhere (``tier="auto"`` resolves to the
fastest available tier) and surfaces in the backend registry as the
``"fast+jit"`` backend / :attr:`BackendSpec.kernel_tier` field.  All
dispatches count ``kernels.tier.<tier>`` telemetry events.

This package sits at the very bottom of the layer diagram: it imports
only numpy and :mod:`repro.telemetry`, never the layers that call it.
"""

from __future__ import annotations

from .dispatch import (
    KERNEL_TIERS,
    TIER_AUTO,
    TIER_JIT,
    TIER_PYTHON,
    TIER_REFERENCE,
    dfe_adapt,
    dfe_adapt_decision_directed,
    dfe_error_propagation,
    jit_available,
    resolve_tier,
    simulator_drain,
    simulator_drain_until,
    warmup_jit,
)

__all__ = [
    "KERNEL_TIERS",
    "TIER_AUTO",
    "TIER_JIT",
    "TIER_PYTHON",
    "TIER_REFERENCE",
    "dfe_adapt",
    "dfe_adapt_decision_directed",
    "dfe_error_propagation",
    "jit_available",
    "resolve_tier",
    "simulator_drain",
    "simulator_drain_until",
    "warmup_jit",
]
