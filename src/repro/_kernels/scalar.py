"""Scalar middle-tier kernels: the bit-true recursions on unboxed floats.

These are the always-available fast implementations of the per-sample
hot loops.  The recursions are inherently sequential (every step reads
the previous step's decisions/weights), so they cannot be batched into
array expressions without changing semantics; what *can* be removed is
the per-sample numpy overhead the reference loops pay — an ``np.arange``
allocation, a modulo fancy-index gather, a BLAS dot and a boxed scalar
multiply per sample.  Working on plain Python floats with precomputed
(or hoisted) circular history indexing performs the **identical IEEE-754
operations in the identical order**, so results are bit-for-bit equal to
the reference loops (gated by ``tests/kernels/test_bit_identity.py``)
at roughly a tenth of the cost.

The event-kernel drain loop here is the same story at the scheduler
level: the reference ``Simulator.step`` path pays a method call and
repeated attribute loads per event; the drain hoists the heap and the
pop into locals.  Gate processes are arbitrary Python callbacks, so a
compiled tier is not applicable to event stepping — this *is* its fast
tier.

Everything in this module is deliberately dependency-free (numpy only,
for argument/result containers) and must stay importable with no
optional extras installed.
"""

from __future__ import annotations

import math
from heapq import heappop

import numpy as np

__all__ = [
    "dfe_adapt",
    "dfe_adapt_decision_directed",
    "dfe_error_propagation",
    "drain",
    "drain_until",
]


def dfe_adapt(
    samples: np.ndarray,
    levels: np.ndarray,
    n_taps: int,
    step_size: float,
    n_epochs: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Data-aided LMS adaptation; bit-identical to ``LmsDfe._adapt_reference``."""
    sample_list = [float(value) for value in samples]
    level_list = [float(value) for value in levels]
    n = len(sample_list)
    taps = range(n_taps)
    # The training history is static in data-aided mode: precompute every
    # sample's circular feedback register once, outside the epoch loop.
    history = [tuple(level_list[(k - 1 - j) % n] for j in taps) for k in range(n)]
    weights = [0.0] * n_taps
    error_rms = np.zeros(n_epochs)
    for epoch in range(n_epochs):
        squared = 0.0
        for k in range(n):
            row = history[k]
            acc = 0.0
            for j in taps:
                acc += weights[j] * row[j]
            error = (sample_list[k] - acc) - level_list[k]
            gain = step_size * error
            for j in taps:
                weights[j] += gain * row[j]
            squared += error * error
        error_rms[epoch] = math.sqrt(squared / n)
    return np.array(weights), error_rms


def dfe_adapt_decision_directed(
    samples: np.ndarray,
    levels: np.ndarray,
    n_taps: int,
    step_size: float,
    n_epochs: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Blind LMS adaptation; bit-identical to ``LmsDfe._adapt_decision_directed``.

    The decision register is the live ``decisions`` sequence itself
    (bootstrapped by slicing the raw samples), so the circular history
    read for sample ``k`` sees this epoch's decisions for indices below
    ``k`` and the previous epoch's (or the bootstrap's) above it —
    exactly the reference array semantics.
    """
    sample_list = [float(value) for value in samples]
    level_list = [float(value) for value in levels]
    n = len(sample_list)
    taps = range(n_taps)
    decisions = [1.0 if value >= 0.0 else -1.0 for value in sample_list]
    weights = [0.0] * n_taps
    row = [0.0] * n_taps
    error_rms = np.zeros(n_epochs)
    decision_errors = np.zeros(n_epochs)
    for epoch in range(n_epochs):
        squared = 0.0
        wrong = 0
        for k in range(n):
            base = k - 1
            acc = 0.0
            for j in taps:
                value = decisions[(base - j) % n]
                row[j] = value
                acc += weights[j] * value
            corrected = sample_list[k] - acc
            decision = 1.0 if corrected >= 0.0 else -1.0
            decisions[k] = decision
            error = corrected - decision
            gain = step_size * error
            for j in taps:
                weights[j] += gain * row[j]
            squared += error * error
            wrong += decision != level_list[k]
        error_rms[epoch] = math.sqrt(squared / n)
        decision_errors[epoch] = wrong / n
    return np.array(weights), error_rms, decision_errors


def dfe_error_propagation(
    waveform: np.ndarray,
    levels: np.ndarray,
    weights: np.ndarray,
    start: int,
    steps: int,
    snap: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Forced-error burst stepping; bit-identical to the reference loop.

    *waveform* is the ideal post-cursor waveform the weights cancel
    exactly (built, vectorized, by the caller); this kernel only runs the
    slicer/feedback recursion after the forced error at *start*.
    """
    sample_list = [float(value) for value in waveform]
    level_list = [float(value) for value in levels]
    weight_list = [float(value) for value in weights]
    n = len(level_list)
    n_weights = len(weight_list)
    taps = range(n_weights)
    decisions = list(level_list)
    decisions[start] = -level_list[start]
    wrong = np.zeros(steps, dtype=bool)
    deviation = np.zeros(steps)
    for step in range(1, steps + 1):
        k = (start + step) % n
        base = k - 1
        acc = 0.0
        for j in taps:
            acc += weight_list[j] * decisions[(base - j) % n]
        corrected = sample_list[k] - acc
        decision = 1.0 if corrected >= 0.0 else -1.0
        decisions[k] = decision
        wrong[step - 1] = decision != level_list[k]
        gap = abs(corrected - level_list[k])
        deviation[step - 1] = gap if gap > snap else 0.0
    return wrong, deviation


def drain_until(simulator, stop_time_s: float, max_events: int | None) -> tuple[int, bool]:
    """Execute pending events up to *stop_time_s*; the fast ``run_until`` loop.

    Pops and dispatches exactly like the reference ``Simulator.step``
    loop — same ordering, same ``_now`` updates — with the heap, the pop
    and the bound checked through locals instead of per-event attribute
    traversal.  Returns ``(executed, exceeded)`` where *exceeded* means
    the event budget ran out with eligible events still pending (the
    caller raises the reference error, keeping message and layering in
    :mod:`repro.events.kernel`).
    """
    queue = simulator._queue
    pop = heappop
    executed = 0
    bounded = max_events is not None
    while queue and queue[0][0] <= stop_time_s:
        if bounded and executed >= max_events:
            return executed, True
        time_s, _seq, callback = pop(queue)
        simulator._now = time_s
        callback()
        executed += 1
    return executed, False


def drain(simulator, max_events: int) -> tuple[int, bool]:
    """Execute pending events until the queue empties; the fast ``run`` loop."""
    queue = simulator._queue
    pop = heappop
    executed = 0
    while queue:
        if executed >= max_events:
            return executed, True
        time_s, _seq, callback = pop(queue)
        simulator._now = time_s
        callback()
        executed += 1
    return executed, False
