"""Numba-compiled kernels for the DFE recursions (optional ``fast`` extra).

Importing this module raises ``ImportError`` when numba is missing; the
dispatch layer guards the import and silently falls back to the scalar
middle tier, so a no-numba environment never sees a warning.  The
kernels perform the identical IEEE-754 operations in the identical
order as the pinned reference loops — no ``fastmath``, no reassociation
— so their outputs are bit-for-bit equal (gated by
``tests/kernels/test_bit_identity.py`` wherever numba is installed).

``cache=True`` persists the compiled artifacts next to the module, so a
process pays the JIT cost once per machine, not once per run; callers
that time kernels should still warm up explicitly
(:func:`repro._kernels.dispatch.warmup_jit`) outside timed regions.

The event-kernel drain is deliberately absent: gate evaluation runs
arbitrary Python callbacks, which a compiled loop cannot dispatch.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = [
    "dfe_adapt",
    "dfe_adapt_decision_directed",
    "dfe_error_propagation",
    "warmup",
]


@njit(cache=True)
def dfe_adapt(samples, levels, n_taps, step_size, n_epochs):
    """Data-aided LMS recursion; see ``LmsDfe._adapt_reference``."""
    n = samples.shape[0]
    weights = np.zeros(n_taps)
    error_rms = np.zeros(n_epochs)
    for epoch in range(n_epochs):
        squared = 0.0
        for k in range(n):
            base = k - 1
            acc = 0.0
            for j in range(n_taps):
                acc += weights[j] * levels[(base - j) % n]
            error = (samples[k] - acc) - levels[k]
            gain = step_size * error
            for j in range(n_taps):
                weights[j] += gain * levels[(base - j) % n]
            squared += error * error
        error_rms[epoch] = np.sqrt(squared / n)
    return weights, error_rms


@njit(cache=True)
def dfe_adapt_decision_directed(samples, levels, n_taps, step_size, n_epochs):
    """Blind LMS recursion; see ``LmsDfe._adapt_decision_directed``."""
    n = samples.shape[0]
    decisions = np.empty(n)
    for k in range(n):
        if samples[k] >= 0.0:
            decisions[k] = 1.0
        else:
            decisions[k] = -1.0
    weights = np.zeros(n_taps)
    error_rms = np.zeros(n_epochs)
    decision_errors = np.zeros(n_epochs)
    for epoch in range(n_epochs):
        squared = 0.0
        wrong = 0
        for k in range(n):
            base = k - 1
            acc = 0.0
            for j in range(n_taps):
                acc += weights[j] * decisions[(base - j) % n]
            corrected = samples[k] - acc
            if corrected >= 0.0:
                decision = 1.0
            else:
                decision = -1.0
            decisions[k] = decision
            error = corrected - decision
            gain = step_size * error
            for j in range(n_taps):
                weights[j] += gain * decisions[(base - j) % n]
            squared += error * error
            if decision != levels[k]:
                wrong += 1
        error_rms[epoch] = np.sqrt(squared / n)
        decision_errors[epoch] = wrong / n
    return weights, error_rms, decision_errors


@njit(cache=True)
def dfe_error_propagation(waveform, levels, weights, start, steps, snap):
    """Forced-error burst stepping; see ``LmsDfe.error_propagation``."""
    n = levels.shape[0]
    n_weights = weights.shape[0]
    decisions = levels.copy()
    decisions[start] = -levels[start]
    wrong = np.zeros(steps, dtype=np.bool_)
    deviation = np.zeros(steps)
    for step in range(1, steps + 1):
        k = (start + step) % n
        base = k - 1
        acc = 0.0
        for j in range(n_weights):
            acc += weights[j] * decisions[(base - j) % n]
        corrected = waveform[k] - acc
        if corrected >= 0.0:
            decision = 1.0
        else:
            decision = -1.0
        decisions[k] = decision
        wrong[step - 1] = decision != levels[k]
        gap = abs(corrected - levels[k])
        if gap > snap:
            deviation[step - 1] = gap
        else:
            deviation[step - 1] = 0.0
    return wrong, deviation


def warmup() -> None:
    """Compile every kernel on tiny inputs (call outside timed regions)."""
    samples = np.array([0.4, -0.6, 0.8, -0.2, 0.5])
    levels = np.array([1.0, -1.0, 1.0, -1.0, 1.0])
    dfe_adapt(samples, levels, 2, 0.05, 2)
    dfe_adapt_decision_directed(samples, levels, 2, 0.05, 2)
    dfe_error_propagation(levels.copy(), levels, np.array([0.2, 0.1]), 0, 4, 1.0e-9)
