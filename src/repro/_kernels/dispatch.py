"""Single dispatch point for the bit-true hot-loop kernels.

Every accelerated loop in the stack routes through this module: the DFE
adaptation recursions (called from :class:`repro.link.LmsDfe`, and
through it from link training's per-candidate adaptation), the DFE
error-propagation stepping, and the event kernel's drain loop.  Callers
pass a *tier* request and this module resolves it against what the
environment provides:

* ``"auto"`` — the fastest available tier: ``"jit"`` when numba imports
  cleanly, otherwise the scalar ``"python"`` middle tier.
* ``"jit"`` — the numba tier; silently falls back to ``"python"`` when
  numba is missing (counted as ``kernels.jit_fallback`` — forcing the
  ``"fast+jit"`` *backend* without numba raises earlier, in
  :func:`repro.fastpath.backends.resolve_backend`).
* ``"python"`` — the scalar middle tier (always available).
* ``"reference"`` — the pinned pure-python loops at the call site; this
  module never executes them, it only reports the resolution so callers
  keep reference execution local.

Resolution is observable: every dispatch counts ``kernels.tier.<tier>``
on the active telemetry tracer, so a trace shows exactly which tier
served a run and how often the JIT fallback fired.
"""

from __future__ import annotations

import numpy as np

from .. import telemetry
from . import scalar

try:  # pragma: no cover - exercised only where numba is installed
    from . import jit as _jit
except ImportError:  # numba not installed: the capability simply vanishes
    _jit = None

__all__ = [
    "KERNEL_TIERS",
    "TIER_AUTO",
    "TIER_JIT",
    "TIER_PYTHON",
    "TIER_REFERENCE",
    "dfe_adapt",
    "dfe_adapt_decision_directed",
    "dfe_error_propagation",
    "jit_available",
    "resolve_tier",
    "simulator_drain",
    "simulator_drain_until",
    "warmup_jit",
]

#: The pinned pure-python loops (executed by the caller, never here).
TIER_REFERENCE = "reference"

#: The always-available scalar middle tier (:mod:`repro._kernels.scalar`).
TIER_PYTHON = "python"

#: The numba-compiled tier (:mod:`repro._kernels.jit`, optional extra).
TIER_JIT = "jit"

#: Pseudo tier resolved to the fastest available concrete tier.
TIER_AUTO = "auto"

#: Every concrete kernel tier, slowest (reference) first.
KERNEL_TIERS = (TIER_REFERENCE, TIER_PYTHON, TIER_JIT)


def jit_available() -> bool:
    """True when the numba kernels imported cleanly."""
    return _jit is not None


def resolve_tier(tier: str = TIER_AUTO, *, jit_capable: bool = True) -> str:
    """Resolve a tier request to the concrete tier that will run.

    *jit_capable* is False for loops with no compiled implementation
    (event stepping dispatches Python callbacks), in which case ``jit``
    requests resolve to the python tier without counting a fallback.
    """
    if tier == TIER_AUTO:
        if jit_capable and _jit is not None:
            return TIER_JIT
        return TIER_PYTHON
    if tier == TIER_JIT:
        if not jit_capable:
            return TIER_PYTHON
        if _jit is None:
            tracer = telemetry.ACTIVE
            if tracer:
                tracer.count("kernels.jit_fallback")
            return TIER_PYTHON
        return TIER_JIT
    if tier in (TIER_PYTHON, TIER_REFERENCE):
        return tier
    raise ValueError(
        f"unknown kernel tier {tier!r}; expected one of "
        f"{list(KERNEL_TIERS) + [TIER_AUTO]}"
    )


def _count_tier(resolved: str) -> None:
    tracer = telemetry.ACTIVE
    if tracer:
        tracer.count(f"kernels.tier.{resolved}")


def warmup_jit() -> bool:
    """Compile the numba kernels now (outside any timed region).

    Returns True when the JIT tier is available and warm; False (after
    doing nothing) when numba is not installed.  Counted as
    ``kernels.jit_warmup`` so traces show warm-up happened before the
    measured work.
    """
    if _jit is None:
        return False
    _jit.warmup()
    tracer = telemetry.ACTIVE
    if tracer:
        tracer.count("kernels.jit_warmup")
    return True


def _as_float_array(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float64)


# --- DFE adaptation ------------------------------------------------------------


def dfe_adapt(
    samples: np.ndarray,
    levels: np.ndarray,
    n_taps: int,
    step_size: float,
    n_epochs: int,
    *,
    tier: str = TIER_AUTO,
) -> tuple[np.ndarray, np.ndarray]:
    """Data-aided LMS adaptation → ``(weights, error_rms_per_epoch)``.

    The reference tier is not dispatchable here — callers that want it
    run their own pinned loop (``LmsDfe.adapt(kernel="reference")``).
    """
    resolved = resolve_tier(tier)
    _count_tier(resolved)
    samples = _as_float_array(samples)
    levels = _as_float_array(levels)
    if resolved == TIER_JIT:
        return _jit.dfe_adapt(samples, levels, int(n_taps), float(step_size), int(n_epochs))
    return scalar.dfe_adapt(samples, levels, int(n_taps), float(step_size), int(n_epochs))


def dfe_adapt_decision_directed(
    samples: np.ndarray,
    levels: np.ndarray,
    n_taps: int,
    step_size: float,
    n_epochs: int,
    *,
    tier: str = TIER_AUTO,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Blind LMS adaptation → ``(weights, error_rms, decision_error_rate)``."""
    resolved = resolve_tier(tier)
    _count_tier(resolved)
    samples = _as_float_array(samples)
    levels = _as_float_array(levels)
    if resolved == TIER_JIT:
        return _jit.dfe_adapt_decision_directed(
            samples, levels, int(n_taps), float(step_size), int(n_epochs)
        )
    return scalar.dfe_adapt_decision_directed(
        samples, levels, int(n_taps), float(step_size), int(n_epochs)
    )


def dfe_error_propagation(
    waveform: np.ndarray,
    levels: np.ndarray,
    weights: np.ndarray,
    start: int,
    steps: int,
    snap: float,
    *,
    tier: str = TIER_AUTO,
) -> tuple[np.ndarray, np.ndarray]:
    """Forced-error burst stepping → ``(wrong_decisions, deviation_per_ui)``."""
    resolved = resolve_tier(tier)
    _count_tier(resolved)
    waveform = _as_float_array(waveform)
    levels = _as_float_array(levels)
    weights = _as_float_array(weights)
    if resolved == TIER_JIT:
        return _jit.dfe_error_propagation(
            waveform, levels, weights, int(start), int(steps), float(snap)
        )
    return scalar.dfe_error_propagation(
        waveform, levels, weights, int(start), int(steps), float(snap)
    )


# --- event-kernel stepping -----------------------------------------------------


def simulator_drain_until(
    simulator,
    stop_time_s: float,
    max_events: int | None,
    *,
    tier: str = TIER_AUTO,
) -> tuple[int, bool]:
    """Drain *simulator* up to *stop_time_s* on the resolved tier.

    Returns ``(executed, exceeded)``; the caller owns raising the
    budget-exceeded error and the final clock advance.  The reference
    tier runs the simulator's own pinned stepping loop.
    """
    resolved = resolve_tier(tier, jit_capable=False)
    _count_tier(resolved)
    if resolved == TIER_REFERENCE:
        return simulator.drain_until_reference(stop_time_s, max_events)
    return scalar.drain_until(simulator, stop_time_s, max_events)


def simulator_drain(simulator, max_events: int, *, tier: str = TIER_AUTO) -> tuple[int, bool]:
    """Drain *simulator* until its queue empties on the resolved tier."""
    resolved = resolve_tier(tier, jit_capable=False)
    _count_tier(resolved)
    if resolved == TIER_REFERENCE:
        return simulator.drain_reference(max_events)
    return scalar.drain(simulator, max_events)
