"""Threshold-crossing extraction: link waveform → CDR edge stream.

The CDR engines consume :class:`~repro.datapath.nrz.NrzEdgeStream` edge
times; this module converts a received waveform back into that form, so
both the event kernel and :mod:`repro.fastpath` run unmodified behind the
link front end.

The crossing-time routine itself is
:func:`repro.analysis.timing.threshold_crossings` — one shared
implementation for the circuit-level transient analyser and the link (the
two used to be near-copies).  On top of it this module:

* matches each crossing to the ideal transition it realises (nearest match
  inside a ±``match_window_ui`` window; a transition whose crossing
  disappeared — a fully closed eye — is assigned a large late displacement
  so the CDR demonstrably mis-samples it),
* snaps numerically-zero displacements to exactly 0.0 so an ideal channel
  reproduces the input edge times bit-for-bit,
* composes residual transmitter jitter from a
  :class:`~repro.datapath.nrz.JitterSpec` through the same
  :func:`~repro.datapath.nrz.jitter_displacements_ui` draws the direct
  (channel-less) stimulus path uses.
"""

from __future__ import annotations

import numpy as np

from .. import units
from .._validation import require_positive
from ..analysis.timing import threshold_crossings
from ..datapath.nrz import (
    JitterSpec,
    NrzEdgeStream,
    ideal_edge_times,
    jitter_displacements_ui,
)

__all__ = [
    "circular_transition_positions",
    "match_crossings_ui",
    "pattern_displacements_ui",
    "edge_stream_from_waveform",
]

#: Displacement (UI) assigned to a transition with no crossing in the window.
MISSING_EDGE_DISPLACEMENT_UI = 0.75


def circular_transition_positions(pattern_bits: np.ndarray) -> np.ndarray:
    """Bit positions that start a transition when *pattern_bits* repeats.

    Position ``p`` is a transition when ``bits[p] != bits[p - 1]`` with
    circular indexing (position 0 compares against the last bit of the
    previous pattern repetition).
    """
    bits = np.asarray(pattern_bits, dtype=np.uint8).ravel()
    return np.flatnonzero(bits != np.roll(bits, 1))


def _nearest_offsets_ui(
    crossings: np.ndarray, ideal: np.ndarray, unit_interval_s: float, period_s: float | None
) -> np.ndarray:
    """Offset (UI) from each ideal time to its nearest crossing (unbounded)."""
    if period_s is not None:
        require_positive("period_s", period_s)
        crossings = np.sort(np.concatenate((crossings - period_s, crossings, crossings + period_s)))
    right = np.searchsorted(crossings, ideal)
    left = np.clip(right - 1, 0, crossings.size - 1)
    right = np.clip(right, 0, crossings.size - 1)
    offset_left = crossings[left] - ideal
    offset_right = crossings[right] - ideal
    take_right = np.abs(offset_right) < np.abs(offset_left)
    return np.where(take_right, offset_right, offset_left) / unit_interval_s


def match_crossings_ui(
    crossing_times_s: np.ndarray,
    ideal_times_s: np.ndarray,
    unit_interval_s: float,
    *,
    match_window_ui: float = 0.5,
    period_s: float | None = None,
    snap_ui: float = 1.0e-6,
    center: bool = True,
) -> np.ndarray:
    """Displacement (UI) of each ideal transition's realised crossing.

    With *center* (the default) the median crossing offset — the channel's
    residual dispersive delay, which a receiver's clock recovery absorbs as
    a constant phase — is removed first, so the returned displacements are
    the data-dependent spread around the average edge position.  Each ideal
    transition then takes the nearest crossing within ±*match_window_ui* of
    that centre; displacements smaller than *snap_ui* are snapped to
    exactly zero (numerically ideal channel), and transitions without a
    matching crossing (a fully closed eye) receive
    :data:`MISSING_EDGE_DISPLACEMENT_UI`.  Pass *period_s* when the
    waveform is one period of a circular pattern so crossings wrap.
    """
    require_positive("unit_interval_s", unit_interval_s)
    ideal = np.asarray(ideal_times_s, dtype=float).ravel()
    crossings = np.sort(np.asarray(crossing_times_s, dtype=float).ravel())
    displacements = np.full(ideal.size, MISSING_EDGE_DISPLACEMENT_UI)
    if crossings.size == 0 or ideal.size == 0:
        return displacements
    offsets = _nearest_offsets_ui(crossings, ideal, unit_interval_s, period_s)
    shift = 0.0
    if center:
        coarse = offsets[np.abs(offsets) <= 2.0 * match_window_ui]
        if coarse.size:
            shift = float(np.median(coarse))
            if abs(shift) < snap_ui:
                shift = 0.0
    relative = offsets - shift
    matched = np.abs(relative) <= match_window_ui
    relative = np.where(np.abs(relative) < snap_ui, 0.0, relative)
    displacements[matched] = relative[matched]
    return displacements


def pattern_displacements_ui(
    time_axis_s: np.ndarray,
    waveform: np.ndarray,
    pattern_bits: np.ndarray,
    unit_interval_s: float,
    *,
    threshold: float = 0.0,
    match_window_ui: float = 0.5,
) -> np.ndarray:
    """Per-bit-position displacement table of a circular pattern waveform.

    *waveform* must be the steady-state received waveform of one repetition
    of *pattern_bits* (see :func:`repro.link.isi.superpose_circular`), with
    *time_axis_s* starting at the pattern's first bit boundary.  Returns an
    array of length ``len(pattern_bits)``: entry ``p`` is the displacement
    (UI) of the transition into bit ``p``, or 0.0 at positions that carry
    no transition.  Because the pattern repeats, this table fully describes
    the data-dependent jitter of arbitrarily long streams of the pattern —
    the per-point reuse the sweep layer's cost model builds on.
    """
    bits = np.asarray(pattern_bits, dtype=np.uint8).ravel()
    positions = circular_transition_positions(bits)
    table = np.zeros(bits.size)
    if positions.size == 0:
        return table
    times = np.asarray(time_axis_s, dtype=float).ravel()
    values = np.asarray(waveform, dtype=float).ravel()
    if times.size < 2:
        return table
    step = times[1] - times[0]
    # The waveform is one period of a circular pattern: extend it by one
    # unit interval on each side so the crossing at the period boundary
    # (transition into bit 0) is seen by the linear scan.
    margin = min(values.size, int(round(unit_interval_s / step)))
    times = np.concatenate((times[:margin] - margin * step, times, times[-margin:] + margin * step))
    values = np.concatenate((values[-margin:], values, values[:margin]))
    crossings = threshold_crossings(times, values, threshold=threshold, kind="any")
    # Midpoint convention: the pattern's first bit boundary sits half a
    # sample step before the first sample time.
    origin = time_axis_s[0] - 0.5 * step
    ideal = origin + positions * unit_interval_s
    table[positions] = match_crossings_ui(
        crossings,
        ideal,
        unit_interval_s,
        match_window_ui=match_window_ui,
        period_s=bits.size * unit_interval_s,
    )
    return table


def edge_stream_from_waveform(
    time_axis_s: np.ndarray,
    waveform: np.ndarray,
    bits: np.ndarray,
    *,
    bit_rate_hz: float = units.DEFAULT_BIT_RATE,
    data_rate_offset_ppm: float = 0.0,
    start_time_s: float = 0.0,
    threshold: float = 0.0,
    jitter: JitterSpec | None = None,
    rng: np.random.Generator | None = None,
    match_window_ui: float = 0.5,
) -> NrzEdgeStream:
    """Convert a received waveform into an :class:`NrzEdgeStream`.

    The ideal (jitter-free) edge times of *bits* are computed exactly as
    the direct stimulus path does; each is displaced by its matched
    threshold crossing in *waveform* (whose time axis must be aligned so
    the first bit starts at *start_time_s*), then residual transmitter
    jitter from *jitter* is composed on top with the same draw order as
    :func:`~repro.datapath.nrz.generate_edge_times`.  On an ideal channel
    the result is therefore bit-for-bit identical to the direct path.
    """
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    require_positive("bit_rate_hz", bit_rate_hz)
    nominal_period = 1.0 / bit_rate_hz
    actual_rate = bit_rate_hz * (1.0 + units.ppm_to_fraction(data_rate_offset_ppm))
    bit_period_s = 1.0 / actual_rate

    edge_times, edge_bit_index = ideal_edge_times(
        bits, bit_period_s, start_time_s=start_time_s, initial_level=0
    )

    if edge_times.size:
        crossings = threshold_crossings(time_axis_s, waveform, threshold=threshold, kind="any")
        displacement_ui = match_crossings_ui(
            crossings, edge_times, nominal_period, match_window_ui=match_window_ui
        )
        if jitter is not None:
            rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — opt-in entropy: reproducible callers pass a seeded Generator
            displacement_ui = displacement_ui + jitter_displacements_ui(edge_times, jitter, rng)
        edge_times = edge_times + displacement_ui * nominal_period
        edge_times = np.maximum.accumulate(edge_times)

    return NrzEdgeStream(
        bits=bits,
        edge_times_s=edge_times,
        edge_bit_index=edge_bit_index,
        bit_period_s=bit_period_s,
        start_time_s=start_time_s,
        initial_level=0,
    )
