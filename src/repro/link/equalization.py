"""Link equalization: TX FFE (de-emphasis), RX CTLE, and an LMS-adapted DFE.

Three standard serial-link equalizer stages, kept behavioural:

* :class:`TxFfe` — a symbol-spaced feed-forward filter applied to the
  transmitted symbols (transmit de-emphasis).  Taps are normalised to unit
  peak power (``sum |c_k| = 1``), the usual transmitter swing constraint.
* :class:`RxCtle` — a continuous-time linear equalizer: one zero and two
  poles, parameterized by the path bandwidth, the peaking frequency and the
  peaking magnitude (the construction PyBERT's ``make_ctle`` uses),
  normalised to unity DC gain so *peaking_db* is boost above DC.
* :class:`LmsDfe` — a one-tap-per-UI decision-feedback equalizer adapted by
  the sign-sign-free LMS recursion over the (periodic) training pattern,
  the adaptive-equalizer idiom of QAMpy's DSP layer.  Its feedback is
  rendered as a piecewise-constant waveform subtracted from the received
  trace, so the downstream threshold-crossing extraction sees its effect.
  Adaptation is **data-aided** by default (the training bits are known);
  ``decision_directed=True`` switches the recursion to slicer decisions —
  the non-data-aided mode a deployed receiver runs — and the adaptation
  then reports decision-error diagnostics per epoch.  Because a DFE feeds
  its *decisions* back, a wrong decision perturbs the next ``n_taps``
  corrections; :meth:`LmsDfe.error_propagation` models that burst (a
  forced slicer error must decay, not ring).

The per-sample adaptation recursions dispatch through the kernel tiers of
:mod:`repro._kernels` (``kernel="auto"`` on the public methods); the
pinned pure-python loops stay here as the ``"reference"`` tier and every
fast tier reproduces them bit for bit.

All three are frozen dataclasses and pickle across the sweep runner's
process pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from .. import _kernels
from .._validation import require_non_negative, require_positive, require_positive_int

__all__ = ["TxFfe", "RxCtle", "LmsDfe", "DfeAdaptation", "ErrorPropagation"]

#: Corrected-sample deviations below this are floating-point residue of the
#: feedback arithmetic, not propagated error — snapped to exact zero so
#: :attr:`ErrorPropagation.decays` can test for a fully cleared register.
_DEVIATION_SNAP = 1.0e-9


def _circular_shift_rows(values: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Stack ``np.roll(values, s)`` for every shift as rows of one gather.

    ``np.roll(x, s)[i] == x[(i - s) % n]``, so a single fancy-index gather
    replaces a per-shift roll loop (one temporary instead of one per tap).
    Row order preserves the historical per-tap accumulation order.
    """
    positions = np.arange(values.size)
    return values[(positions - np.asarray(shifts)[:, None]) % values.size]


@dataclass(frozen=True)
class TxFfe:
    """Symbol-spaced transmit feed-forward equalizer (de-emphasis).

    Attributes
    ----------
    taps:
        FIR coefficients at UI spacing, pre-cursor first.
    main_cursor:
        Index of the main tap inside *taps* (taps before it are
        pre-cursors, after it post-cursors).
    """

    taps: tuple[float, ...] = (1.0,)
    main_cursor: int = 0

    def __post_init__(self) -> None:
        if not self.taps:
            raise ValueError("TxFfe needs at least one tap")
        if not 0 <= self.main_cursor < len(self.taps):
            raise ValueError("main_cursor must index into taps")
        if float(np.abs(np.asarray(self.taps, dtype=float)).sum()) <= 0.0:
            raise ValueError("TxFfe taps must not all be zero")

    @classmethod
    def de_emphasis(cls, pre_db: float = 0.0, post_db: float = 3.5) -> "TxFfe":
        """Build a classic (pre, main, post) de-emphasis filter.

        *pre_db* / *post_db* are the de-emphasis depths: the ratio (in dB)
        between the full swing and the swing of a repeated bit.  Taps are
        normalised to unit peak power.
        """
        require_non_negative("pre_db", pre_db)
        require_non_negative("post_db", post_db)
        # De-emphasis depth d dB <=> tap magnitude (1 - r) / 2 with
        # r = 10^(-d/20) the steady-state/peak swing ratio.
        pre = 0.5 * (1.0 - 10.0 ** (-pre_db / 20.0))
        post = 0.5 * (1.0 - 10.0 ** (-post_db / 20.0))
        taps = (-pre, 1.0 - pre - post, -post)
        if pre == 0.0:
            return cls(taps=taps[1:], main_cursor=0).normalized()
        return cls(taps=taps, main_cursor=1).normalized()

    def normalized(self) -> "TxFfe":
        """Return a copy scaled so ``sum |c_k| = 1`` (unit peak swing)."""
        scale = float(np.abs(np.asarray(self.taps, dtype=float)).sum())
        return replace(self, taps=tuple(tap / scale for tap in self.taps))

    def apply_to_symbols(self, symbols: np.ndarray) -> np.ndarray:
        """Filter a (circular) symbol sequence with the tap vector.

        The sequence is treated as one period of a repeating pattern, so
        the convolution wraps — consistent with the circular ISI
        superposition in :mod:`repro.link.isi`.
        """
        symbols = np.asarray(symbols, dtype=float)
        if symbols.size == 0:
            return np.zeros_like(symbols)
        taps = np.asarray(self.taps, dtype=float)
        shifted = _circular_shift_rows(symbols, np.arange(taps.size) - self.main_cursor)
        # Leading zero row + ordered axis-0 reduce == the historical
        # zeros-then-accumulate tap loop, term for term.
        rows = np.concatenate([np.zeros((1, symbols.size)), taps[:, None] * shifted])
        return np.add.reduce(rows, axis=0)

    def frequency_response(self, frequencies_hz: np.ndarray, unit_interval_s: float) -> np.ndarray:
        """Complex response of the symbol-spaced FIR at the given frequencies."""
        require_positive("unit_interval_s", unit_interval_s)
        frequency = np.asarray(frequencies_hz, dtype=float)
        taps = np.asarray(self.taps, dtype=float)
        delays = (np.arange(taps.size) - self.main_cursor) * unit_interval_s
        rotation = -2j * math.pi * frequency
        phases = np.exp(np.multiply.outer(delays, rotation))
        terms = taps.reshape(taps.shape + (1,) * frequency.ndim) * phases
        rows = np.concatenate([np.zeros((1,) + frequency.shape, dtype=complex), terms])
        return np.add.reduce(rows, axis=0)


@dataclass(frozen=True)
class RxCtle:
    """Receiver continuous-time linear equalizer (peaking filter).

    One zero, two poles:

        ``H(s) = -(p1 p2 / z) (s - z) / ((s - p1)(s - p2))``

    with ``p1`` at the peaking frequency, ``p2`` at the signal-path
    bandwidth and the zero placed ``peaking_db`` below ``p1``.  The DC gain
    is exactly one, so the response *boosts* frequencies near the peaking
    frequency by up to ~*peaking_db* — re-opening an ISI-closed eye.  With
    ``peaking_db = 0`` the response degenerates to the plain one-pole
    bandwidth roll-off of the unequalized path.
    """

    peaking_db: float = 6.0
    peak_frequency_hz: float = 1.25e9
    bandwidth_hz: float = 7.5e9

    def __post_init__(self) -> None:
        require_non_negative("peaking_db", self.peaking_db)
        require_positive("peak_frequency_hz", self.peak_frequency_hz)
        require_positive("bandwidth_hz", self.bandwidth_hz)
        if self.bandwidth_hz <= self.peak_frequency_hz:
            raise ValueError("bandwidth_hz must exceed peak_frequency_hz")

    def with_peaking(self, peaking_db: float) -> "RxCtle":
        """Return a copy with a different peaking magnitude."""
        return replace(self, peaking_db=peaking_db)

    def frequency_response(self, frequencies_hz: np.ndarray) -> np.ndarray:
        s = 2j * math.pi * np.asarray(frequencies_hz, dtype=float)
        p1 = -2.0 * math.pi * self.peak_frequency_hz
        p2 = -2.0 * math.pi * self.bandwidth_hz
        zero = p1 / (10.0 ** (self.peaking_db / 20.0))
        return -(p1 * p2 / zero) * (s - zero) / ((s - p1) * (s - p2))


@dataclass(frozen=True)
class DfeAdaptation:
    """Converged state of an LMS DFE adaptation run.

    ``decision_error_rate_per_epoch`` is recorded only by decision-directed
    adaptation (``None`` for data-aided runs): the fraction of slicer
    decisions per epoch that disagreed with the transmitted symbols — the
    convergence diagnostic of the non-data-aided mode.
    """

    weights: np.ndarray
    error_rms_per_epoch: np.ndarray
    decision_error_rate_per_epoch: np.ndarray | None = None

    @property
    def converged(self) -> bool:
        """True when the final epoch no longer reduced the error meaningfully."""
        errors = self.error_rms_per_epoch
        if errors.size < 2:
            return False
        return bool(errors[-1] <= errors[-2] * 1.05)

    @property
    def final_decision_error_rate(self) -> float:
        """Decision error rate of the last epoch (NaN for data-aided runs)."""
        rates = self.decision_error_rate_per_epoch
        if rates is None or rates.size == 0:
            return float("nan")
        return float(rates[-1])


@dataclass(frozen=True)
class ErrorPropagation:
    """Response of the DFE feedback loop to one forced slicer error.

    A decision error feeds back through the tap weights and perturbs the
    next ``n_taps`` corrected samples by ``2·w_i``; when those
    perturbations stay inside the decision margin the burst dies as soon
    as the error leaves the feedback register, otherwise secondary errors
    extend it (and weights past the stability boundary ring forever).

    Attributes
    ----------
    wrong_decisions:
        Per-UI flags after the forced error: ``True`` where the slicer
        decided wrongly (secondary errors — the forced one is excluded).
    deviation_per_ui:
        ``|corrected − ideal|`` of every post-error UI; exactly zero once
        the feedback register holds only correct decisions again.
    """

    wrong_decisions: np.ndarray = field(repr=False)
    deviation_per_ui: np.ndarray = field(repr=False)

    @property
    def burst_length(self) -> int:
        """Number of UIs until the last secondary decision error (0 = none)."""
        wrong = np.flatnonzero(self.wrong_decisions)
        return int(wrong[-1]) + 1 if wrong.size else 0

    @property
    def decays(self) -> bool:
        """True when the burst dies before the horizon and feedback clears."""
        return bool(
            self.burst_length < self.wrong_decisions.size and self.deviation_per_ui[-1] == 0.0
        )


@dataclass(frozen=True)
class LmsDfe:
    """Decision-feedback equalizer with LMS tap adaptation.

    The DFE subtracts, over each unit interval, a weighted sum of the
    previous symbol decisions from the received waveform — cancelling
    post-cursor ISI that linear equalization cannot remove without noise
    amplification.  Taps are adapted on the periodic training pattern:

        ``e_k = (y_k - sum_i w_i d_{k-i}) - d_k``
        ``w_i <- w_i + mu * e_k * d_{k-i}``

    where ``d_k`` is the transmitted symbol in the default data-aided
    mode, and the **slicer decision** ``sign(corrected sample)`` when
    ``decision_directed=True`` — the blind mode a deployed receiver
    actually runs, where early wrong decisions both corrupt the feedback
    and mis-steer the gradient.  Decision-directed adaptation records the
    per-epoch decision error rate against the (known, diagnostics-only)
    transmitted symbols.

    Both adaptation modes and the error-propagation recursion accept a
    ``kernel`` tier (:data:`repro._kernels.KERNEL_TIERS`): ``"auto"``
    dispatches to the fastest available kernel, ``"reference"`` runs the
    pinned loops below.  Results are bit-for-bit identical across tiers.
    """

    n_taps: int = 2
    step_size: float = 0.02
    n_epochs: int = 40
    decision_directed: bool = False

    def __post_init__(self) -> None:
        require_positive_int("n_taps", self.n_taps)
        require_positive("step_size", self.step_size)
        require_positive_int("n_epochs", self.n_epochs)

    def adapt(
        self,
        ui_samples: np.ndarray,
        symbols: np.ndarray,
        *,
        kernel: str = _kernels.TIER_AUTO,
    ) -> DfeAdaptation:
        """LMS-adapt the feedback taps on one period of training data.

        Parameters
        ----------
        ui_samples:
            Received waveform sampled once per UI (at the bit centres).
        symbols:
            The transmitted symbol levels (±1), same length, treated as
            circular (one period of the repeating pattern).  In
            decision-directed mode they steer nothing — the recursion runs
            on slicer decisions — and only score the per-epoch decision
            error rate.
        kernel:
            Kernel tier for the recursion (``"auto"``, ``"jit"``,
            ``"python"`` or ``"reference"``); every tier returns
            bit-identical results.
        """
        samples = np.asarray(ui_samples, dtype=float).ravel()
        levels = np.asarray(symbols, dtype=float).ravel()
        if samples.shape != levels.shape:
            raise ValueError("ui_samples and symbols must have equal length")
        if samples.size <= self.n_taps:
            raise ValueError("need more than n_taps training symbols")
        if self.decision_directed:
            if kernel == _kernels.TIER_REFERENCE:
                return self._adapt_decision_directed(samples, levels)
            weights, error_rms, decision_errors = _kernels.dfe_adapt_decision_directed(
                samples, levels, self.n_taps, self.step_size, self.n_epochs, tier=kernel
            )
            return DfeAdaptation(
                weights=weights,
                error_rms_per_epoch=error_rms,
                decision_error_rate_per_epoch=decision_errors,
            )
        if kernel == _kernels.TIER_REFERENCE:
            return self._adapt_reference(samples, levels)
        weights, error_rms = _kernels.dfe_adapt(
            samples, levels, self.n_taps, self.step_size, self.n_epochs, tier=kernel
        )
        return DfeAdaptation(weights=weights, error_rms_per_epoch=error_rms)

    def _adapt_reference(self, samples: np.ndarray, levels: np.ndarray) -> DfeAdaptation:
        """Pinned pure-python data-aided recursion — the semantic reference.

        The operation order here is load-bearing: every fast kernel tier
        in :mod:`repro._kernels` must perform these IEEE-754 operations in
        this exact order so its results stay bit-for-bit identical (gated
        by ``tests/kernels/test_bit_identity.py``).
        """
        weights = np.zeros(self.n_taps)
        error_rms = np.zeros(self.n_epochs)
        for epoch in range(self.n_epochs):
            squared = 0.0
            for k in range(samples.size):
                history = levels[(k - 1 - np.arange(self.n_taps)) % levels.size]
                feedback = 0.0
                for weight, tap in zip(weights, history):
                    feedback += weight * tap
                error = (samples[k] - feedback) - levels[k]
                weights += self.step_size * error * history
                squared += error * error
            error_rms[epoch] = math.sqrt(squared / samples.size)
        return DfeAdaptation(weights=weights, error_rms_per_epoch=error_rms)

    def _adapt_decision_directed(self, samples: np.ndarray, levels: np.ndarray) -> DfeAdaptation:
        """Pinned blind LMS: history and error reference are slicer decisions.

        The decision register is bootstrapped by slicing the raw samples
        (the zero-weight corrected waveform) and persists across epochs,
        so the recursion sees exactly what a free-running receiver would.
        Operation order is load-bearing (see :meth:`_adapt_reference`).
        """
        decisions = np.where(samples >= 0.0, 1.0, -1.0)
        weights = np.zeros(self.n_taps)
        error_rms = np.zeros(self.n_epochs)
        decision_errors = np.zeros(self.n_epochs)
        for epoch in range(self.n_epochs):
            squared = 0.0
            wrong = 0
            for k in range(samples.size):
                history = decisions[(k - 1 - np.arange(self.n_taps)) % decisions.size]
                feedback = 0.0
                for weight, tap in zip(weights, history):
                    feedback += weight * tap
                corrected = samples[k] - feedback
                decision = 1.0 if corrected >= 0.0 else -1.0
                decisions[k] = decision
                error = corrected - decision
                weights += self.step_size * error * history
                squared += error * error
                wrong += decision != levels[k]
            error_rms[epoch] = math.sqrt(squared / samples.size)
            decision_errors[epoch] = wrong / samples.size
        return DfeAdaptation(
            weights=weights,
            error_rms_per_epoch=error_rms,
            decision_error_rate_per_epoch=decision_errors,
        )

    def error_propagation(
        self,
        weights: np.ndarray,
        symbols: np.ndarray,
        *,
        error_index: int = 0,
        horizon: int | None = None,
        kernel: str = _kernels.TIER_AUTO,
    ) -> ErrorPropagation:
        """Force one slicer error and track the feedback burst it causes.

        The loop runs on the ideal post-cursor waveform the *weights*
        cancel exactly (``y_k = s_k + sum_i w_i s_{k-i}``), so with a
        clean feedback register every decision is correct and every
        corrected sample equals the symbol — any deviation afterwards is
        purely the propagated error.  The decision at *error_index* is
        forced wrong, then the slicer runs free for *horizon* UIs
        (default ``8 * n_taps``, circular symbol indexing).
        """
        weights = np.asarray(weights, dtype=float).ravel()
        levels = np.asarray(symbols, dtype=float).ravel()
        if levels.size <= weights.size:
            raise ValueError("need more than len(weights) symbols")
        steps = 8 * self.n_taps if horizon is None else horizon
        require_positive_int("horizon", steps)
        samples = self._ideal_postcursor_waveform(levels, weights)
        start = error_index % levels.size
        if kernel == _kernels.TIER_REFERENCE:
            wrong, deviation = self._error_propagation_reference(
                samples, levels, weights, start, steps
            )
        else:
            wrong, deviation = _kernels.dfe_error_propagation(
                samples, levels, weights, start, steps, _DEVIATION_SNAP, tier=kernel
            )
        return ErrorPropagation(wrong_decisions=wrong, deviation_per_ui=deviation)

    @staticmethod
    def _ideal_postcursor_waveform(levels: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """``y_k = s_k + sum_i w_i s_{k-i}`` — the waveform the weights cancel.

        The symbol row leads and the reduce runs in tap order, matching
        the historical per-tap accumulation loop term for term.
        """
        if weights.size == 0:
            return levels.copy()
        shifted = _circular_shift_rows(levels, np.arange(1, weights.size + 1))
        rows = np.concatenate([levels[None, :], weights[:, None] * shifted])
        return np.add.reduce(rows, axis=0)

    @staticmethod
    def _error_propagation_reference(
        samples: np.ndarray,
        levels: np.ndarray,
        weights: np.ndarray,
        start: int,
        steps: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pinned slicer/feedback recursion after the forced error.

        Operation order is load-bearing (see :meth:`_adapt_reference`).
        """
        decisions = levels.copy()
        decisions[start] = -levels[start]
        wrong = np.zeros(steps, dtype=bool)
        deviation = np.zeros(steps)
        for step in range(1, steps + 1):
            k = (start + step) % levels.size
            history = decisions[(k - 1 - np.arange(weights.size)) % levels.size]
            feedback = 0.0
            for weight, tap in zip(weights, history):
                feedback += weight * tap
            corrected = samples[k] - feedback
            decision = 1.0 if corrected >= 0.0 else -1.0
            decisions[k] = decision
            wrong[step - 1] = decision != levels[k]
            gap = abs(corrected - levels[k])
            deviation[step - 1] = gap if gap > _DEVIATION_SNAP else 0.0
        return wrong, deviation

    def feedback_waveform(
        self, symbols: np.ndarray, weights: np.ndarray, samples_per_ui: int
    ) -> np.ndarray:
        """Piecewise-constant feedback to subtract from the received trace.

        Over unit interval ``k`` the DFE subtracts
        ``sum_i w_i s_{k-i}`` (circular symbol indexing), rendered here on
        the waveform grid so edge extraction sees the corrected trace.
        """
        require_positive_int("samples_per_ui", samples_per_ui)
        levels = np.asarray(symbols, dtype=float).ravel()
        weights = np.asarray(weights, dtype=float).ravel()
        if weights.size == 0:
            return np.repeat(np.zeros(levels.size), samples_per_ui)
        shifted = _circular_shift_rows(levels, np.arange(1, weights.size + 1))
        rows = np.concatenate([np.zeros((1, levels.size)), weights[:, None] * shifted])
        return np.repeat(np.add.reduce(rows, axis=0), samples_per_ui)
