"""Fast pulse-response superposition — the received-waveform synthesis core.

A linear channel turns the transmitted symbol sequence ``s_k`` into

    ``y(t) = sum_k s_k * p(t - k * UI)``

where ``p`` is the single-bit (pulse) response.  For the periodic patterns
the sweeps transmit (PRBS), the steady-state waveform over one pattern
period is the **circular** superposition of the per-UI shifted pulse
copies; :func:`superpose_circular` evaluates it with one FFT
multiply–inverse pass, vectorized over the whole grid.  The direct
:func:`superpose_linear` (``np.convolve``) path is kept as the validation
reference (``tests/link/test_isi.py`` checks the two agree to numerical
precision in the interior).
"""

from __future__ import annotations

import numpy as np

from .._validation import require_positive_int

__all__ = [
    "nrz_symbol_levels",
    "upsample_symbols",
    "superpose_circular",
    "superpose_linear",
]


def nrz_symbol_levels(bits: np.ndarray) -> np.ndarray:
    """Map 0/1 bits to the ±1 NRZ symbol levels the link waveform carries."""
    return 2.0 * np.asarray(bits, dtype=float).ravel() - 1.0


def upsample_symbols(symbols: np.ndarray, samples_per_ui: int) -> np.ndarray:
    """Impulse train: each symbol placed at the start of its unit interval."""
    require_positive_int("samples_per_ui", samples_per_ui)
    symbols = np.asarray(symbols, dtype=float).ravel()
    train = np.zeros(symbols.size * samples_per_ui)
    train[::samples_per_ui] = symbols
    return train


def _folded_pulse(pulse: np.ndarray, length: int) -> np.ndarray:
    """Wrap a pulse response onto a circular grid of *length* samples."""
    pulse = np.asarray(pulse, dtype=float).ravel()
    if pulse.size <= length:
        padded = np.zeros(length)
        padded[: pulse.size] = pulse
        return padded
    # Pad to a whole number of turns, then sum the turns in one pass.
    turns = -(-pulse.size // length)
    padded = np.zeros(turns * length)
    padded[: pulse.size] = pulse
    return padded.reshape(turns, length).sum(axis=0)


def superpose_circular(symbols: np.ndarray, pulse: np.ndarray, samples_per_ui: int) -> np.ndarray:
    """Steady-state received waveform of a repeating symbol pattern.

    Treats *symbols* as one period of an infinitely repeating pattern and
    returns one period of the received waveform: the circular convolution
    of the symbol impulse train with the pulse response, evaluated in the
    frequency domain.  A pulse longer than the period is folded onto it
    (exact for a periodic drive).
    """
    train = upsample_symbols(symbols, samples_per_ui)
    kernel = _folded_pulse(pulse, train.size)
    spectrum = np.fft.rfft(train) * np.fft.rfft(kernel)
    return np.fft.irfft(spectrum, train.size)


def superpose_linear(symbols: np.ndarray, pulse: np.ndarray, samples_per_ui: int) -> np.ndarray:
    """Direct (non-circular) superposition via ``np.convolve`` — reference.

    Returns the full linear convolution of the impulse train with the
    pulse; the first ``len(pulse)`` samples carry the start-up transient
    that the circular form replaces with the steady-state wrap.
    """
    train = upsample_symbols(symbols, samples_per_ui)
    return np.convolve(train, np.asarray(pulse, dtype=float).ravel())
