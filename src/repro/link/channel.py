"""Parameterized lossy-channel models of the serial link.

The paper specifies the receiver's input jitter abstractly (Table 1); a real
serial link derives most of its deterministic jitter from channel
inter-symbol interference.  This module provides the frequency-domain
channel models whose pulse responses drive :mod:`repro.link.isi`:

* :class:`LossyLineChannel` — a transmission line with skin-effect and
  dielectric losses, following the metallic-transmission-line model
  (propagation constant from per-metre RLGC parameters, the construction
  PyBERT's ``calc_gamma`` uses);
* :class:`ButterworthChannel` / :class:`SinglePoleChannel` — simple
  band-limited stand-ins when only a bandwidth number is known;
* :class:`IdealChannel` — unity response, used for round-trip validation.

Every model exposes ``frequency_response`` on an arbitrary frequency grid
plus impulse/step/pulse responses on a shared :class:`LinkTimebase` grid.
All models are frozen dataclasses, so they pickle across the sweep runner's
process pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from .. import units
from .._validation import require_non_negative, require_positive, require_positive_int
from .timebase import LinkTimebase

__all__ = [
    "ChannelModel",
    "IdealChannel",
    "SinglePoleChannel",
    "ButterworthChannel",
    "LossyLineChannel",
    "pulse_through_response",
]


def pulse_through_response(response: np.ndarray, timebase: LinkTimebase, n_ui: int) -> np.ndarray:
    """One-UI unit rectangle filtered by *response* on the circular grid.

    *response* must be sampled on ``timebase.frequencies_hz(n_samples(n_ui))``.
    Shared by :meth:`ChannelModel.pulse_response` (channel only) and
    :meth:`repro.link.LinkPath.equalized_pulse_response` (channel × CTLE).
    """
    count = timebase.n_samples(n_ui)
    rectangle = np.zeros(count)
    rectangle[: timebase.samples_per_ui] = 1.0
    return np.fft.irfft(np.fft.rfft(rectangle) * response, count)


#: Nepers to decibels: ``20 * log10(e)``.
_NEPER_TO_DB = 20.0 / math.log(10.0)


@dataclass(frozen=True)
class ChannelModel:
    """Base class: a linear channel described by its frequency response.

    Subclasses implement :meth:`frequency_response`; the time-domain
    responses are derived from it by inverse real FFT on the timebase grid
    (circular — the response must decay within the requested span).
    """

    def frequency_response(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Complex transfer function sampled at *frequencies_hz*."""
        raise NotImplementedError

    def loss_db(self, frequency_hz: float | np.ndarray) -> float | np.ndarray:
        """Magnitude loss (positive dB) at the given frequency."""
        response = self.frequency_response(np.atleast_1d(np.asarray(frequency_hz, dtype=float)))
        loss = -20.0 * np.log10(np.maximum(np.abs(response), 1.0e-300))
        if np.isscalar(frequency_hz) or np.asarray(frequency_hz).ndim == 0:
            return float(loss[0])
        return loss

    def _grid_response(self, timebase: LinkTimebase, n_ui: int) -> np.ndarray:
        return self.frequency_response(timebase.frequencies_hz(timebase.n_samples(n_ui)))

    def impulse_response(self, timebase: LinkTimebase, n_ui: int = 64) -> np.ndarray:
        """Sampled impulse response over *n_ui* unit intervals (area-normalised).

        The samples integrate (sum times the sample period) to the DC gain,
        so convolving a waveform with this response and multiplying by the
        sample period applies the channel.
        """
        count = timebase.n_samples(n_ui)
        response = np.fft.irfft(self._grid_response(timebase, n_ui), count)
        return response / timebase.sample_period_s

    def step_response(self, timebase: LinkTimebase, n_ui: int = 64) -> np.ndarray:
        """Response to a unit step applied at the start of the span."""
        count = timebase.n_samples(n_ui)
        impulse = np.fft.irfft(self._grid_response(timebase, n_ui), count)
        return np.cumsum(impulse)

    def pulse_response(self, timebase: LinkTimebase, n_ui: int = 64) -> np.ndarray:
        """Response to one unit-amplitude, one-UI-wide rectangular pulse.

        This is the single-bit response whose shifted superposition
        reconstructs the received waveform (:mod:`repro.link.isi`).
        Computed circularly on the grid, so *n_ui* must exceed the channel's
        settling span.
        """
        return pulse_through_response(self._grid_response(timebase, n_ui), timebase, n_ui)


@dataclass(frozen=True)
class IdealChannel(ChannelModel):
    """Unity-gain, infinite-bandwidth channel (round-trip validation)."""

    def frequency_response(self, frequencies_hz: np.ndarray) -> np.ndarray:
        return np.ones(np.asarray(frequencies_hz, dtype=float).shape, dtype=complex)


@dataclass(frozen=True)
class SinglePoleChannel(ChannelModel):
    """First-order low-pass channel: ``H(f) = 1 / (1 + j f / f_c)``."""

    cutoff_hz: float = 1.875e9

    def __post_init__(self) -> None:
        require_positive("cutoff_hz", self.cutoff_hz)

    def frequency_response(self, frequencies_hz: np.ndarray) -> np.ndarray:
        frequency = np.asarray(frequencies_hz, dtype=float)
        return 1.0 / (1.0 + 1j * frequency / self.cutoff_hz)


@dataclass(frozen=True)
class ButterworthChannel(ChannelModel):
    """Maximally flat *order*-pole low-pass channel (unity DC gain)."""

    cutoff_hz: float = 1.875e9
    order: int = 2

    def __post_init__(self) -> None:
        require_positive("cutoff_hz", self.cutoff_hz)
        require_positive_int("order", self.order)

    def _poles(self) -> np.ndarray:
        k = np.arange(self.order)
        angles = math.pi * (2.0 * k + self.order + 1.0) / (2.0 * self.order)
        return 2.0 * math.pi * self.cutoff_hz * np.exp(1j * angles)

    def frequency_response(self, frequencies_hz: np.ndarray) -> np.ndarray:
        s = 2j * math.pi * np.asarray(frequencies_hz, dtype=float)
        poles = self._poles()
        response = np.prod(-poles) * np.ones(s.shape, dtype=complex)
        for pole in poles:
            response = response / (s - pole)
        return response


@dataclass(frozen=True)
class LossyLineChannel(ChannelModel):
    """Transmission line with skin-effect and dielectric losses.

    The propagation constant follows the standard metallic transmission
    model: total series resistance combines the DC term with a skin-effect
    term growing as ``sqrt(f)``, and the shunt capacitance carries the
    dielectric loss tangent through a complex power law, giving

        ``gamma(w) = sqrt((j w L0 + R(w)) * (j w C(w)))``

    and an unloaded line response ``H = exp(-gamma * length)``.  Default
    parameters describe a typical FR-4 backplane differential pair.

    Attributes
    ----------
    length_m:
        Line length; attenuation in dB scales linearly with it.
    rdc_ohm_per_m:
        DC series resistance per metre.
    skin_ohm_per_m:
        Skin-effect resistance coefficient at the crossover frequency.
    crossover_rad_per_s:
        Angular frequency where skin-effect resistance equals ``rdc``.
    z0_ohm:
        Characteristic impedance in the LC region.
    velocity_m_per_s:
        Propagation velocity.
    loss_tangent:
        Dielectric loss tangent (``Theta0``).
    """

    length_m: float = 0.5
    rdc_ohm_per_m: float = 0.1876
    skin_ohm_per_m: float = 1.452
    crossover_rad_per_s: float = 1.0e7
    z0_ohm: float = 100.0
    velocity_m_per_s: float = 0.67 * 2.998e8
    loss_tangent: float = 0.02
    #: Frequency whose phase delay is treated as the line's bulk latency
    #: and stripped from the response (a receiver never observes absolute
    #: latency; only dispersion relative to this reference remains, so the
    #: extracted edge displacements stay well inside ±0.5 UI at any loss).
    delay_reference_hz: float = 1.25e9

    def __post_init__(self) -> None:
        require_non_negative("length_m", self.length_m)
        require_non_negative("rdc_ohm_per_m", self.rdc_ohm_per_m)
        require_non_negative("skin_ohm_per_m", self.skin_ohm_per_m)
        require_positive("crossover_rad_per_s", self.crossover_rad_per_s)
        require_positive("z0_ohm", self.z0_ohm)
        require_positive("velocity_m_per_s", self.velocity_m_per_s)
        require_non_negative("loss_tangent", self.loss_tangent)
        require_positive("delay_reference_hz", self.delay_reference_hz)

    def propagation_constant(self, frequencies_hz: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(gamma, Zc)`` per metre at the given frequencies.

        ``gamma`` is the complex propagation constant (nepers/m real part),
        ``Zc`` the frequency-dependent characteristic impedance.
        """
        omega = 2.0 * math.pi * np.asarray(frequencies_hz, dtype=float).copy()
        omega[omega == 0.0] = 1.0e-12  # guard the DC bin
        r_skin = self.skin_ohm_per_m * np.sqrt(2j * omega / self.crossover_rad_per_s)
        resistance = np.sqrt(self.rdc_ohm_per_m**2 + r_skin**2)
        inductance = self.z0_ohm / self.velocity_m_per_s
        c0 = 1.0 / (self.z0_ohm * self.velocity_m_per_s)
        capacitance = c0 * np.power(
            1j * omega / self.crossover_rad_per_s,
            -2.0 * self.loss_tangent / math.pi,
        )
        series = 1j * omega * inductance + resistance
        shunt = 1j * omega * capacitance
        gamma = np.sqrt(series * shunt)
        impedance = np.sqrt(series / shunt)
        return gamma, impedance

    def bulk_delay_s(self) -> float:
        """Phase delay of the line at the delay-reference frequency."""
        gamma, _ = self.propagation_constant(np.array([self.delay_reference_hz], dtype=float))
        omega_ref = 2.0 * math.pi * self.delay_reference_hz
        return float(gamma.imag[0]) * self.length_m / omega_ref

    def frequency_response(self, frequencies_hz: np.ndarray) -> np.ndarray:
        gamma, _impedance = self.propagation_constant(frequencies_hz)
        # Strip the bulk propagation delay (phase delay at the reference
        # frequency): the receiver never observes absolute latency, and
        # keeping it would wrap a multi-UI linear phase into the circular
        # pattern grid.  Dispersion relative to the reference remains.
        omega = 2.0 * math.pi * np.asarray(frequencies_hz, dtype=float)
        return np.exp(-gamma * self.length_m + 1j * omega * self.bulk_delay_s())

    def attenuation_db_per_m(self, frequency_hz: float) -> float:
        """Attenuation per metre (dB) at one frequency."""
        gamma, _ = self.propagation_constant(np.array([frequency_hz], dtype=float))
        return float(gamma.real[0] * _NEPER_TO_DB)

    def with_length(self, length_m: float) -> "LossyLineChannel":
        """Return a copy with a different line length."""
        return replace(self, length_m=length_m)

    @classmethod
    def for_loss_at_nyquist(
        cls, loss_db: float, bit_rate_hz: float = units.DEFAULT_BIT_RATE, **parameters
    ) -> "LossyLineChannel":
        """Return a line whose Nyquist (bit rate / 2) loss is *loss_db*.

        Attenuation in dB is linear in length, so the requested loss maps
        directly to a line length — the natural sweep axis for
        ``ber_vs_channel_loss_sweep``.
        """
        require_non_negative("loss_db", loss_db)
        require_positive("bit_rate_hz", bit_rate_hz)
        parameters.setdefault("delay_reference_hz", 0.5 * bit_rate_hz)
        reference = cls(length_m=1.0, **parameters)
        per_metre = reference.attenuation_db_per_m(0.5 * bit_rate_hz)
        return reference.with_length(loss_db / per_metre)
