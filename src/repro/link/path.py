"""End-to-end link path: TX FFE → lossy channel → RX CTLE/DFE → edge stream.

:class:`LinkPath` ties the pieces of :mod:`repro.link` together and is the
object the sweep layer drives.  Its cost model (see PERFORMANCE.md) rests
on two caches:

* the **equalized pulse response** — one channel/CTLE FFT per grid length,
  reused for every pattern on that grid;
* the **pattern displacement table** — one circular ISI superposition plus
  crossing extraction per transmitted pattern, reused for every repetition
  of the pattern inside a long stream (and across repeated ``transmit``
  calls, e.g. the per-frequency trials of a jitter-tolerance search).

``transmit`` then reduces to an ideal-edge construction plus two vectorized
displacement adds — the same cost as the channel-less stimulus path.

:class:`LinkCdrChannel` wraps a link path around either CDR backend
(``"event"`` or ``"fast"``), preserving their ``run`` contract, so every
existing analysis (BER counting, clock-aligned eye, recovered-clock
statistics) works on link-driven simulations unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .. import telemetry, units
from .._validation import require_positive_int
from ..analysis.eye import EyeDiagram
from ..datapath.nrz import JitterSpec, NrzEdgeStream, ideal_edge_times, jitter_displacements_ui
from ..fastpath.backends import AUTO_BACKEND, resolve_backend
from ..jitter.decomposition import JitterDecomposition, combine_deterministic, decompose_dual_dirac
from ..statistical.ber_model import CdrJitterBudget
from .channel import ChannelModel, IdealChannel, pulse_through_response
from .crosstalk import CrosstalkSpec
from .edges import circular_transition_positions, pattern_displacements_ui
from .equalization import DfeAdaptation, LmsDfe, RxCtle, TxFfe
from .isi import nrz_symbol_levels, superpose_circular
from .timebase import LinkTimebase

__all__ = [
    "LinkConfig",
    "LinkPath",
    "LinkCdrChannel",
    "stream_eye_diagram",
]


@dataclass(frozen=True)
class LinkConfig:
    """Complete description of one link path (picklable sweep unit).

    Attributes
    ----------
    channel:
        The lossy channel model.
    tx_ffe / rx_ctle / dfe:
        Optional equalizer stages; ``None`` disables a stage (the
        equalization-ablation axis of the sweeps).
    crosstalk:
        Optional FEXT/NEXT aggressor population; each aggressor's own PRBS
        waveform is superposed onto the received victim waveform before
        edge extraction (``None`` or all-zero amplitudes leave the
        waveform bit-identical to the crosstalk-free path).
    timebase:
        Waveform sampling grid.
    settle_ui:
        Idle unit intervals before the first bit (matches the CDR engines'
        default ``settle_bits``).
    """

    channel: ChannelModel = field(default_factory=IdealChannel)
    tx_ffe: TxFfe | None = None
    rx_ctle: RxCtle | None = None
    dfe: LmsDfe | None = None
    crosstalk: CrosstalkSpec | None = None
    timebase: LinkTimebase = field(default_factory=LinkTimebase)
    settle_ui: int = 4

    def __post_init__(self) -> None:
        require_positive_int("settle_ui", self.settle_ui)

    def with_channel(self, channel: ChannelModel) -> "LinkConfig":
        """Return a copy with the channel model replaced."""
        return replace(self, channel=channel)

    def with_equalization(
        self,
        *,
        tx_ffe: TxFfe | None = None,
        rx_ctle: RxCtle | None = None,
        dfe: LmsDfe | None = None,
    ) -> "LinkConfig":
        """Return a copy with the equalizer line-up replaced."""
        return replace(self, tx_ffe=tx_ffe, rx_ctle=rx_ctle, dfe=dfe)

    def with_crosstalk(self, crosstalk: CrosstalkSpec | None) -> "LinkConfig":
        """Return a copy with the aggressor population replaced."""
        return replace(self, crosstalk=crosstalk)


class LinkPath:
    """Waveform-level link simulation producing CDR-ready edge streams.

    *kernel_tier* selects the :mod:`repro._kernels` tier for the DFE
    adaptation recursion (``"auto"``, ``"jit"``, ``"python"`` or
    ``"reference"``).  Every tier is bit-for-bit identical, so the pulse
    and pattern caches stay valid whatever tier served a run.
    """

    def __init__(self, config: LinkConfig | None = None, *, kernel_tier: str = "auto") -> None:
        self.config = config or LinkConfig()
        self.kernel_tier = kernel_tier
        self._pulse_cache: dict[int, np.ndarray] = {}
        self._pattern_cache: dict[bytes, tuple[np.ndarray, DfeAdaptation | None]] = {}
        self._crosstalk_cache: dict[int, np.ndarray] = {}
        #: DFE training state behind the most recent displacement-table
        #: lookup (cached alongside the table, so it tracks cache hits too).
        self.last_dfe_adaptation: DfeAdaptation | None = None

    # -- frequency/time-domain views ----------------------------------------

    def system_frequency_response(
        self, frequencies_hz: np.ndarray, include_ffe: bool = True
    ) -> np.ndarray:
        """Combined linear response: channel × CTLE (× FFE if requested)."""
        config = self.config
        response = config.channel.frequency_response(frequencies_hz)
        if config.rx_ctle is not None:
            response = response * config.rx_ctle.frequency_response(frequencies_hz)
        if include_ffe and config.tx_ffe is not None:
            response = response * config.tx_ffe.frequency_response(
                frequencies_hz, config.timebase.unit_interval_s
            )
        return response

    def equalized_pulse_response(self, n_ui: int) -> np.ndarray:
        """Single-bit response through channel and CTLE on an *n_ui* grid.

        Cached per grid length: every pattern of that length (and every
        sweep trial at this link configuration) reuses the same FFT work.
        """
        timebase = self.config.timebase
        count = timebase.n_samples(n_ui)
        tracer = telemetry.ACTIVE
        cached = self._pulse_cache.get(count)
        if cached is not None:
            if tracer:
                tracer.count("link.pulse_cache.hits")
            return cached
        if tracer:
            tracer.count("link.pulse_cache.misses")
        response = self.system_frequency_response(timebase.frequencies_hz(count), include_ffe=False)
        pulse = pulse_through_response(response, timebase, n_ui)
        self._pulse_cache[count] = pulse
        return pulse

    def _rx_linear_response(self, count: int) -> np.ndarray | None:
        """The receiver's linear (CTLE) response on the *count*-sample grid."""
        if self.config.rx_ctle is None:
            return None
        return self.config.rx_ctle.frequency_response(self.config.timebase.frequencies_hz(count))

    def aggressor_pulse_responses(self, n_ui: int) -> list[np.ndarray]:
        """Coupled single-bit pulse of every aggressor at the victim sampler.

        Each pulse has traversed the aggressor's coupling path (FEXT rides
        the victim channel, NEXT couples straight in) and the victim's CTLE,
        on the shared circular grid — the cursor source for both the
        bit-true waveform superposition and the statistical eye solver.
        """
        config = self.config
        if config.crosstalk is None:
            return []
        count = config.timebase.n_samples(n_ui)
        rx_response = self._rx_linear_response(count)
        return [
            aggressor.pulse_response(
                config.timebase, n_ui, victim_channel=config.channel, rx_response=rx_response
            )
            for aggressor in config.crosstalk.aggressors
        ]

    def crosstalk_waveform(self, n_ui: int) -> np.ndarray:
        """Summed steady-state aggressor waveform over one *n_ui* period.

        Every aggressor transmits its own decorrelated PRBS pattern (tiled
        to the victim pattern period, so the circular steady-state model
        stays exact); cached per grid length like the pulse response.
        """
        tracer = telemetry.ACTIVE
        cached = self._crosstalk_cache.get(n_ui)
        if cached is not None:
            if tracer:
                tracer.count("link.crosstalk_cache.hits")
            return cached
        if tracer:
            tracer.count("link.crosstalk_cache.misses")
        config = self.config
        waveform = np.zeros(config.timebase.n_samples(n_ui))
        if config.crosstalk is not None and not config.crosstalk.is_silent:
            pulses = self.aggressor_pulse_responses(n_ui)
            for aggressor, pulse in zip(config.crosstalk.aggressors, pulses):
                waveform += superpose_circular(
                    aggressor.symbol_levels(n_ui), pulse, config.timebase.samples_per_ui
                )
        self._crosstalk_cache[n_ui] = waveform
        return waveform

    # -- waveform synthesis ---------------------------------------------------

    def received_pattern_waveform(self, pattern_bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Steady-state received waveform of one pattern repetition.

        Returns ``(time_axis_s, waveform)`` over one period (time axis
        starts at the pattern's first bit, midpoint convention).  The
        transmitted symbols pass through the FFE (circularly), the
        channel/CTLE pulse response superposes them, crosstalk aggressors
        add their coupled waveforms, and an optional DFE — trained
        data-aided on the pattern (crosstalk included, as a real adaptive
        receiver would) — subtracts its feedback.
        """
        config = self.config
        timebase = config.timebase
        bits = np.asarray(pattern_bits, dtype=np.uint8).ravel()
        require_positive_int("pattern length", int(bits.size))
        levels = nrz_symbol_levels(bits)
        symbols = levels if config.tx_ffe is None else config.tx_ffe.apply_to_symbols(levels)
        pulse = self.equalized_pulse_response(int(bits.size))
        waveform = superpose_circular(symbols, pulse, timebase.samples_per_ui)
        if config.crosstalk is not None and not config.crosstalk.is_silent:
            waveform = waveform + self.crosstalk_waveform(int(bits.size))
        self.last_dfe_adaptation = None
        if config.dfe is not None:
            spu = timebase.samples_per_ui
            centre_samples = waveform[spu // 2 :: spu]
            adaptation = config.dfe.adapt(centre_samples, levels, kernel=self.kernel_tier)
            waveform = waveform - config.dfe.feedback_waveform(levels, adaptation.weights, spu)
            self.last_dfe_adaptation = adaptation
        return timebase.time_axis_s(int(bits.size)), waveform

    def pattern_displacements(self, pattern_bits: np.ndarray) -> np.ndarray:
        """Per-position edge-displacement table (UI) of a circular pattern.

        Cached by pattern content — the second half of the cost model: long
        streams and repeated trials reuse one superposition + extraction.
        """
        bits = np.asarray(pattern_bits, dtype=np.uint8).ravel()
        key = bits.tobytes()
        tracer = telemetry.ACTIVE
        cached = self._pattern_cache.get(key)
        if cached is not None:
            if tracer:
                tracer.count("link.pattern_cache.hits")
            table, self.last_dfe_adaptation = cached
            return table
        if tracer:
            tracer.count("link.pattern_cache.misses")
        time_axis, waveform = self.received_pattern_waveform(bits)
        table = pattern_displacements_ui(
            time_axis, waveform, bits, self.config.timebase.unit_interval_s
        )
        self._pattern_cache[key] = (table, self.last_dfe_adaptation)
        return table

    def ddj_population_ui(self, pattern_bits: np.ndarray) -> np.ndarray:
        """Data-dependent displacement of every pattern transition (UI)."""
        bits = np.asarray(pattern_bits, dtype=np.uint8).ravel()
        table = self.pattern_displacements(bits)
        return table[circular_transition_positions(bits)]

    # -- edge-stream construction --------------------------------------------

    def transmit(
        self,
        bits: np.ndarray,
        *,
        jitter: JitterSpec | None = None,
        data_rate_offset_ppm: float = 0.0,
        rng: np.random.Generator | None = None,
        start_time_s: float | None = None,
        pattern_period: int | None = None,
    ) -> NrzEdgeStream:
        """Produce the received edge stream for a transmitted bit sequence.

        Parameters
        ----------
        bits:
            Transmitted bits.  With *pattern_period* = ``P`` the sequence
            must tile the pattern ``bits[:P]`` (PRBS streams do), and the
            displacement table of the ``P``-bit pattern is reused for every
            repetition; otherwise the whole sequence is treated as one
            pattern period.
        jitter:
            Residual transmitter jitter (RJ/SJ/DJ) composed on top of the
            channel's data-dependent displacement, drawn exactly as the
            direct stimulus path draws it.
        data_rate_offset_ppm:
            Transmitter frequency error.
        start_time_s:
            Absolute time of the first bit boundary (default: the
            configured ``settle_ui`` idle interval).
        """
        timebase = self.config.timebase
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        require_positive_int("number of bits", int(bits.size))
        nominal_period = timebase.unit_interval_s
        actual_rate = timebase.bit_rate_hz * (1.0 + units.ppm_to_fraction(data_rate_offset_ppm))
        bit_period_s = 1.0 / actual_rate
        start = self.config.settle_ui * nominal_period if start_time_s is None else start_time_s

        edge_times, edge_bit_index = ideal_edge_times(
            bits, bit_period_s, start_time_s=start, initial_level=0
        )

        if pattern_period is None:
            pattern = bits
            period = int(bits.size)
        else:
            require_positive_int("pattern_period", pattern_period)
            period = min(pattern_period, int(bits.size))
            pattern = bits[:period]
            if not np.array_equal(bits, np.resize(pattern, bits.size)):
                raise ValueError("bits do not tile the leading pattern_period bits")
        table = self.pattern_displacements(pattern)

        if edge_times.size:
            displacement_ui = table[edge_bit_index % period]
            if jitter is not None:
                rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — opt-in entropy: reproducible callers pass a seeded Generator
                displacement_ui = displacement_ui + jitter_displacements_ui(edge_times, jitter, rng)
            edge_times = edge_times + displacement_ui * nominal_period
            edge_times = np.maximum.accumulate(edge_times)

        return NrzEdgeStream(
            bits=bits,
            edge_times_s=edge_times,
            edge_bit_index=edge_bit_index,
            bit_period_s=bit_period_s,
            start_time_s=start,
            initial_level=0,
        )

    # -- statistical-model hand-off -------------------------------------------

    def ddj_decomposition(
        self, pattern_bits: np.ndarray, minimum_samples: int = 200
    ) -> JitterDecomposition:
        """Dual-Dirac fit of the pattern's data-dependent jitter.

        The deterministic displacement population is tiled up to
        *minimum_samples* (tiling leaves its quantiles unchanged) so the
        tail-fit estimator has enough points, then handed to
        :func:`repro.jitter.decomposition.decompose_dual_dirac`.
        """
        population = self.ddj_population_ui(pattern_bits)
        if population.size == 0:
            raise ValueError("pattern has no transitions to decompose")
        repeats = -(-minimum_samples // population.size)
        return decompose_dual_dirac(np.tile(population, repeats))

    def jitter_budget(
        self, pattern_bits: np.ndarray, base_budget: CdrJitterBudget | None = None
    ) -> CdrJitterBudget:
        """Analytic-model budget with the link's DDJ folded into DJ.

        The channel's data-dependent jitter (dual-Dirac DJ of the pattern)
        adds deterministically to the base budget's DJ; random and
        sinusoidal terms pass through.  Feed the result to
        :class:`repro.statistical.GatedOscillatorBerModel` for sub-1e-12
        BER predictions of the link-driven receiver.
        """
        base = base_budget or CdrJitterBudget()
        fit = self.ddj_decomposition(pattern_bits)
        return replace(base, dj_ui_pp=combine_deterministic(base.dj_ui_pp, fit.dj_pp_ui))


class LinkCdrChannel:
    """A CDR backend fed through a link path — same ``run`` contract.

    The transmitted bits travel through the link (FFE, channel, CTLE/DFE,
    edge extraction) and the resulting edge stream drives the selected CDR
    backend unmodified.  On zero-gate-jitter configurations the two
    backends stay exactly equivalent behind the link, because they consume
    the identical pre-built stream.

    *backend* goes through the capability registry
    (:func:`repro.fastpath.backends.resolve_backend`): the default
    ``"auto"`` picks the fastest exactly-equivalent backend for *config*,
    and forcing a backend that cannot honour the configuration raises a
    ``ValueError``.  ``self.backend`` holds the resolved concrete name.
    """

    def __init__(
        self, link: LinkConfig | LinkPath | None = None, config=None, backend: str = AUTO_BACKEND
    ) -> None:
        spec = resolve_backend(config, backend)
        if isinstance(link, LinkPath):
            self.path = link  # caller-owned path keeps its own kernel tier
        else:
            self.path = LinkPath(link, kernel_tier=spec.kernel_tier)
        self.cdr = spec.factory(config)
        self.backend = spec.name

    def run(
        self,
        bits: np.ndarray,
        *,
        jitter: JitterSpec | None = None,
        data_rate_offset_ppm: float = 0.0,
        rng: np.random.Generator | None = None,
        pattern_period: int | None = None,
        settle_bits: int | None = None,
    ):
        """Simulate link + CDR; returns a ``BehavioralSimulationResult``.

        *settle_bits* defaults to the link's configured ``settle_ui``.
        """
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — opt-in entropy: reproducible callers pass a seeded Generator
        settle = self.path.config.settle_ui if settle_bits is None else settle_bits
        stream = self.path.transmit(
            bits,
            jitter=jitter,
            data_rate_offset_ppm=data_rate_offset_ppm,
            rng=rng,
            start_time_s=settle * self.path.config.timebase.unit_interval_s,
            pattern_period=pattern_period,
        )
        return self.cdr.run(bits, rng=rng, stream=stream)


def stream_eye_diagram(stream: NrzEdgeStream, unit_interval_s: float | None = None) -> EyeDiagram:
    """Transmit-side eye of an edge stream against the ideal sampling clock.

    Every edge is referenced to the ideal mid-bit sampling instant, so the
    eye shows the link's total edge displacement (DDJ + residual jitter)
    before clock recovery — the waveform-level eye that
    :class:`repro.specs.ReceiverEyeMask` judges.
    """
    unit_interval = stream.bit_period_s if unit_interval_s is None else unit_interval_s
    clock_edges = stream.start_time_s + (np.arange(stream.n_bits) + 0.5) * stream.bit_period_s
    return EyeDiagram.from_edges(stream.edge_times_s, clock_edges, unit_interval)
