"""Crosstalk aggressors (FEXT / NEXT) coupling into the victim link.

A dense channel (the paper's multi-channel receiver context) never runs a
lane in isolation: neighbouring transmitters couple into the victim pair.
This module models each aggressor by its **coupled pulse response** at the
victim receiver — the voltage the victim sampler sees when the aggressor
transmits one isolated bit — and two consumers build on it:

* the bit-true path (:class:`~repro.link.LinkPath`) superposes the
  aggressor's own PRBS waveform onto the victim waveform before edge
  extraction, so crosstalk shows up as real edge displacement / eye
  closure in time-domain simulation;
* the statistical eye solver (:mod:`repro.link.stateye`) treats every
  aggressor cursor as an independent ±c voltage contribution and convolves
  the resulting PDF into the victim's ISI distribution.

The coupling transfer function is behavioural: inductive/capacitive
coupling grows with frequency up to the coupling corner (a first-order
high-pass), and a **FEXT** aggressor additionally traverses the victim
channel to the far end (so its coupled pulse is dispersed and attenuated
like the victim signal), while a **NEXT** aggressor couples straight back
into the near-end receiver.  ``amplitude`` scales the *peak* of the
coupled pulse after the full coupling path (including the victim's CTLE
when one is in line), so it reads directly in victim-swing units: an
``amplitude=0.1`` aggressor can close the vertical eye by at most ~0.2
(±0.1 around each rail).

Everything is a frozen dataclass, picklable across the sweep pool.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .._validation import require_non_negative, require_positive, require_positive_int
from ..datapath.prbs import prbs_sequence
from .channel import ChannelModel, pulse_through_response
from .isi import nrz_symbol_levels
from .timebase import LinkTimebase

__all__ = [
    "AGGRESSOR_KINDS",
    "CrosstalkAggressor",
    "CrosstalkSpec",
]

#: Supported coupling topologies.
AGGRESSOR_KINDS = ("fext", "next")


@dataclass(frozen=True)
class CrosstalkAggressor:
    """One crosstalk aggressor coupling into the victim receiver.

    Attributes
    ----------
    amplitude:
        Peak amplitude of the coupled single-bit pulse at the victim
        sampler, in units of the victim swing (0 disables the aggressor
        exactly — its pulse and waveform are identically zero).
    kind:
        ``"fext"`` (far-end: the coupled wave traverses the victim channel)
        or ``"next"`` (near-end: it couples straight into the receiver).
    coupling_corner_hz:
        Corner frequency of the first-order high-pass coupling response;
        coupling grows with frequency below it and flattens above.
    prbs_order / seed:
        The aggressor's own (bit-true) data pattern: a maximal-length PRBS
        decorrelated from the victim stimulus by its LFSR seed.
    """

    amplitude: float
    kind: str = "fext"
    coupling_corner_hz: float = 1.25e9
    prbs_order: int = 7
    seed: int | None = 0x2A

    def __post_init__(self) -> None:
        require_non_negative("amplitude", self.amplitude)
        if self.kind not in AGGRESSOR_KINDS:
            raise ValueError(
                f"unknown aggressor kind {self.kind!r}; expected one of "
                f"{list(AGGRESSOR_KINDS)}"
            )
        require_positive("coupling_corner_hz", self.coupling_corner_hz)
        require_positive_int("prbs_order", self.prbs_order)

    def with_amplitude(self, amplitude: float) -> "CrosstalkAggressor":
        """Return a copy with the coupling amplitude replaced."""
        return replace(self, amplitude=amplitude)

    def coupling_response(
        self, frequencies_hz: np.ndarray, victim_channel: ChannelModel | None = None
    ) -> np.ndarray:
        """Unnormalised coupling transfer function at *frequencies_hz*.

        The first-order high-pass models the derivative nature of
        inductive/capacitive coupling; a FEXT aggressor is additionally
        filtered by the *victim_channel* it rides to the far end.
        """
        frequency = np.asarray(frequencies_hz, dtype=float)
        ratio = 1j * frequency / self.coupling_corner_hz
        response = ratio / (1.0 + ratio)
        if self.kind == "fext" and victim_channel is not None:
            response = response * victim_channel.frequency_response(frequency)
        return response

    def pulse_response(
        self,
        timebase: LinkTimebase,
        n_ui: int,
        victim_channel: ChannelModel | None = None,
        rx_response: np.ndarray | None = None,
    ) -> np.ndarray:
        """Coupled single-bit pulse at the victim sampler on the circular grid.

        *rx_response* is the victim receiver's linear response (CTLE)
        sampled on ``timebase.frequencies_hz(n_samples(n_ui))``; the pulse
        is normalised so its peak magnitude equals :attr:`amplitude`
        *after* that response, making the amplitude read directly in
        victim-swing units at the sampler.
        """
        count = timebase.n_samples(n_ui)
        if self.amplitude == 0.0:
            return np.zeros(count)
        response = self.coupling_response(timebase.frequencies_hz(count), victim_channel)
        if rx_response is not None:
            response = response * rx_response
        pulse = pulse_through_response(response, timebase, n_ui)
        peak = float(np.max(np.abs(pulse)))
        if peak <= 0.0:
            return np.zeros(count)
        return pulse * (self.amplitude / peak)

    def pattern_bits(self, n_bits: int) -> np.ndarray:
        """The aggressor's transmitted bit pattern, tiled to *n_bits*."""
        require_positive_int("n_bits", n_bits)
        return prbs_sequence(self.prbs_order, n_bits, seed=self.seed)

    def symbol_levels(self, n_bits: int) -> np.ndarray:
        """±1 NRZ levels of :meth:`pattern_bits` (bit-true waveform drive)."""
        return nrz_symbol_levels(self.pattern_bits(n_bits))


@dataclass(frozen=True)
class CrosstalkSpec:
    """The aggressor population of one victim lane (picklable sweep unit)."""

    aggressors: tuple[CrosstalkAggressor, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "aggressors", tuple(self.aggressors))

    def __len__(self) -> int:
        return len(self.aggressors)

    @property
    def is_silent(self) -> bool:
        """True when no aggressor couples any energy (all amplitudes zero)."""
        return all(a.amplitude == 0.0 for a in self.aggressors)

    @classmethod
    def single_fext(cls, amplitude: float, **parameters) -> "CrosstalkSpec":
        """One FEXT aggressor — the default configuration of the sweeps."""
        return cls((CrosstalkAggressor(amplitude, kind="fext", **parameters),))

    @classmethod
    def single_next(cls, amplitude: float, **parameters) -> "CrosstalkSpec":
        """One NEXT aggressor."""
        return cls((CrosstalkAggressor(amplitude, kind="next", **parameters),))

    @classmethod
    def uniform(cls, n_aggressors: int, amplitude: float, kind: str = "fext") -> "CrosstalkSpec":
        """*n_aggressors* equal-amplitude aggressors with decorrelated seeds."""
        require_positive_int("n_aggressors", n_aggressors)
        return cls(
            tuple(
                CrosstalkAggressor(amplitude, kind=kind, seed=0x2A + 17 * index)
                for index in range(n_aggressors)
            )
        )

    def with_amplitude(self, amplitude: float) -> "CrosstalkSpec":
        """Every aggressor's amplitude set to *amplitude* (the sweep axis)."""
        return CrosstalkSpec(
            tuple(aggressor.with_amplitude(amplitude) for aggressor in self.aggressors)
        )
