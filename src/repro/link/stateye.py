"""Statistical eye solver: pulse-response cursor PDFs × the analytic BER model.

Bit-true simulation cannot reach the paper's 1e-12 BER target — counting
ten errors there needs ~1e13 bits.  The statistical (StatEye/PyBERT-class)
approach gets there analytically:

1. **Cursor enumeration** — the victim's full single-bit response (TX FFE ×
   channel × RX CTLE, minus the trained DFE feedback) is sampled at every
   candidate sampling phase inside the unit interval; every cursor except
   the main one contributes ``±c_k`` to the sampled voltage depending on
   the (equiprobable) neighbouring bit.
2. **Voltage-PDF convolution** — the per-cursor two-point distributions are
   convolved on a fixed voltage grid (the amplitude-domain analogue of the
   time-domain PDF calculus in :mod:`repro.jitter.pdf`), giving the exact
   ISI amplitude distribution at each phase.
3. **Crosstalk superposition** — each FEXT/NEXT aggressor
   (:mod:`repro.link.crosstalk`) contributes its own independent cursor
   set, convolved into the same PDF.  An aggressor's transmitter runs on
   its *own* clock, so by default its cursor PDF is averaged over a
   uniform phase offset within the UI (``aggressor_phase="asynchronous"``);
   ``"synchronous"`` keeps the legacy victim-phase sampling as an opt-in.
4. **Timing × amplitude combination** — the amplitude error probability
   (wrong side of the decision threshold) is combined with the
   gated-oscillator timing error probability
   (:class:`repro.statistical.GatedOscillatorBerModel` at the same
   sampling phase — one cached model serves the whole phase scan) into the
   ``BER(phase, threshold)`` surface.

The result is a :class:`StatisticalEye`: the full surface plus contour
extraction and horizontal/vertical eye openings at a target BER — the
million-point BER-contour workload bit-by-bit simulation cannot touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._validation import require_positive, require_positive_int, require_probability
from ..datapath.cid import RunLengthDistribution
from ..jitter.pdf import Pdf
from ..statistical.ber_model import CdrJitterBudget, GatedOscillatorBerModel
from .isi import superpose_circular
from .path import LinkConfig, LinkPath

__all__ = [
    "AGGRESSOR_PHASE_MODES",
    "StatisticalEye",
    "StatisticalEyeSolver",
    "statistical_eye",
]

#: Aggressor sampling-phase statistics: ``"asynchronous"`` (default)
#: averages each aggressor's cursor PDF over a uniform phase offset within
#: the UI; ``"synchronous"`` samples it at the victim phase (legacy).
AGGRESSOR_PHASE_MODES = ("asynchronous", "synchronous")

#: Default pulse-response span (UI) of the solver — shared with the
#: link-training layer, whose DFE adaptation replays the solver's
#: training pattern length.
DEFAULT_SPAN_UI = 64


#: Cursor magnitudes below this (in victim-swing units) are numerical FFT
#: residue, not ISI — snapped to zero like the edge extractor's ``snap_ui``.
_CURSOR_SNAP = 1.0e-9


def _shifted(pmf: np.ndarray, bins: int) -> np.ndarray:
    """*pmf* translated by *bins* grid cells (mass beyond the edge drops)."""
    if bins == 0:
        return pmf
    result = np.zeros_like(pmf)
    if bins > 0:
        result[bins:] = pmf[:-bins]
    else:
        result[:bins] = pmf[-bins:]
    return result


def _two_point_convolve(pmf: np.ndarray, shift_bins: float) -> np.ndarray:
    """Convolve *pmf* with ``0.5·δ(+c) + 0.5·δ(−c)`` for ``c = shift_bins``.

    *shift_bins* is a (non-negative) real number of grid cells.  An
    off-grid impulse is split across the two adjacent bins with the weight
    chosen to preserve its **second moment** exactly (the pair is
    symmetric, so the mean is zero by construction): with ``c`` between
    bins ``m`` and ``m+1``, weight ``w = (c² − m²) / (2m + 1)`` gives
    ``(1−w)·m² + w·(m+1)² = c²``.  Cursors far below the grid step thus
    contribute their exact mean-square spread instead of being rounded
    away, and the total ISI variance is exact on any grid.
    """
    if shift_bins == 0.0:
        return pmf
    whole = int(np.floor(shift_bins))
    weight = (shift_bins * shift_bins - whole * whole) / (2.0 * whole + 1.0)
    result = np.zeros_like(pmf)
    for bins, mass in ((whole, 1.0 - weight), (whole + 1, weight)):
        if mass <= 0.0:
            continue
        result += (0.5 * mass) * (_shifted(pmf, bins) + _shifted(pmf, -bins))
    return result


@dataclass(frozen=True)
class StatisticalEye:
    """The solved statistical eye: a BER(phase, threshold) surface.

    Attributes
    ----------
    phases_ui:
        Sampling phases inside the unit interval (midpoint grid samples).
    thresholds:
        Decision-threshold voltage grid (victim swing units, 0 = slicer
        midpoint).
    ber:
        ``(len(phases_ui), len(thresholds))`` total BER surface —
        amplitude and timing error mechanisms combined (union bound,
        clipped at 1).
    timing_ber:
        Phase-only timing error probability (the analytic CDR model).
    amplitude_ber:
        Amplitude-only error probability surface.
    main_cursor:
        Main-cursor voltage at each phase (the eye rail position).
    noise_pmf:
        Per-phase probability mass of the ISI + crosstalk (+ Gaussian
        amplitude noise) voltage distribution on :attr:`thresholds`.
    """

    phases_ui: np.ndarray
    thresholds: np.ndarray
    ber: np.ndarray
    timing_ber: np.ndarray
    amplitude_ber: np.ndarray
    main_cursor: np.ndarray
    noise_pmf: np.ndarray = field(repr=False)

    @property
    def phase_step_ui(self) -> float:
        """Spacing of the phase scan."""
        return float(self.phases_ui[1] - self.phases_ui[0])

    def noise_pdf(self, phase_ui: float) -> Pdf:
        """ISI + crosstalk voltage distribution at the phase nearest *phase_ui*.

        Returned as a :class:`repro.jitter.pdf.Pdf` on the voltage grid, so
        the whole time-domain PDF calculus (moments, tail probabilities,
        further convolution) applies to the amplitude domain too.
        """
        index = int(np.argmin(np.abs(self.phases_ui - float(phase_ui))))
        step = float(self.thresholds[1] - self.thresholds[0])
        return Pdf(self.thresholds, self.noise_pmf[index] / step)

    def ber_at(self, phase_ui: float = 0.5, threshold: float = 0.0) -> float:
        """Total BER at one (sampling phase, decision threshold) point."""
        index = int(np.argmin(np.abs(self.phases_ui - float(phase_ui))))
        return float(np.interp(float(threshold), self.thresholds, self.ber[index]))

    def best_operating_point(self, threshold: float = 0.0) -> tuple[float, float]:
        """``(phase_ui, ber)`` of the minimum-BER phase at *threshold*.

        A wide-open eye floors at the same minimum over a whole phase
        span; the reported phase is the centre of the longest such
        plateau (first one on ties — deterministic), so pointing a CDR at
        it leaves margin on both sides instead of sampling at the edge.
        """
        column = int(np.argmin(np.abs(self.thresholds - float(threshold))))
        values = self.ber[:, column]
        minimum = float(values.min())
        at_minimum = np.flatnonzero(values == minimum)
        runs = np.split(at_minimum, np.flatnonzero(np.diff(at_minimum) > 1) + 1)
        plateau = max(runs, key=len)
        index = int(plateau[len(plateau) // 2])
        return float(self.phases_ui[index]), minimum

    def contour(self, target_ber: float = 1.0e-12) -> tuple[np.ndarray, np.ndarray]:
        """Eye contour at *target_ber*: per phase, the passing threshold band.

        Returns ``(lower, upper)`` threshold arrays over :attr:`phases_ui`;
        ``NaN`` where no threshold meets the target (closed eye).
        """
        require_probability("target_ber", target_ber)
        passing = self.ber <= target_ber
        lower = np.full(self.phases_ui.size, np.nan)
        upper = np.full(self.phases_ui.size, np.nan)
        for index in range(self.phases_ui.size):
            columns = np.flatnonzero(passing[index])
            if columns.size:
                lower[index] = self.thresholds[columns[0]]
                upper[index] = self.thresholds[columns[-1]]
        return lower, upper

    def horizontal_opening_ui(self, target_ber: float = 1.0e-12, threshold: float = 0.0) -> float:
        """Width (UI) of the phase span meeting *target_ber* at *threshold*."""
        require_probability("target_ber", target_ber)
        column = int(np.argmin(np.abs(self.thresholds - float(threshold))))
        passing = self.ber[:, column] <= target_ber
        return float(np.count_nonzero(passing)) * self.phase_step_ui

    def vertical_opening(self, target_ber: float = 1.0e-12, phase_ui: float | None = None) -> float:
        """Height (voltage) of the threshold band meeting *target_ber*.

        At the phase nearest *phase_ui*, or the widest band over all
        phases when *phase_ui* is ``None``; zero for a closed eye.
        """
        lower, upper = self.contour(target_ber)
        heights = np.where(np.isnan(lower), 0.0, upper - lower)
        if phase_ui is None:
            return float(heights.max()) if heights.size else 0.0
        index = int(np.argmin(np.abs(self.phases_ui - float(phase_ui))))
        return float(heights[index])


class StatisticalEyeSolver:
    """Builds the statistical eye of one link configuration.

    Parameters
    ----------
    link:
        The victim link (:class:`LinkConfig` or a prepared
        :class:`LinkPath`); its crosstalk population, when present,
        contributes aggressor cursor PDFs.
    budget:
        Jitter environment of the timing (CDR) term.  Defaults to Table 1
        with ``dj_ui_pp = 0`` — deterministic jitter *emerges* from the ISI
        cursor PDF here, so the budget should carry only non-ISI terms
        (random, sinusoidal, oscillator, frequency offset).  Pass
        :meth:`repro.link.LinkPath.jitter_budget` output instead to fold
        the dual-Dirac DDJ fit into the timing walls as well (conservative:
        ISI then counts in both domains).
    run_lengths:
        Line-code run-length statistics of the timing model (default: the
        model's 8b/10b worst case).
    span_ui:
        Pulse-response span; must cover the channel settling tail.
    voltage_step:
        Voltage-grid resolution of the cursor PDF convolution.
    amplitude_noise_rms:
        Optional Gaussian amplitude noise (thermal/reference) convolved
        into every phase's PDF.
    grid_step_ui:
        Time-domain grid resolution of the analytic BER model.
    aggressor_phase:
        ``"asynchronous"`` (default) — each aggressor transmits on its own
        clock, so its cursor PDF is averaged over a uniform phase offset
        within the UI; ``"synchronous"`` — legacy behaviour, aggressor
        cursors sampled at the victim phase.
    timing_model:
        Optional pre-built :class:`GatedOscillatorBerModel` supplying the
        timing term.  The link-training objective shares one model across
        every candidate lineup this way (the timing environment does not
        depend on the equalizers); when given, *budget*, *run_lengths*
        and *grid_step_ui* are ignored for the timing term.
    """

    def __init__(
        self,
        link: LinkConfig | LinkPath | None = None,
        *,
        budget: CdrJitterBudget | None = None,
        run_lengths: RunLengthDistribution | None = None,
        span_ui: int = DEFAULT_SPAN_UI,
        voltage_step: float = 0.01,
        amplitude_noise_rms: float = 0.0,
        grid_step_ui: float = 2.0e-3,
        aggressor_phase: str = "asynchronous",
        timing_model: GatedOscillatorBerModel | None = None,
    ) -> None:
        self.path = link if isinstance(link, LinkPath) else LinkPath(link)
        self.budget = budget if budget is not None else replace(CdrJitterBudget(), dj_ui_pp=0.0)
        self.run_lengths = run_lengths
        self.span_ui = require_positive_int("span_ui", span_ui)
        self.voltage_step = require_positive("voltage_step", voltage_step)
        self.amplitude_noise_rms = float(amplitude_noise_rms)
        self.grid_step_ui = require_positive("grid_step_ui", grid_step_ui)
        if aggressor_phase not in AGGRESSOR_PHASE_MODES:
            raise ValueError(
                f"unknown aggressor_phase {aggressor_phase!r}; expected one "
                f"of {list(AGGRESSOR_PHASE_MODES)}"
            )
        self.aggressor_phase = aggressor_phase
        self.timing_model = timing_model

    # -- cursor extraction ----------------------------------------------------

    def full_pulse_response(self) -> np.ndarray:
        """Victim single-bit response through every linear stage (incl. DFE).

        TX FFE applies in the symbol domain, channel × CTLE through the
        cached equalized pulse response, and a configured DFE subtracts its
        *trained* tap weights over the corresponding post-cursor unit
        intervals (its feedback is piecewise-constant per UI, so the
        subtraction is exact for the adapted weights).
        """
        config = self.path.config
        spu = config.timebase.samples_per_ui
        impulse = np.zeros(self.span_ui)
        impulse[0] = 1.0
        symbols = impulse if config.tx_ffe is None else config.tx_ffe.apply_to_symbols(impulse)
        pulse = self.path.equalized_pulse_response(self.span_ui)
        full = superpose_circular(symbols, pulse, spu)
        if config.dfe is not None:
            weights = self._trained_dfe_weights()
            for offset, weight in enumerate(weights, start=1):
                if offset >= self.span_ui:
                    break
                full[offset * spu : (offset + 1) * spu] -= weight
        return full

    def _trained_dfe_weights(self) -> np.ndarray:
        """Adapt the configured DFE on a PRBS training pattern of the span."""
        from ..datapath.prbs import prbs_sequence

        self.path.received_pattern_waveform(prbs_sequence(7, self.span_ui))
        adaptation = self.path.last_dfe_adaptation
        if adaptation is None:  # pragma: no cover - guarded by config.dfe
            return np.zeros(0)
        return np.asarray(adaptation.weights, dtype=float)

    def cursor_matrix(self) -> np.ndarray:
        """``(span_ui, samples_per_ui)`` victim cursor samples.

        Row ``k`` holds unit interval ``k`` of the full pulse response;
        column ``i`` is one candidate sampling phase (midpoint grid).
        """
        spu = self.path.config.timebase.samples_per_ui
        return self.full_pulse_response().reshape(self.span_ui, spu)

    def aggressor_cursor_matrices(self) -> list[np.ndarray]:
        """Per-aggressor ``(span_ui, samples_per_ui)`` cursor samples."""
        spu = self.path.config.timebase.samples_per_ui
        return [
            pulse.reshape(self.span_ui, spu)
            for pulse in self.path.aggressor_pulse_responses(self.span_ui)
        ]

    # -- solution --------------------------------------------------------------

    def solve(self) -> StatisticalEye:
        """Compute the full BER(phase, threshold) statistical eye."""
        spu = self.path.config.timebase.samples_per_ui
        cursors = self.cursor_matrix()
        aggressors = self.aggressor_cursor_matrices()

        main_row = int(np.argmax(np.max(np.abs(cursors), axis=1)))
        main_cursor = cursors[main_row].copy()
        isi_rows = np.delete(cursors, main_row, axis=0)

        step = self.voltage_step
        # Count only cursor terms that can shift mass at all — an all-zero
        # row (e.g. a zero-amplitude aggressor) must leave the grid, and
        # therefore the solved eye, bit-identical.
        n_cursor_terms = int(np.count_nonzero(np.max(np.abs(isi_rows), axis=1))) + sum(
            int(np.count_nonzero(np.max(np.abs(rows), axis=1))) for rows in aggressors
        )
        worst_case = (
            np.max(np.abs(main_cursor))
            + float(np.sum(np.max(np.abs(isi_rows), axis=1), initial=0.0))
            + sum(float(np.sum(np.max(np.abs(rows), axis=1))) for rows in aggressors)
            + 10.0 * self.amplitude_noise_rms
        )
        # Fractional-shift splitting can push each cursor one bin past its
        # magnitude, so pad the grid by one cell per cursor term.
        half_bins = int(np.ceil(worst_case / step)) + n_cursor_terms + 4
        thresholds = np.arange(-half_bins, half_bins + 1, dtype=float) * step
        n_bins = thresholds.size
        centre = half_bins

        gaussian = None
        if self.amplitude_noise_rms > 0.0:
            weights = np.exp(-0.5 * (thresholds / self.amplitude_noise_rms) ** 2)
            gaussian = weights / weights.sum()

        # Aggressors whose cursor rows are all zero shift no probability
        # mass in either phase mode — skipping them keeps zero-amplitude
        # populations bit-identical to the crosstalk-free solve.
        live_aggressors = [
            rows for rows in aggressors if np.count_nonzero(np.max(np.abs(rows), axis=1))
        ]
        # The averaged PMFs are phase-independent, so the whole population
        # pre-combines into one convolution kernel outside the phase loop.
        aggressor_kernel = None
        if self.aggressor_phase == "asynchronous":
            for rows in live_aggressors:
                pmf = self._phase_averaged_pmf(rows, step, n_bins, centre)
                aggressor_kernel = (
                    pmf
                    if aggressor_kernel is None
                    else np.convolve(aggressor_kernel, pmf, mode="same")
                )

        noise_pmf = np.zeros((spu, n_bins))
        for phase_index in range(spu):
            pmf = np.zeros(n_bins)
            pmf[centre] = 1.0
            cursors_here = np.abs(isi_rows[:, phase_index])
            if self.aggressor_phase == "synchronous":
                for rows in live_aggressors:
                    cursors_here = np.concatenate((cursors_here, np.abs(rows[:, phase_index])))
            # Snap numerically-zero cursors (FFT residue on clean channels,
            # same idiom as the edge extractor's snap_ui) so an ideal
            # channel solves to an exactly error-free amplitude eye.
            cursors_here[cursors_here < _CURSOR_SNAP] = 0.0
            for shift in cursors_here / step:
                pmf = _two_point_convolve(pmf, float(shift))
            if aggressor_kernel is not None:
                pmf = np.convolve(pmf, aggressor_kernel, mode="same")
            if gaussian is not None:
                pmf = np.convolve(pmf, gaussian, mode="same")
            noise_pmf[phase_index] = pmf

        # Amplitude error probability: a transmitted one samples below the
        # threshold, a transmitted zero above it (equiprobable bits).
        cdf = np.cumsum(noise_pmf, axis=1)
        amplitude_ber = np.empty((spu, n_bins))
        for phase_index in range(spu):
            rail = main_cursor[phase_index]
            below_one = np.interp(
                thresholds - rail, thresholds, cdf[phase_index], left=0.0, right=1.0
            )
            below_zero = np.interp(
                thresholds + rail, thresholds, cdf[phase_index], left=0.0, right=1.0
            )
            amplitude_ber[phase_index] = 0.5 * (below_one + (1.0 - below_zero))

        phases_ui = (np.arange(spu) + 0.5) / spu
        model = self.timing_model
        if model is None:
            model = GatedOscillatorBerModel(
                self.budget,
                run_lengths=self.run_lengths,
                grid_step_ui=self.grid_step_ui,
            )
        timing_ber = model.ber_at_phases(phases_ui)

        total = np.clip(timing_ber[:, None] + amplitude_ber, 0.0, 1.0)
        return StatisticalEye(
            phases_ui=phases_ui,
            thresholds=thresholds,
            ber=total,
            timing_ber=timing_ber,
            amplitude_ber=amplitude_ber,
            main_cursor=main_cursor,
            noise_pmf=noise_pmf,
        )

    def _phase_averaged_pmf(
        self, rows: np.ndarray, step: float, n_bins: int, centre: int
    ) -> np.ndarray:
        """One aggressor's cursor PMF averaged over a uniform in-UI offset.

        The aggressor's transmitter is asynchronous to the victim, so the
        phase offset between their unit intervals is uniform over the UI.
        On the circular span grid an offset of ``j`` cells permutes the
        sampled cursor multiset to column ``(i + j) mod spu`` of the
        cursor matrix — the offset average is therefore the
        column-averaged PDF, identical at every victim phase ``i``.
        Amplitude error probability is linear in the noise PMF and
        independent aggressors combine by convolution, so averaging at
        the PDF level (a mixture over offsets) is exact, not an
        approximation.
        """
        columns = rows.shape[1]
        average = np.zeros(n_bins)
        for column in range(columns):
            pmf = np.zeros(n_bins)
            pmf[centre] = 1.0
            cursors = np.abs(rows[:, column])
            cursors[cursors < _CURSOR_SNAP] = 0.0
            for shift in cursors / step:
                pmf = _two_point_convolve(pmf, float(shift))
            average += pmf
        return average / columns


def statistical_eye(link: LinkConfig | LinkPath | None = None, **parameters) -> StatisticalEye:
    """Convenience wrapper: solve the statistical eye of *link* in one call."""
    return StatisticalEyeSolver(link, **parameters).solve()
