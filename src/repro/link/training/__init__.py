"""Adaptive link training: CTLE/FFE co-optimization + DFE adaptation.

Every equalizer lineup elsewhere in the repository is hand-picked; this
package makes the receiver *train* instead, the way a real link does at
bring-up.  Given a channel environment (lossy line, optional crosstalk),
:class:`LinkTrainer` searches the TX-FFE de-emphasis × RX-CTLE peaking
plane with the statistical-eye solver as its fast inner objective
(:class:`StatEyeObjective` — cached, phase-aware, one shared timing
model), refines the coarse winner by deterministic coordinate descent
under a hard evaluation budget (:class:`TrainingBudget`), and adapts the
DFE — data-aided or decision-directed
(``LmsDfe(decision_directed=True)``) — inside every candidate.  The
result is a :class:`TrainedLineup` that drops into any existing scenario
(it carries the ``EqualizerLineup`` attribute surface) and a bit-true
:meth:`LinkTrainer.cross_check` through the existing CDR backends.

Quick start::

    from repro.link import LinkConfig, LossyLineChannel
    from repro.link.training import train_link

    link = LinkConfig(channel=LossyLineChannel.for_loss_at_nyquist(14.0))
    trained = train_link(link)
    print(trained.label, trained.eye.vertical, trained.eye.horizontal_ui)
    result_config = trained.apply(link)   # ready for LinkCdrChannel & co.
"""

from .objective import EyeScore, StatEyeObjective
from .search import (
    LinkTrainer,
    TrainedLineup,
    TrainingBudget,
    TrainingCrossCheck,
    train_link,
)

__all__ = [
    "EyeScore",
    "StatEyeObjective",
    "LinkTrainer",
    "TrainedLineup",
    "TrainingBudget",
    "TrainingCrossCheck",
    "train_link",
]
