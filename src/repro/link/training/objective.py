"""Statistical-eye training objective: a cached, phase-aware lineup cost.

Link training needs to rank hundreds of candidate equalizer lineups per
channel; bit-true simulation cannot score any of them at the BER targets
that matter (see :mod:`repro.link.stateye`), and re-solving the timing
term per candidate would waste the one part of the eye that equalizers
cannot change.  :class:`StatEyeObjective` therefore wraps
:class:`~repro.link.stateye.StatisticalEyeSolver` into a cost function
with two invariants:

* **cached** — every solved lineup is memoised by its (hashable) equalizer
  stages, so the grid phase and the coordinate-descent phase of the search
  never pay twice for the same point, and only cache *misses* count
  against the training budget;
* **phase-aware** — the score is taken from the full BER(phase, threshold)
  surface: the horizontal opening at the slicer midpoint, the widest
  vertical opening over all sampling phases, and the BER at the best
  operating phase (which the score records, so a trained lineup knows
  where its CDR should sample).

By default the objective also folds each candidate's **data-dependent
jitter** (the dual-Dirac fit of its edge displacements,
:meth:`repro.link.LinkPath.jitter_budget`) into the timing walls.
Without it, an over-peaked CTLE wins on vertical opening while quietly
displacing edges — a lineup a real bit-true receiver times *worse* on;
folding is the repository's established conservative hand-off (ISI then
counts in both domains).  With ``fold_ddj=False`` the objective scores
the amplitude domain only, and one
:class:`~repro.statistical.ber_model.GatedOscillatorBerModel` is built
lazily and shared across every candidate, since the timing environment
is then equalizer-independent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ... import telemetry
from ..._validation import require_in_range, require_non_negative
from ...datapath.cid import RunLengthDistribution
from ...datapath.prbs import prbs_sequence
from ...statistical.ber_model import CdrJitterBudget, GatedOscillatorBerModel
from ..equalization import LmsDfe, RxCtle, TxFfe
from ..path import LinkConfig, LinkPath
from ..stateye import StatisticalEye, StatisticalEyeSolver

__all__ = ["EyeScore", "StatEyeObjective"]

#: BER below this contributes no further score — the -log10 term saturates.
_BER_FLOOR = 1.0e-30


@dataclass(frozen=True)
class EyeScore:
    """Phase-aware figure of merit of one equalizer lineup.

    Attributes
    ----------
    horizontal_ui / vertical:
        Eye openings at the objective's target BER: the phase span passing
        at the slicer midpoint, and the widest threshold band over all
        sampling phases (the statistical-eye metrics the acceptance tests
        pin).
    ber:
        Total BER at the best operating phase (midpoint threshold).
    ber_nominal:
        Total BER at the nominal 0.5 UI sampling phase — the number the
        bit-true cross-check compares against.
    best_phase_ui:
        The minimum-BER sampling phase, recorded so a trained lineup
        carries its preferred CDR operating point.
    score:
        The scalar the search maximises: openings first, with a small
        saturating ``-log10(BER)`` term so closed-eye candidates still
        rank by how close they are to opening.
    """

    horizontal_ui: float
    vertical: float
    ber: float
    ber_nominal: float
    best_phase_ui: float
    score: float


class StatEyeObjective:
    """Score equalizer lineups on one channel via the statistical eye.

    Parameters
    ----------
    link:
        The channel environment being trained: its channel model,
        crosstalk population and timebase are kept, while the equalizer
        stages are replaced per candidate.
    budget / run_lengths / grid_step_ui:
        Timing environment handed to the shared
        :class:`GatedOscillatorBerModel` (same semantics as
        :class:`~repro.link.stateye.StatisticalEyeSolver`).
    target_ber:
        BER at which the eye openings are extracted.
    horizontal_weight:
        Weight of the horizontal opening (UI) against the vertical opening
        (victim-swing units) in the scalar score.
    ber_weight:
        Weight of the saturating ``-log10(BER)`` tiebreak term that ranks
        closed-eye candidates.
    fold_ddj:
        Fold each candidate's dual-Dirac DDJ fit into its timing budget
        (default).  ``False`` scores the amplitude domain only and shares
        one timing model across all candidates.
    ddj_pattern_bits:
        Pattern whose edge displacements feed the DDJ fit (default: one
        PRBS7 period, the repository's reference stimulus).
    solver_options:
        Extra keyword arguments forwarded to every
        :class:`StatisticalEyeSolver` (``span_ui``, ``voltage_step``,
        ``amplitude_noise_rms``, ``aggressor_phase``).
    """

    def __init__(
        self,
        link: LinkConfig | None = None,
        *,
        budget: CdrJitterBudget | None = None,
        run_lengths: RunLengthDistribution | None = None,
        target_ber: float = 1.0e-12,
        horizontal_weight: float = 1.0,
        ber_weight: float = 0.01,
        fold_ddj: bool = True,
        ddj_pattern_bits: np.ndarray | None = None,
        grid_step_ui: float = 2.0e-3,
        solver_options: dict | None = None,
    ) -> None:
        self.link = link if link is not None else LinkConfig()
        self.budget = budget
        self.run_lengths = run_lengths
        require_in_range("target_ber", target_ber, 0.0, 1.0, inclusive=False)
        self.target_ber = target_ber
        require_non_negative("horizontal_weight", horizontal_weight)
        require_non_negative("ber_weight", ber_weight)
        self.horizontal_weight = horizontal_weight
        self.ber_weight = ber_weight
        self.fold_ddj = fold_ddj
        self.ddj_pattern_bits = (
            prbs_sequence(7, 127)
            if ddj_pattern_bits is None
            else np.asarray(ddj_pattern_bits, dtype=np.uint8).ravel()
        )
        self.grid_step_ui = grid_step_ui
        self.solver_options = dict(solver_options or {})
        self._timing_model: GatedOscillatorBerModel | None = None
        self._cache: dict[tuple, EyeScore] = {}
        self._evaluations = 0

    @property
    def evaluations(self) -> int:
        """Number of statistical-eye solves so far (cache hits are free)."""
        return self._evaluations

    def lineup_config(
        self, tx_ffe: TxFfe | None, rx_ctle: RxCtle | None, dfe: LmsDfe | None
    ) -> LinkConfig:
        """The candidate's full link configuration on this objective's channel."""
        return self.link.with_equalization(tx_ffe=tx_ffe, rx_ctle=rx_ctle, dfe=dfe)

    def _base_budget(self) -> CdrJitterBudget:
        if self.budget is not None:
            return self.budget
        # Match the solver's default: deterministic jitter emerges from
        # the ISI cursor PDF, so the base budget carries none.
        from dataclasses import replace

        return replace(CdrJitterBudget(), dj_ui_pp=0.0)

    def _shared_timing_model(self) -> GatedOscillatorBerModel:
        if self._timing_model is None:
            self._timing_model = GatedOscillatorBerModel(
                self._base_budget(),
                run_lengths=self.run_lengths,
                grid_step_ui=self.grid_step_ui,
            )
        return self._timing_model

    def solve(
        self, tx_ffe: TxFfe | None, rx_ctle: RxCtle | None, dfe: LmsDfe | None
    ) -> StatisticalEye:
        """Solve the candidate's statistical eye (uncached, full surface)."""
        path = LinkPath(self.lineup_config(tx_ffe, rx_ctle, dfe))
        if not self.fold_ddj:
            return StatisticalEyeSolver(
                path,
                timing_model=self._shared_timing_model(),
                **self.solver_options,
            ).solve()
        budget = path.jitter_budget(self.ddj_pattern_bits, base_budget=self._base_budget())
        return StatisticalEyeSolver(
            path,
            budget=budget,
            run_lengths=self.run_lengths,
            grid_step_ui=self.grid_step_ui,
            **self.solver_options,
        ).solve()

    def evaluate(
        self, tx_ffe: TxFfe | None, rx_ctle: RxCtle | None, dfe: LmsDfe | None
    ) -> EyeScore:
        """Score one candidate lineup, memoised by its equalizer stages."""
        key = (tx_ffe, rx_ctle, dfe)
        tracer = telemetry.ACTIVE
        cached = self._cache.get(key)
        if cached is not None:
            if tracer:
                tracer.count("stateye.objective_cache.hits")
            return cached
        if tracer:
            tracer.count("stateye.objective_cache.misses")
        with tracer.span("stateye.solve"):
            eye = self.solve(tx_ffe, rx_ctle, dfe)
        self._evaluations += 1
        score = self.score_eye(eye)
        self._cache[key] = score
        return score

    def score_eye(self, eye: StatisticalEye) -> EyeScore:
        """Reduce a solved surface to the phase-aware scalar score."""
        horizontal = eye.horizontal_opening_ui(self.target_ber)
        vertical = eye.vertical_opening(self.target_ber)
        best_phase, ber = eye.best_operating_point()
        score = (
            vertical
            + self.horizontal_weight * horizontal
            + self.ber_weight * min(30.0, -math.log10(max(ber, _BER_FLOOR)))
        )
        return EyeScore(
            horizontal_ui=horizontal,
            vertical=vertical,
            ber=ber,
            ber_nominal=eye.ber_at(0.5, 0.0),
            best_phase_ui=best_phase,
            score=score,
        )
