"""Deterministic, budget-capped search over the de-emphasis × peaking plane.

The search mirrors what a real link-training handshake does (PyBERT's
TX/RX co-optimization): sweep a coarse grid of TX-FFE de-emphasis and
RX-CTLE peaking values against an eye metric, then refine around the best
point.  Here the metric is the cached statistical-eye objective
(:class:`~repro.link.training.objective.StatEyeObjective`), the
refinement is coordinate descent with geometrically shrinking steps, and
every step is deterministic: candidates are visited in a fixed order, a
move needs a *strictly* better score, and nothing draws randomness — so
the same channel always trains to the same :class:`TrainedLineup`, on any
sweep worker.

The trained lineup carries the same ``label`` / ``tx_ffe`` / ``rx_ctle``
/ ``dfe`` surface as :class:`repro.experiments.EqualizerLineup`, so it
drops straight onto an ``"equalization"`` parameter axis, and
:meth:`TrainedLineup.apply` grafts it onto any :class:`LinkConfig`.
:meth:`LinkTrainer.cross_check` closes the loop with a bit-true run
through the existing CDR backends, pinning the statistical objective
against counted errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ... import telemetry
from ..._validation import require_non_negative, require_positive_int
from ...datapath.cid import RunLengthDistribution
from ...datapath.prbs import prbs_sequence, sequence_period
from ...statistical.ber_model import CdrJitterBudget
from ..equalization import DfeAdaptation, LmsDfe, RxCtle, TxFfe
from ..path import LinkCdrChannel, LinkConfig, LinkPath
from ..stateye import DEFAULT_SPAN_UI
from .objective import EyeScore, StatEyeObjective

__all__ = [
    "TrainingBudget",
    "TrainedLineup",
    "TrainingCrossCheck",
    "LinkTrainer",
    "train_link",
]


@dataclass(frozen=True)
class TrainingBudget:
    """Shape and cost cap of one link-training search (picklable axis unit).

    Attributes
    ----------
    tx_post_db / ctle_peaking_db:
        The coarse grid: TX-FFE post-cursor de-emphasis depths and RX-CTLE
        peaking magnitudes (dB), visited row-major.
    refine_rounds:
        Coordinate-descent rounds around the coarse winner; each round
        probes ``± step`` on both axes and then shrinks the step by
        *refine_shrink*.  Zero disables refinement (pure grid search).
    refine_shrink:
        Step-shrink factor per refinement round (0 < shrink < 1).
    max_evaluations:
        Hard cap on statistical-eye solves spent *searching*; the fixed
        baseline's seed solve is not counted and cache hits are free.
        The search stops cleanly at the cap with the best lineup found so
        far (the ``training_budget`` sweep axis varies exactly this knob).
    """

    tx_post_db: tuple[float, ...] = (0.0, 2.0, 3.5, 6.0)
    ctle_peaking_db: tuple[float, ...] = (0.0, 3.0, 6.0, 9.0)
    refine_rounds: int = 3
    refine_shrink: float = 0.5
    max_evaluations: int = 48

    def __post_init__(self) -> None:
        object.__setattr__(self, "tx_post_db", tuple(float(v) for v in self.tx_post_db))
        object.__setattr__(self, "ctle_peaking_db", tuple(float(v) for v in self.ctle_peaking_db))
        if not self.tx_post_db or not self.ctle_peaking_db:
            raise ValueError("coarse grid axes must not be empty")
        for name, values in (
            ("tx_post_db", self.tx_post_db), ("ctle_peaking_db", self.ctle_peaking_db)
        ):
            for value in values:
                require_non_negative(name, value)
        require_non_negative("refine_rounds", self.refine_rounds)
        if not 0.0 < self.refine_shrink < 1.0:
            raise ValueError("refine_shrink must lie strictly in (0, 1)")
        require_positive_int("max_evaluations", self.max_evaluations)

    def with_max_evaluations(self, max_evaluations: int) -> "TrainingBudget":
        """Return a copy with the evaluation cap replaced (the sweep axis)."""
        from dataclasses import replace

        return replace(self, max_evaluations=int(max_evaluations))

    def initial_step(self, values: tuple[float, ...]) -> float:
        """First refinement step of one axis: half the mean grid spacing."""
        if len(values) < 2:
            return 1.0
        return 0.5 * (max(values) - min(values)) / (len(values) - 1)


@dataclass(frozen=True)
class TrainedLineup:
    """The converged result of one link-training run.

    Exposes the :class:`repro.experiments.EqualizerLineup` attribute
    surface (``label`` / ``tx_ffe`` / ``rx_ctle`` / ``dfe``), so it can be
    placed directly on an ``"equalization"`` parameter axis or converted
    with ``EqualizerLineup.from_trained``.

    Attributes
    ----------
    tx_post_db / ctle_peaking_db:
        The trained coordinates in the search plane; ``None`` when the
        link's own fixed lineup beat every searched candidate and was
        kept (its stages need not lie in the de-emphasis × peaking
        plane at all).
    eye:
        Phase-aware score of the trained lineup.
    coarse_tx_post_db / coarse_ctle_peaking_db / coarse_eye:
        The best *fixed* lineup of the coarse grid — the baseline the
        refinement must beat (the acceptance criterion compares these).
    dfe_weights:
        Adapted feedback tap weights of the trained configuration (empty
        tuple when no DFE is configured).
    dfe_adaptation:
        Full adaptation record (convergence + decision-error diagnostics
        in decision-directed mode); ``None`` without a DFE.
    n_evaluations:
        Total statistical-eye solves spent (baseline seed + search; the
        search share is capped by the budget).
    """

    label: str
    tx_ffe: TxFfe | None
    rx_ctle: RxCtle | None
    dfe: LmsDfe | None
    tx_post_db: float | None
    ctle_peaking_db: float | None
    eye: EyeScore
    coarse_tx_post_db: float
    coarse_ctle_peaking_db: float
    coarse_eye: EyeScore
    dfe_weights: tuple[float, ...]
    n_evaluations: int
    dfe_adaptation: DfeAdaptation | None = field(default=None, repr=False, compare=False)

    def apply(self, link: LinkConfig) -> LinkConfig:
        """Graft the trained equalizer stages onto *link* (channel kept)."""
        return link.with_equalization(tx_ffe=self.tx_ffe, rx_ctle=self.rx_ctle, dfe=self.dfe)


@dataclass(frozen=True)
class TrainingCrossCheck:
    """Bit-true validation of a trained lineup against its objective.

    ``predicted_ber`` is the statistical eye's total BER at the nominal
    0.5 UI sampling phase.  The bit-true run reports both the raw bit
    mismatches (``errors`` / ``measured_ber``) and the *error events*
    (``error_events`` — contiguous mismatch bursts): a sampling overshoot
    books ~2 adjacent mismatches while the analytic model counts one
    event, so the agreement band compares per-event rates.
    """

    errors: int
    error_events: int
    compared_bits: int
    measured_ber: float
    predicted_ber: float
    backend: str

    @property
    def event_rate(self) -> float:
        """Measured error events per compared bit."""
        if self.compared_bits == 0:
            return float("nan")
        return self.error_events / self.compared_bits

    @property
    def ratio(self) -> float:
        """predicted BER / measured event rate (inf when nothing measured)."""
        if self.error_events > 0:
            return self.predicted_ber / self.event_rate
        return float("inf")

    def within(self, band: float = 2.0) -> bool:
        """True when the two views agree within a factor of *band*.

        With zero counted events the run can only bound the rate from
        above, so agreement then means the prediction sits below *band*
        times the resolution limit of the run (one event).  A run that
        compared no bits at all measured nothing and never agrees.
        """
        if self.compared_bits == 0:
            return False
        if self.error_events == 0:
            return self.predicted_ber <= band / self.compared_bits
        return self.event_rate / band <= self.predicted_ber <= self.event_rate * band


class LinkTrainer:
    """Train TX-FFE / RX-CTLE / DFE for one channel environment.

    Parameters
    ----------
    link:
        The channel environment (channel model, crosstalk, timebase).  Its
        own equalizer stages are *not* part of the search — they define
        the fixed baseline that :meth:`score_fixed` reports.
    training:
        Search shape and budget (default :class:`TrainingBudget`).
    dfe:
        DFE specification adapted inside every candidate (``None``
        disables the stage; pass ``LmsDfe(decision_directed=True)`` for
        blind adaptation).  Defaults to the link's own DFE stage.
    budget / run_lengths / target_ber / objective_options:
        Forwarded to :class:`StatEyeObjective`.
    """

    def __init__(
        self,
        link: LinkConfig | None = None,
        *,
        training: TrainingBudget | None = None,
        dfe: LmsDfe | None = None,
        budget: CdrJitterBudget | None = None,
        run_lengths: RunLengthDistribution | None = None,
        target_ber: float = 1.0e-12,
        objective_options: dict | None = None,
    ) -> None:
        self.link = link if link is not None else LinkConfig()
        self.training = training if training is not None else TrainingBudget()
        self.dfe = dfe if dfe is not None else self.link.dfe
        self.objective = StatEyeObjective(
            self.link,
            budget=budget,
            run_lengths=run_lengths,
            target_ber=target_ber,
            **(objective_options or {}),
        )
        # The CTLE's peak frequency / bandwidth come from the link's own
        # stage when it has one, so training only moves the peaking knob.
        self._base_ctle = self.link.rx_ctle if self.link.rx_ctle is not None else RxCtle()
        # Evaluations already spent when the search proper starts (the
        # baseline seed solve is exempt from the budget); set by train().
        self._search_base = 0

    # -- candidate construction ------------------------------------------------

    def candidate_stages(
        self, tx_post_db: float, ctle_peaking_db: float
    ) -> tuple[TxFfe | None, RxCtle | None, LmsDfe | None]:
        """The equalizer stages at one point of the search plane.

        Zero de-emphasis means *no* FFE stage (not a degenerate one-tap
        filter), matching the ablation sweeps' "unequalized" lineups.
        """
        tx_ffe = TxFfe.de_emphasis(post_db=tx_post_db) if tx_post_db > 0.0 else None
        rx_ctle = self._base_ctle.with_peaking(ctle_peaking_db)
        return tx_ffe, rx_ctle, self.dfe

    def _evaluate(self, tx_post_db: float, ctle_peaking_db: float) -> EyeScore:
        tracer = telemetry.ACTIVE
        if tracer:
            tracer.count("training.search_iterations")
        return self.objective.evaluate(*self.candidate_stages(tx_post_db, ctle_peaking_db))

    def _exhausted(self) -> bool:
        return self.objective.evaluations - self._search_base >= self.training.max_evaluations

    # -- the search ------------------------------------------------------------

    def train(self) -> TrainedLineup:
        """Coarse grid + coordinate descent; returns the trained lineup.

        The link's own fixed lineup is scored first (seeding the objective
        cache, outside the search budget) and kept when nothing searched
        beats it, so training never returns a lineup that scores below the
        baseline it started from — even when the baseline lies outside the
        de-emphasis × peaking plane or the budget is too tight to reach
        it.
        """
        tracer = telemetry.ACTIVE
        if not tracer:
            return self._train()
        with tracer.span("training.train"):
            lineup = self._train()
        tracer.count("training.runs")
        return lineup

    def _train(self) -> TrainedLineup:
        plan = self.training
        baseline = self.score_fixed()
        self._search_base = self.objective.evaluations

        best: tuple[float, float, EyeScore] | None = None
        for tx_post_db in plan.tx_post_db:
            for ctle_peaking_db in plan.ctle_peaking_db:
                if best is not None and self._exhausted():
                    break
                score = self._evaluate(tx_post_db, ctle_peaking_db)
                if best is None or score.score > best[2].score:
                    best = (tx_post_db, ctle_peaking_db, score)
        assert best is not None  # the grid is never empty
        coarse = best

        step_tx = plan.initial_step(plan.tx_post_db)
        step_ctle = plan.initial_step(plan.ctle_peaking_db)
        for _ in range(plan.refine_rounds):
            for axis in (0, 1):
                step = step_tx if axis == 0 else step_ctle
                for direction in (-1.0, +1.0):
                    if self._exhausted():
                        break
                    candidate = [best[0], best[1]]
                    candidate[axis] = max(0.0, candidate[axis] + direction * step)
                    score = self._evaluate(candidate[0], candidate[1])
                    if score.score > best[2].score:
                        best = (candidate[0], candidate[1], score)
            step_tx *= plan.refine_shrink
            step_ctle *= plan.refine_shrink

        if baseline.score > best[2].score:
            return self._finalise_stages(
                "trained(baseline kept)",
                self.link.tx_ffe,
                self.link.rx_ctle,
                self.link.dfe,
                None,
                None,
                baseline,
                coarse,
            )
        tx_ffe, rx_ctle, dfe = self.candidate_stages(best[0], best[1])
        label = f"trained(post={best[0]:g}dB, peak={best[1]:g}dB)"
        return self._finalise_stages(label, tx_ffe, rx_ctle, dfe, best[0], best[1], best[2], coarse)

    def _finalise_stages(
        self,
        label: str,
        tx_ffe: TxFfe | None,
        rx_ctle: RxCtle | None,
        dfe: LmsDfe | None,
        tx_post_db: float | None,
        ctle_peaking_db: float | None,
        eye: EyeScore,
        coarse: tuple[float, float, EyeScore],
    ) -> TrainedLineup:
        """Adapt the winning lineup's DFE and assemble the result.

        The adaptation replays exactly what the statistical-eye solver
        trained on (a PRBS7 pattern over the solver span), so the
        recorded weights are the ones behind the winning score.
        """
        weights: tuple[float, ...] = ()
        adaptation = None
        if dfe is not None:
            path = LinkPath(self.objective.lineup_config(tx_ffe, rx_ctle, dfe))
            span = self.objective.solver_options.get("span_ui", DEFAULT_SPAN_UI)
            path.received_pattern_waveform(prbs_sequence(7, span))
            adaptation = path.last_dfe_adaptation
            if adaptation is not None:
                weights = tuple(float(w) for w in adaptation.weights)
        return TrainedLineup(
            label=label,
            tx_ffe=tx_ffe,
            rx_ctle=rx_ctle,
            dfe=dfe,
            tx_post_db=tx_post_db,
            ctle_peaking_db=ctle_peaking_db,
            eye=eye,
            coarse_tx_post_db=coarse[0],
            coarse_ctle_peaking_db=coarse[1],
            coarse_eye=coarse[2],
            dfe_weights=weights,
            n_evaluations=self.objective.evaluations,
            dfe_adaptation=adaptation,
        )

    # -- baselines and validation ---------------------------------------------

    def score_fixed(self) -> EyeScore:
        """Score of the link's own (fixed, hand-picked) equalizer lineup."""
        return self.objective.evaluate(self.link.tx_ffe, self.link.rx_ctle, self.link.dfe)

    def cross_check(
        self,
        trained: TrainedLineup,
        *,
        config=None,
        jitter=None,
        n_bits: int = 20000,
        prbs_order: int = 7,
        seed: int = 3,
        backend: str = "auto",
    ) -> TrainingCrossCheck:
        """Bit-true cross-check of the trained lineup through a CDR backend.

        The trained link drives the selected backend over a PRBS stream
        and the counted BER is compared with the statistical objective's
        prediction at the nominal sampling phase.  The caller is
        responsible for keeping *config* and *jitter* consistent with the
        objective's timing budget (same frequency offset / oscillator
        jitter / residual RJ), exactly as the stateye cross-validation
        tests do.
        """
        channel = LinkCdrChannel(trained.apply(self.link), config=config, backend=backend)
        result = channel.run(
            prbs_sequence(prbs_order, n_bits),
            jitter=jitter,
            rng=np.random.default_rng(seed),
            pattern_period=sequence_period(prbs_order),
        )
        measurement = result.ber()
        measured = (
            measurement.errors / measurement.compared_bits
            if measurement.compared_bits
            else float("nan")
        )
        return TrainingCrossCheck(
            errors=int(measurement.errors),
            error_events=result.error_events(),
            compared_bits=int(measurement.compared_bits),
            measured_ber=float(measured),
            predicted_ber=trained.eye.ber_nominal,
            backend=channel.backend,
        )


def train_link(link: LinkConfig | None = None, **parameters) -> TrainedLineup:
    """Convenience wrapper: train *link*'s equalizers in one call."""
    return LinkTrainer(link, **parameters).train()
