"""Waveform-level link front end: lossy channel + equalization → CDR edges.

The paper abstracts the receiver's input jitter into Table 1; this package
grounds it physically.  A transmitted bit sequence passes through a
parameterized lossy channel (:mod:`~repro.link.channel`), optional TX/RX
equalization (:mod:`~repro.link.equalization`), fast pulse-response ISI
superposition (:mod:`~repro.link.isi`) and threshold-crossing extraction
(:mod:`~repro.link.edges`), producing the
:class:`~repro.datapath.nrz.NrzEdgeStream` the existing CDR engines —
event kernel and fast path alike — consume unmodified.  Residual random /
sinusoidal jitter from a :class:`~repro.datapath.nrz.JitterSpec` composes
on top, so every Table 1 scenario remains expressible while deterministic
jitter now *emerges* from channel ISI.

Quick start::

    from repro.link import LinkCdrChannel, LinkConfig, LossyLineChannel, RxCtle
    from repro.datapath import prbs_sequence

    link = LinkConfig(channel=LossyLineChannel.for_loss_at_nyquist(6.0),
                      rx_ctle=RxCtle(peaking_db=6.0))
    result = LinkCdrChannel(link, backend="fast").run(
        prbs_sequence(7, 2000), pattern_period=127)
    print(result.ber().ber)
"""

from .timebase import LinkTimebase
from .channel import (
    ButterworthChannel,
    ChannelModel,
    IdealChannel,
    LossyLineChannel,
    SinglePoleChannel,
)
from .equalization import DfeAdaptation, ErrorPropagation, LmsDfe, RxCtle, TxFfe
from .isi import (
    nrz_symbol_levels,
    superpose_circular,
    superpose_linear,
    upsample_symbols,
)
from .edges import (
    circular_transition_positions,
    edge_stream_from_waveform,
    match_crossings_ui,
    pattern_displacements_ui,
)
from .crosstalk import AGGRESSOR_KINDS, CrosstalkAggressor, CrosstalkSpec
from .path import LinkCdrChannel, LinkConfig, LinkPath, stream_eye_diagram
from .stateye import (
    AGGRESSOR_PHASE_MODES,
    StatisticalEye,
    StatisticalEyeSolver,
    statistical_eye,
)
from .training import (
    EyeScore,
    LinkTrainer,
    StatEyeObjective,
    TrainedLineup,
    TrainingBudget,
    TrainingCrossCheck,
    train_link,
)

__all__ = [
    "LinkTimebase",
    "ChannelModel",
    "IdealChannel",
    "SinglePoleChannel",
    "ButterworthChannel",
    "LossyLineChannel",
    "TxFfe",
    "RxCtle",
    "LmsDfe",
    "DfeAdaptation",
    "ErrorPropagation",
    "nrz_symbol_levels",
    "upsample_symbols",
    "superpose_circular",
    "superpose_linear",
    "circular_transition_positions",
    "match_crossings_ui",
    "pattern_displacements_ui",
    "edge_stream_from_waveform",
    "AGGRESSOR_KINDS",
    "CrosstalkAggressor",
    "CrosstalkSpec",
    "LinkCdrChannel",
    "LinkConfig",
    "LinkPath",
    "stream_eye_diagram",
    "AGGRESSOR_PHASE_MODES",
    "StatisticalEye",
    "StatisticalEyeSolver",
    "statistical_eye",
    "EyeScore",
    "StatEyeObjective",
    "LinkTrainer",
    "TrainedLineup",
    "TrainingBudget",
    "TrainingCrossCheck",
    "train_link",
]
