"""Shared sampling grid of the waveform-level link path.

Everything in :mod:`repro.link` — channel responses, equalizer responses,
ISI superposition, threshold-crossing extraction — is computed on one
uniform grid described by :class:`LinkTimebase`: ``samples_per_ui`` samples
per unit interval at the nominal bit rate.

The grid uses the **midpoint convention**: sample ``i`` represents the
waveform value at ``(i + 0.5) * sample_period``.  An NRZ transition at a
bit boundary then falls exactly halfway between the two bracketing samples,
so linear interpolation of the threshold crossing recovers the boundary
time exactly — the property the ideal-channel round-trip test
(``tests/link/test_edges.py``) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from .._validation import require_positive, require_positive_int

__all__ = ["LinkTimebase"]


@dataclass(frozen=True)
class LinkTimebase:
    """Uniform sampling grid shared by all link-path computations.

    Attributes
    ----------
    bit_rate_hz:
        Nominal data rate; one unit interval is ``1 / bit_rate_hz``.
    samples_per_ui:
        Samples per unit interval.  32 resolves crossing times to
        ~0.016 UI before interpolation; the interpolated resolution is far
        finer on band-limited waveforms.
    """

    bit_rate_hz: float = units.DEFAULT_BIT_RATE
    samples_per_ui: int = 32

    def __post_init__(self) -> None:
        require_positive("bit_rate_hz", self.bit_rate_hz)
        require_positive_int("samples_per_ui", self.samples_per_ui)

    @property
    def unit_interval_s(self) -> float:
        """Nominal bit period."""
        return 1.0 / self.bit_rate_hz

    @property
    def sample_period_s(self) -> float:
        """Spacing of the sampling grid."""
        return self.unit_interval_s / self.samples_per_ui

    @property
    def nyquist_frequency_hz(self) -> float:
        """Half the bit rate — the fundamental of the 0101... pattern."""
        return 0.5 * self.bit_rate_hz

    def n_samples(self, n_ui: int) -> int:
        """Number of grid samples spanning *n_ui* unit intervals."""
        require_positive_int("n_ui", n_ui)
        return n_ui * self.samples_per_ui

    def time_axis_s(self, n_ui: int, start_time_s: float = 0.0) -> np.ndarray:
        """Midpoint sample times covering *n_ui* unit intervals."""
        count = self.n_samples(n_ui)
        return start_time_s + (np.arange(count) + 0.5) * self.sample_period_s

    def frequencies_hz(self, n_samples: int) -> np.ndarray:
        """Real-FFT frequency grid matching an *n_samples*-point waveform."""
        require_positive_int("n_samples", n_samples)
        return np.fft.rfftfreq(n_samples, d=self.sample_period_s)
