"""Shared multi-channel PLL: behavioural components, loop simulation, mismatch."""

from .components import (
    ChargePump,
    CurrentControlledOscillator,
    PhaseFrequencyDetector,
    SecondOrderLoopFilter,
)
from .pll import ChannelBiasMismatch, PllConfig, PllSimulationResult, SharedPll

__all__ = [
    "ChargePump",
    "CurrentControlledOscillator",
    "PhaseFrequencyDetector",
    "SecondOrderLoopFilter",
    "ChannelBiasMismatch",
    "PllConfig",
    "PllSimulationResult",
    "SharedPll",
]
