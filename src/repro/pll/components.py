"""Behavioural building blocks of the shared multi-channel PLL.

The multi-channel receiver (paper Figure 6) contains a single shared PLL that
multiplies a low-frequency crystal reference (LFCK) up to the bit-rate clock
(HFCK) using a current-controlled oscillator, and distributes a copy of the
CCO control current to the matched gated oscillators in every channel.

These are *behavioural*, phase-domain component models: the phase-frequency
detector works on phase error, the charge pump converts it to a current, the
loop filter integrates it, and the CCO turns the control current into a
frequency.  They are deliberately simple (the PLL is a substrate, not the
paper's contribution) but carry the parameters that matter downstream: loop
bandwidth, damping, CCO gain, and the control current handed to the channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import require_non_negative, require_positive

__all__ = [
    "PhaseFrequencyDetector",
    "ChargePump",
    "SecondOrderLoopFilter",
    "CurrentControlledOscillator",
]


@dataclass
class PhaseFrequencyDetector:
    """Linear phase-frequency detector.

    Outputs the phase error (radians) between reference and feedback, clamped
    to ±2π to model the limited range of a real tri-state PFD.
    """

    gain: float = 1.0

    def __post_init__(self) -> None:
        require_positive("gain", self.gain)

    def phase_error(self, reference_phase_rad: float, feedback_phase_rad: float) -> float:
        """Clamped phase error between the reference and the divided CCO clock."""
        error = reference_phase_rad - feedback_phase_rad
        limit = 2.0 * math.pi
        return self.gain * max(-limit, min(limit, error))


@dataclass
class ChargePump:
    """Charge pump converting a phase error into a control current.

    ``current = I_cp * error / (2 * pi)`` plus a static mismatch term modelling
    the up/down current imbalance (which produces a static phase offset).
    """

    pump_current_a: float = 50.0e-6
    mismatch_fraction: float = 0.0

    def __post_init__(self) -> None:
        require_positive("pump_current_a", self.pump_current_a)
        require_non_negative("mismatch_fraction", abs(self.mismatch_fraction))

    def output_current(self, phase_error_rad: float) -> float:
        """Average charge-pump current for a given phase error."""
        nominal = self.pump_current_a * phase_error_rad / (2.0 * math.pi)
        return nominal * (1.0 + self.mismatch_fraction)


@dataclass
class SecondOrderLoopFilter:
    """Series R-C plus shunt C loop filter (the classic type-II PLL filter).

    State is the voltage on the main integrating capacitor plus the ripple
    capacitor voltage; the filter integrates the charge-pump current and
    produces the CCO control voltage (converted to a control current by the
    V-to-I stage folded into ``transconductance_s``).
    """

    resistance_ohm: float = 10.0e3
    capacitance_f: float = 200.0e-12
    ripple_capacitance_f: float = 20.0e-12
    transconductance_s: float = 200.0e-6

    def __post_init__(self) -> None:
        require_positive("resistance_ohm", self.resistance_ohm)
        require_positive("capacitance_f", self.capacitance_f)
        require_positive("ripple_capacitance_f", self.ripple_capacitance_f)
        require_positive("transconductance_s", self.transconductance_s)
        self._integrator_v = 0.0
        self._ripple_v = 0.0

    @property
    def control_voltage_v(self) -> float:
        """Present control voltage at the filter output."""
        return self._ripple_v

    def reset(self, voltage_v: float = 0.0) -> None:
        """Reset the filter state (e.g. to a pre-charge value)."""
        self._integrator_v = voltage_v
        self._ripple_v = voltage_v

    def update(self, input_current_a: float, time_step_s: float) -> float:
        """Advance the filter by one time step; return the new control voltage."""
        require_positive("time_step_s", time_step_s)
        # Integrating capacitor.
        self._integrator_v += input_current_a * time_step_s / self.capacitance_f
        # Proportional path plus ripple pole.
        target_v = self._integrator_v + input_current_a * self.resistance_ohm
        pole_tau = self.resistance_ohm * self.ripple_capacitance_f
        alpha = 1.0 - math.exp(-time_step_s / pole_tau)
        self._ripple_v += (target_v - self._ripple_v) * alpha
        return self._ripple_v

    def control_current_a(self) -> float:
        """Control current handed to the CCOs (local and per-channel copies)."""
        return self.transconductance_s * self._ripple_v


@dataclass
class CurrentControlledOscillator:
    """Behavioural CCO: frequency linear in the control current."""

    free_running_frequency_hz: float = 2.5e9
    gain_hz_per_a: float = 2.0e12
    control_current_midpoint_a: float = 200.0e-6

    def __post_init__(self) -> None:
        require_positive("free_running_frequency_hz", self.free_running_frequency_hz)
        require_non_negative("gain_hz_per_a", self.gain_hz_per_a)
        require_non_negative("control_current_midpoint_a", self.control_current_midpoint_a)

    def frequency_hz(self, control_current_a: float) -> float:
        """Oscillation frequency for a given control current (clamped positive)."""
        frequency = self.free_running_frequency_hz + self.gain_hz_per_a * (
            control_current_a - self.control_current_midpoint_a
        )
        return max(frequency, 1.0)

    def control_current_for(self, frequency_hz: float) -> float:
        """Control current needed to reach *frequency_hz* (inverse of the gain law)."""
        require_positive("frequency_hz", frequency_hz)
        if self.gain_hz_per_a == 0.0:
            raise ValueError("a zero-gain CCO cannot be tuned to a target frequency")
        return self.control_current_midpoint_a + (
            frequency_hz - self.free_running_frequency_hz
        ) / self.gain_hz_per_a
