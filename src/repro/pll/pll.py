"""Behavioural (phase-domain) simulation of the shared multi-channel PLL.

The shared PLL locks a current-controlled oscillator to ``multiplication *
f_reference`` and exports its control current; each receive channel biases its
own matched gated oscillator from a mirrored copy of that current
(paper Figure 6).  What the channel-level analysis needs from the PLL is

* the steady-state control current (sets every channel's centre frequency),
* the residual frequency error after lock (ideally zero for a type-II loop),
* the lock time and loop dynamics (to confirm the chosen loop bandwidth), and
* the per-channel frequency offsets caused by mirror and oscillator mismatch,
  which feed straight into the FTOL analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .._validation import require_positive, require_positive_int
from .components import (
    ChargePump,
    CurrentControlledOscillator,
    PhaseFrequencyDetector,
    SecondOrderLoopFilter,
)

__all__ = ["PllConfig", "PllSimulationResult", "SharedPll", "ChannelBiasMismatch"]


@dataclass(frozen=True)
class PllConfig:
    """Configuration of the shared PLL."""

    reference_frequency_hz: float = 156.25e6
    multiplication_factor: int = 16
    pfd: PhaseFrequencyDetector = field(default_factory=PhaseFrequencyDetector)
    charge_pump: ChargePump = field(default_factory=ChargePump)
    cco: CurrentControlledOscillator = field(default_factory=CurrentControlledOscillator)

    def __post_init__(self) -> None:
        require_positive("reference_frequency_hz", self.reference_frequency_hz)
        require_positive_int("multiplication_factor", self.multiplication_factor)

    @property
    def target_frequency_hz(self) -> float:
        """Output frequency the loop locks to."""
        return self.reference_frequency_hz * self.multiplication_factor


@dataclass
class PllSimulationResult:
    """Time series produced by :meth:`SharedPll.simulate`."""

    times_s: np.ndarray
    frequencies_hz: np.ndarray
    control_currents_a: np.ndarray
    phase_errors_rad: np.ndarray
    target_frequency_hz: float

    @property
    def final_frequency_hz(self) -> float:
        """Output frequency at the end of the simulation."""
        return float(self.frequencies_hz[-1])

    @property
    def final_control_current_a(self) -> float:
        """Control current at the end of the simulation."""
        return float(self.control_currents_a[-1])

    @property
    def final_frequency_error(self) -> float:
        """Relative frequency error at the end of the simulation."""
        return (self.final_frequency_hz - self.target_frequency_hz) / self.target_frequency_hz

    def lock_time_s(self, tolerance: float = 1.0e-3) -> float:
        """First time after which the frequency error stays within *tolerance*.

        Returns ``nan`` when the loop never settles within the simulated span.
        """
        relative_error = np.abs(self.frequencies_hz - self.target_frequency_hz) / self.target_frequency_hz
        within = relative_error <= tolerance
        if not np.any(within):
            return float("nan")
        # Find the last sample that violates the tolerance; lock is after it.
        violations = np.flatnonzero(~within)
        if violations.size == 0:
            return float(self.times_s[0])
        last_violation = violations[-1]
        if last_violation + 1 >= self.times_s.size:
            return float("nan")
        return float(self.times_s[last_violation + 1])


class SharedPll:
    """Phase-domain, fixed-time-step simulation of the shared PLL."""

    def __init__(self, config: PllConfig | None = None,
                 loop_filter: SecondOrderLoopFilter | None = None) -> None:
        self.config = config or PllConfig()
        self.loop_filter = loop_filter or SecondOrderLoopFilter()

    def simulate(self, duration_s: float = 20.0e-6, time_step_s: float = 2.0e-9,
                 initial_frequency_hz: float | None = None) -> PllSimulationResult:
        """Run the loop for *duration_s* and return the acquisition transient."""
        require_positive("duration_s", duration_s)
        require_positive("time_step_s", time_step_s)
        config = self.config
        n_steps = int(math.ceil(duration_s / time_step_s))

        reference_phase = 0.0
        feedback_phase = 0.0
        self.loop_filter.reset(0.0)
        frequency = (initial_frequency_hz if initial_frequency_hz is not None
                     else config.cco.free_running_frequency_hz)

        times = np.empty(n_steps)
        frequencies = np.empty(n_steps)
        currents = np.empty(n_steps)
        errors = np.empty(n_steps)

        for step in range(n_steps):
            time_s = (step + 1) * time_step_s
            reference_phase += 2.0 * math.pi * config.reference_frequency_hz * time_step_s
            feedback_phase += (
                2.0 * math.pi * frequency * time_step_s / config.multiplication_factor
            )
            error = config.pfd.phase_error(reference_phase, feedback_phase)
            pump_current = config.charge_pump.output_current(error)
            self.loop_filter.update(pump_current, time_step_s)
            control_current = self.loop_filter.control_current_a()
            frequency = config.cco.frequency_hz(control_current)

            times[step] = time_s
            frequencies[step] = frequency
            currents[step] = control_current
            errors[step] = error

        return PllSimulationResult(
            times_s=times,
            frequencies_hz=frequencies,
            control_currents_a=currents,
            phase_errors_rad=errors,
            target_frequency_hz=config.target_frequency_hz,
        )

    def locked_control_current_a(self) -> float:
        """Control current the loop settles to (from the CCO tuning law)."""
        return self.config.cco.control_current_for(self.config.target_frequency_hz)


@dataclass(frozen=True)
class ChannelBiasMismatch:
    """Mismatch between the shared PLL's CCO and the per-channel gated oscillators.

    The control current is mirrored to every channel; mirror gain error and
    oscillator free-running-frequency mismatch both translate into a static
    frequency offset of that channel — the quantity the FTOL analysis needs.
    """

    mirror_gain_sigma: float = 0.005
    oscillator_frequency_sigma: float = 0.005

    def __post_init__(self) -> None:
        if self.mirror_gain_sigma < 0.0 or self.oscillator_frequency_sigma < 0.0:
            raise ValueError("mismatch sigmas must be non-negative")

    def sample_channel_offsets(self, n_channels: int, control_current_a: float,
                               cco: CurrentControlledOscillator,
                               rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw per-channel relative frequency offsets versus the shared PLL.

        Returns an array of length *n_channels* with the relative frequency
        error of each channel's gated oscillator.
        """
        require_positive_int("n_channels", n_channels)
        require_positive("control_current_a", control_current_a)
        rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — opt-in entropy: reproducible callers pass a seeded Generator
        target = cco.frequency_hz(control_current_a)
        gains = rng.normal(1.0, self.mirror_gain_sigma, size=n_channels)
        frequency_errors = rng.normal(0.0, self.oscillator_frequency_sigma, size=n_channels)
        offsets = np.empty(n_channels)
        for index in range(n_channels):
            mirrored_current = control_current_a * gains[index]
            base = cco.frequency_hz(mirrored_current)
            actual = base * (1.0 + frequency_errors[index])
            offsets[index] = (actual - target) / target
        return offsets
