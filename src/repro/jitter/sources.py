"""Time-domain jitter source models.

Where :mod:`repro.jitter.pdf` provides the *statistical* description used by
the analytic BER model, this module provides matching *time-domain* sources
for the event-driven (VHDL-like) and circuit-level simulators, so that both
levels of the design flow consume exactly the same jitter specification
(Table 1 of the paper).

Every source maps an edge time (or edge index) to a timing displacement in
unit intervals and exposes the matching :class:`~repro.jitter.pdf.Pdf` so the
statistical and behavioural models can be cross-validated.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from .. import units
from .._validation import require_non_negative, require_positive
from .pdf import DEFAULT_GRID_STEP_UI, Pdf, delta_pdf, gaussian_pdf, sinusoidal_pdf, uniform_pdf

__all__ = [
    "JitterSource",
    "NoJitter",
    "RandomJitter",
    "DeterministicJitter",
    "SinusoidalJitter",
    "BoundedUncorrelatedJitter",
    "CompositeJitter",
    "table1_jitter_sources",
]


class JitterSource(ABC):
    """Abstract time-domain jitter source.

    Subclasses implement :meth:`displacement_ui`, mapping absolute edge times
    (seconds) to a timing displacement in UI, and :meth:`pdf`, returning the
    marginal distribution of that displacement.
    """

    @abstractmethod
    def displacement_ui(self, edge_times_s: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        """Return the displacement (UI) applied to each edge at *edge_times_s*."""

    @abstractmethod
    def pdf(self, step: float = DEFAULT_GRID_STEP_UI) -> Pdf:
        """Return the marginal probability density of the displacement (UI)."""

    @abstractmethod
    def rms_ui(self) -> float:
        """Return the RMS displacement in UI."""

    def peak_to_peak_ui(self) -> float:
        """Return the bounded peak-to-peak displacement (inf for unbounded sources)."""
        return math.inf


@dataclass(frozen=True)
class NoJitter(JitterSource):
    """A source that contributes no displacement (useful as a neutral element)."""

    def displacement_ui(self, edge_times_s: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        return np.zeros(np.asarray(edge_times_s).shape, dtype=float)

    def pdf(self, step: float = DEFAULT_GRID_STEP_UI) -> Pdf:
        return delta_pdf(0.0, step)

    def rms_ui(self) -> float:
        return 0.0

    def peak_to_peak_ui(self) -> float:
        return 0.0


@dataclass(frozen=True)
class RandomJitter(JitterSource):
    """Unbounded Gaussian (thermal-noise) jitter — paper Table 1 'RJ'."""

    sigma_ui: float = 0.021

    def __post_init__(self) -> None:
        require_non_negative("sigma_ui", self.sigma_ui)

    def displacement_ui(self, edge_times_s: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        shape = np.asarray(edge_times_s).shape
        if self.sigma_ui == 0.0:
            return np.zeros(shape, dtype=float)
        return rng.normal(0.0, self.sigma_ui, size=shape)

    def pdf(self, step: float = DEFAULT_GRID_STEP_UI) -> Pdf:
        return gaussian_pdf(self.sigma_ui, step)

    def rms_ui(self) -> float:
        return self.sigma_ui


@dataclass(frozen=True)
class DeterministicJitter(JitterSource):
    """Bounded, uniformly distributed jitter — paper Table 1 'DJ'.

    The uniform PDF is the paper's explicit modelling choice for deterministic
    (data-dependent / duty-cycle) jitter.
    """

    peak_to_peak_ui_pp: float = 0.4

    def __post_init__(self) -> None:
        require_non_negative("peak_to_peak_ui_pp", self.peak_to_peak_ui_pp)

    def displacement_ui(self, edge_times_s: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        shape = np.asarray(edge_times_s).shape
        half = 0.5 * self.peak_to_peak_ui_pp
        if half == 0.0:
            return np.zeros(shape, dtype=float)
        return rng.uniform(-half, half, size=shape)

    def pdf(self, step: float = DEFAULT_GRID_STEP_UI) -> Pdf:
        return uniform_pdf(self.peak_to_peak_ui_pp, step)

    def rms_ui(self) -> float:
        return units.peak_to_peak_to_rms_uniform(self.peak_to_peak_ui_pp)

    def peak_to_peak_ui(self) -> float:
        return self.peak_to_peak_ui_pp


@dataclass(frozen=True)
class SinusoidalJitter(JitterSource):
    """Sinusoidal jitter at a single frequency — the swept stressor of JTOL tests.

    The displacement of an edge at absolute time ``t`` is
    ``(A_pp / 2) * sin(2*pi*f*t + phase)``.
    """

    amplitude_ui_pp: float
    frequency_hz: float
    phase_rad: float = 0.0

    def __post_init__(self) -> None:
        require_non_negative("amplitude_ui_pp", self.amplitude_ui_pp)
        require_positive("frequency_hz", self.frequency_hz)

    def displacement_ui(self, edge_times_s: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        edge_times_s = np.asarray(edge_times_s, dtype=float)
        omega = 2.0 * math.pi * self.frequency_hz
        return 0.5 * self.amplitude_ui_pp * np.sin(omega * edge_times_s + self.phase_rad)

    def pdf(self, step: float = DEFAULT_GRID_STEP_UI) -> Pdf:
        return sinusoidal_pdf(self.amplitude_ui_pp, step)

    def rms_ui(self) -> float:
        return units.peak_to_peak_to_rms_sine(self.amplitude_ui_pp)

    def peak_to_peak_ui(self) -> float:
        return self.amplitude_ui_pp

    def relative_amplitude_over_gap_ui_pp(self, gap_ui: float,
                                          bit_rate_hz: float = units.DEFAULT_BIT_RATE
                                          ) -> float:
        """Peak-to-peak amplitude of the *differential* SJ over a gap of ``gap_ui``.

        The gated oscillator is re-phased at every transition; what matters for
        the BER of a bit ``k`` UI after the trigger is the *difference* of the
        sinusoidal displacement between the two edges.  The difference of two
        sinusoids of amplitude ``a`` separated by ``delta`` radians is a
        sinusoid of amplitude ``2*a*sin(delta/2)``, hence the well known
        high-pass characteristic of gated-oscillator CDRs (flat at high
        frequency, 20 dB/dec roll-off of sensitivity towards DC).
        """
        require_non_negative("gap_ui", gap_ui)
        phase_gap = math.pi * self.frequency_hz * gap_ui / bit_rate_hz
        return 2.0 * self.amplitude_ui_pp * abs(math.sin(phase_gap))


@dataclass(frozen=True)
class BoundedUncorrelatedJitter(JitterSource):
    """Bounded uncorrelated jitter (BUJ), modelled as a truncated Gaussian.

    Crosstalk from neighbouring channels of the multi-channel receiver is
    commonly characterised as BUJ; it is not part of Table 1 but is provided
    for the multi-channel experiments.
    """

    peak_to_peak_ui_pp: float
    sigma_ui: float

    def __post_init__(self) -> None:
        require_non_negative("peak_to_peak_ui_pp", self.peak_to_peak_ui_pp)
        require_non_negative("sigma_ui", self.sigma_ui)

    def displacement_ui(self, edge_times_s: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        shape = np.asarray(edge_times_s).shape
        if self.sigma_ui == 0.0 or self.peak_to_peak_ui_pp == 0.0:
            return np.zeros(shape, dtype=float)
        half = 0.5 * self.peak_to_peak_ui_pp
        draws = rng.normal(0.0, self.sigma_ui, size=shape)
        return np.clip(draws, -half, half)

    def pdf(self, step: float = DEFAULT_GRID_STEP_UI) -> Pdf:
        if self.sigma_ui == 0.0 or self.peak_to_peak_ui_pp == 0.0:
            return delta_pdf(0.0, step)
        base = gaussian_pdf(self.sigma_ui, step)
        half = 0.5 * self.peak_to_peak_ui_pp
        density = np.where(np.abs(base.grid) <= half, base.density, 0.0)
        clipped = Pdf(base.grid, density)
        return clipped.normalised()

    def rms_ui(self) -> float:
        return float(self.pdf().std())

    def peak_to_peak_ui(self) -> float:
        return self.peak_to_peak_ui_pp


@dataclass(frozen=True)
class CompositeJitter(JitterSource):
    """Sum of independent jitter sources."""

    sources: tuple[JitterSource, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not all(isinstance(source, JitterSource) for source in self.sources):
            raise TypeError("all elements of sources must be JitterSource instances")

    def displacement_ui(self, edge_times_s: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        edge_times_s = np.asarray(edge_times_s, dtype=float)
        total = np.zeros(edge_times_s.shape, dtype=float)
        for source in self.sources:
            total = total + source.displacement_ui(edge_times_s, rng)
        return total

    def pdf(self, step: float = DEFAULT_GRID_STEP_UI) -> Pdf:
        result = delta_pdf(0.0, step)
        for source in self.sources:
            result = result.convolve(source.pdf(step))
        return result

    def rms_ui(self) -> float:
        return math.sqrt(sum(source.rms_ui() ** 2 for source in self.sources))

    def peak_to_peak_ui(self) -> float:
        return sum(source.peak_to_peak_ui() for source in self.sources)


def table1_jitter_sources(sj_amplitude_ui_pp: float = 0.0,
                          sj_frequency_hz: float = 100.0e6) -> CompositeJitter:
    """Return the paper's Table 1 jitter mix as a composite time-domain source.

    DJ = 0.4 UIpp (uniform), RJ = 0.021 UIrms (Gaussian) and an optional
    sinusoidal component (amplitude swept in the JTOL experiments).
    """
    sources: list[JitterSource] = [DeterministicJitter(0.4), RandomJitter(0.021)]
    if sj_amplitude_ui_pp > 0.0:
        sources.append(SinusoidalJitter(sj_amplitude_ui_pp, sj_frequency_hz))
    return CompositeJitter(tuple(sources))
