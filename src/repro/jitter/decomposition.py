"""Jitter decomposition and combination utilities (dual-Dirac model).

The link budget style of analysis used to compare against the InfiniBand mask
combines random and deterministic jitter as

    TJ(BER) = DJ_pp + 2 * Q(BER) * RJ_rms

where ``Q(BER)`` is the two-sided Gaussian quantile of the target error ratio
(≈ 7.03 for 1e-12).  This module provides that total-jitter arithmetic, the
inverse (fitting DJ/RJ from a measured distribution by the tail-fit /
dual-Dirac method), and histogram-based estimators used by the behavioural
simulations to report their jitter in the same terms as Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import special, stats

from .._validation import require_non_negative, require_positive, require_probability

__all__ = [
    "q_scale",
    "total_jitter_pp",
    "JitterDecomposition",
    "decompose_dual_dirac",
    "estimate_rj_dj_from_samples",
    "combine_rms",
    "combine_deterministic",
]


def q_scale(ber: float) -> float:
    """Return the dual-Dirac Q-scale multiplier for a target bit error ratio.

    ``Q = sqrt(2) * erfc^-1(2 * BER / rho_t)`` with transition density
    ``rho_t = 1`` folded in; the conventional value at BER = 1e-12 is ≈ 7.03
    (one-sided); the *total* jitter formula uses ``2 * Q * RJ_rms``.
    """
    require_probability("ber", ber)
    if ber <= 0.0:
        raise ValueError("ber must be strictly positive for a finite Q scale")
    return math.sqrt(2.0) * float(special.erfcinv(2.0 * ber))


def total_jitter_pp(dj_pp: float, rj_rms: float, ber: float = 1.0e-12) -> float:
    """Total jitter at the given BER using the dual-Dirac combination rule."""
    require_non_negative("dj_pp", dj_pp)
    require_non_negative("rj_rms", rj_rms)
    return dj_pp + 2.0 * q_scale(ber) * rj_rms


def combine_rms(*rms_values: float) -> float:
    """Combine independent random-jitter contributions (root-sum-square)."""
    total = 0.0
    for value in rms_values:
        require_non_negative("rms value", value)
        total += value * value
    return math.sqrt(total)


def combine_deterministic(*pp_values: float) -> float:
    """Combine bounded jitter contributions (linear, worst-case addition)."""
    total = 0.0
    for value in pp_values:
        require_non_negative("peak-to-peak value", value)
        total += value
    return total


@dataclass(frozen=True)
class JitterDecomposition:
    """Result of decomposing a measured jitter population into DJ + RJ."""

    dj_pp_ui: float
    rj_rms_ui: float
    mean_ui: float = 0.0

    def total_jitter_pp_ui(self, ber: float = 1.0e-12) -> float:
        """Total jitter at the requested BER."""
        return total_jitter_pp(self.dj_pp_ui, self.rj_rms_ui, ber)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DJ = {self.dj_pp_ui:.4f} UIpp, RJ = {self.rj_rms_ui:.4f} UIrms, "
            f"TJ(1e-12) = {self.total_jitter_pp_ui():.4f} UIpp"
        )


def decompose_dual_dirac(samples_ui: np.ndarray, tail_quantile: float = 0.005
                         ) -> JitterDecomposition:
    """Fit the dual-Dirac model to a jitter sample population.

    The two tails of the distribution are fitted with Gaussians (by matching
    the quantiles at ``tail_quantile`` and ``4 * tail_quantile``); the
    difference between the two tail means gives DJ(δδ), the average of the two
    tail sigmas gives RJ.

    This is intentionally a simple, robust estimator: the behavioural
    simulations use it to report DJ/RJ in the same terms the specification
    (Table 1) is written in.
    """
    samples = np.asarray(samples_ui, dtype=float).ravel()
    if samples.size < 100:
        raise ValueError("dual-Dirac decomposition needs at least 100 samples")
    require_positive("tail_quantile", tail_quantile)
    if not 0.0 < tail_quantile < 0.1:
        raise ValueError("tail_quantile must be in (0, 0.1)")

    q_lo_a = np.quantile(samples, tail_quantile)
    q_lo_b = np.quantile(samples, 4.0 * tail_quantile)
    q_hi_a = np.quantile(samples, 1.0 - tail_quantile)
    q_hi_b = np.quantile(samples, 1.0 - 4.0 * tail_quantile)

    z_a = stats.norm.ppf(tail_quantile)
    z_b = stats.norm.ppf(4.0 * tail_quantile)

    # Left tail: q = mu_l + sigma_l * z  evaluated at the two quantiles.
    denom = z_a - z_b
    sigma_left = (q_lo_a - q_lo_b) / denom if denom != 0.0 else 0.0
    mu_left = q_lo_a - sigma_left * z_a

    # Right tail (mirror the z values).
    sigma_right = (q_hi_a - q_hi_b) / (-denom) if denom != 0.0 else 0.0
    mu_right = q_hi_a + sigma_right * z_a

    sigma_left = max(float(sigma_left), 0.0)
    sigma_right = max(float(sigma_right), 0.0)

    dj = max(float(mu_right - mu_left), 0.0)
    rj = 0.5 * (sigma_left + sigma_right)
    return JitterDecomposition(dj_pp_ui=dj, rj_rms_ui=float(rj),
                               mean_ui=float(samples.mean()))


def estimate_rj_dj_from_samples(samples_ui: np.ndarray) -> JitterDecomposition:
    """Convenience wrapper around :func:`decompose_dual_dirac` with defaults."""
    return decompose_dual_dirac(np.asarray(samples_ui, dtype=float))
