"""Open-loop oscillator jitter accumulation.

A gated oscillator is only re-phased at data transitions.  Between two
transitions it free-runs and its timing error accumulates as a random walk:
after ``n`` oscillation periods the accumulated jitter standard deviation is

    sigma(n) = kappa * sqrt(n * T_osc)        (McNeill / Hajimiri convention)

where ``kappa`` is the jitter accumulation figure of merit of the oscillator
(units sqrt(seconds)).  This module converts between kappa, per-cycle jitter
and the UI-referred oscillator jitter budget of the paper (0.01 UI rms at
CID = 5, section 3.2), and provides the accumulation law the statistical BER
model uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from .._validation import require_non_negative, require_positive, require_positive_int

__all__ = [
    "OscillatorJitterBudget",
    "accumulated_sigma_seconds",
    "accumulated_sigma_ui",
    "kappa_from_per_cycle_sigma",
    "per_cycle_sigma_from_kappa",
    "kappa_for_ui_budget",
    "ui_budget_from_kappa",
    "PAPER_CKJ_UI_RMS",
    "PAPER_WORST_CASE_CID",
]

#: The paper's oscillator-jitter budget: 0.01 UI rms for CID = 5 (section 3.2).
PAPER_CKJ_UI_RMS = 0.01

#: Worst-case consecutive identical digits for 8b/10b coded data.
PAPER_WORST_CASE_CID = 5


def accumulated_sigma_seconds(kappa: float, elapsed_s: float) -> float:
    """RMS accumulated jitter (seconds) after free-running for *elapsed_s* seconds.

    Implements the random-walk law ``sigma = kappa * sqrt(elapsed)``.
    """
    require_non_negative("kappa", kappa)
    require_non_negative("elapsed_s", elapsed_s)
    return kappa * float(np.sqrt(elapsed_s))


def accumulated_sigma_ui(kappa: float, elapsed_ui: float,
                         bit_rate_hz: float = units.DEFAULT_BIT_RATE) -> float:
    """RMS accumulated jitter (UI) after free-running for *elapsed_ui* unit intervals."""
    elapsed_s = units.ui_to_seconds(elapsed_ui, bit_rate_hz)
    sigma_s = accumulated_sigma_seconds(kappa, elapsed_s)
    return units.seconds_to_ui(sigma_s, bit_rate_hz)


def kappa_from_per_cycle_sigma(sigma_per_cycle_s: float, period_s: float) -> float:
    """Convert a per-cycle jitter sigma to the kappa figure of merit.

    ``sigma(1 cycle) = kappa * sqrt(T)``  →  ``kappa = sigma / sqrt(T)``.
    """
    require_non_negative("sigma_per_cycle_s", sigma_per_cycle_s)
    require_positive("period_s", period_s)
    return sigma_per_cycle_s / float(np.sqrt(period_s))


def per_cycle_sigma_from_kappa(kappa: float, period_s: float) -> float:
    """Convert kappa back to the RMS jitter accumulated over one period."""
    require_non_negative("kappa", kappa)
    require_positive("period_s", period_s)
    return kappa * float(np.sqrt(period_s))


def kappa_for_ui_budget(budget_ui_rms: float = PAPER_CKJ_UI_RMS,
                        cid: int = PAPER_WORST_CASE_CID,
                        bit_rate_hz: float = units.DEFAULT_BIT_RATE) -> float:
    """Maximum kappa that keeps accumulated jitter below *budget_ui_rms* at *cid*.

    This is the quantity read off Figure 11 to choose the oscillator bias
    point: the oscillator may accumulate at most ``budget_ui_rms`` UI of rms
    jitter while free-running across ``cid`` bit periods.
    """
    require_positive("budget_ui_rms", budget_ui_rms)
    cid = require_positive_int("cid", cid)
    elapsed_s = units.ui_to_seconds(float(cid), bit_rate_hz)
    budget_s = units.ui_to_seconds(budget_ui_rms, bit_rate_hz)
    return budget_s / float(np.sqrt(elapsed_s))


def ui_budget_from_kappa(kappa: float, cid: int = PAPER_WORST_CASE_CID,
                         bit_rate_hz: float = units.DEFAULT_BIT_RATE) -> float:
    """Accumulated rms jitter (UI) of an oscillator with figure of merit *kappa* at *cid*."""
    return accumulated_sigma_ui(kappa, float(require_positive_int("cid", cid)), bit_rate_hz)


@dataclass(frozen=True)
class OscillatorJitterBudget:
    """Oscillator jitter budget linking the system target to the circuit design.

    Parameters
    ----------
    budget_ui_rms:
        Allowed accumulated rms jitter, referred to the sampling instant, at
        the worst-case run length (paper: 0.01 UI).
    cid:
        Worst-case consecutive identical digits (paper: 5 for 8b/10b).
    bit_rate_hz:
        Channel data rate.
    """

    budget_ui_rms: float = PAPER_CKJ_UI_RMS
    cid: int = PAPER_WORST_CASE_CID
    bit_rate_hz: float = units.DEFAULT_BIT_RATE

    def __post_init__(self) -> None:
        require_positive("budget_ui_rms", self.budget_ui_rms)
        require_positive_int("cid", self.cid)
        require_positive("bit_rate_hz", self.bit_rate_hz)

    @property
    def kappa_max(self) -> float:
        """Maximum allowed jitter figure of merit [sqrt(s)]."""
        return kappa_for_ui_budget(self.budget_ui_rms, self.cid, self.bit_rate_hz)

    @property
    def sigma_per_bit_ui(self) -> float:
        """Per-bit-period rms jitter implied by the budget."""
        return self.budget_ui_rms / float(np.sqrt(self.cid))

    def sigma_at_position_ui(self, position: int | np.ndarray) -> np.ndarray:
        """RMS accumulated jitter (UI) when sampling the *position*-th bit of a run.

        The oscillator is re-phased at the transition that starts the run; by
        the time the ``i``-th bit of the run is sampled it has free-run for
        roughly ``i`` bit periods (half a period to the first sampling edge,
        plus ``i - 1`` full periods, rounded up to ``i`` for a slightly
        conservative budget).
        """
        position_array = np.asarray(position, dtype=float)
        if np.any(position_array < 1):
            raise ValueError("bit positions are 1-based and must be >= 1")
        return self.sigma_per_bit_ui * np.sqrt(position_array)

    def satisfied_by(self, kappa: float) -> bool:
        """Return True if an oscillator with figure of merit *kappa* meets the budget."""
        require_non_negative("kappa", kappa)
        return kappa <= self.kappa_max * (1.0 + 1.0e-12)
