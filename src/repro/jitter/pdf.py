"""Numerical probability-density algebra on a uniform grid.

The paper's statistical model ("In statistical models, the exact contributions
of different types of timing jitter can be accurately combined", section 3.1)
combines deterministic (uniform), random (Gaussian), sinusoidal (arcsine) and
oscillator jitter distributions and evaluates error probabilities down to
1e-12 — far beyond Monte-Carlo reach.  This module provides the small PDF
calculus that makes this possible:

* :class:`Pdf` — a density sampled on a uniform grid with exact helpers for
  mean, variance, CDF and tail probabilities,
* convolution of independent contributions (FFT-based),
* constructors for the standard jitter shapes.

All grids are expressed in unit intervals (UI) unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_non_negative, require_positive

__all__ = [
    "Pdf",
    "delta_pdf",
    "uniform_pdf",
    "gaussian_pdf",
    "sinusoidal_pdf",
    "dual_dirac_pdf",
    "convolve_pdfs",
    "DEFAULT_GRID_STEP_UI",
]

#: Default grid resolution used by the statistical model [UI].
DEFAULT_GRID_STEP_UI = 1.0e-3


@dataclass(frozen=True)
class Pdf:
    """A probability density sampled on a uniform grid.

    Attributes
    ----------
    grid:
        Sample points (uniformly spaced, strictly increasing).
    density:
        Density values at the grid points; integrates to ~1 with the
        trapezoid/rectangle rule ``sum(density) * step``.
    """

    grid: np.ndarray
    density: np.ndarray

    def __post_init__(self) -> None:
        grid = np.asarray(self.grid, dtype=float)
        density = np.asarray(self.density, dtype=float)
        if grid.ndim != 1 or density.ndim != 1 or grid.size != density.size:
            raise ValueError("grid and density must be 1-D arrays of equal length")
        if grid.size < 2:
            raise ValueError("a Pdf needs at least two grid points")
        steps = np.diff(grid)
        if np.any(steps <= 0.0):
            raise ValueError("grid must be strictly increasing")
        if not np.allclose(steps, steps[0], rtol=1.0e-6, atol=0.0):
            raise ValueError("grid must be uniformly spaced")
        if np.any(density < -1.0e-12):
            raise ValueError("density must be non-negative")
        object.__setattr__(self, "grid", grid)
        object.__setattr__(self, "density", np.clip(density, 0.0, None))

    # -- basic properties ---------------------------------------------------

    @property
    def step(self) -> float:
        """Grid spacing."""
        return float(self.grid[1] - self.grid[0])

    @property
    def total_probability(self) -> float:
        """Integral of the density over the grid (should be ~1)."""
        return float(self.density.sum() * self.step)

    def normalised(self) -> "Pdf":
        """Return a copy scaled so the density integrates to exactly 1."""
        total = self.total_probability
        if total <= 0.0:
            raise ValueError("cannot normalise a zero density")
        return Pdf(self.grid, self.density / total)

    def mean(self) -> float:
        """First moment of the distribution."""
        return float(np.sum(self.grid * self.density) * self.step / self.total_probability)

    def variance(self) -> float:
        """Second central moment of the distribution."""
        mu = self.mean()
        return float(
            np.sum((self.grid - mu) ** 2 * self.density) * self.step / self.total_probability
        )

    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.variance()))

    def peak_to_peak(self, threshold: float = 1.0e-30) -> float:
        """Span between the first and last grid point with density above *threshold*."""
        significant = np.flatnonzero(self.density > threshold)
        if significant.size == 0:
            return 0.0
        return float(self.grid[significant[-1]] - self.grid[significant[0]])

    # -- probabilities ------------------------------------------------------

    def cdf(self) -> np.ndarray:
        """Cumulative distribution evaluated at the grid points."""
        return np.cumsum(self.density) * self.step

    def probability_below(self, threshold: float) -> float:
        """Return ``P(X < threshold)`` with linear interpolation inside a cell."""
        grid = self.grid
        if threshold <= grid[0]:
            return 0.0
        if threshold >= grid[-1]:
            return min(1.0, self.total_probability)
        index = int(np.searchsorted(grid, threshold, side="right")) - 1
        full_cells = float(self.density[: index + 1].sum() * self.step)
        fraction = (threshold - grid[index]) / self.step
        partial = float(self.density[index]) * self.step * (fraction - 1.0)
        return float(np.clip(full_cells + partial, 0.0, 1.0))

    def probability_above(self, threshold: float) -> float:
        """Return ``P(X > threshold)``."""
        return float(np.clip(self.total_probability - self.probability_below(threshold), 0.0, 1.0))

    # -- transformations ----------------------------------------------------

    def shifted(self, offset: float) -> "Pdf":
        """Return the distribution of ``X + offset`` (grid is translated)."""
        return Pdf(self.grid + offset, self.density)

    def scaled(self, factor: float) -> "Pdf":
        """Return the distribution of ``factor * X`` for a non-zero factor."""
        if factor == 0.0:
            raise ValueError("scaling factor must be non-zero")
        if factor > 0.0:
            return Pdf(self.grid * factor, self.density / factor)
        grid = (self.grid * factor)[::-1]
        density = (self.density / abs(factor))[::-1]
        return Pdf(grid, density)

    def mirrored(self) -> "Pdf":
        """Return the distribution of ``-X``."""
        return self.scaled(-1.0)

    def convolve(self, other: "Pdf") -> "Pdf":
        """Return the distribution of the sum of two independent variables."""
        return convolve_pdfs(self, other)

    def resampled(self, grid: np.ndarray) -> "Pdf":
        """Interpolate the density onto a new uniform grid and renormalise."""
        density = np.interp(grid, self.grid, self.density, left=0.0, right=0.0)
        pdf = Pdf(np.asarray(grid, dtype=float), density)
        return pdf.normalised() if pdf.total_probability > 0 else pdf


# -- constructors -----------------------------------------------------------


def _symmetric_grid(half_span: float, step: float) -> np.ndarray:
    n = max(2, int(np.ceil(half_span / step)) + 1)
    return np.arange(-n, n + 1, dtype=float) * step


def delta_pdf(value: float = 0.0, step: float = DEFAULT_GRID_STEP_UI) -> Pdf:
    """A (discretised) Dirac delta at *value* — used for 'no jitter' components."""
    require_positive("step", step)
    grid = np.array([value - step, value, value + step], dtype=float)
    density = np.array([0.0, 1.0 / step, 0.0])
    return Pdf(grid, density)


def uniform_pdf(peak_to_peak: float, step: float = DEFAULT_GRID_STEP_UI,
                centre: float = 0.0) -> Pdf:
    """Uniform density of the given peak-to-peak span (deterministic jitter)."""
    require_non_negative("peak_to_peak", peak_to_peak)
    require_positive("step", step)
    if peak_to_peak == 0.0:
        return delta_pdf(centre, step)
    half = 0.5 * peak_to_peak
    grid = _symmetric_grid(half + 2.0 * step, step) + centre
    density = np.where(np.abs(grid - centre) <= half, 1.0 / peak_to_peak, 0.0)
    return Pdf(grid, density).normalised()


def gaussian_pdf(sigma: float, step: float = DEFAULT_GRID_STEP_UI,
                 centre: float = 0.0, n_sigma: float = 10.0) -> Pdf:
    """Gaussian density with standard deviation *sigma* (random jitter).

    The grid extends to ``n_sigma`` standard deviations; 10 sigma keeps the
    truncated tail below ~1e-23, far under the 1e-12 BER target.
    """
    require_non_negative("sigma", sigma)
    require_positive("step", step)
    if sigma == 0.0:
        return delta_pdf(centre, step)
    grid = _symmetric_grid(n_sigma * sigma, step) + centre
    z = (grid - centre) / sigma
    density = np.exp(-0.5 * z * z) / (sigma * np.sqrt(2.0 * np.pi))
    return Pdf(grid, density).normalised()


def sinusoidal_pdf(peak_to_peak: float, step: float = DEFAULT_GRID_STEP_UI,
                   centre: float = 0.0) -> Pdf:
    """Arcsine density of a sinusoid with the given peak-to-peak amplitude.

    A sampled sinusoid ``(A/2)·sin(θ)`` with uniformly random phase has the
    arcsine ("bathtub-shaped") density ``1/(π·sqrt((A/2)² - x²))``.
    """
    require_non_negative("peak_to_peak", peak_to_peak)
    require_positive("step", step)
    if peak_to_peak == 0.0:
        return delta_pdf(centre, step)
    amplitude = 0.5 * peak_to_peak
    grid = _symmetric_grid(amplitude + 2.0 * step, step) + centre
    x = grid - centre
    # Evaluate the analytic CDF difference per cell to avoid the integrable
    # singularities at +/- amplitude.
    left_edges = np.clip(x - 0.5 * step, -amplitude, amplitude)
    right_edges = np.clip(x + 0.5 * step, -amplitude, amplitude)
    cdf_left = 0.5 + np.arcsin(left_edges / amplitude) / np.pi
    cdf_right = 0.5 + np.arcsin(right_edges / amplitude) / np.pi
    density = (cdf_right - cdf_left) / step
    return Pdf(grid, density).normalised()


def dual_dirac_pdf(separation: float, step: float = DEFAULT_GRID_STEP_UI,
                   centre: float = 0.0) -> Pdf:
    """Dual-Dirac density: two equal impulses separated by *separation*.

    This is the standard model for data-dependent deterministic jitter used by
    jitter-decomposition methods.
    """
    require_non_negative("separation", separation)
    require_positive("step", step)
    if separation == 0.0:
        return delta_pdf(centre, step)
    half = 0.5 * separation
    grid = _symmetric_grid(half + 2.0 * step, step) + centre
    density = np.zeros_like(grid)
    for impulse in (centre - half, centre + half):
        index = int(np.argmin(np.abs(grid - impulse)))
        density[index] += 0.5 / step
    return Pdf(grid, density)


def convolve_pdfs(first: Pdf, second: Pdf) -> Pdf:
    """Distribution of the sum of two independent random variables.

    Both inputs are resampled onto the finer of the two grids before the FFT
    convolution so resolutions can be mixed freely.
    """
    step = min(first.step, second.step)
    if not np.isclose(first.step, step):
        span = first.grid[-1] - first.grid[0]
        grid = np.arange(first.grid[0], first.grid[0] + span + 0.5 * step, step)
        first = first.resampled(grid)
    if not np.isclose(second.step, step):
        span = second.grid[-1] - second.grid[0]
        grid = np.arange(second.grid[0], second.grid[0] + span + 0.5 * step, step)
        second = second.resampled(grid)

    density = np.convolve(first.density, second.density) * step
    start = first.grid[0] + second.grid[0]
    grid = start + np.arange(density.size, dtype=float) * step
    pdf = Pdf(grid, density)
    # Renormalise to remove accumulated quadrature error, preserving tails.
    return pdf.normalised()
