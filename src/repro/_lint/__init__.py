"""repro-lint — AST-based determinism & spawn-safety analyzer.

Every layer of this repository stakes its correctness on three repo-wide
invariants: all randomness flows from explicit ``SeedSequence`` /
``Generator`` paths, all persisted JSON goes through the strict RFC 8259
codec in :mod:`repro._jsonio`, and everything shipped to pool workers is
spawn-picklable.  This package turns those invariants (plus four
supporting ones) into machine-checked rules, enforced as a blocking CI
step::

    PYTHONPATH=src python -m repro._lint src tests benchmarks examples

Suppression is explicit and audited: inline
``# repro-lint: disable=RPLxxx`` pragmas with a justification
(:mod:`repro._lint.pragmas`), or the shrink-only JSON baseline
(:mod:`repro._lint.baseline`).  The rule table lives in
:mod:`repro._lint.rules` and ARCHITECTURE.md.

The package is stdlib-only by contract — the CI lint job runs it without
numpy/scipy installed — and must stay importable that way.
"""

from .base import PARSE_ERROR_CODE, FileContext, Finding, Rule, all_rules, rule_codes
from .baseline import Baseline, BaselineError
from .cli import DEFAULT_BASELINE_NAME, main
from .pragmas import PragmaMap, collect_pragmas
from .walker import iter_python_files, lint_file, lint_paths, lint_source

__all__ = [
    "PARSE_ERROR_CODE",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "rule_codes",
    "Baseline",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "main",
    "PragmaMap",
    "collect_pragmas",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
