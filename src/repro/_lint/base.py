"""Rule base class, finding record and rule registry for repro-lint.

The analyzer is deliberately **stdlib-only** (``ast`` + ``tokenize``): the
CI lint job runs it without installing numpy/scipy, exactly like the ruff
steps it sits beside.  Keep every module under :mod:`repro._lint` free of
third-party imports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "PARSE_ERROR_CODE",
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "rule_codes",
]

#: Pseudo-code reported when a file cannot be parsed at all.  Not a
#: registered rule: it cannot be pragma- or baseline-suppressed.
PARSE_ERROR_CODE = "RPL000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped source line — it doubles as the baseline
    identity of the finding (line numbers drift when unrelated code moves,
    the offending line's text does not).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    snippet: str

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class FileContext:
    """Everything a rule needs to examine one file.

    ``relpath`` is the posix-style path relative to the repository root;
    every rule scopes itself off it (``src/repro/...`` vs ``tests/...``),
    so callers synthesizing contexts (the fixture tests) choose the scope
    by choosing the relpath.
    """

    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    @property
    def in_src(self) -> bool:
        return self.relpath.startswith("src/repro/")


class Rule:
    """Base class: subclasses set ``code``/``name``/``summary`` and
    implement :meth:`check` yielding findings for one file."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=ctx.relpath,
            line=line,
            col=col,
            code=self.code,
            message=message,
            snippet=ctx.line_at(line),
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (instantiated once) to the registry."""
    rule = cls()
    if not rule.code or rule.code in _REGISTRY:
        raise ValueError(f"rule code {rule.code!r} is empty or already registered")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules in code order."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_codes() -> list[str]:
    return sorted(_REGISTRY)
