"""Shrink-only JSON baseline for repro-lint findings.

The baseline mirrors the convention of the ruff ``[format].exclude`` list
in ``ruff.toml``: it grandfathers violations that predate a rule, it is
reviewed like code, and **it only shrinks** — fix a finding, delete its
entry, never add one.  Mechanical enforcement of the shrink direction:
an entry that no longer matches any finding is *stale* and fails the run
(exit code 1), so a fixed violation cannot linger in the file.

Entries identify findings by ``(path, code, snippet)`` — the stripped
source line rather than its number — so unrelated edits that shift lines
do not invalidate the baseline, while any edit to the offending line
itself forces a fresh look.  ``count`` covers several identical lines in
one file.

The file is plain :mod:`json` (not :mod:`repro._jsonio`): findings are
path/code/text records with no floats, and the analyzer must import
without numpy.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .base import Finding

__all__ = ["BASELINE_VERSION", "Baseline", "BaselineError"]

BASELINE_VERSION = 1

_HEADER_COMMENT = (
    "repro-lint baseline — grandfathered findings, reviewed like code. "
    "This list only shrinks: fix a finding, delete its entry, never add one. "
    "Stale entries (no longer matching any finding) fail the lint run."
)


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


@dataclass
class Baseline:
    """Loaded baseline entries, consumed as findings match them."""

    path: Path | None = None
    entries: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read *path*; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} has unsupported version {payload.get('version')!r} "
                f"(expected {BASELINE_VERSION})"
            )
        entries: Counter = Counter()
        for entry in payload.get("entries", ()):
            key = (str(entry["path"]), str(entry["code"]), str(entry["snippet"]))
            entries[key] += int(entry.get("count", 1))
        return cls(path=path, entries=entries)

    def apply(self, findings: list[Finding]) -> tuple[list[Finding], list[dict]]:
        """Split *findings* into (kept, stale-entry records).

        Each finding matching a baseline entry with remaining count is
        suppressed; whatever baseline capacity is left over afterwards is
        stale and must be deleted from the file.
        """
        remaining = Counter(self.entries)
        kept: list[Finding] = []
        for finding in findings:
            key = (finding.path, finding.code, finding.snippet)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                kept.append(finding)
        stale = [
            {"path": path, "code": code, "snippet": snippet, "count": count}
            for (path, code, snippet), count in sorted(remaining.items())
            if count > 0
        ]
        return kept, stale

    @staticmethod
    def write(path: str | Path, findings: list[Finding]) -> Path:
        """Serialize *findings* as a fresh baseline at *path*."""
        entries = Counter((f.path, f.code, f.snippet) for f in findings)
        payload = {
            "comment": _HEADER_COMMENT,
            "version": BASELINE_VERSION,
            "entries": [
                {"path": p, "code": c, "snippet": s, "count": n}
                for (p, c, s), n in sorted(entries.items())
            ],
        }
        path = Path(path)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path
