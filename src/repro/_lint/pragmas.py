"""Inline ``# repro-lint: disable=RPLxxx`` pragma parsing.

Two placements suppress a finding:

* on the offending line itself::

      rng = rng or np.random.default_rng()  # repro-lint: disable=RPL001 — why

* on a comment-only line directly above the offending line::

      # repro-lint: disable=RPL001 — why this site is exempt
      rng = rng or np.random.default_rng()

A file-wide variant ``# repro-lint: disable-file=RPLxxx`` (anywhere in the
file, conventionally in the module docstring area) suppresses the listed
codes for the whole file.  Multiple codes separate with commas
(``disable=RPL001,RPL003``); ``disable=all`` suppresses everything.  Every
pragma is expected to carry a trailing justification — the analyzer does
not parse it, reviewers do.

Comments are found with :mod:`tokenize`, so pragma-looking text inside
string literals never suppresses anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["PragmaMap", "collect_pragmas"]

# Matched only inside COMMENT tokens, so no leading ``#`` is required —
# ``# noqa: BLE001; repro-lint: disable=RPL007 — why`` works too.
_PRAGMA_RE = re.compile(r"repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9,\s]+)")
_CODE_RE = re.compile(r"^RPL\d{3}$")

#: Marker stored instead of a code set when ``disable=all`` was written.
ALL = "*"


@dataclass
class PragmaMap:
    """Per-line and file-wide suppressions collected from one file."""

    line_disables: dict[int, set[str]] = field(default_factory=dict)
    file_disables: set[str] = field(default_factory=set)

    def is_suppressed(self, code: str, line: int) -> bool:
        if ALL in self.file_disables or code in self.file_disables:
            return True
        codes = self.line_disables.get(line)
        return codes is not None and (ALL in codes or code in codes)


def _parse_codes(raw: str) -> set[str]:
    codes: set[str] = set()
    for part in raw.split(","):
        token = part.strip()
        if not token:
            continue
        if token.lower() == "all":
            codes.add(ALL)
        elif _CODE_RE.match(token):
            codes.add(token)
        # Unknown tokens are ignored: a typoed code must not silently
        # suppress a different rule.
    return codes


def collect_pragmas(source: str) -> PragmaMap:
    """Scan *source* for repro-lint pragmas.

    A pragma on a comment-only line also registers for the next line, so
    a standalone comment directly above the offending statement works.
    Tokenization errors (the file will fail ``ast.parse`` anyway) yield an
    empty map.
    """
    pragmas = PragmaMap()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if not match:
            continue
        kind, raw_codes = match.groups()
        codes = _parse_codes(raw_codes)
        if not codes:
            continue
        if kind == "disable-file":
            pragmas.file_disables.update(codes)
            continue
        line = token.start[0]
        pragmas.line_disables.setdefault(line, set()).update(codes)
        # Comment-only line: the pragma covers the following line too.
        prefix = token.line[: token.start[1]]
        if not prefix.strip():
            pragmas.line_disables.setdefault(line + 1, set()).update(codes)
    return pragmas
