"""Command line interface and reporting for repro-lint.

Usage (CI runs exactly this, blocking)::

    PYTHONPATH=src python -m repro._lint src tests benchmarks examples

Exit codes: ``0`` clean, ``1`` findings or stale baseline entries, ``2``
usage / environment errors.  ``--format json`` emits a machine-readable
report for CI annotation; the baseline convention is documented in
:mod:`repro._lint.baseline`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .base import all_rules
from .baseline import Baseline, BaselineError
from .walker import lint_paths

__all__ = ["main", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "repro_lint_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro._lint",
        description=(
            "AST-based determinism & spawn-safety analyzer for this repository "
            "(rules RPL001-RPL008; see ARCHITECTURE.md for the table)"
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyze")
    parser.add_argument(
        "--root",
        default=".",
        help="repository root used to compute scoping-relevant relative paths (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit "
        "(for bootstrapping a rule; review the diff — the list only shrinks)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _list_rules(stream) -> None:
    for rule in all_rules():
        print(f"{rule.code} {rule.name}: {rule.summary}", file=stream)


def main(argv: list[str] | None = None, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        _list_rules(stream)
        return 0
    if not args.paths:
        print("error: no paths given (try: python -m repro._lint src tests)", file=sys.stderr)
        return 2

    root = Path(args.root)
    if not root.is_dir():
        print(f"error: --root {root} is not a directory", file=sys.stderr)
        return 2
    for raw in args.paths:
        path = Path(raw) if Path(raw).is_absolute() else root / raw
        if not path.exists():
            print(f"error: path {raw} does not exist", file=sys.stderr)
            return 2

    findings = lint_paths(args.paths, root)

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    if args.write_baseline:
        Baseline.write(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}", file=stream)
        return 0

    suppressed = 0
    stale: list[dict] = []
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        total = len(findings)
        findings, stale = baseline.apply(findings)
        suppressed = total - len(findings)

    if args.format == "json":
        report = {
            "version": 1,
            "findings": [finding.to_dict() for finding in findings],
            "stale_baseline": stale,
            "summary": {
                "findings": len(findings),
                "suppressed_by_baseline": suppressed,
                "stale_baseline_entries": sum(entry["count"] for entry in stale),
            },
        }
        print(json.dumps(report, indent=2), file=stream)
    else:
        for finding in findings:
            print(finding.render(), file=stream)
        for entry in stale:
            print(
                f"{entry['path']}: stale baseline entry for {entry['code']} "
                f"(snippet {entry['snippet']!r} x{entry['count']}) — the violation is "
                f"gone, delete the entry (the baseline only shrinks)",
                file=stream,
            )
        noun = "finding" if len(findings) == 1 else "findings"
        summary = f"{len(findings)} {noun}"
        if suppressed:
            summary += f" ({suppressed} suppressed by baseline)"
        if stale:
            summary += f", {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
        print(summary, file=stream)

    return 1 if findings or stale else 0
